"""Tolerance-based comparison of two metric JSON documents.

``repro sweep compare`` flattens every numeric leaf of two JSON files
into dotted paths (``rows.3.metrics.cycles``,
``totals.warm_vs_scalar_speedup``) and checks each shared path against
a per-metric relative tolerance.  This one primitive backs both:

* the **CI perf gate** — ``benchmarks/bench_emulator.py`` output vs
  the committed ``BENCH_emulator.json`` baseline, and
* **sweep regression checks** — a fresh ``report.json`` vs a previous
  sweep's (or a committed baseline's).

Rules are ``GLOB=TOL[:DIRECTION]`` strings matched against the dotted
path (first match wins):

* ``TOL`` is a relative tolerance — ``0`` means exact, ``0.1`` allows
  10% drift relative to the old value;
* ``DIRECTION`` is ``both`` (default), ``up`` (only an *increase*
  beyond tolerance fails — for lower-is-better metrics like cycles or
  miss ratios) or ``down`` (only a *decrease* fails — for
  higher-is-better metrics like speedups).

A path present in the old document but matched and absent in the new
one is a failure (``missing``); paths only in the new document are
reported as ``added`` but do not fail.  ``CompareResult.ok`` is the
gate: callers exit nonzero when it is false.
"""

from __future__ import annotations

import fnmatch
import json
import math
from dataclasses import dataclass
from typing import List, Optional

#: rel-diff sentinel when the baseline value is zero and the new one
#: is not: any tolerance short of ``inf`` fails, which is what an
#: exact-zero baseline should mean.
_INF = math.inf


@dataclass(frozen=True)
class Rule:
    """One ``GLOB=TOL[:DIRECTION]`` tolerance rule."""

    pattern: str
    tolerance: float
    direction: str = "both"  # "both" | "up" | "down"


def parse_rule(text):
    """Parse a CLI rule string into a :class:`Rule`."""
    if "=" not in text:
        raise ValueError(
            "rule %r must look like GLOB=TOL or GLOB=TOL:up|down" % (text,)
        )
    pattern, _, value = text.partition("=")
    direction = "both"
    if ":" in value:
        value, _, direction = value.partition(":")
    if direction not in ("both", "up", "down"):
        raise ValueError(
            "rule %r direction must be 'up', 'down' or 'both'" % (text,)
        )
    try:
        tolerance = float(value)
    except ValueError:
        raise ValueError(
            "rule %r tolerance %r is not a number" % (text, value)
        ) from None
    if tolerance < 0:
        raise ValueError("rule %r tolerance is negative" % (text,))
    return Rule(pattern=pattern, tolerance=tolerance, direction=direction)


def flatten(value, prefix=""):
    """``{dotted.path: number}`` over every numeric leaf of ``value``.

    Booleans are not numbers here; list indices become path segments.
    """
    out = {}
    if isinstance(value, dict):
        for key in value:
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            out.update(flatten(value[key], path))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            path = "%s.%d" % (prefix, index) if prefix else str(index)
            out.update(flatten(item, path))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        if prefix:
            out[prefix] = value
    return out


@dataclass(frozen=True)
class Delta:
    """The comparison of one dotted path."""

    path: str
    status: str  # "ok" | "regression" | "missing" | "added"
    old: Optional[float] = None
    new: Optional[float] = None
    rel: Optional[float] = None
    tolerance: Optional[float] = None
    direction: Optional[str] = None

    def to_json(self):
        out = {"path": self.path, "status": self.status}
        for name in ("old", "new", "rel", "tolerance", "direction"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    def format(self):
        if self.status == "missing":
            return "MISSING %s (baseline %r)" % (self.path, self.old)
        if self.status == "added":
            return "added   %s = %r" % (self.path, self.new)
        rel = "inf" if self.rel == _INF else "%+.1f%%" % (100 * self.rel)
        line = "%s %s: %r -> %r (%s, tolerance %g%s)" % (
            "FAIL   " if self.status == "regression" else "ok     ",
            self.path,
            self.old,
            self.new,
            rel,
            self.tolerance,
            "" if self.direction == "both" else " " + self.direction,
        )
        return line


class CompareResult:
    """All deltas of one comparison, with the pass/fail verdict."""

    def __init__(self, deltas):
        self.deltas: List[Delta] = list(deltas)

    def by_status(self, status):
        return [d for d in self.deltas if d.status == status]

    @property
    def regressions(self):
        return self.by_status("regression")

    @property
    def missing(self):
        return self.by_status("missing")

    @property
    def ok(self):
        return not self.regressions and not self.missing

    def summary(self):
        return {
            "ok": self.ok,
            "compared": len(self.deltas),
            "regressions": len(self.regressions),
            "missing": len(self.missing),
            "added": len(self.by_status("added")),
        }

    def to_json(self):
        return {
            "summary": self.summary(),
            "deltas": [d.to_json() for d in self.deltas],
        }

    def format(self, verbose=False):
        lines = []
        for delta in self.deltas:
            if verbose or delta.status in ("regression", "missing"):
                lines.append(delta.format())
        summary = self.summary()
        lines.append(
            "%s: %d value(s) compared, %d regression(s), %d missing, "
            "%d added"
            % (
                "PASS" if self.ok else "FAIL",
                summary["compared"],
                summary["regressions"],
                summary["missing"],
                summary["added"],
            )
        )
        return "\n".join(lines)


def _matches(path, patterns):
    return any(fnmatch.fnmatchcase(path, p) for p in patterns)


def _rule_for(path, rules, default_tolerance):
    for rule in rules:
        if fnmatch.fnmatchcase(path, rule.pattern):
            return rule
    return Rule(pattern="*", tolerance=default_tolerance)


def _rel_diff(old, new):
    if old == new:
        return 0.0
    if old == 0:
        return _INF if new > 0 else -_INF
    return (new - old) / abs(old)


def compare(old, new, rules=(), default_tolerance=0.0, only=(), ignore=()):
    """Compare two JSON-like documents; returns a :class:`CompareResult`.

    ``only``/``ignore`` are path globs filtering which baseline paths
    participate at all (``only`` empty means "everything").
    """
    old_flat = flatten(old)
    new_flat = flatten(new)
    rules = list(rules)

    def selected(path):
        if only and not _matches(path, only):
            return False
        return not _matches(path, ignore)

    deltas = []
    for path in sorted(old_flat):
        if not selected(path):
            continue
        old_value = old_flat[path]
        if path not in new_flat:
            deltas.append(Delta(path=path, status="missing", old=old_value))
            continue
        new_value = new_flat[path]
        rule = _rule_for(path, rules, default_tolerance)
        rel = _rel_diff(old_value, new_value)
        if rule.direction == "up":
            failed = rel > rule.tolerance
        elif rule.direction == "down":
            failed = rel < -rule.tolerance
        else:
            failed = abs(rel) > rule.tolerance
        deltas.append(
            Delta(
                path=path,
                status="regression" if failed else "ok",
                old=old_value,
                new=new_value,
                rel=rel,
                tolerance=rule.tolerance,
                direction=rule.direction,
            )
        )
    for path in sorted(set(new_flat) - set(old_flat)):
        if selected(path):
            deltas.append(Delta(path=path, status="added", new=new_flat[path]))
    return CompareResult(deltas)


def compare_files(
    old_path,
    new_path,
    rules=(),
    default_tolerance=0.0,
    only=(),
    ignore=(),
):
    """:func:`compare` over two JSON files."""
    with open(old_path) as fh:
        old = json.load(fh)
    with open(new_path) as fh:
        new = json.load(fh)
    return compare(
        old,
        new,
        rules=rules,
        default_tolerance=default_tolerance,
        only=only,
        ignore=ignore,
    )


__all__ = [
    "CompareResult",
    "Delta",
    "Rule",
    "compare",
    "compare_files",
    "flatten",
    "parse_rule",
]
