"""Per-point metric extraction: SimStats -> a flat dict of numbers.

Every sweep point stores the same named scalar metrics, computed here
from the simulator's :class:`~repro.sim.stats.SimStats`.  Definitions
deliberately mirror the original ablation benchmarks and figure
renderers (so a sweep over the committed specs reproduces their
numbers exactly):

* ``l1_miss_ratio`` counts ``hit + hit_reserved`` as hits, like the
  cache-size ablation;
* ``l2_miss_ratio`` is ``miss / (hit + miss)`` over all classes, like
  the semi-global-L2 ablation;
* the per-class ratios (``d_l1_miss_ratio``, ...) are exactly the
  Figure 8 series.

Everything here is a deterministic count or a ratio of counts — no
wall-clock — so two runs of the same point produce byte-identical
metric dicts (the property sweep resumability and shard merging are
built on).
"""

from __future__ import annotations

#: all extractable metrics, in report-column order.
METRIC_NAMES = (
    "cycles",
    "issued_warp_insts",
    "l1_miss_ratio",
    "l2_miss_ratio",
    "d_l1_miss_ratio",
    "d_l2_miss_ratio",
    "n_l1_miss_ratio",
    "n_l2_miss_ratio",
    "d_turnaround",
    "n_turnaround",
    "d_req_per_warp",
    "n_req_per_warp",
    "reservation_fail_fraction",
    "dram_reads",
)


def _overall_l1_miss_ratio(stats):
    hits = sum(c.l1_hit + c.l1_hit_reserved for c in stats.classes.values())
    misses = sum(c.l1_miss for c in stats.classes.values())
    total = hits + misses
    return misses / total if total else 0.0


def _overall_l2_miss_ratio(stats):
    hits = sum(c.l2_hit for c in stats.classes.values())
    misses = sum(c.l2_miss for c in stats.classes.values())
    total = hits + misses
    return misses / total if total else 0.0


def collect_metrics(stats, names=None):
    """Extract ``names`` (default: all of :data:`METRIC_NAMES`) from
    one simulation's stats as a plain ``{name: number}`` dict."""
    d = stats.classes["D"]
    n = stats.classes["N"]
    values = {
        "cycles": int(stats.cycles),
        "issued_warp_insts": int(stats.issued_warp_insts),
        "l1_miss_ratio": _overall_l1_miss_ratio(stats),
        "l2_miss_ratio": _overall_l2_miss_ratio(stats),
        "d_l1_miss_ratio": d.l1_miss_ratio(),
        "d_l2_miss_ratio": d.l2_miss_ratio(),
        "n_l1_miss_ratio": n.l1_miss_ratio(),
        "n_l2_miss_ratio": n.l2_miss_ratio(),
        "d_turnaround": d.mean_turnaround(),
        "n_turnaround": n.mean_turnaround(),
        "d_req_per_warp": d.requests_per_warp(),
        "n_req_per_warp": n.requests_per_warp(),
        "reservation_fail_fraction": stats.reservation_fail_fraction(),
        "dram_reads": int(stats.dram_reads),
    }
    if names is None:
        names = METRIC_NAMES
    return {name: values[name] for name in names}


__all__ = ["METRIC_NAMES", "collect_metrics"]
