"""Declarative sweep specifications and their deterministic expansion.

A :class:`SweepSpec` is a plain JSON document (or dict) describing an
experiment grid: a set of applications x input scales x simulator
knobs.  ``expand`` turns it into a canonically ordered list of
:class:`SweepPoint` objects; ``point_key`` gives each point a
content-address (like the trace cache: a SHA-256 over everything that
determines its numbers, including the emulator/trace-format versions),
which is what makes sweeps resumable and shardable — a point's result
file is named by its key, so any process can tell whether the point is
already done.

Spec format::

    {
      "name": "cache-size",
      "description": "free text",
      "apps": ["2mm", "bfs"],
      "scales": [0.5],
      "base_config": "bench",          // "bench" | "tesla" | "tiny"
      "seed": 7,
      "fixed": {"l2_size": 65536},     // applied to every point
      "axes": {"l1_size": [1024, 2048, 4096, 8192]},
      "metrics": ["l1_miss_ratio", "cycles"]   // optional subset
    }

Axis/fixed names are either :func:`repro.sim.config.knob_names` entries
(validated with :func:`repro.sim.config.check_knobs`) or one of the
*structural* knobs the engine itself interprets:

``cta_policy``
    CTA scheduling policy (``round_robin`` or ``clustered``).
``l2_clusters``
    ``0`` keeps the baseline global L2; ``n > 0`` simulates the
    paper's Section X.C semi-global organization with SM clusters of
    size ``n`` (:class:`repro.optim.semi_global_l2.SemiGlobalL2GPU`).

Sharding: ``shard(points, k, n)`` deterministically assigns every n-th
point (round-robin) to shard ``k`` of ``n``, so the shard sets are
pairwise disjoint and their union is exactly the full grid — the
property CI's matrix fan-out and the resumability tests rely on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.config import TESLA_C2050, TINY, check_knobs, knob_names
from ..workloads.registry import WORKLOADS

#: bumped on incompatible changes to point files or report layout.
SWEEP_SCHEMA_VERSION = 1

#: knobs interpreted by the engine rather than by GPUConfig; values are
#: the allowed choices (None means "validated ad hoc").
STRUCTURAL_KNOBS = {
    "cta_policy": ("round_robin", "clustered"),
    "l2_clusters": None,
}

#: named base configurations a spec can start from.
BASE_CONFIGS = ("bench", "tesla", "tiny")


class SpecError(ValueError):
    """A sweep spec failed validation."""


def resolve_base_config(name):
    """Map a spec's ``base_config`` string to a GPUConfig instance."""
    if name == "bench":
        # imported lazily: experiments.runner pulls in the whole
        # pipeline, which spec parsing should not need
        from ..experiments.runner import BENCH_CONFIG

        return BENCH_CONFIG
    if name == "tesla":
        return TESLA_C2050
    if name == "tiny":
        return TINY
    raise SpecError(
        "unknown base_config %r (choices: %s)"
        % (name, ", ".join(BASE_CONFIGS))
    )


def _split_knobs(mapping):
    """Partition a knob mapping into (config_knobs, structural_knobs)."""
    config = {}
    structural = {}
    for name, value in mapping.items():
        if name in STRUCTURAL_KNOBS:
            structural[name] = value
        else:
            config[name] = value
    return config, structural


def _check_structural(name, value):
    if name == "cta_policy":
        if value not in STRUCTURAL_KNOBS["cta_policy"]:
            raise SpecError(
                "cta_policy must be one of %s, got %r"
                % (", ".join(STRUCTURAL_KNOBS["cta_policy"]), value)
            )
    elif name == "l2_clusters":
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise SpecError(
                "l2_clusters must be a non-negative int, got %r" % (value,)
            )


def _canonical(value):
    """Canonical compact JSON used inside hashes."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the expanded grid: an app, a scale, knob settings."""

    app: str
    scale: float
    knobs: Tuple[Tuple[str, object], ...]

    @property
    def params(self):
        """All coordinates as one flat dict (``app``/``scale`` included)."""
        out = {"app": self.app, "scale": self.scale}
        out.update(dict(self.knobs))
        return out

    def split_knobs(self):
        """``(config_overrides, structural)`` for this point."""
        return _split_knobs(dict(self.knobs))

    def label(self):
        parts = ["app=%s" % self.app, "scale=%r" % (self.scale,)]
        parts += ["%s=%r" % kv for kv in self.knobs]
        return " ".join(parts)


@dataclass
class SweepSpec:
    """A validated sweep description (see the module docstring)."""

    name: str
    apps: List[str]
    scales: List[float]
    axes: Dict[str, List[object]] = field(default_factory=dict)
    fixed: Dict[str, object] = field(default_factory=dict)
    base_config: str = "bench"
    seed: int = 7
    description: str = ""
    metrics: Optional[List[str]] = None

    # -- validation -------------------------------------------------------

    def validate(self):
        from .metrics import METRIC_NAMES

        if not self.name or not isinstance(self.name, str):
            raise SpecError("spec needs a non-empty string name")
        if not self.apps:
            raise SpecError("spec %r sweeps no apps" % self.name)
        for app in self.apps:
            if app not in WORKLOADS:
                raise SpecError(
                    "unknown app %r (choices: %s)"
                    % (app, ", ".join(sorted(WORKLOADS)))
                )
        if len(set(self.apps)) != len(self.apps):
            raise SpecError("duplicate apps in spec %r" % self.name)
        if not self.scales:
            raise SpecError("spec %r sweeps no scales" % self.name)
        for scale in self.scales:
            if isinstance(scale, bool) or not isinstance(scale, (int, float)):
                raise SpecError("scale %r is not a number" % (scale,))
            if scale <= 0:
                raise SpecError("scale %r is not positive" % (scale,))
        if len(set(self.scales)) != len(self.scales):
            raise SpecError("duplicate scales in spec %r" % self.name)
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise SpecError("seed must be an int, got %r" % (self.seed,))
        resolve_base_config(self.base_config)
        overlap = set(self.axes) & set(self.fixed)
        if overlap:
            raise SpecError(
                "knob(s) both swept and fixed: %s" % ", ".join(sorted(overlap))
            )
        config_fixed, structural_fixed = _split_knobs(self.fixed)
        try:
            check_knobs(config_fixed)
        except ValueError as exc:
            raise SpecError("fixed: %s" % exc) from None
        for name, value in structural_fixed.items():
            _check_structural(name, value)
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise SpecError("axis %r needs a non-empty value list" % axis)
            if len(set(map(repr, values))) != len(values):
                raise SpecError("axis %r has duplicate values" % axis)
            for value in values:
                if axis in STRUCTURAL_KNOBS:
                    _check_structural(axis, value)
                else:
                    try:
                        check_knobs({axis: value})
                    except ValueError as exc:
                        raise SpecError("axis %s" % exc) from None
        if self.metrics is not None:
            if not self.metrics:
                raise SpecError("metrics, when given, must be non-empty")
            for metric in self.metrics:
                if metric not in METRIC_NAMES:
                    raise SpecError(
                        "unknown metric %r (choices: %s)"
                        % (metric, ", ".join(METRIC_NAMES))
                    )
        return self

    # -- (de)serialization ------------------------------------------------

    def to_json(self):
        out = {
            "name": self.name,
            "description": self.description,
            "apps": list(self.apps),
            "scales": list(self.scales),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "fixed": dict(self.fixed),
            "base_config": self.base_config,
            "seed": self.seed,
        }
        if self.metrics is not None:
            out["metrics"] = list(self.metrics)
        return out

    @classmethod
    def from_json(cls, data):
        if not isinstance(data, dict):
            raise SpecError("spec must be a JSON object")
        known = {
            "name",
            "description",
            "apps",
            "scales",
            "scale",
            "axes",
            "fixed",
            "base_config",
            "seed",
            "metrics",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                "unknown spec field(s): %s" % ", ".join(sorted(unknown))
            )
        if "scale" in data and "scales" in data:
            raise SpecError("give either 'scale' or 'scales', not both")
        scales = data.get("scales")
        if scales is None:
            scales = [data["scale"]] if "scale" in data else []
        return cls(
            name=data.get("name", ""),
            description=data.get("description", ""),
            apps=list(data.get("apps", [])),
            scales=[float(s) for s in scales],
            axes={k: list(v) for k, v in (data.get("axes") or {}).items()},
            fixed=dict(data.get("fixed") or {}),
            base_config=data.get("base_config", "bench"),
            seed=data.get("seed", 7),
            metrics=(
                list(data["metrics"])
                if data.get("metrics") is not None
                else None
            ),
        ).validate()

    @classmethod
    def load(cls, path):
        """Read and validate a spec JSON file."""
        with open(path) as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise SpecError("%s: %s" % (path, exc)) from None
        return cls.from_json(data)


# -- expansion, sharding, keying -----------------------------------------


def expand(spec):
    """The full grid in canonical order.

    Order is: apps as listed, then scales as listed, then the cartesian
    product of the axes — axis order as declared in the spec, values in
    their listed order, last axis varying fastest.  Every caller
    (engine, report, sharding) iterates this same order, which is what
    makes shard assignment and report bytes deterministic.
    """
    axis_names = list(spec.axes)
    combos = [()]
    for axis in axis_names:
        combos = [c + (v,) for c in combos for v in spec.axes[axis]]
    points = []
    for app in spec.apps:
        for scale in spec.scales:
            for combo in combos:
                points.append(
                    SweepPoint(
                        app=app,
                        scale=float(scale),
                        knobs=tuple(zip(axis_names, combo)),
                    )
                )
    return points


def shard(points, index, count):
    """Points assigned to shard ``index`` (1-based) of ``count``.

    Round-robin assignment: shard k takes points k-1, k-1+n, ... —
    so shards are balanced to within one point, pairwise disjoint, and
    their union is the full list.
    """
    if count < 1:
        raise SpecError("shard count must be >= 1, got %r" % (count,))
    if not 1 <= index <= count:
        raise SpecError(
            "shard index must be in 1..%d, got %r" % (count, index)
        )
    return list(points[index - 1 :: count])


def parse_shard(text):
    """Parse a CLI ``K/N`` shard selector into ``(k, n)``."""
    try:
        left, right = str(text).split("/", 1)
        index, count = int(left), int(right)
    except ValueError:
        raise SpecError(
            "shard must look like K/N (e.g. 2/4), got %r" % (text,)
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise SpecError("shard %r out of range" % (text,))
    return index, count


def _versions():
    from ..emulator.machine import EMULATOR_VERSION
    from ..emulator.serialize import FORMAT_VERSION

    return {
        "emulator": EMULATOR_VERSION,
        "trace_format": FORMAT_VERSION,
        "sweep_schema": SWEEP_SCHEMA_VERSION,
    }


def versions():
    """The version facts stamped into point files and reports."""
    return _versions()


def point_key(spec, point):
    """Content-address of one point's result.

    Covers everything that determines the point's metrics — base
    config, fixed overrides, seed, app, scale, the point's own knob
    values, and the emulator/trace-format/schema versions — and
    deliberately nothing cosmetic (spec name, description, metric
    selection, axis declaration order), so renaming a sweep or
    reordering its axes does not invalidate completed points.
    """
    h = hashlib.sha256()
    parts = [
        "repro-sweep-point",
        _canonical(_versions()),
        "base=%s" % spec.base_config,
        "fixed=%s" % _canonical(spec.fixed),
        "seed=%d" % spec.seed,
        "app=%s" % point.app,
        "scale=%r" % (point.scale,),
        "knobs=%s" % _canonical(dict(point.knobs)),
    ]
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    return h.hexdigest()


def spec_hash(spec):
    """Hash binding an output directory to the spec that filled it.

    Unlike :func:`point_key` this covers the *whole* spec (including
    name and axis layout): a directory holds one sweep's results, and
    mixing grids in one directory would make reports ambiguous.
    """
    h = hashlib.sha256()
    h.update(b"repro-sweep-spec\0")
    h.update(_canonical(spec.to_json()).encode("utf-8"))
    h.update(b"\0")
    h.update(_canonical(_versions()).encode("utf-8"))
    return h.hexdigest()


__all__ = [
    "BASE_CONFIGS",
    "STRUCTURAL_KNOBS",
    "SWEEP_SCHEMA_VERSION",
    "SpecError",
    "SweepPoint",
    "SweepSpec",
    "expand",
    "knob_names",
    "parse_shard",
    "point_key",
    "resolve_base_config",
    "shard",
    "spec_hash",
    "versions",
]
