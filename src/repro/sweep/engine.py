"""Sharded, resumable execution of a sweep spec.

The engine walks a shard of the expanded grid and, for each point that
does not already have a result file, simulates the point and writes
``<out>/points/<key>.json`` atomically.  Because files are named by
the content-addressed :func:`~.spec.point_key`:

* **resume** is free — a rerun (after a crash, a kill, or a partial
  shard) skips every completed point;
* **sharding** is safe — shards write disjoint files into a shared (or
  later-merged) directory;
* **staleness** is impossible — bumping the emulator or trace-format
  version changes every key, so old results are recomputed, never
  silently reused.

Emulation is shared per ``(app, scale)`` across the shard's points
(and, through the on-disk trace cache, across shards and reruns); each
point then gets its own timing simulation under its own
:class:`~repro.sim.config.GPUConfig`.  Structural knobs select the
machine organization itself: ``cta_policy`` picks the CTA scheduler
and ``l2_clusters > 0`` simulates the paper's semi-global L2
(:class:`~repro.optim.semi_global_l2.SemiGlobalL2GPU`).

Observability: every point executes under a ``sweep.point`` span, the
``sweep.points`` counter tallies computed/cached/failed outcomes, and
each run writes a per-shard manifest
(``manifest-shard-K-of-N.json``) with the point statuses and a
metrics-registry snapshot.  Point files themselves contain only
deterministic content — wall-clock lives in the manifest — so
aggregate reports are byte-identical however the sweep was executed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs import tracing
from ..obs.manifest import RunManifest
from ..obs.metrics import get_registry
from ..resilience.artifacts import (
    ChecksumError,
    atomic_write_json,
    attach_checksum,
)
from .metrics import collect_metrics
from .spec import (
    SWEEP_SCHEMA_VERSION,
    SweepSpec,
    _split_knobs,
    expand,
    point_key,
    resolve_base_config,
    shard,
    spec_hash,
    versions,
)


class SweepError(RuntimeError):
    """A sweep could not run (bad output directory, failed point in
    strict mode, ...)."""


@dataclass
class PointOutcome:
    """What happened to one point during a run."""

    key: str
    params: Dict[str, object]
    status: str  # "computed" | "cached" | "failed"
    error: Optional[str] = None

    def to_json(self):
        out = {"key": self.key, "params": self.params, "status": self.status}
        if self.error is not None:
            out["error"] = self.error
        return out


#: Atomic, canonical JSON write — the shared crash-consistent writer
#: (tempfile + fsync + rename, sorted keys, trailing newline).
_write_json = atomic_write_json


def build_config(spec, point):
    """The validated GPUConfig for one point (base + fixed + axes)."""
    fixed_config, _fixed_structural = _split_knobs(spec.fixed)
    point_config, _point_structural = point.split_knobs()
    base = resolve_base_config(spec.base_config)
    overrides = dict(fixed_config)
    overrides.update(point_config)
    return base.scaled(**overrides).validate()


def structural_knobs(spec, point):
    """Merged structural knobs (fixed first, point overrides)."""
    _config, fixed_structural = _split_knobs(spec.fixed)
    _config2, point_structural = point.split_knobs()
    out = dict(fixed_structural)
    out.update(point_structural)
    return out


def simulate_point(spec, point, run):
    """Simulate one point over an already-emulated workload run and
    return its metric dict (see :mod:`repro.sweep.metrics`)."""
    from ..optim.semi_global_l2 import SemiGlobalL2GPU
    from ..sim.gpu import GPU

    config = build_config(spec, point)
    structural = structural_knobs(spec, point)
    cta_policy = structural.get("cta_policy", "round_robin")
    clusters = structural.get("l2_clusters", 0)
    if clusters:
        gpu = SemiGlobalL2GPU(
            config, cluster_size=clusters, cta_policy=cta_policy
        )
    else:
        gpu = GPU(config, cta_policy=cta_policy)
    for launch in run.trace:
        gpu.run_launch(launch, run.classifications.get(launch.kernel_name))
    return collect_metrics(gpu.stats, spec.metrics)


class SweepEngine:
    """Runs (a shard of) a sweep into an output directory.

    ``runs`` optionally injects pre-emulated
    :class:`~repro.workloads.base.WorkloadRun` objects keyed by
    ``(app, scale)`` — the ablation benchmarks use this to reuse their
    session's runs.  Otherwise emulation goes through a per-scale
    :class:`~repro.experiments.runner.ExperimentRunner`
    (``use_trace_cache=True`` by default, so reruns and sibling shards
    share traces).

    ``strict=True`` raises on the first failing point; the default
    records the failure in the outcome list (and manifest) and keeps
    going, mirroring the experiment runner's fault isolation.
    """

    def __init__(
        self,
        spec,
        out,
        jobs=1,
        engine=None,
        use_trace_cache=True,
        strict=False,
        runs=None,
    ):
        if isinstance(spec, dict):
            spec = SweepSpec.from_json(spec)
        self.spec = spec.validate()
        from ..service.store import LocalDirStore

        self.out = Path(out)
        self.points_dir = self.out / "points"
        #: per-point results live in an artifact store (the same
        #: abstraction behind the trace cache and the service's job
        #: records), keyed ``<point-key>.json``
        self.points_store = LocalDirStore(self.points_dir)
        self.jobs = max(1, int(jobs))
        self.engine = engine
        self.use_trace_cache = use_trace_cache
        self.strict = strict
        self.runs = dict(runs or {})
        self._emulators = {}

    # -- point bookkeeping ------------------------------------------------

    def point_path(self, key):
        return self.points_dir / (key + ".json")

    def _point_done(self, key):
        """True when a valid result file for ``key`` already exists.

        A file that fails its self-checksum is quarantined (moved to
        ``points/.corrupt/``) so the point recomputes — resume heals
        silent corruption instead of aggregating it.
        """
        name = key + ".json"
        try:
            data = self.points_store.get_json(name)
        except ChecksumError:
            self.points_store.quarantine(name, kind="sweep_point",
                                         reason="checksum")
            return False
        except (KeyError, OSError, ValueError):
            return False
        return data.get("key") == key and data.get("versions") == versions()

    def _write_point(self, key, point, metric_values):
        payload = {
            "schema": SWEEP_SCHEMA_VERSION,
            "key": key,
            "sweep": self.spec.name,
            "app": point.app,
            "scale": point.scale,
            "seed": self.spec.seed,
            "knobs": dict(point.knobs),
            "metrics": metric_values,
            "versions": versions(),
        }
        self.points_store.put_json(key + ".json",
                                   attach_checksum(payload))
        return self.point_path(key)

    def _write_sweep_manifest(self):
        """Bind ``out`` to this spec (or verify it is already bound)."""
        path = self.out / "sweep.json"
        digest = spec_hash(self.spec)
        if path.is_file():
            try:
                with open(path) as fh:
                    existing = json.load(fh)
            except (OSError, ValueError):
                existing = None
            if existing is not None and existing.get("spec_hash") != digest:
                raise SweepError(
                    "%s already holds results for a different sweep "
                    "(spec_hash %s != %s); use a fresh --out directory"
                    % (self.out, existing.get("spec_hash"), digest)
                )
        payload = {
            "schema": SWEEP_SCHEMA_VERSION,
            "spec": self.spec.to_json(),
            "spec_hash": digest,
            "versions": versions(),
        }
        _write_json(path, payload)

    # -- emulation --------------------------------------------------------

    def _workload_run(self, app, scale):
        cached = self.runs.get((app, scale))
        if cached is not None:
            return cached
        runner = self._emulators.get(scale)
        if runner is None:
            from ..experiments.runner import ExperimentRunner

            runner = ExperimentRunner(
                scale=scale,
                simulate=False,
                use_trace_cache=self.use_trace_cache,
                engine=self.engine,
                strict=True,
            )
            self._emulators[scale] = runner
        run = runner.workload_run(app)
        self.runs[(app, scale)] = run
        return run

    # -- execution --------------------------------------------------------

    def _run_points(self, points):
        """Serial core: execute ``points``, returning their outcomes.

        Used directly in-process and as the body of pool workers.
        """
        outcomes = []
        groups = {}
        for point in points:
            groups.setdefault((point.app, point.scale), []).append(point)
        for (app, scale), group in groups.items():
            pending = []
            for point in group:
                key = point_key(self.spec, point)
                if self._point_done(key):
                    outcomes.append(PointOutcome(key, point.params, "cached"))
                else:
                    pending.append((key, point))
            if not pending:
                continue
            try:
                run = self._workload_run(app, scale)
            except Exception as exc:  # noqa: BLE001 — isolation
                if self.strict:
                    raise SweepError(
                        "emulating %s (scale %r): %s: %s"
                        % (app, scale, type(exc).__name__, exc)
                    ) from exc
                error = "%s: %s" % (type(exc).__name__, exc)
                for key, point in pending:
                    outcomes.append(
                        PointOutcome(key, point.params, "failed", error)
                    )
                continue
            for key, point in pending:
                with tracing.span(
                    "sweep.point", app=app, scale=scale, key=key[:12]
                ):
                    try:
                        metric_values = simulate_point(self.spec, point, run)
                    except Exception as exc:  # noqa: BLE001 — isolation
                        if self.strict:
                            raise SweepError(
                                "point %s: %s: %s"
                                % (point.label(), type(exc).__name__, exc)
                            ) from exc
                        error = "%s: %s" % (type(exc).__name__, exc)
                        outcomes.append(
                            PointOutcome(key, point.params, "failed", error)
                        )
                        continue
                self._write_point(key, point, metric_values)
                outcomes.append(PointOutcome(key, point.params, "computed"))
        return outcomes

    def _run_parallel(self, points):
        """Execute grouped points across a process pool; outcomes keep
        canonical point order.  Worker failures degrade to a serial
        retry of the affected group."""
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        groups = {}
        for point in points:
            groups.setdefault((point.app, point.scale), []).append(point)
        if len(groups) < 2:
            return self._run_points(points)
        options = {
            "engine": self.engine,
            "use_trace_cache": self.use_trace_cache,
        }
        workers = min(self.jobs, len(groups))
        by_group: Dict[Tuple[str, float], List[PointOutcome]] = {}
        retry: List[Tuple[str, float]] = []
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        try:
            futures = []
            for gk, pts in groups.items():
                job = (self.spec, str(self.out), pts, options)
                futures.append((gk, pool.submit(_run_group, job)))
            for gk, future in futures:
                try:
                    by_group[gk] = future.result()
                except BrokenProcessPool:
                    retry.extend(k for k, _f in futures if k not in by_group)
                    break
                except Exception:  # noqa: BLE001 — retried serially
                    retry.append(gk)
        finally:
            pool.shutdown(wait=True)
        for gk in retry:
            if gk not in by_group:
                by_group[gk] = self._run_points(groups[gk])
        ordered = []
        consumed = {gk: 0 for gk in groups}
        for point in points:
            gk = (point.app, point.scale)
            ordered.append(by_group[gk][consumed[gk]])
            consumed[gk] += 1
        return ordered

    def run(self, shard_index=1, shard_count=1):
        """Execute this engine's shard of the grid; returns a summary.

        The summary dict holds ``total`` (grid size), ``selected``
        (this shard), per-status counts, and the ordered
        :class:`PointOutcome` list.
        """
        all_points = expand(self.spec)
        mine = shard(all_points, shard_index, shard_count)
        self._write_sweep_manifest()
        manifest = RunManifest(
            "sweep run",
            {
                "sweep": self.spec.name,
                "spec_hash": spec_hash(self.spec),
                "shard": [shard_index, shard_count],
                "jobs": self.jobs,
                "engine": self.engine,
                "trace_cache": bool(self.use_trace_cache),
                "out": str(self.out),
            },
        )
        with tracing.span(
            "sweep",
            sweep=self.spec.name,
            shard="%d/%d" % (shard_index, shard_count),
        ):
            if self.jobs > 1:
                outcomes = self._run_parallel(mine)
            else:
                outcomes = self._run_points(mine)
        registry = get_registry()
        counter = registry.counter(
            "sweep.points", "sweep points executed, by outcome"
        )
        counts = {"computed": 0, "cached": 0, "failed": 0}
        for outcome in outcomes:
            counts[outcome.status] += 1
            counter.inc(1, sweep=self.spec.name, status=outcome.status)
        summary = {
            "total": len(all_points),
            "selected": len(mine),
            "computed": counts["computed"],
            "cached": counts["cached"],
            "failed": counts["failed"],
            "outcomes": outcomes,
        }
        manifest.extras["points"] = {
            "total": len(all_points),
            "selected": len(mine),
            "computed": counts["computed"],
            "cached": counts["cached"],
            "failed": counts["failed"],
            "outcomes": [o.to_json() for o in outcomes],
        }
        manifest.attach_metrics(registry)
        name = "manifest-shard-%d-of-%d.json" % (shard_index, shard_count)
        manifest.finish().write(self.out / name)
        return summary


def _run_group(job):
    """Pool-worker entry point: run one (app, scale) group's points in
    a child process (module-level so it pickles under spawn)."""
    spec, out, points, options = job
    engine = SweepEngine(
        spec,
        out,
        jobs=1,
        engine=options["engine"],
        use_trace_cache=options["use_trace_cache"],
        strict=True,
    )
    return engine._run_points(points)


__all__ = [
    "PointOutcome",
    "SweepEngine",
    "SweepError",
    "build_config",
    "simulate_point",
    "structural_knobs",
]
