"""Declarative, sharded, resumable parameter sweeps.

The sweep subsystem turns the repo's one-off ablation scripts into a
reproducible experiment matrix (DESIGN.md section 11):

* :mod:`.spec` — JSON sweep specifications, deterministic grid
  expansion, content-addressed point keys, shard assignment;
* :mod:`.engine` — sharded/resumable execution over the trace cache
  and experiment runner, writing per-point result files;
* :mod:`.metrics` — the named scalar metrics extracted per point;
* :mod:`.report` — merging point files (from any number of shard
  directories) into byte-deterministic aggregate reports;
* :mod:`.compare` — tolerance-based regression checking between two
  metric documents (the CI perf gate's primitive).

Committed specs live under ``sweeps/`` at the repo root; the CLI
front-end is ``repro sweep run|status|report|compare``.
"""

from .compare import (
    CompareResult,
    Delta,
    Rule,
    compare,
    compare_files,
    flatten,
    parse_rule,
)
from .engine import (
    PointOutcome,
    SweepEngine,
    SweepError,
    build_config,
    simulate_point,
    structural_knobs,
)
from .metrics import METRIC_NAMES, collect_metrics
from .report import (
    ReportError,
    build_report,
    load_sweep_spec,
    render_report,
    report_bytes,
    scan_points,
    sweep_status,
    write_report,
)
from .spec import (
    BASE_CONFIGS,
    STRUCTURAL_KNOBS,
    SWEEP_SCHEMA_VERSION,
    SpecError,
    SweepPoint,
    SweepSpec,
    expand,
    parse_shard,
    point_key,
    resolve_base_config,
    shard,
    spec_hash,
    versions,
)

__all__ = [
    "BASE_CONFIGS",
    "CompareResult",
    "Delta",
    "METRIC_NAMES",
    "PointOutcome",
    "ReportError",
    "Rule",
    "STRUCTURAL_KNOBS",
    "SWEEP_SCHEMA_VERSION",
    "SpecError",
    "SweepEngine",
    "SweepError",
    "SweepPoint",
    "SweepSpec",
    "build_config",
    "build_report",
    "collect_metrics",
    "compare",
    "compare_files",
    "expand",
    "flatten",
    "load_sweep_spec",
    "parse_rule",
    "parse_shard",
    "point_key",
    "render_report",
    "report_bytes",
    "resolve_base_config",
    "scan_points",
    "shard",
    "simulate_point",
    "spec_hash",
    "structural_knobs",
    "sweep_status",
    "versions",
]
