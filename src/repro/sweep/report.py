"""Aggregating sweep points into tidy reports, and shard/run status.

A report walks the spec's canonical point order, picks each point's
result file out of one or more output directories (merging CI shard
artifacts is just "pass several directories"), and produces:

* ``report.json`` — the machine-readable aggregate: one row per
  completed point (app, scale, knobs, metrics) plus the parameters of
  any missing points.  Serialized canonically (sorted keys, fixed
  indentation), so reports are byte-identical across executions,
  shardings and resumes of the same sweep — the property the
  regression gate and the determinism tests assert.
* a rendered text report — the full per-point table followed by one
  tidy table per swept knob (metric means over every point sharing
  that knob value), which is the shape the paper's ablation figures
  take.

``sweep_status`` summarizes completion per shard without running
anything — CI and humans use it to see how far a sweep has come.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..experiments.render import format_table
from .metrics import METRIC_NAMES
from .spec import (
    SWEEP_SCHEMA_VERSION,
    SweepSpec,
    expand,
    point_key,
    shard,
    spec_hash,
    versions,
)


class ReportError(ValueError):
    """Report inputs were inconsistent (no spec, mismatched sweeps)."""


def load_sweep_spec(dirs, spec_path=None):
    """The spec governing ``dirs``: from ``spec_path`` if given, else
    from the ``sweep.json`` each run stamped into its output directory
    (all directories must agree)."""
    if spec_path is not None:
        return SweepSpec.load(spec_path)
    found = None
    found_in = None
    for directory in dirs:
        path = Path(directory) / "sweep.json"
        if not path.is_file():
            continue
        with open(path) as fh:
            data = json.load(fh)
        if found is not None and data.get("spec_hash") != found["spec_hash"]:
            raise ReportError(
                "sweep mismatch: %s and %s hold different sweeps"
                % (found_in, path)
            )
        if found is None:
            found = data
            found_in = path
    if found is None:
        raise ReportError(
            "no sweep.json under %s; pass --spec explicitly"
            % ", ".join(str(d) for d in dirs)
        )
    return SweepSpec.from_json(found["spec"])


def scan_points(dirs):
    """Index every readable point file under ``dirs`` by its key.

    Each directory may be a sweep output directory (holding a
    ``points/`` subdirectory) or a bare points directory.  Unreadable
    files — including ones failing their self-checksum — are skipped,
    so a half-written or bit-rotted point is simply "missing" (the
    read path never mutates; quarantine happens when the *engine*
    revisits the point).
    """
    from ..resilience.artifacts import verify_payload_checksum

    by_key = {}
    for directory in dirs:
        directory = Path(directory)
        points_dir = directory / "points"
        if not points_dir.is_dir():
            points_dir = directory
        if not points_dir.is_dir():
            continue
        for path in sorted(points_dir.glob("*.json")):
            try:
                with open(path) as fh:
                    data = json.load(fh)
                verify_payload_checksum(data, path)
            except (OSError, ValueError):
                continue
            key = data.get("key")
            if key:
                by_key.setdefault(key, data)
    return by_key


def build_report(spec, points_by_key):
    """The canonical aggregate dict for ``spec`` over scanned points."""
    rows = []
    missing = []
    for point in expand(spec):
        key = point_key(spec, point)
        data = points_by_key.get(key)
        if data is None or data.get("versions") != versions():
            missing.append(point.params)
            continue
        rows.append(
            {
                "app": point.app,
                "scale": point.scale,
                "knobs": dict(point.knobs),
                "metrics": data["metrics"],
                "key": key,
            }
        )
    return {
        "schema": SWEEP_SCHEMA_VERSION,
        "sweep": spec.name,
        "spec_hash": spec_hash(spec),
        "versions": versions(),
        "points_total": len(rows) + len(missing),
        "points_present": len(rows),
        "missing": missing,
        "rows": rows,
    }


def report_bytes(report):
    """The canonical serialized form (what ``report.json`` contains)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _metric_columns(spec, rows):
    if spec.metrics is not None:
        return list(spec.metrics)
    present = set()
    for row in rows:
        present.update(row["metrics"])
    return [name for name in METRIC_NAMES if name in present]


def render_report(spec, report):
    """Human-readable report text: per-point table + per-knob tables."""
    rows = report["rows"]
    metric_names = _metric_columns(spec, rows)
    axis_names = list(spec.axes)
    sections = []

    headers = ["app", "scale"] + axis_names + metric_names
    table_rows = []
    for row in rows:
        cells = [row["app"], "%g" % row["scale"]]
        cells += [str(row["knobs"].get(a, "")) for a in axis_names]
        cells += [row["metrics"].get(m, "") for m in metric_names]
        table_rows.append(cells)
    title = "Sweep %s: per-point metrics" % spec.name
    sections.append(format_table(headers, table_rows, title=title))

    for axis in axis_names:
        if len(spec.axes[axis]) < 2:
            continue
        agg_rows = []
        for value in spec.axes[axis]:
            selected = [r for r in rows if r["knobs"].get(axis) == value]
            cells = [str(value), len(selected)]
            for metric in metric_names:
                values = [
                    r["metrics"][metric]
                    for r in selected
                    if metric in r["metrics"]
                ]
                if values:
                    cells.append(sum(values) / len(values))
                else:
                    cells.append("")
            agg_rows.append(cells)
        sections.append(
            format_table(
                [axis, "points"] + ["mean %s" % m for m in metric_names],
                agg_rows,
                title="Sweep %s: means by %s" % (spec.name, axis),
            )
        )

    if report["missing"]:
        sections.append(
            "missing %d of %d point(s)"
            % (len(report["missing"]), report["points_total"])
        )
    return "\n\n".join(sections)


def write_report(spec, report, out_dir):
    """Write ``report.json`` and ``report.txt`` under ``out_dir``;
    returns their paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "report.json"
    with open(json_path, "w") as fh:
        fh.write(report_bytes(report))
    txt_path = out_dir / "report.txt"
    with open(txt_path, "w") as fh:
        fh.write(render_report(spec, report) + "\n")
    return json_path, txt_path


def sweep_status(spec, dirs, shard_count=1):
    """Completion summary: overall and per shard of ``shard_count``.

    Returns ``{"total", "done", "missing", "shards": [...]}`` where
    each shard entry holds its index, point count and done count.
    """
    points_by_key = scan_points(dirs)
    points = expand(spec)
    done_keys = set()
    for point in points:
        key = point_key(spec, point)
        data = points_by_key.get(key)
        if data is not None and data.get("versions") == versions():
            done_keys.add(key)
    shards = []
    for index in range(1, shard_count + 1):
        selected = shard(points, index, shard_count)
        done = sum(1 for p in selected if point_key(spec, p) in done_keys)
        shards.append({"shard": index, "points": len(selected), "done": done})
    return {
        "total": len(points),
        "done": len(done_keys),
        "missing": len(points) - len(done_keys),
        "shards": shards,
    }


__all__ = [
    "ReportError",
    "build_report",
    "load_sweep_spec",
    "render_report",
    "report_bytes",
    "scan_points",
    "sweep_status",
    "write_report",
]
