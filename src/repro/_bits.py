"""Bit-mask helpers shared by the emulator, profiling and timing layers.

Warp active masks are 32-bit integers that get popcounted and iterated
on every dynamic instruction — the hottest scalar operations in the
whole pipeline.  This module centralizes them:

* :func:`popcount` uses :meth:`int.bit_count` (a single CPython opcode,
  Python >= 3.10) instead of the ``bin(mask).count("1")`` idiom.
* :func:`lanes_of` returns the set-bit positions of a mask; results are
  memoized because real traces reuse a handful of distinct masks (the
  full mask, the boundary-warp masks and a few divergence patterns)
  millions of times.
"""

from __future__ import annotations

from functools import lru_cache

if hasattr(int, "bit_count"):  # Python >= 3.10
    def popcount(mask):
        """Number of set bits in ``mask``."""
        return mask.bit_count()
else:  # pragma: no cover - exercised only on Python 3.9
    def popcount(mask):
        """Number of set bits in ``mask``."""
        return bin(mask).count("1")


#: set-bit positions for every byte value, the building block of
#: :func:`lanes_of`.
_BYTE_LANES = tuple(
    tuple(b for b in range(8) if (byte >> b) & 1) for byte in range(256)
)


@lru_cache(maxsize=65536)
def lanes_of(mask):
    """The set-bit positions of ``mask``, lowest first, as a tuple.

    Memoized: callers may iterate the result but must not rely on it
    being a fresh list.
    """
    lanes = []
    base = 0
    while mask:
        byte = mask & 0xFF
        if byte:
            lanes.extend(base + b for b in _BYTE_LANES[byte])
        mask >>= 8
        base += 8
    return tuple(lanes)
