"""Launch geometry: grids, CTAs, warps and thread indexing.

Mirrors the CUDA execution model described in Section III of the paper:
a kernel launch is a grid of CTAs (thread blocks); each CTA is split into
warps of :data:`WARP_SIZE` threads that execute in lockstep on an SM.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Threads per warp (32 on all NVIDIA architectures, incl. the paper's M2050).
WARP_SIZE = 32

#: All-lanes-active mask for one warp.
FULL_MASK = (1 << WARP_SIZE) - 1


@dataclass(frozen=True)
class Dim3:
    """A CUDA ``dim3``: x is the fastest-varying dimension."""

    x: int
    y: int = 1
    z: int = 1

    @property
    def count(self):
        return self.x * self.y * self.z

    def unflatten(self, linear):
        """Convert a linear index back to (x, y, z) coordinates."""
        x = linear % self.x
        y = (linear // self.x) % self.y
        z = linear // (self.x * self.y)
        return (x, y, z)

    def flatten(self, x, y=0, z=0):
        """Linearize coordinates: x + y*dim.x + z*dim.x*dim.y.

        This matches the paper's "linearized CTA id" definition used for
        the CTA-distance analysis (Figure 12).
        """
        return x + y * self.x + z * self.x * self.y

    def __iter__(self):
        return iter((self.x, self.y, self.z))


def as_dim3(value):
    """Coerce an int / tuple / Dim3 into a :class:`Dim3`."""
    if isinstance(value, Dim3):
        return value
    if isinstance(value, int):
        return Dim3(value)
    return Dim3(*value)


@dataclass(frozen=True)
class LaunchConfig:
    """Grid and block dimensions of one kernel launch."""

    grid: Dim3
    block: Dim3

    @property
    def num_ctas(self):
        return self.grid.count

    @property
    def threads_per_cta(self):
        return self.block.count

    @property
    def warps_per_cta(self):
        return (self.block.count + WARP_SIZE - 1) // WARP_SIZE

    @property
    def total_threads(self):
        return self.num_ctas * self.threads_per_cta

    def cta_coords(self, linear_cta):
        return self.grid.unflatten(linear_cta)

    def thread_coords(self, linear_thread):
        """(x, y, z) of a thread from its linear id within the CTA."""
        return self.block.unflatten(linear_thread)

    def iter_ctas(self):
        """Yields ``(linear_cta_id, (x, y, z))`` for every CTA in the grid."""
        for i in range(self.num_ctas):
            yield i, self.grid.unflatten(i)


def make_launch(grid, block):
    """Convenience constructor accepting ints/tuples."""
    return LaunchConfig(grid=as_dim3(grid), block=as_dim3(block))
