"""Columnar (structure-of-arrays) trace storage — schema v3 in memory.

The legacy trace layout (:mod:`repro.emulator.trace`) materializes one
:class:`~repro.emulator.trace.TraceOp` Python object per dynamic warp
instruction.  At production scales that is hundreds of millions of
objects, and every consumer — the timing simulator, the coalescer
summary, the race detector, the locality analyses — pays Python
attribute-access cost per record.

This module stores the same information as typed NumPy columns:

========= ======= ====================================================
column    dtype   meaning
========= ======= ====================================================
``pc``    uint32  instruction address of the executed op
``mask``  uint32  active-lane mask
``kind``  uint8   access-kind code (:func:`op_kind`); ``KIND_NONE``
                  (0xFF) for ops that recorded no addresses
``acount``uint32  number of per-lane accesses the op recorded
``lanes`` uint8   ragged per-access lane ids (``astart`` offsets)
``addrs`` uint64  ragged per-access byte addresses
``vals``  uint64  ragged stored-value bit patterns (stores only)
========= ======= ====================================================

Producers append into fixed-size chunks (:data:`CHUNK_OPS` ops per
chunk) so peak Python-list overhead is bounded and consumers can stream
(:meth:`ColumnarWarpTrace.iter_chunks`); :meth:`ColumnarWarpTrace.seal`
concatenates the chunks into the final per-warp columns.

The record-view shim (:attr:`ColumnarWarpTrace.ops`) lazily
materializes legacy :class:`TraceOp` objects from the columns, so any
consumer that has not been ported keeps working unchanged — and the
round trip is lossless (``tests/emulator/test_columnar.py``).

Stored values are kept as 64-bit patterns and decoded through the
instruction's dtype: floats are IEEE-754 binary64 bit images, signed
integers two's-complement (sign-extended from bit 63 on decode),
unsigned integers the raw pattern.  This reproduces exactly the Python
values the engines traced (``_coerce_store`` yields only ``float`` and
``int``), which keeps schema-v2 ⇄ columnar conversion byte-exact.
"""

from __future__ import annotations

import struct
from typing import Dict, List

import numpy as np

from ..ptx.isa import PC_STRIDE
from ..resilience.errors import TraceIntegrityError
from ..resilience.guards import check_memory_budget, columnar_chunk_ops
from .grid import LaunchConfig
from .trace import TraceOp

#: Ops accumulated per producer chunk before conversion to NumPy arrays.
CHUNK_OPS = 65536

#: ``kind`` column sentinel for ops that recorded no addresses.
KIND_NONE = 0xFF

_KIND_LOAD, _KIND_STORE, _KIND_ATOMIC = 0, 1, 2

#: stable wire codes for address spaces (enum order is not wire format)
SPACE_CODES = {"global": 0, "shared": 1, "local": 2, "param": 3,
               "const": 4, "tex": 5}
SPACE_NAMES = {code: name for name, code in SPACE_CODES.items()}

_U64_MASK = (1 << 64) - 1
_PC_SHIFT = PC_STRIDE.bit_length() - 1
assert PC_STRIDE == 1 << _PC_SHIFT, "pc columns assume power-of-two stride"

_pack_d = struct.Struct("<d").pack
_unpack_d = struct.Struct("<d").unpack

#: dtypes of the seven columns, in canonical order (the on-disk format
#: in :mod:`repro.emulator.serialize` serializes them in this order).
COLUMNS = (
    ("pc", np.uint32),
    ("mask", np.uint32),
    ("kind", np.uint8),
    ("acount", np.uint32),
    ("lanes", np.uint8),
    ("addrs", np.uint64),
    ("vals", np.uint64),
)


def op_kind(inst):
    """The schema access-kind code for a memory instruction:
    ``load/store/atomic | space_code << 2``."""
    if inst.is_store:
        k = _KIND_STORE
    elif inst.is_atomic:
        k = _KIND_ATOMIC
    else:
        k = _KIND_LOAD
    space = inst.space.value if inst.space is not None else "global"
    return k | (SPACE_CODES[space] << 2)


def kind_is_store(kind):
    return kind != KIND_NONE and (kind & 3) == _KIND_STORE


def kind_is_load(kind):
    return kind != KIND_NONE and (kind & 3) == _KIND_LOAD


def encode_value(value, is_float):
    """One stored value -> 64-bit pattern (see module docstring)."""
    if is_float:
        return int.from_bytes(_pack_d(value), "little")
    return int(value) & _U64_MASK


def decode_value(bits, dtype):
    """Invert :func:`encode_value` through the instruction dtype."""
    bits = int(bits)
    if dtype.is_float:
        return _unpack_d(bits.to_bytes(8, "little"))[0]
    if dtype.is_signed and bits >> 63:
        return bits - (1 << 64)
    return bits


def take_ragged(flat, starts, counts):
    """Gather ``flat[starts[i]:starts[i]+counts[i]]`` for every row into
    one concatenated array (vectorized ragged take)."""
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return flat[:0]
    ends = np.cumsum(counts)
    offsets = np.repeat(ends - counts, counts)
    idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
    return flat[idx]


class ColumnarWarpTrace:
    """One warp's ops as typed columns, with a lazy record view.

    Lifecycle: the emulator appends ops while the warp runs (builder
    state, chunked); :meth:`seal` turns the chunks into the final
    columns.  Aggregates and the ``ops`` record view auto-seal.
    """

    __slots__ = ("cta_id", "warp_id", "_launch",
                 "_b_pc", "_b_mask", "_b_kind", "_b_acount",
                 "_b_lane", "_b_addr", "_b_val", "_chunks",
                 "pc", "mask", "kind", "acount", "astart",
                 "lanes", "addrs", "vals", "vstart", "_ops")

    def __init__(self, launch, cta_id, warp_id):
        self.cta_id = cta_id
        self.warp_id = warp_id
        self._launch = launch
        self._b_pc: List[int] = []
        self._b_mask: List[int] = []
        self._b_kind: List[int] = []
        self._b_acount: List[int] = []
        self._b_lane: List[int] = []
        self._b_addr: List[int] = []
        self._b_val: List[int] = []
        self._chunks: List[tuple] = []
        self.pc = None  # sealed columns (None while building)
        self.mask = None
        self.kind = None
        self.acount = None
        self.astart = None
        self.lanes = None
        self.addrs = None
        self.vals = None
        self.vstart = None
        self._ops = None

    @property
    def global_warp_key(self):
        return (self.cta_id, self.warp_id)

    # -- producer side -----------------------------------------------------

    def append(self, inst, active_mask, addresses=None, values=None):
        """Record one executed op (the generic engine-side hook)."""
        pc = inst.pc
        self._b_pc.append(pc)
        self._b_mask.append(active_mask)
        if addresses is None:
            self._b_kind.append(KIND_NONE)
            self._b_acount.append(0)
        else:
            idx = pc >> _PC_SHIFT
            self._b_kind.append(self._launch._kind_of[idx])
            self._b_acount.append(len(addresses))
            lanes = self._b_lane
            addrs = self._b_addr
            for lane, addr in addresses:
                lanes.append(lane)
                addrs.append(addr)
            if values is not None:
                vals = self._b_val
                if self._launch._isfloat_of[idx]:
                    for v in values:
                        vals.append(int.from_bytes(_pack_d(v), "little"))
                else:
                    for v in values:
                        vals.append(int(v) & _U64_MASK)
        if len(self._b_pc) >= self._launch._chunk_ops:
            self._flush()

    def append_run(self, pcs, active_mask):
        """Append consecutive address-less ops sharing one mask (the
        compiled engine's batched fast path)."""
        n = len(pcs)
        self._b_pc.extend(pcs)
        self._b_mask.extend([active_mask] * n)
        self._b_kind.extend([KIND_NONE] * n)
        self._b_acount.extend([0] * n)
        if len(self._b_pc) >= self._launch._chunk_ops:
            self._flush()

    def append_memory(self, pc, active_mask, kind, lanes, addrs,
                      enc_values=None):
        """Append one memory op from pre-split lane/address lists;
        ``enc_values`` must already be 64-bit patterns."""
        self._b_pc.append(pc)
        self._b_mask.append(active_mask)
        self._b_kind.append(kind)
        self._b_acount.append(len(lanes))
        self._b_lane.extend(lanes)
        self._b_addr.extend(addrs)
        if enc_values is not None:
            self._b_val.extend(enc_values)
        if len(self._b_pc) >= self._launch._chunk_ops:
            self._flush()

    def _flush(self):
        check_memory_budget("columnar trace production")
        self._chunks.append((
            np.asarray(self._b_pc, dtype=np.uint32),
            np.asarray(self._b_mask, dtype=np.uint32),
            np.asarray(self._b_kind, dtype=np.uint8),
            np.asarray(self._b_acount, dtype=np.uint32),
            np.asarray(self._b_lane, dtype=np.uint8),
            np.asarray(self._b_addr, dtype=np.uint64),
            np.asarray(self._b_val, dtype=np.uint64),
        ))
        del self._b_pc[:]
        del self._b_mask[:]
        del self._b_kind[:]
        del self._b_acount[:]
        del self._b_lane[:]
        del self._b_addr[:]
        del self._b_val[:]

    def iter_chunks(self):
        """Yield ``(pc, mask, kind, acount, lanes, addrs, vals)`` array
        tuples in production order — the streaming consumer contract
        (each tuple covers at most :data:`CHUNK_OPS` ops)."""
        if self.pc is not None:
            n = len(self.pc)
            step = self._launch._chunk_ops
            for lo in range(0, n, step):
                hi = min(lo + step, n)
                alo, ahi = int(self.astart[lo]), int(self.astart[hi])
                vlo, vhi = int(self.vstart[lo]), int(self.vstart[hi])
                yield (self.pc[lo:hi], self.mask[lo:hi], self.kind[lo:hi],
                       self.acount[lo:hi], self.lanes[alo:ahi],
                       self.addrs[alo:ahi], self.vals[vlo:vhi])
            return
        self._flush()
        for chunk in self._chunks:
            yield chunk

    def seal(self, _columns=None):
        """Finalize the columns; idempotent.  ``_columns`` lets the
        deserializer install pre-built (memory-mapped) arrays."""
        if self.pc is not None:
            return self
        if _columns is not None:
            (self.pc, self.mask, self.kind, self.acount,
             self.lanes, self.addrs, self.vals) = _columns
        else:
            self._flush()
            chunks = self._chunks
            cols = [np.concatenate([c[i] for c in chunks])
                    for i in range(len(COLUMNS))]
            self._chunks = []
            (self.pc, self.mask, self.kind, self.acount,
             self.lanes, self.addrs, self.vals) = cols
        self.astart = _exclusive_offsets(self.acount)
        self.vstart = _exclusive_offsets(self._value_counts())
        if int(self.astart[-1]) != len(self.lanes):
            raise TraceIntegrityError(
                "corrupt trace: address table length %d does not match "
                "per-op counts (%d)" % (len(self.lanes),
                                        int(self.astart[-1])))
        if int(self.vstart[-1]) != len(self.vals):
            raise TraceIntegrityError(
                "corrupt trace: value table length %d does not match "
                "store counts (%d)" % (len(self.vals),
                                       int(self.vstart[-1])))
        return self

    def _value_counts(self):
        """Per-op stored-value counts (stores record ``vector`` values
        per recorded lane access; everything else records none)."""
        if len(self.pc) == 0:
            return np.zeros(0, dtype=np.uint32)
        is_store = (self.kind & 3) == _KIND_STORE
        vec = self._launch._vec_by_idx[self.pc >> _PC_SHIFT]
        return np.where(is_store, self.acount * vec, 0).astype(np.uint32)

    # -- consumer side -----------------------------------------------------

    @property
    def ops(self):
        """Legacy record view: a list of :class:`TraceOp` (lazy)."""
        if self._ops is None:
            self._ops = self._materialize()
        return self._ops

    def _materialize(self):
        self.seal()
        launch = self._launch
        insts = launch._insts
        pcs = self.pc.tolist()
        masks = self.mask.tolist()
        kinds = self.kind.tolist()
        astart = self.astart.tolist()
        vstart = self.vstart.tolist()
        lanes = self.lanes.tolist()
        addrs = self.addrs.tolist()
        vals = self.vals.tolist()
        ops = []
        for i, pc in enumerate(pcs):
            inst = insts[pc >> _PC_SHIFT]
            kind = kinds[i]
            if kind == KIND_NONE:
                ops.append(TraceOp(inst, masks[i]))
                continue
            lo, hi = astart[i], astart[i + 1]
            addresses = tuple(zip(lanes[lo:hi], addrs[lo:hi]))
            values = None
            if (kind & 3) == _KIND_STORE:
                dtype = inst.dtype
                values = tuple(decode_value(v, dtype)
                               for v in vals[vstart[i]:vstart[i + 1]])
            ops.append(TraceOp(inst, masks[i], addresses, values))
        return ops

    def __len__(self):
        if self.pc is not None:
            return len(self.pc)
        return (len(self._b_pc)
                + sum(len(c[0]) for c in self._chunks))

    def __iter__(self):
        return iter(self.ops)


def _exclusive_offsets(counts):
    """``[0, c0, c0+c1, ...]`` — length ``len(counts)+1`` (uint64)."""
    out = np.zeros(len(counts) + 1, dtype=np.uint64)
    np.cumsum(counts, out=out[1:])
    return out


class ColumnarLaunchTrace:
    """The complete trace of one kernel launch, stored as columns.

    Implements the :class:`~repro.emulator.trace.KernelLaunchTrace`
    interface (same attributes and aggregate methods), so every
    record-level consumer keeps working; ported consumers use the
    column arrays directly.
    """

    def __init__(self, kernel_name, config: LaunchConfig, instructions,
                 shared_size=0):
        self.kernel_name = kernel_name
        self.config = config
        self.shared_size = shared_size
        self.warps: List[ColumnarWarpTrace] = []
        insts = list(instructions)
        for i, inst in enumerate(insts):
            if inst.pc != i * PC_STRIDE:
                raise ValueError(
                    "instruction table violates the pc-stride invariant "
                    "at index %d (pc %#x)" % (i, inst.pc))
        self._insts = insts
        # Producer/consumer chunk granularity; REPRO_COLUMNAR_CHUNK_OPS
        # can lower it (never raise it past CHUNK_OPS, the iter_chunks
        # contract) to bound staging-buffer memory on the large tier.
        self._chunk_ops = columnar_chunk_ops(CHUNK_OPS)
        self._kind_of = [op_kind(inst) if inst.is_memory else KIND_NONE
                         for inst in insts]
        self._isfloat_of = [bool(inst.dtype is not None
                                 and inst.dtype.is_float) for inst in insts]
        self._vec_by_idx = np.asarray(
            [max(inst.vector, 1) for inst in insts] or [1], dtype=np.uint8)
        self._is_global_load = np.asarray(
            [inst.is_global_load for inst in insts] or [False],
            dtype=np.bool_)
        self._is_shared_load = np.asarray(
            [inst.is_shared_load for inst in insts] or [False],
            dtype=np.bool_)

    def instruction_at(self, pc):
        return self._insts[pc >> _PC_SHIFT]

    @property
    def instructions(self):
        return self._insts

    def new_warp(self, cta_id, warp_id):
        """A fresh warp builder (the caller decides whether it joins
        :attr:`warps` — mirrors how the emulator honours
        ``record_trace=False``)."""
        return ColumnarWarpTrace(self, cta_id, warp_id)

    def seal(self):
        for warp in self.warps:
            warp.seal()
        return self

    # -- aggregate statistics (Table I columns) ---------------------------

    def total_warp_instructions(self):
        return sum(len(w) for w in self.warps)

    def total_thread_instructions(self):
        total = 0
        for w in self.warps:
            w.seal()
            if len(w.mask):
                total += int(np.bitwise_count(w.mask).sum(dtype=np.int64))
        return total

    def count_ops(self, predicate):
        return sum(1 for w in self.warps for op in w.ops if predicate(op))

    def _count_flagged(self, flags):
        total = 0
        for w in self.warps:
            w.seal()
            if len(w.pc):
                total += int(flags[w.pc >> _PC_SHIFT].sum(dtype=np.int64))
        return total

    def global_load_warp_count(self):
        return self._count_flagged(self._is_global_load)

    def shared_load_warp_count(self):
        return self._count_flagged(self._is_shared_load)

    def dynamic_counts_by_pc(self, only_global_loads=True):
        counts: Dict[int, int] = {}
        for w in self.warps:
            w.seal()
            pcs = w.pc
            if only_global_loads and len(pcs):
                pcs = pcs[self._is_global_load[pcs >> _PC_SHIFT]]
            if not len(pcs):
                continue
            uniq, cnt = np.unique(pcs, return_counts=True)
            for p, c in zip(uniq.tolist(), cnt.tolist()):
                counts[p] = counts.get(p, 0) + c
        return counts

    def iter_memory_ops(self, space=None, loads_only=False):
        """Record-level view: yields ``(warp_trace, op)`` pairs, exactly
        like the legacy launch (ported consumers use
        :meth:`memory_table` instead)."""
        for warp in self.warps:
            for op in warp.ops:
                if op.addresses is None:
                    continue
                if loads_only and not op.inst.is_load:
                    continue
                if space is not None and op.inst.space is not space:
                    continue
                yield warp, op

    def memory_table(self, space=None, loads_only=False):
        """Columnar view of the launch's memory ops, concatenated over
        warps.  Returns ``None`` when the launch recorded no matching op,
        else a dict of equal-length per-op arrays — ``warp`` (index into
        :attr:`warps`), ``pc``, ``mask``, ``kind``, ``acount``,
        ``astart`` — plus the ragged ``lanes``/``addrs`` tables the
        ``astart``/``acount`` pairs slice into.

        ``space`` is a :class:`repro.ptx.isa.Space` (or its string
        value); ``loads_only`` keeps plain loads, like the record-level
        iterator.
        """
        space_code = None
        if space is not None:
            space_code = SPACE_CODES[getattr(space, "value", space)]
        per_warp = []
        for w_idx, w in enumerate(self.warps):
            w.seal()
            kinds = w.kind
            keep = kinds != KIND_NONE
            if loads_only:
                keep &= (kinds & 3) == _KIND_LOAD
            if space_code is not None:
                keep &= (kinds >> 2) == space_code
            if not keep.any():
                continue
            rows = np.flatnonzero(keep)
            acount = w.acount[rows]
            lanes = take_ragged(w.lanes, w.astart[rows], acount)
            addrs = take_ragged(w.addrs, w.astart[rows], acount)
            per_warp.append({
                "warp": np.full(len(rows), w_idx, dtype=np.int64),
                "pc": w.pc[rows],
                "mask": w.mask[rows],
                "kind": kinds[rows],
                "acount": acount,
                "lanes": lanes,
                "addrs": addrs,
            })
        if not per_warp:
            return None
        table = {key: np.concatenate([p[key] for p in per_warp])
                 for key in per_warp[0]}
        table["astart"] = _exclusive_offsets(table["acount"])[:-1]
        return table

    def __iter__(self):
        return iter(self.warps)


# ---------------------------------------------------------------------------
# conversion (used by serialization and the round-trip property tests)
# ---------------------------------------------------------------------------


def to_columnar(launch, instructions=None):
    """Convert a legacy :class:`KernelLaunchTrace` (or pass through a
    columnar one) into a :class:`ColumnarLaunchTrace`.

    ``instructions`` is the kernel's instruction list; when omitted it
    is recovered from the ops themselves (requires every instruction the
    trace references to carry its finalized pc).
    """
    if isinstance(launch, ColumnarLaunchTrace):
        return launch
    if instructions is None:
        by_idx: Dict[int, object] = {}
        for warp in launch.warps:
            for op in warp.ops:
                by_idx.setdefault(op.pc >> _PC_SHIFT, op.inst)
        if by_idx:
            n = max(by_idx) + 1
            missing = [i for i in range(n) if i not in by_idx]
            if missing:
                raise ValueError(
                    "cannot infer the instruction table: no trace op "
                    "references pc %#x" % (missing[0] * PC_STRIDE))
            instructions = [by_idx[i] for i in range(n)]
        else:
            instructions = []
    out = ColumnarLaunchTrace(
        kernel_name=launch.kernel_name, config=launch.config,
        instructions=instructions, shared_size=launch.shared_size)
    for warp in launch.warps:
        cw = out.new_warp(warp.cta_id, warp.warp_id)
        out.warps.append(cw)
        for op in warp.ops:
            cw.append(op.inst, op.active_mask, op.addresses, op.values)
        cw.seal()
    return out


def to_records(launch):
    """Convert a columnar launch back into a plain
    :class:`~repro.emulator.trace.KernelLaunchTrace` of materialized
    records (the inverse of :func:`to_columnar`)."""
    from .trace import KernelLaunchTrace, WarpTrace

    out = KernelLaunchTrace(kernel_name=launch.kernel_name,
                            config=launch.config,
                            shared_size=launch.shared_size)
    for warp in launch.warps:
        out.warps.append(WarpTrace(cta_id=warp.cta_id, warp_id=warp.warp_id,
                                   ops=list(warp.ops)))
    return out
