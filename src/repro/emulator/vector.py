"""Vectorized warp execution: structure-of-arrays register files + NumPy.

The scalar engine in :mod:`repro.emulator.machine` interprets every warp
instruction with a Python loop over live lanes and per-lane ``dict``
register files.  This module replaces the *data* plane with
structure-of-arrays state:

* one NumPy array of shape ``(32,)`` per live register —
  ``uint64`` bit patterns for integer registers, ``float64`` for float
  registers (Python's ``float`` *is* an IEEE double, so computing f32
  arithmetic in float64 matches the scalar engine bit for bit),
  ``bool`` for predicates;
* per-lane special registers precomputed as ``uint64`` arrays;
* ALU / compare / select / memory-address operations executed for all
  active lanes at once with masked NumPy ops.

The *control* plane — the SIMT reconvergence stack, ``bar.sync``
round-robin and the warp scheduler loop — is untouched: it lives in
:meth:`repro.emulator.machine.Emulator._run_warp` and is shared with the
scalar engine.

Equivalence contract: for every workload, the vectorized engine must
produce byte-identical serialized traces and identical final memory to
the scalar oracle (``tests/emulator/test_engine_differential.py``).
Three deliberate mechanisms keep that true:

* all integer arithmetic is performed modulo 2**64 in ``uint64`` and
  masked down to the instruction width, which is congruent to the
  scalar engine's arbitrary-precision-then-wrap semantics;
* transcendentals whose NumPy implementation is not guaranteed
  correctly rounded (``sin``/``cos``/``ex2``/``lg2``) and rare wide/hi
  64-bit multiplies fall back to the scalar per-lane evaluator;
* sparse masks (few active lanes, the common case inside divergent
  graph-workload loops) also take the per-lane path, because a 32-wide
  NumPy dispatch costs more than interpreting one or two lanes.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .._bits import lanes_of, popcount
from ..ptx.isa import Imm, Reg, Space, SReg, dtype_from_name
from ..resilience.errors import TraceIntegrityError
from .grid import FULL_MASK, WARP_SIZE
from .machine import (
    EmulationError,
    _NEVER,
    _atom_result,
    _coerce_store,
    _evaluate,
    _fault_lane,
    _sx,
)
from .memory import MemoryError_

_M64 = (1 << 64) - 1

#: per-lane bit values, for mask <-> bool-array conversion.
_LANE_BITS = (np.uint64(1) << np.arange(WARP_SIZE, dtype=np.uint64))

#: live-lane count at or below which the per-lane fallback is cheaper
#: than a 32-wide NumPy dispatch (measured on the workload suite).
SPARSE_LANES = 4

_U64_ZEROS = np.zeros(WARP_SIZE, dtype=np.uint64)
_U64_ZEROS.setflags(write=False)


def _bools_from_mask(mask):
    """32-bit mask -> boolean lane array."""
    return (np.uint64(mask) & _LANE_BITS) != 0


def _mask_from_bools(arr):
    """Boolean lane array -> 32-bit mask."""
    return int.from_bytes(
        np.packbits(arr, bitorder="little").tobytes(), "little")


class VectorWarpState:
    """Execution state of one warp in structure-of-arrays form."""

    __slots__ = ("warp_id", "regs", "sregs", "stack", "done_mask",
                 "at_barrier", "trace", "init_mask")

    def __init__(self, warp_id, init_mask, sregs_dicts, trace):
        self.warp_id = warp_id
        #: ``{register name: (32,) array}`` — uint64 patterns, float64
        #: values or bools; missing registers read as zero.
        self.regs: Dict[str, np.ndarray] = {}
        self.sregs = _sreg_arrays(sregs_dicts)
        self.stack = [[_NEVER, 0, init_mask]]
        self.done_mask = FULL_MASK & ~init_mask
        self.at_barrier = False
        self.trace = trace
        self.init_mask = init_mask

    @property
    def finished(self):
        return not self.stack


def _sreg_arrays(sregs_dicts):
    """Per-lane special-register dicts -> ``{name: uint64 array}``."""
    arrays: Dict[str, np.ndarray] = {}
    names = next(d for d in sregs_dicts if d is not None).keys()
    for name in names:
        arrays[name] = np.array(
            [d[name] if d is not None else 0 for d in sregs_dicts],
            dtype=np.uint64)
        arrays[name].setflags(write=False)
    return arrays


# ---------------------------------------------------------------------------
# representation coercions
# ---------------------------------------------------------------------------


def _float_to_u64(arr):
    """Truncate float values toward zero into uint64 bit patterns, the
    array analogue of the scalar engine's ``int(value)``."""
    return np.trunc(arr).astype(np.int64).view(np.uint64)


def _to_u64(value):
    """Any operand value -> uint64 pattern array (or scalar for Imm)."""
    if isinstance(value, np.ndarray):
        if value.dtype == np.uint64:
            return value
        if value.dtype == np.bool_:
            return value.astype(np.uint64)
        return _float_to_u64(value)
    if isinstance(value, float):
        value = int(value)
    return np.uint64(value & _M64)


def _to_f64(value):
    """Any operand value -> float64 array (or scalar for Imm)."""
    if isinstance(value, np.ndarray):
        if value.dtype == np.float64:
            return value
        return value.astype(np.float64)
    return np.float64(value)


def _signed(value, bits):
    """uint64 patterns -> sign-extended int64 values at ``bits`` width."""
    u = _to_u64(value)
    if bits == 64:
        if not isinstance(u, np.ndarray):
            return np.int64(_sx(int(u), 64))
        return u.view(np.int64)
    masked = (u & np.uint64((1 << bits) - 1)).astype(np.int64)
    sign = (masked >> np.int64(bits - 1)) << np.int64(bits)
    return masked - sign


def _unsigned(value, bits):
    """uint64 patterns wrapped to ``bits`` width."""
    return _to_u64(value) & np.uint64((1 << bits) - 1)


def _int_result(values, bits):
    """int64 values -> wrapped uint64 result patterns."""
    return values.view(np.uint64) & np.uint64((1 << bits) - 1) \
        if bits < 64 else values.view(np.uint64)


def _convert_old(old, dtype):
    """Convert an existing register array to a new storage dtype when a
    masked write changes the register's kind (int <-> float <-> pred).

    Mirrors the coercion the scalar engine would apply when the stale
    per-lane value is next *read* by an op of the new kind.
    """
    if dtype == np.float64:
        return _to_f64(old)
    if dtype == np.bool_:
        return old != 0
    return _to_u64(old)


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class VectorEngine:
    """Masked-NumPy warp execution (the default engine)."""

    name = "vectorized"

    def describe(self):
        """Engine identity for manifests and span attributes (never for
        metrics — snapshots must be engine-invariant)."""
        return {"engine": self.name,
                "strategy": "masked NumPy structure-of-arrays",
                "sparse_lanes": SPARSE_LANES}

    def make_warp(self, warp_id, init_mask, sregs, trace):
        return VectorWarpState(warp_id, init_mask, sregs, trace)

    # -- operand access ----------------------------------------------------

    @staticmethod
    def _src(warp, op):
        """Operand -> (32,) array, or a Python/NumPy scalar for Imm."""
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, Reg):
            arr = warp.regs.get(op.name)
            return _U64_ZEROS if arr is None else arr
        if isinstance(op, SReg):
            return warp.sregs[op.name]
        raise EmulationError("unsupported source operand %r" % (op,))

    @staticmethod
    def _lane_value(warp, lane, op):
        """Scalar value of one lane (for the per-lane fallback paths)."""
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, Reg):
            arr = warp.regs.get(op.name)
            return 0 if arr is None else arr[lane].item()
        if isinstance(op, SReg):
            return int(warp.sregs[op.name][lane])
        raise EmulationError("unsupported source operand %r" % (op,))

    @staticmethod
    def _write_masked(warp, name, result, lanes_bool, exec_mask, init_mask):
        """Store ``result`` into register ``name`` for the lanes in
        ``exec_mask``, preserving other lanes' values."""
        result = np.asarray(result)
        if result.shape != (WARP_SIZE,):
            result = np.broadcast_to(result, (WARP_SIZE,))
        if (exec_mask & init_mask) == init_mask:
            # all live lanes written: no merge needed
            warp.regs[name] = np.array(result)
            return
        old = warp.regs.get(name)
        if old is None:
            old = np.zeros(WARP_SIZE, dtype=result.dtype)
        elif old.dtype != result.dtype:
            old = _convert_old(old, result.dtype)
        warp.regs[name] = np.where(lanes_bool, result, old)

    @staticmethod
    def _store_lane(warp, name, lane, value):
        """Store one lane's scalar result (per-lane fallback path)."""
        if isinstance(value, bool):
            dtype = np.bool_
        elif isinstance(value, float):
            dtype = np.float64
        else:
            dtype = np.uint64
            value &= _M64
        arr = warp.regs.get(name)
        if arr is None:
            arr = np.zeros(WARP_SIZE, dtype=dtype)
            warp.regs[name] = arr
        elif arr.dtype != dtype:
            arr = _convert_old(arr, dtype)
            warp.regs[name] = arr
        arr[lane] = value

    # -- predicates --------------------------------------------------------

    def pred_mask(self, warp, preg, negated, live):
        arr = warp.regs.get(preg.name)
        if arr is None:
            # unset predicate reads as False in every lane
            return live if negated else 0
        if popcount(live) <= SPARSE_LANES:
            pmask = 0
            for lane in lanes_of(live):
                if bool(arr[lane]) != negated:
                    pmask |= 1 << lane
            return pmask
        truth = arr != 0
        if negated:
            truth = ~truth
        return _mask_from_bools(truth) & live

    # -- ALU ---------------------------------------------------------------

    def exec_alu(self, emu, warp, inst, exec_mask):
        emu._trace(warp, inst, exec_mask)
        if not inst.dests:
            return
        dest = inst.dests[0].name
        if popcount(exec_mask) <= SPARSE_LANES:
            self._exec_alu_lanes(warp, inst, exec_mask, dest)
            return
        srcs = [self._src(warp, s) for s in inst.srcs]
        with np.errstate(all="ignore"):
            result = _evaluate_vec(inst, inst.opcode, inst.dtype, srcs)
        if result is None:
            self._exec_alu_lanes(warp, inst, exec_mask, dest)
            return
        self._write_masked(warp, dest, result, _bools_from_mask(exec_mask),
                           exec_mask, warp.init_mask & ~warp.done_mask)

    def _exec_alu_lanes(self, warp, inst, exec_mask, dest):
        """Per-lane evaluation through the scalar semantics (sparse masks
        and ops without a vectorized implementation)."""
        for lane in lanes_of(exec_mask):
            srcs = [self._lane_value(warp, lane, s) for s in inst.srcs]
            value = _evaluate(inst, inst.opcode, inst.dtype, srcs)
            self._store_lane(warp, dest, lane, value)

    # -- memory ------------------------------------------------------------

    def _addresses(self, warp, inst, active_lanes):
        """Per-lane effective addresses of a memory instruction, as a
        list of ``(lane, addr)`` pairs (trace order)."""
        memref = inst.memref
        base = memref.base
        if isinstance(base, Reg):
            arr = warp.regs.get(base.name)
            base_arr = _U64_ZEROS if arr is None else _to_u64(arr)
            if len(active_lanes) <= SPARSE_LANES:
                offset = memref.offset
                return [(lane, (int(base_arr[lane]) + offset) & _M64)
                        for lane in active_lanes]
            addr_arr = base_arr + np.uint64(memref.offset & _M64)
            return [(lane, int(addr_arr[lane])) for lane in active_lanes]
        if isinstance(base, Imm):
            addr = int(base.value) + memref.offset
            return [(lane, addr) for lane in active_lanes]
        if isinstance(base, SReg):
            arr = warp.sregs[base.name]
            return [(lane, int(arr[lane]) + memref.offset)
                    for lane in active_lanes]
        raise EmulationError("cannot address through %r" % (base,))

    def exec_memory(self, emu, warp, inst, exec_mask, shared, params):
        space = inst.space
        dtype = inst.dtype

        if space is Space.PARAM:
            name = inst.memref.base.name
            value = params[name]
            result = (np.float64(value) if isinstance(value, float)
                      else np.uint64(int(value) & _M64))
            self._write_masked(
                warp, inst.dests[0].name, result,
                _bools_from_mask(exec_mask), exec_mask,
                warp.init_mask & ~warp.done_mask)
            emu._trace(warp, inst, exec_mask)
            return

        active = lanes_of(exec_mask)
        addresses = self._addresses(warp, inst, active)
        width = dtype.nbytes
        target = shared if space is Space.SHARED else emu.memory

        stored = []
        try:
            self._exec_memory_lanes(warp, inst, addresses, width, target,
                                    active, exec_mask, stored)
        except MemoryError_ as exc:
            if exc.lane is None:
                count = max(len(inst.dests), len(inst.srcs) - 1, 1)
                exc.lane = _fault_lane(addresses, exc.addr, width, count)
            raise
        if inst.is_store and \
                len(stored) != len(addresses) * (len(inst.srcs) - 1):
            # per-warp columnar guard: a store must record exactly
            # ``vector`` values per accessed lane (the schema invariant
            # seal() enforces launch-wide); catching the drift here
            # attributes it and lets the fallback chain retry on the
            # scalar oracle instead of failing at serialization time
            raise TraceIntegrityError(
                "store at pc %#x of warp (%d, %d) produced %d values for "
                "%d accesses" % (inst.pc, warp.trace.cta_id, warp.warp_id,
                                 len(stored), len(addresses)))
        emu._trace(warp, inst, exec_mask, tuple(addresses),
                   tuple(stored) if inst.is_store else None)

    def _exec_memory_lanes(self, warp, inst, addresses, width, target,
                           active, exec_mask, stored):
        dtype = inst.dtype
        if inst.is_load:
            is_float = dtype.is_float
            for k, dest in enumerate(inst.dests):
                values = [target.load(addr + k * width, dtype)
                          for _lane, addr in addresses]
                self._scatter_loaded(warp, dest.name, active, values,
                                     is_float, exec_mask)
        elif inst.is_store:
            value_arrays = [self._src(warp, op) for op in inst.srcs[1:]]
            for lane, addr in addresses:
                for k, varr in enumerate(value_arrays):
                    value = (varr if not isinstance(varr, np.ndarray)
                             else varr[lane].item())
                    value = _coerce_store(value, dtype)
                    stored.append(value)
                    target.store(addr + k * width, dtype, value)
        elif inst.is_atomic:
            # ``red`` has no destination: skip the old-value scatter
            dest = inst.dests[0].name if inst.dests else None
            op1 = inst.srcs[1]
            op2 = inst.srcs[2] if len(inst.srcs) > 2 else None
            olds = []
            for lane, addr in addresses:
                old = target.load(addr, dtype)
                operand = self._lane_value(warp, lane, op1)
                operand2 = (self._lane_value(warp, lane, op2)
                            if op2 is not None else None)
                if dtype.is_signed:
                    operand = _sx(int(operand), dtype.bits)
                    if operand2 is not None:
                        operand2 = _sx(int(operand2), dtype.bits)
                new = _atom_result(inst.atom_op, old, operand, operand2,
                                   dtype)
                target.store(addr, dtype, _coerce_store(new, dtype))
                olds.append(old)
            if dest is not None:
                self._scatter_loaded(warp, dest, active, olds,
                                     dtype.is_float, exec_mask)

    def _scatter_loaded(self, warp, name, active_lanes, values, is_float,
                        exec_mask):
        """Write per-lane loaded values into a register array, leaving
        inactive lanes untouched."""
        dtype = np.float64 if is_float else np.uint64
        arr = warp.regs.get(name)
        if arr is None:
            arr = np.zeros(WARP_SIZE, dtype=dtype)
        elif arr.dtype != dtype:
            arr = _convert_old(arr, dtype)
        else:
            arr = arr.copy()
        if is_float:
            for lane, value in zip(active_lanes, values):
                arr[lane] = value
        else:
            for lane, value in zip(active_lanes, values):
                arr[lane] = value & _M64
        warp.regs[name] = arr


# ---------------------------------------------------------------------------
# vectorized semantics (mirrors machine._evaluate; returns None to request
# the per-lane scalar fallback)
# ---------------------------------------------------------------------------


def _evaluate_vec(inst, op, dtype, srcs):
    if op == "mov" or op == "cvta":
        value = srcs[0]
        if dtype is not None and dtype.is_float:
            return np.asarray(_to_f64(value))
        if dtype is not None and dtype.is_integer:
            return np.asarray(_unsigned(value, dtype.bits))
        # typeless mov: preserve the value's kind
        if isinstance(value, float) or (isinstance(value, np.ndarray)
                                        and value.dtype == np.float64):
            return np.asarray(_to_f64(value))
        return np.asarray(_to_u64(value))

    if op == "cvt":
        return _convert_vec(inst, dtype, srcs[0])

    if op == "setp":
        return _compare_vec(inst.cmp_op, srcs[0], srcs[1], dtype)

    if op == "selp":
        cond = srcs[2]
        truth = (cond != 0) if isinstance(cond, np.ndarray) else bool(cond)
        if dtype is not None and dtype.is_float:
            return np.where(truth, _to_f64(srcs[0]), _to_f64(srcs[1]))
        return np.where(truth, _to_u64(srcs[0]), _to_u64(srcs[1]))

    if dtype is not None and dtype.is_float:
        return _evaluate_float_vec(op, srcs)

    return _evaluate_int_vec(inst, op, dtype, srcs)


def _convert_vec(inst, dest_dtype, value):
    src_dtype = None
    for mod in inst.modifiers:
        try:
            src_dtype = dtype_from_name(mod)
            break
        except Exception:
            continue
    if src_dtype is not None and src_dtype.is_integer and src_dtype.is_signed:
        value = _signed(value, src_dtype.bits)
    elif src_dtype is not None and src_dtype.is_integer:
        value = _unsigned(value, src_dtype.bits)
    if dest_dtype.is_float:
        return np.asarray(_to_f64(value))
    if isinstance(value, np.ndarray) and value.dtype == np.int64:
        return _int_result(value, dest_dtype.bits)
    return np.asarray(_unsigned(value, dest_dtype.bits))


def _compare_vec(cmp_op, a, b, dtype):
    if dtype.is_float:
        fa, fb = _to_f64(a), _to_f64(b)
    elif cmp_op.endswith("u") and cmp_op not in ("eq", "ne"):
        fa, fb = _unsigned(a, dtype.bits), _unsigned(b, dtype.bits)
        cmp_op = cmp_op[:-1]
    elif dtype.is_signed:
        fa, fb = _signed(a, dtype.bits), _signed(b, dtype.bits)
    else:
        fa, fb = _unsigned(a, dtype.bits), _unsigned(b, dtype.bits)
    if cmp_op == "eq":
        return np.asarray(fa == fb)
    if cmp_op == "ne":
        return np.asarray(fa != fb)
    if cmp_op == "lt":
        return np.asarray(fa < fb)
    if cmp_op == "le":
        return np.asarray(fa <= fb)
    if cmp_op == "gt":
        return np.asarray(fa > fb)
    if cmp_op == "ge":
        return np.asarray(fa >= fb)
    raise EmulationError("unsupported comparison %r" % cmp_op)


def _evaluate_float_vec(op, srcs):
    if op in ("sin", "cos", "ex2", "lg2"):
        # libm-backed transcendentals are not guaranteed to round
        # identically between Python's math module and NumPy: per-lane.
        return None
    a = _to_f64(srcs[0]) if srcs else np.float64(0.0)
    b = _to_f64(srcs[1]) if len(srcs) > 1 else np.float64(0.0)
    c = _to_f64(srcs[2]) if len(srcs) > 2 else np.float64(0.0)
    if op == "add":
        return np.asarray(a + b)
    if op == "sub":
        return np.asarray(a - b)
    if op == "mul":
        return np.asarray(a * b)
    if op in ("mad", "fma"):
        # two rounding steps, matching the scalar engine's a * b + c
        return np.asarray(a * b + c)
    if op == "div":
        return np.asarray(a / b)
    if op == "min":
        return np.asarray(np.minimum(a, b))
    if op == "max":
        return np.asarray(np.maximum(a, b))
    if op == "abs":
        return np.asarray(np.abs(a))
    if op == "neg":
        return np.asarray(-a)
    if op == "rcp":
        return np.asarray(1.0 / a)
    if op == "sqrt":
        return np.asarray(np.sqrt(a))
    if op == "rsqrt":
        return np.asarray(1.0 / np.sqrt(a))
    raise EmulationError("unsupported float op %r" % op)


def _evaluate_int_vec(inst, op, dtype, srcs):
    bits = dtype.bits if dtype is not None else 32
    signed = dtype.is_signed if dtype is not None else False
    u = [_to_u64(v) for v in srcs]

    if op == "add":
        return _unsigned(u[0] + u[1], bits)
    if op == "sub":
        return _unsigned(u[0] - u[1], bits)
    if op in ("mul", "mad"):
        return _mul_vec(inst, op, bits, signed, u)
    if op in ("div", "rem"):
        return _div_vec(op, bits, signed, u)
    if op == "min" or op == "max":
        fn = np.minimum if op == "min" else np.maximum
        if signed:
            return _int_result(fn(_signed(u[0], bits), _signed(u[1], bits)),
                               bits)
        return fn(_unsigned(u[0], bits), _unsigned(u[1], bits))
    if op == "abs":
        return _int_result(np.abs(_signed(u[0], bits)), bits)
    if op == "neg":
        return _unsigned(np.uint64(0) - u[0], bits)
    if op == "and":
        return _unsigned(u[0] & u[1], bits)
    if op == "or":
        return _unsigned(u[0] | u[1], bits)
    if op == "xor":
        return _unsigned(u[0] ^ u[1], bits)
    if op == "not":
        return _unsigned(~u[0], bits)
    if op == "shl" or op == "shr":
        return _shift_vec(op, bits, signed, u)
    raise EmulationError("unsupported integer op %r" % op)


def _shift_vec(op, bits, signed, u):
    """PTX ``shl``/``shr``: the shift amount is read as unsigned and
    clamped at the register width.  Shifting a uint64 by >= 64 is
    undefined in C (and platform-dependent in NumPy), so the amount is
    clamped to the defined < 64 range *before* any NumPy shift — no lane
    ever evaluates an undefined shift, even on a discarded branch."""
    shift = np.minimum(u[1], np.uint64(bits))
    if op == "shr" and signed:
        # arithmetic shift saturates at the sign bit, so clamping the
        # (already width-clamped) amount to 63 preserves semantics
        sh = np.minimum(shift, np.uint64(63)).astype(np.int64)
        return _int_result(np.asarray(_signed(u[0], bits) >> sh), bits)
    # a full-width shift (only reachable when bits == 64) yields 0; for
    # narrower types the wrap below zeroes the result without help
    full = shift >= np.uint64(64)
    safe = np.where(full, np.uint64(0), shift)
    if op == "shl":
        return _unsigned(np.where(full, np.uint64(0), u[0] << safe), bits)
    return np.asarray(np.where(full, np.uint64(0),
                               _unsigned(u[0], bits) >> safe))


def _mul_vec(inst, op, bits, signed, u):
    mode = inst.mul_mode
    if mode in ("wide", "hi") and bits > 32:
        return None  # 128-bit intermediate: per-lane big-int fallback
    if op == "mad":
        # NB: the scalar engine applies "wide" for mad but treats any
        # other mode (incl. "hi") as low-half semantics — mirror that.
        if mode == "wide":
            if signed:
                prod = (_signed(u[0], bits)
                        * _signed(u[1], bits)).view(np.uint64)
            else:
                prod = _unsigned(u[0], bits) * _unsigned(u[1], bits)
            return _unsigned(prod + u[2], min(64, bits * 2))
        return _unsigned(u[0] * u[1] + u[2], bits)
    if mode == "wide":
        if signed:
            prod = (_signed(u[0], bits) * _signed(u[1], bits)).view(np.uint64)
        else:
            prod = _unsigned(u[0], bits) * _unsigned(u[1], bits)
        return _unsigned(prod, min(64, bits * 2))
    if mode == "hi":
        if signed:
            prod = _signed(u[0], bits) * _signed(u[1], bits)
            return _int_result(np.asarray(prod >> np.int64(bits)), bits)
        prod = _unsigned(u[0], bits) * _unsigned(u[1], bits)
        return (prod >> np.uint64(bits)) & np.uint64((1 << bits) - 1)
    return _unsigned(u[0] * u[1], bits)


def _div_vec(op, bits, signed, u):
    if signed:
        a, b = _signed(u[0], bits), _signed(u[1], bits)
        if np.any(b == 0):
            return None  # scalar fallback raises like the oracle
        if bits == 64 and (np.any(a == np.int64(-2**63))
                           or np.any(b == np.int64(-2**63))):
            # np.abs(INT64_MIN) overflows (stays negative); the per-lane
            # big-int fallback wraps INT_MIN/-1 the way PTX requires
            return None
        q = np.abs(a) // np.abs(b)
        q = np.where((a < 0) != (b < 0), -q, q)
        if op == "rem":
            return _int_result(a - b * q, bits)
        return _int_result(q, bits)
    a, b = _unsigned(u[0], bits), _unsigned(u[1], bits)
    if np.any(b == 0):
        return None
    if op == "rem":
        return a % b
    return a // b
