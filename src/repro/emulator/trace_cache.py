"""Content-addressed cache of serialized application traces.

Emulation dominates the wall-clock cost of every figure and table in
the reproduction; the trace produced for a given (workload, scale,
seed) never changes unless the kernels or the emulator itself change.
This module memoizes :func:`~.serialize.save_run` outputs, keyed by
the *content* that determines the trace:

* the workload name,
* the printed PTX of every kernel (so editing a kernel invalidates),
* the input ``seed`` and ``scale`` (they shape the generated inputs
  and launch geometry), and
* the emulator's :data:`~.machine.EMULATOR_VERSION` (bumped whenever a
  semantic change could alter emitted traces).

The serialization format version is *not* part of the key: the trace
file itself records which schema it uses, and :func:`lookup` migrates
*in place* — an entry written in an older format (or under the legacy
``.trace.gz`` naming) still loads, is immediately rewritten at the
current schema, counted under ``trace_cache.migrated``, and returned
as a **hit** (no re-emulation).  A migration whose rewrite fails still
returns the loaded run but counts under ``trace_cache.corrupt`` so the
stale entry is visible.  ``trace_cache.corrupt`` otherwise stays
reserved for genuinely damaged entries.

Entries live in an :class:`~repro.service.store.ArtifactStore` under
``<key>.trace`` names (the exact :func:`save_run` byte format, so a
cache entry is also a normal trace file).  The default backend is a
:class:`~repro.service.store.LocalDirStore` over

* ``$REPRO_TRACE_CACHE_DIR`` if set, else
* ``~/.cache/repro-traces``;

:func:`set_store` swaps in any other backend (the analysis service
shares its store this way; a backend without local paths stages trace
bytes through a temporary file for the mmap loader).

``REPRO_TRACE_CACHE=0`` disables the cache entirely.  A corrupted or
truncated entry (including a checksum mismatch detected on mmap load)
is quarantined through the store (the local backend's ``.corrupt/``
sidecar), counted under ``trace_cache.quarantined``, and treated as a
miss — the caller re-emulates and the following store heals the cache,
while the damaged bytes stay inspectable.  Writes are atomic
(temporary file + rename via the store), so concurrent experiment
workers never observe partial entries.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from pathlib import Path
from typing import Optional

from ..obs.metrics import get_registry
from ..resilience.quarantine import quarantined_entries
from .machine import EMULATOR_VERSION
from .serialize import FORMAT_VERSION, load_run, save_run

_ENV_DIR = "REPRO_TRACE_CACHE_DIR"
_ENV_SWITCH = "REPRO_TRACE_CACHE"
_SUFFIX = ".trace"
#: Entry naming used while the cache stored gzip-JSON (schema v2)
#: traces; such files are migrated (rewritten + deleted) on lookup.
_LEGACY_SUFFIX = ".trace.gz"

#: Back-off delays (seconds) between retries of transient cache I/O
#: failures.  Short: the cache is best-effort and the fallback — a
#: re-emulation — is always correct.
_RETRY_DELAYS = (0.05, 0.2)

#: backend override installed by :func:`set_store` (``None`` = the
#: environment-selected local directory).
_store_override = None


def _count(result):
    """Tally one cache operation in the metrics registry."""
    get_registry().counter(
        "trace_cache.operations",
        "trace-cache lookups/stores by result").inc(1, result=result)


def _count_corrupt():
    """Tally one evicted corrupt/truncated entry (e.g. a killed worker's
    partial write) — distinct from transient I/O errors."""
    get_registry().counter(
        "trace_cache.corrupt",
        "corrupt or truncated cache entries evicted on lookup").inc(1)


def _count_migrated():
    """Tally one old-format entry rewritten at the current schema — a
    healthy file in an outdated format, *not* corruption."""
    get_registry().counter(
        "trace_cache.migrated",
        "old-format cache entries migrated in place").inc(1)


def _count_quarantined():
    """Tally one damaged entry moved to the ``.corrupt/`` sidecar."""
    get_registry().counter(
        "trace_cache.quarantined",
        "damaged cache entries moved to quarantine").inc(1)


def _quarantine(name):
    """Move a damaged entry out of the lookup path (never raises)."""
    try:
        cache_store().quarantine(name, kind="trace_cache",
                                 reason="corrupt")
    except Exception:  # noqa: BLE001 — quarantine is best-effort
        pass
    _count_quarantined()


def cache_enabled():
    """False when the user set ``REPRO_TRACE_CACHE=0`` (or empty)."""
    value = os.environ.get(_ENV_SWITCH)
    if value is None:
        return True
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def cache_dir():
    """The local cache directory (not created until the first store)."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-traces"


def cache_store():
    """The :class:`~repro.service.store.ArtifactStore` entries live in
    (the :func:`set_store` override, else a local-directory store over
    :func:`cache_dir` — rebuilt per call so env changes in tests take
    effect immediately)."""
    if _store_override is not None:
        return _store_override
    from ..service.store import LocalDirStore

    return LocalDirStore(cache_dir(), fsync=False)


def set_store(store):
    """Install (or with ``None`` remove) a cache backend override;
    returns the previous override."""
    global _store_override
    previous = _store_override
    _store_override = store
    return previous


def trace_key(name, ptx, seed, scale):
    """The content hash identifying one emulation's trace.

    ``ptx`` must be the *printed* module text (the parser/printer
    roundtrip is canonicalizing, so cosmetic source differences hash
    identically while any semantic edit changes the key).
    """
    h = hashlib.sha256()
    for part in (
        "repro-trace",
        "emulator=%d" % EMULATOR_VERSION,
        "name=%s" % name,
        "seed=%r" % (seed,),
        "scale=%r" % (scale,),
    ):
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    h.update(ptx.encode("utf-8"))
    return h.hexdigest()


def entry_path(key) -> Optional[Path]:
    """The local path of ``key``'s entry (``None`` on a backend
    without local paths)."""
    return cache_store().path_of(key + _SUFFIX)


def _legacy_entry_path(key) -> Optional[Path]:
    """The local path a legacy-named (``.trace.gz``) entry would have."""
    return cache_store().path_of(key + _LEGACY_SUFFIX)


def _load_entry(backend, name):
    """Load one entry by store name: straight off the file for
    path-backed stores (the mmap fast path), else staged through a
    temporary file.  Raises ``KeyError`` when absent."""
    path = backend.path_of(name)
    if path is not None:
        if not path.is_file():
            raise KeyError(name)
        return load_run(path)
    data = backend.get_bytes(name)
    fd, tmp = tempfile.mkstemp(prefix=".trace-stage-", suffix=_SUFFIX)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        return load_run(tmp)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _migrate(key, run, old_name):
    """Rewrite an outdated-but-healthy entry at the current schema.

    The loaded run is returned to the caller either way (it *is* the
    requested trace); a failed rewrite counts under
    ``trace_cache.corrupt`` so the stale file is visible in metrics.
    """
    stored = store(key, run)
    if stored is None:
        _count_corrupt()
    elif old_name != key + _SUFFIX:
        # legacy-named entry replaced by a fresh <key>.trace
        try:
            cache_store().delete(old_name)
        except Exception:  # noqa: BLE001 — cleanup is best-effort
            pass
    _count_migrated()
    return run


def lookup(key):
    """Load the cached :class:`LoadedRun` for ``key``, or ``None``.

    A cache problem is never fatal: transient I/O errors (``OSError``,
    truncated reads of either format, ``BufferError`` from a dying
    mmap) are retried once after a short delay, then treated as a miss;
    corrupt entries (persistently truncated streams, bad JSON, column
    checksum mismatches, unparsable PTX) are quarantined so the next
    store can heal the cache while the evidence survives.  Entries in
    an outdated serialization format are healthy files: they are
    migrated in place and returned as hits.
    """
    if not cache_enabled():
        return None
    backend = cache_store()
    name = key + _SUFFIX
    legacy = key + _LEGACY_SUFFIX
    for delay in (_RETRY_DELAYS[0], None):
        target = name
        try:
            try:
                run = _load_entry(backend, target)
            except KeyError:
                target = legacy
                try:
                    run = _load_entry(backend, target)
                except KeyError:
                    _count("miss")
                    return None
            if run.format_version != FORMAT_VERSION or target == legacy:
                run = _migrate(key, run, target)
            _count("hit")
            return run
        except (OSError, EOFError, BufferError) as exc:
            # possibly transient (NFS hiccup, read racing a writer, a
            # remapped page under an mmap view): retry once before
            # deciding
            if delay is not None:
                time.sleep(delay)
                continue
            if not isinstance(exc, OSError):
                # stores are atomic (tempfile + rename), so a short
                # stream that survives the retry is real corruption
                _quarantine(target)
                _count_corrupt()
            _count("error")
            return None
        except Exception:
            # structurally corrupt: quarantine so a later store heals
            # the entry and the damaged bytes stay inspectable
            _quarantine(target)
            _count_corrupt()
            _count("error")
            return None
    return None


def store(key, run):
    """Serialize ``run`` into the cache under ``key`` (atomic).

    Returns the entry path (or store name for path-less backends), or
    ``None`` when the cache is disabled or the backend is unwritable
    (caching is best-effort; emulation results are never lost to a
    cache failure).
    """
    if not cache_enabled():
        return None
    backend = cache_store()
    name = key + _SUFFIX
    for delay in _RETRY_DELAYS + (None,):
        try:
            result = backend.put_file(name,
                                      lambda tmp: save_run(run, tmp))
        except OSError:
            if delay is not None:
                time.sleep(delay)
                continue
            _count("store_error")
            return None
        _count("store")
        return result if result is not None else name
    return None


def _entry_names(backend):
    return [name for name in backend.keys()
            if name.endswith((_SUFFIX, _LEGACY_SUFFIX))]


def clear():
    """Delete every cache entry (quarantined ones included); returns
    the number removed."""
    from ..resilience.quarantine import clear_quarantine

    backend = cache_store()
    removed = 0
    for name in _entry_names(backend):
        try:
            if backend.delete(name):
                removed += 1
        except OSError:
            pass
    root = backend.path_of("probe")
    if root is not None and root.parent.is_dir():
        removed += clear_quarantine(root.parent)
    return removed


def quarantine_stats():
    """``(entry_count, total_bytes)`` for the quarantine sidecar."""
    count = 0
    total = 0
    root = cache_store().path_of("probe")
    if root is None:
        return count, total
    for entry in quarantined_entries(root.parent):
        try:
            total += entry.stat().st_size
            count += 1
        except OSError:
            pass
    return count, total


def stats():
    """``(entry_count, total_bytes)`` for the current cache backend."""
    backend = cache_store()
    count = 0
    total = 0
    for name in _entry_names(backend):
        try:
            path = backend.path_of(name)
            total += (path.stat().st_size if path is not None
                      else len(backend.get_bytes(name)))
            count += 1
        except (KeyError, OSError):
            pass
    return count, total
