"""Content-addressed on-disk cache of serialized application traces.

Emulation dominates the wall-clock cost of every figure and table in
the reproduction; the trace produced for a given (workload, scale,
seed) never changes unless the kernels or the emulator itself change.
This module memoizes :func:`~.serialize.save_run` outputs on disk,
keyed by the *content* that determines the trace:

* the workload name,
* the printed PTX of every kernel (so editing a kernel invalidates),
* the input ``seed`` and ``scale`` (they shape the generated inputs
  and launch geometry), and
* the emulator's :data:`~.machine.EMULATOR_VERSION` (bumped whenever a
  semantic change could alter emitted traces).

The serialization format version is *not* part of the key: the trace
file itself records which schema it uses, and :func:`lookup` migrates
*in place* — an entry written in an older format (or under the legacy
``.trace.gz`` naming) still loads, is immediately rewritten at the
current schema, counted under ``trace_cache.migrated``, and returned
as a **hit** (no re-emulation).  A migration whose rewrite fails still
returns the loaded run but counts under ``trace_cache.corrupt`` so the
stale entry is visible.  ``trace_cache.corrupt`` otherwise stays
reserved for genuinely damaged entries.

The key is the SHA-256 of that tuple; entries live as ``<key>.trace``
files (the exact :func:`save_run` byte format, so a cache entry is also
a normal trace file) in

* ``$REPRO_TRACE_CACHE_DIR`` if set, else
* ``~/.cache/repro-traces``.

``REPRO_TRACE_CACHE=0`` disables the cache entirely.  A corrupted or
truncated entry (including a checksum mismatch detected on mmap load)
is moved into the cache's ``.corrupt/`` quarantine sidecar, counted
under ``trace_cache.quarantined``, and treated as a miss — the caller
re-emulates and the following store heals the cache, while the damaged
bytes stay inspectable.  Writes go through a temporary file and an
atomic rename so concurrent experiment workers never observe partial
entries.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from pathlib import Path

from ..obs.metrics import get_registry
from ..resilience.quarantine import quarantine_file, quarantined_entries
from .machine import EMULATOR_VERSION
from .serialize import FORMAT_VERSION, load_run, save_run

_ENV_DIR = "REPRO_TRACE_CACHE_DIR"
_ENV_SWITCH = "REPRO_TRACE_CACHE"
_SUFFIX = ".trace"
#: Entry naming used while the cache stored gzip-JSON (schema v2)
#: traces; such files are migrated (deleted + miss) on lookup.
_LEGACY_SUFFIX = ".trace.gz"

#: Back-off delays (seconds) between retries of transient cache I/O
#: failures.  Short: the cache is best-effort and the fallback — a
#: re-emulation — is always correct.
_RETRY_DELAYS = (0.05, 0.2)


def _count(result):
    """Tally one cache operation in the metrics registry."""
    get_registry().counter(
        "trace_cache.operations",
        "trace-cache lookups/stores by result").inc(1, result=result)


def _count_corrupt():
    """Tally one evicted corrupt/truncated entry (e.g. a killed worker's
    partial write) — distinct from transient I/O errors."""
    get_registry().counter(
        "trace_cache.corrupt",
        "corrupt or truncated cache entries evicted on lookup").inc(1)


def _count_migrated():
    """Tally one old-format entry rewritten at the current schema — a
    healthy file in an outdated format, *not* corruption."""
    get_registry().counter(
        "trace_cache.migrated",
        "old-format cache entries migrated in place").inc(1)


def _count_quarantined():
    """Tally one damaged entry moved to the ``.corrupt/`` sidecar."""
    get_registry().counter(
        "trace_cache.quarantined",
        "damaged cache entries moved to quarantine").inc(1)


def _quarantine(path):
    """Move a damaged entry out of the lookup path (never raises)."""
    quarantine_file(path, kind="trace_cache", reason="corrupt")
    _count_quarantined()


def cache_enabled():
    """False when the user set ``REPRO_TRACE_CACHE=0`` (or empty)."""
    value = os.environ.get(_ENV_SWITCH)
    if value is None:
        return True
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def cache_dir():
    """The cache directory (not created until the first store)."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-traces"


def trace_key(name, ptx, seed, scale):
    """The content hash identifying one emulation's trace.

    ``ptx`` must be the *printed* module text (the parser/printer
    roundtrip is canonicalizing, so cosmetic source differences hash
    identically while any semantic edit changes the key).
    """
    h = hashlib.sha256()
    for part in (
        "repro-trace",
        "emulator=%d" % EMULATOR_VERSION,
        "name=%s" % name,
        "seed=%r" % (seed,),
        "scale=%r" % (scale,),
    ):
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    h.update(ptx.encode("utf-8"))
    return h.hexdigest()


def entry_path(key):
    return cache_dir() / (key + _SUFFIX)


def _legacy_entry_path(key):
    return cache_dir() / (key + _LEGACY_SUFFIX)


def _migrate(key, run, old_path):
    """Rewrite an outdated-but-healthy entry at the current schema.

    The loaded run is returned to the caller either way (it *is* the
    requested trace); a failed rewrite counts under
    ``trace_cache.corrupt`` so the stale file is visible in metrics.
    """
    stored = store(key, run)
    if stored is None:
        _count_corrupt()
    elif Path(old_path) != Path(stored):
        # legacy-named entry replaced by a fresh <key>.trace
        try:
            Path(old_path).unlink()
        except OSError:
            pass
    _count_migrated()
    return run


def lookup(key):
    """Load the cached :class:`LoadedRun` for ``key``, or ``None``.

    A cache problem is never fatal: transient I/O errors (``OSError``,
    truncated reads of either format, ``BufferError`` from a dying
    mmap) are retried once after a short delay, then treated as a miss;
    corrupt entries (persistently truncated streams, bad JSON, column
    checksum mismatches, unparsable PTX) are quarantined so the next
    store can heal the cache while the evidence survives.  Entries in
    an outdated serialization format are healthy files: they are
    migrated in place and returned as hits.
    """
    if not cache_enabled():
        return None
    path = entry_path(key)
    legacy = _legacy_entry_path(key)
    for delay in (_RETRY_DELAYS[0], None):
        target = path
        try:
            if not path.is_file():
                if legacy.is_file():
                    target = legacy
                else:
                    _count("miss")
                    return None
            run = load_run(target)
            if run.format_version != FORMAT_VERSION or target is legacy:
                run = _migrate(key, run, target)
            _count("hit")
            return run
        except (OSError, EOFError, BufferError) as exc:
            # possibly transient (NFS hiccup, read racing a writer, a
            # remapped page under an mmap view): retry once before
            # deciding
            if delay is not None:
                time.sleep(delay)
                continue
            if not isinstance(exc, OSError):
                # stores are atomic (tempfile + rename), so a short
                # stream that survives the retry is real corruption
                _quarantine(target)
                _count_corrupt()
            _count("error")
            return None
        except Exception:
            # structurally corrupt: quarantine so a later store heals
            # the entry and the damaged bytes stay inspectable
            _quarantine(target)
            _count_corrupt()
            _count("error")
            return None
    return None


def store(key, run):
    """Serialize ``run`` into the cache under ``key`` (atomic).

    Returns the entry path, or ``None`` when the cache is disabled or
    the directory is unwritable (caching is best-effort; emulation
    results are never lost to a cache failure).
    """
    if not cache_enabled():
        return None
    path = entry_path(key)
    for delay in _RETRY_DELAYS + (None,):
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-" + key[:16] + "-", suffix=_SUFFIX,
                dir=str(path.parent))
            os.close(fd)
            try:
                save_run(run, tmp)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
        except OSError:
            if delay is not None:
                time.sleep(delay)
                continue
            _count("store_error")
            return None
        _count("store")
        return path
    return None


def clear():
    """Delete every cache entry (quarantined ones included); returns
    the number removed."""
    from ..resilience.quarantine import clear_quarantine

    directory = cache_dir()
    removed = 0
    if directory.is_dir():
        for pattern in ("*" + _SUFFIX, "*" + _LEGACY_SUFFIX):
            for entry in directory.glob(pattern):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        removed += clear_quarantine(directory)
    return removed


def quarantine_stats():
    """``(entry_count, total_bytes)`` for the quarantine sidecar."""
    count = 0
    total = 0
    for entry in quarantined_entries(cache_dir()):
        try:
            total += entry.stat().st_size
            count += 1
        except OSError:
            pass
    return count, total


def stats():
    """``(entry_count, total_bytes)`` for the current cache directory."""
    directory = cache_dir()
    count = 0
    total = 0
    if directory.is_dir():
        for pattern in ("*" + _SUFFIX, "*" + _LEGACY_SUFFIX):
            for entry in directory.glob(pattern):
                try:
                    total += entry.stat().st_size
                    count += 1
                except OSError:
                    pass
    return count, total
