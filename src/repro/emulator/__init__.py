"""Functional SIMT emulator: executes PTX-subset kernels, produces traces.

The emulator plays the role of "running the application": it executes every
thread of a kernel launch functionally (verified against numpy/networkx
references in the tests) and records warp-level traces with per-lane memory
addresses.  Those traces feed the timing simulator (:mod:`repro.sim`) and
the trace-level locality analyses (:mod:`repro.profiling`).
"""

from .grid import FULL_MASK, WARP_SIZE, Dim3, LaunchConfig, as_dim3, make_launch
from .machine import (
    DEFAULT_ENGINE,
    DEFAULT_MAX_WARP_INSTS,
    EMULATOR_VERSION,
    BarrierDeadlockError,
    EmulationError,
    Emulator,
    MemoryFaultError,
    WatchdogError,
)
from .memory import (
    ALLOC_ALIGN,
    GLOBAL_BASE,
    Allocation,
    MemoryError_,
    MemoryImage,
    SharedMemory,
    np_dtype_for,
)
from .columnar import (
    ColumnarLaunchTrace,
    ColumnarWarpTrace,
    to_columnar,
    to_records,
)
from .serialize import LoadedRun, load_run, save_run
from .trace import ApplicationTrace, KernelLaunchTrace, TraceOp, WarpTrace
from . import trace_cache

__all__ = [
    "FULL_MASK",
    "WARP_SIZE",
    "Dim3",
    "LaunchConfig",
    "as_dim3",
    "make_launch",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_WARP_INSTS",
    "EMULATOR_VERSION",
    "BarrierDeadlockError",
    "EmulationError",
    "Emulator",
    "MemoryFaultError",
    "WatchdogError",
    "trace_cache",
    "ALLOC_ALIGN",
    "GLOBAL_BASE",
    "Allocation",
    "MemoryError_",
    "MemoryImage",
    "SharedMemory",
    "np_dtype_for",
    "LoadedRun",
    "load_run",
    "save_run",
    "ApplicationTrace",
    "ColumnarLaunchTrace",
    "ColumnarWarpTrace",
    "KernelLaunchTrace",
    "TraceOp",
    "WarpTrace",
    "to_columnar",
    "to_records",
]
