"""Functional SIMT emulator for the PTX subset.

Executes a kernel launch the way an SM would, minus timing:

* threads are grouped into warps of 32 that execute in lockstep,
* divergent branches are handled with the classic SIMT reconvergence
  stack, reconverging at the immediate post-dominator of the branch
  (the scheme GPGPU-Sim models),
* ``bar.sync`` synchronizes the warps of a CTA,
* every executed warp instruction is appended to a :class:`WarpTrace`,
  with per-lane effective addresses for memory operations.

The emulator is *functionally correct* — workload tests compare its memory
state against numpy/networkx reference implementations — and its traces
drive the timing simulator in :mod:`repro.sim`.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List

from .._bits import lanes_of as _lanes_of
from ..obs import tracing
from ..obs.metrics import get_registry
from ..ptx.cfg import CFG
from ..ptx.isa import Imm, Reg, Space, SReg
from ..resilience.guards import check_memory_budget
from .columnar import ColumnarLaunchTrace
from .grid import FULL_MASK, WARP_SIZE, LaunchConfig, as_dim3
from .memory import MemoryError_, SharedMemory

#: Bumped whenever emulation semantics change in a way that can alter
#: produced traces; part of the trace-cache key (see
#: :mod:`repro.emulator.trace_cache`).
EMULATOR_VERSION = 3

#: Engine used when ``Emulator(engine=None)``: the NumPy
#: structure-of-arrays fast path by default, overridable via the
#: ``REPRO_ENGINE`` environment variable (or its older spelling
#: ``REPRO_EMULATOR_ENGINE``).
DEFAULT_ENGINE = (os.environ.get("REPRO_ENGINE")
                  or os.environ.get("REPRO_EMULATOR_ENGINE", "vectorized"))

#: Per-launch warp-instruction watchdog budget used when neither the
#: ``Emulator(max_warp_insts=...)`` argument nor the
#: ``REPRO_EMULATOR_MAX_WARP_INSTS`` environment variable is set.
DEFAULT_MAX_WARP_INSTS = 20_000_000


def _default_max_warp_insts():
    env = os.environ.get("REPRO_EMULATOR_MAX_WARP_INSTS")
    if env:
        try:
            return int(env)
        except ValueError:
            raise ValueError(
                "REPRO_EMULATOR_MAX_WARP_INSTS must be an integer, got %r"
                % (env,)) from None
    return DEFAULT_MAX_WARP_INSTS


class EmulationError(Exception):
    """Raised on runaway kernels, barrier deadlocks or bad operands."""


class MemoryFaultError(EmulationError):
    """An out-of-bounds or misaligned access, with full launch context.

    Carries structured fields (``kernel``, ``pc``, ``cta``, ``warp``,
    ``lane``, ``address``, ``space``) so failure manifests and tests can
    report *where* a kernel faulted without parsing the message.
    """

    def __init__(self, detail, *, kernel=None, pc=None, cta=None,
                 warp=None, lane=None, address=None, space=None):
        self.kernel = kernel
        self.pc = pc
        self.cta = cta
        self.warp = warp
        self.lane = lane
        self.address = address
        self.space = space
        self.detail = detail
        where = []
        if kernel is not None:
            where.append("kernel %r" % kernel)
        if pc is not None:
            where.append("pc=%#x" % pc)
        if cta is not None:
            where.append("cta %d" % cta)
        if warp is not None:
            where.append("warp %d" % warp)
        if lane is not None:
            where.append("lane %d" % lane)
        if address is not None:
            where.append("addr %#x" % address)
        if space is not None:
            where.append("space %s" % space)
        super().__init__("memory fault (%s): %s" % (", ".join(where), detail))


class WatchdogError(EmulationError):
    """The per-launch warp-instruction budget was exhausted (runaway or
    non-terminating kernel)."""

    def __init__(self, budget, kernel=None, pc=None, cta=None, warp=None):
        self.budget = budget
        self.kernel = kernel
        self.pc = pc
        self.cta = cta
        self.warp = warp
        super().__init__(
            "instruction budget exceeded (%d) in kernel %r at pc=%#x "
            "(cta %s, warp %s); raise REPRO_EMULATOR_MAX_WARP_INSTS or "
            "Emulator(max_warp_insts=...) if the kernel is legitimately "
            "long-running" % (budget, kernel, pc, cta, warp))


class BarrierDeadlockError(EmulationError):
    """Every live warp of a CTA is stuck, but not all at a barrier.

    ``warp_status`` lists one dict per unfinished warp with its
    ``warp`` id, ``at_barrier`` flag, and current ``pc`` (None once past
    the last instruction), so the report shows exactly which warps never
    arrived.
    """

    def __init__(self, kernel, cta, warp_status):
        self.kernel = kernel
        self.cta = cta
        self.warp_status = warp_status
        lines = ["barrier deadlock in kernel %r (CTA %d):" % (kernel, cta)]
        for st in warp_status:
            pc = st.get("pc")
            lines.append("  warp %d: %s, pc=%s" % (
                st["warp"],
                "waiting at barrier" if st["at_barrier"] else "stuck",
                "%#x" % pc if pc is not None else "<end>"))
        super().__init__("\n".join(lines))


def _fault_lane(addresses, fault_addr, width, count):
    """Best-effort lane attribution for a memory fault: the lane whose
    effective address range covers the faulting address."""
    if fault_addr is None:
        return addresses[-1][0] if addresses else None
    span = max(width * max(count, 1), 1)
    for lane, addr in addresses:
        if addr <= fault_addr < addr + span:
            return lane
    return addresses[-1][0] if addresses else None


#: Sentinel "reconverge never" PC index (divergence that only rejoins at exit).
_NEVER = -0xDEAD


def _wrap(value, bits):
    return value & ((1 << bits) - 1)


def _sx(value, bits):
    """Interpret an unsigned bit pattern as a signed integer."""
    value &= (1 << bits) - 1
    if value >> (bits - 1):
        return value - (1 << bits)
    return value


def _trunc_div(a, b):
    """C-style truncating integer division (PTX ``div`` semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_rem(a, b):
    return a - b * _trunc_div(a, b)


class _WarpState:
    """Execution state of one warp: register files + SIMT stack."""

    __slots__ = ("warp_id", "regs", "sregs", "stack", "done_mask",
                 "at_barrier", "trace", "init_mask")

    def __init__(self, warp_id, init_mask, sregs, trace):
        self.warp_id = warp_id
        self.regs: List[Dict[str, object]] = [dict() for _ in range(WARP_SIZE)]
        self.sregs = sregs                     # per-lane special-register dicts
        self.stack = [[_NEVER, 0, init_mask]]  # [reconv_idx, pc_idx, mask]
        self.done_mask = FULL_MASK & ~init_mask
        self.at_barrier = False
        self.trace = trace
        self.init_mask = init_mask

    @property
    def finished(self):
        return not self.stack


class _ScalarEngine:
    """The reference per-lane interpreter (the differential-test oracle).

    Executes every instruction with Python loops over the live lanes of
    the warp — simple, obviously correct, and slow.  The vectorized
    engine (:mod:`repro.emulator.vector`) must produce byte-identical
    serialized traces; ``tests/emulator/test_engine_differential.py``
    enforces that over the whole workload suite.
    """

    name = "scalar"

    def describe(self):
        """Engine identity for manifests and span attributes (never for
        metrics — snapshots must be engine-invariant)."""
        return {"engine": self.name, "strategy": "per-lane interpreter"}

    def make_warp(self, warp_id, init_mask, sregs, trace):
        return _WarpState(warp_id, init_mask, sregs, trace)

    def pred_mask(self, warp, preg, negated, live):
        pmask = 0
        for lane in _lanes_of(live):
            val = bool(warp.regs[lane].get(preg.name, False))
            if val != negated:
                pmask |= 1 << lane
        return pmask

    def exec_alu(self, emu, warp, inst, exec_mask):
        emu._exec_alu(warp, inst, exec_mask)

    def exec_memory(self, emu, warp, inst, exec_mask, shared, params):
        emu._exec_memory(warp, inst, exec_mask, shared, params)


def _make_engine(name):
    """Instantiate an execution engine by name."""
    if name == "scalar":
        return _ScalarEngine()
    if name == "vectorized":
        from .vector import VectorEngine
        return VectorEngine()
    if name == "compiled":
        from .compiled import CompiledEngine
        return CompiledEngine()
    raise ValueError("unknown emulator engine %r "
                     "(choices: vectorized, scalar, compiled)" % (name,))


class Emulator:
    """Functionally executes kernel launches against a :class:`MemoryImage`.

    ``engine`` selects the warp-execution strategy: ``"vectorized"``
    (default) runs ALU/compare/select/address work for all active lanes
    with masked NumPy operations over structure-of-arrays register
    files; ``"scalar"`` is the per-lane reference interpreter.  Both
    produce identical traces and memory state.
    """

    def __init__(self, memory, max_warp_insts=None, record_trace=True,
                 engine=None):
        self.memory = memory
        self.max_warp_insts = (max_warp_insts if max_warp_insts is not None
                               else _default_max_warp_insts())
        self.record_trace = record_trace
        self.engine = engine if engine is not None else DEFAULT_ENGINE
        self._engine = _make_engine(self.engine)
        self._executed = 0

    # ------------------------------------------------------------------ launch

    def launch(self, kernel, grid, block, params):
        """Run one kernel launch to completion; returns its trace.

        Parameters
        ----------
        kernel:
            A finalized :class:`repro.ptx.module.Kernel`.
        grid, block:
            Launch dimensions (int, tuple or :class:`Dim3`).
        params:
            ``{parameter_name: value}`` — pointers are integer device
            addresses from :meth:`MemoryImage.alloc`.
        """
        config = LaunchConfig(grid=as_dim3(grid), block=as_dim3(block))
        missing = [p.name for p in kernel.params if p.name not in params]
        if missing:
            raise EmulationError("launch of %r missing params: %s"
                                 % (kernel.name, ", ".join(missing)))
        cfg = CFG(kernel)
        launch_trace = ColumnarLaunchTrace(
            kernel_name=kernel.name, config=config,
            instructions=kernel.instructions,
            shared_size=kernel.shared_size)
        self._executed = 0
        with tracing.span("emulate.launch", kernel=kernel.name,
                          engine=self.engine, ctas=config.num_ctas,
                          threads_per_cta=config.threads_per_cta) as sp:
            for cta_linear in range(config.num_ctas):
                check_memory_budget("emulation of kernel %s" % kernel.name)
                self._run_cta(kernel, cfg, config, cta_linear, params,
                              launch_trace)
            sp.set(warp_insts=self._executed)
        launch_trace.seal()
        # engine-invariant launch telemetry: counts come from the shared
        # driver, so scalar and vectorized runs publish identical series
        registry = get_registry()
        registry.counter(
            "emulator.launches",
            "kernel launches executed by the emulator").inc(
            1, kernel=kernel.name)
        registry.counter(
            "emulator.ctas",
            "CTAs executed by the emulator").inc(
            config.num_ctas, kernel=kernel.name)
        registry.counter(
            "emulator.warp_insts",
            "warp instructions executed by the emulator").inc(
            self._executed, kernel=kernel.name)
        return launch_trace

    # ------------------------------------------------------------------- CTA

    def _run_cta(self, kernel, cfg, config, cta_linear, params, launch_trace):
        shared = SharedMemory(kernel.shared_size)
        nthreads = config.threads_per_cta
        ctaid = config.cta_coords(cta_linear)
        warps = []
        for w in range(config.warps_per_cta):
            lanes = range(w * WARP_SIZE, min((w + 1) * WARP_SIZE, nthreads))
            mask = 0
            sregs = [None] * WARP_SIZE
            for lane_idx, linear_tid in enumerate(lanes):
                mask |= 1 << lane_idx
                tid = config.thread_coords(linear_tid)
                sregs[lane_idx] = self._make_sregs(tid, ctaid, config,
                                                   lane_idx, w)
            trace = launch_trace.new_warp(cta_linear, w)
            if self.record_trace:
                launch_trace.warps.append(trace)
            warps.append(self._engine.make_warp(w, mask, sregs, trace))

        # run warps round-robin, releasing barriers when every live warp
        # has arrived
        while True:
            alive = [w for w in warps if not w.finished]
            if not alive:
                break
            executed_before = self._executed
            for warp in alive:
                if warp.at_barrier:
                    continue
                self._run_warp(kernel, cfg, warp, shared, params)
            waiting = [w for w in warps if not w.finished]
            if waiting and all(w.at_barrier for w in waiting):
                for w in waiting:
                    w.at_barrier = False
                continue
            # a full round that executed nothing and released no barrier
            # can never make progress: some warp is stuck short of the
            # barrier its siblings wait at
            if self._executed == executed_before and waiting:
                insts = kernel.instructions
                status = []
                for w in waiting:
                    idx = w.stack[-1][1] if w.stack else None
                    pc = (insts[idx].pc
                          if idx is not None and 0 <= idx < len(insts)
                          else None)
                    status.append({"warp": w.warp_id,
                                   "at_barrier": w.at_barrier,
                                   "pc": pc})
                raise BarrierDeadlockError(kernel.name, cta_linear, status)

    @staticmethod
    def _make_sregs(tid, ctaid, config, laneid, warpid):
        block, grid = config.block, config.grid
        return {
            "%tid.x": tid[0], "%tid.y": tid[1], "%tid.z": tid[2],
            "%ntid.x": block.x, "%ntid.y": block.y, "%ntid.z": block.z,
            "%ctaid.x": ctaid[0], "%ctaid.y": ctaid[1], "%ctaid.z": ctaid[2],
            "%nctaid.x": grid.x, "%nctaid.y": grid.y, "%nctaid.z": grid.z,
            "%laneid": laneid, "%warpid": warpid,
            "%smid": 0, "%gridid": 0,
        }

    # ------------------------------------------------------------------- warp

    def _run_warp(self, kernel, cfg, warp, shared, params):
        """Execute ``warp`` until it finishes or consumes a barrier."""
        run_warp = getattr(self._engine, "run_warp", None)
        if run_warp is not None:
            # engines with their own dispatch loop (the compiled engine)
            # take over the whole warp; semantics stay pinned by the
            # engine differential tests
            return run_warp(self, kernel, cfg, warp, shared, params)
        insts = kernel.instructions
        stack = warp.stack
        while stack:
            rpc, pc, mask = stack[-1]
            live = mask & ~warp.done_mask
            if live == 0 or pc == rpc:
                stack.pop()
                continue
            self._executed += 1
            if self._executed > self.max_warp_insts:
                raise WatchdogError(
                    self.max_warp_insts, kernel=kernel.name, pc=insts[pc].pc,
                    cta=warp.trace.cta_id, warp=warp.warp_id)
            inst = insts[pc]

            exec_mask = live
            if inst.pred is not None:
                preg, negated = inst.pred
                exec_mask = self._engine.pred_mask(warp, preg, negated, live)

            if inst.is_branch:
                self._trace(warp, inst, exec_mask)
                taken = exec_mask
                not_taken = live & ~exec_mask
                target = kernel.target_index(inst)
                entry = stack[-1]
                if taken == 0:
                    entry[1] = pc + 1
                elif not_taken == 0:
                    entry[1] = target
                else:
                    reconv = cfg.reconvergence_index(pc)
                    rpc_idx = reconv if reconv is not None else _NEVER
                    entry[1] = rpc_idx
                    # push fall-through below taken so one path runs first;
                    # order does not affect functional results
                    stack.append([rpc_idx, pc + 1, not_taken])
                    stack.append([rpc_idx, target, taken])
                continue

            if inst.is_exit:
                self._trace(warp, inst, exec_mask)
                warp.done_mask |= exec_mask
                stack[-1][1] = pc + 1
                continue

            if inst.is_barrier:
                self._trace(warp, inst, exec_mask)
                stack[-1][1] = pc + 1
                warp.at_barrier = True
                return

            if inst.opcode == "membar":
                self._trace(warp, inst, exec_mask)
                stack[-1][1] = pc + 1
                continue

            if inst.is_memory:
                try:
                    self._engine.exec_memory(self, warp, inst, exec_mask,
                                             shared, params)
                except MemoryError_ as exc:
                    raise MemoryFaultError(
                        str(exc), kernel=kernel.name, pc=inst.pc,
                        cta=warp.trace.cta_id, warp=warp.warp_id,
                        lane=exc.lane, address=exc.addr,
                        space=(inst.space.name.lower()
                               if inst.space is not None else None)) from exc
            else:
                self._engine.exec_alu(self, warp, inst, exec_mask)
            stack[-1][1] = pc + 1

    def _trace(self, warp, inst, exec_mask, addresses=None, values=None):
        if self.record_trace:
            warp.trace.append(inst, exec_mask, addresses, values)

    # ------------------------------------------------------------------ memory

    def _address(self, warp, lane, memref):
        base = memref.base
        if isinstance(base, Reg):
            value = warp.regs[lane].get(base.name, 0)
        elif isinstance(base, Imm):
            value = base.value
        elif isinstance(base, SReg):
            value = warp.sregs[lane][base.name]
        else:
            raise EmulationError("cannot address through %r" % (base,))
        return int(value) + memref.offset

    def _exec_memory(self, warp, inst, exec_mask, shared, params):
        space = inst.space
        memref = inst.memref
        dtype = inst.dtype

        if space is Space.PARAM:
            # parameter read: value comes from the launch parameters
            name = memref.base.name
            value = params[name]
            for lane in _lanes_of(exec_mask):
                warp.regs[lane][inst.dests[0].name] = value
            self._trace(warp, inst, exec_mask)
            return

        addresses = []
        values = []
        width = dtype.nbytes
        try:
            self._exec_memory_lanes(warp, inst, exec_mask, shared, addresses,
                                    width, values)
        except MemoryError_ as exc:
            # the address was appended just before the faulting access
            if exc.lane is None and addresses:
                exc.lane = addresses[-1][0]
            raise
        self._trace(warp, inst, exec_mask, tuple(addresses),
                    tuple(values) if inst.is_store else None)

    def _exec_memory_lanes(self, warp, inst, exec_mask, shared, addresses,
                           width, values):
        space = inst.space
        memref = inst.memref
        dtype = inst.dtype
        if inst.is_load:
            dest_names = [d.name for d in inst.dests]
            target = shared if space is Space.SHARED else self.memory
            for lane in _lanes_of(exec_mask):
                addr = self._address(warp, lane, memref)
                addresses.append((lane, addr))
                # vector loads move `vector` consecutive elements per lane
                for k, name in enumerate(dest_names):
                    warp.regs[lane][name] = target.load(addr + k * width,
                                                        dtype)
        elif inst.is_store:
            value_ops = inst.srcs[1:]
            target = shared if space is Space.SHARED else self.memory
            for lane in _lanes_of(exec_mask):
                addr = self._address(warp, lane, memref)
                addresses.append((lane, addr))
                for k, value_op in enumerate(value_ops):
                    value = _coerce_store(
                        self._value(warp, lane, value_op), dtype)
                    values.append(value)
                    target.store(addr + k * width, dtype, value)
        elif inst.is_atomic:
            # ``red`` is an atomic with no destination: the old value is
            # computed for the read-modify-write but never written back
            dest = inst.dests[0].name if inst.dests else None
            target = shared if space is Space.SHARED else self.memory
            for lane in _lanes_of(exec_mask):
                addr = self._address(warp, lane, memref)
                addresses.append((lane, addr))
                old = target.load(addr, dtype)
                operand = self._value(warp, lane, inst.srcs[1])
                operand2 = (self._value(warp, lane, inst.srcs[2])
                            if len(inst.srcs) > 2 else None)
                if dtype.is_signed:
                    # register values are unsigned bit patterns; signed
                    # atomics (e.g. atom.min.s32) must compare as signed
                    operand = _sx(int(operand), dtype.bits)
                    if operand2 is not None:
                        operand2 = _sx(int(operand2), dtype.bits)
                new = _atom_result(inst.atom_op, old, operand, operand2,
                                   dtype)
                target.store(addr, dtype, _coerce_store(new, dtype))
                if dest is not None:
                    warp.regs[lane][dest] = old

    # -------------------------------------------------------------------- ALU

    def _value(self, warp, lane, op):
        if isinstance(op, Imm):
            return op.value
        if isinstance(op, Reg):
            return warp.regs[lane].get(op.name, 0)
        if isinstance(op, SReg):
            return warp.sregs[lane][op.name]
        raise EmulationError("unsupported source operand %r" % (op,))

    def _exec_alu(self, warp, inst, exec_mask):
        self._trace(warp, inst, exec_mask)
        if not inst.dests:
            return
        dest = inst.dests[0].name
        op = inst.opcode
        dtype = inst.dtype
        for lane in _lanes_of(exec_mask):
            srcs = [self._value(warp, lane, s) for s in inst.srcs]
            warp.regs[lane][dest] = _evaluate(inst, op, dtype, srcs)


# ---------------------------------------------------------------------------
# scalar semantics
# ---------------------------------------------------------------------------


def _coerce_store(value, dtype):
    if dtype.is_float:
        return float(value)
    pattern = _wrap(int(value), dtype.bits)
    if dtype.is_signed:
        # registers hold unsigned bit patterns; reinterpret for packing
        return _sx(pattern, dtype.bits)
    return pattern


def _atom_result(atom_op, old, operand, operand2, dtype):
    if atom_op == "add":
        return old + operand
    if atom_op == "min":
        return min(old, operand)
    if atom_op == "max":
        return max(old, operand)
    if atom_op == "exch":
        return operand
    if atom_op == "and":
        return int(old) & int(operand)
    if atom_op == "or":
        return int(old) | int(operand)
    if atom_op == "xor":
        return int(old) ^ int(operand)
    if atom_op == "inc":
        return 0 if old >= operand else old + 1
    if atom_op == "dec":
        return operand if (old == 0 or old > operand) else old - 1
    if atom_op == "cas":
        return operand2 if old == operand else old
    raise EmulationError("unsupported atomic %r" % atom_op)


def _as_signed_pair(a, b, dtype):
    bits = dtype.bits
    return _sx(int(a), bits), _sx(int(b), bits)


def _compare(cmp_op, a, b, dtype):
    if dtype.is_float:
        fa, fb = float(a), float(b)
    elif cmp_op.endswith("u") and cmp_op not in ("eq", "ne"):
        fa, fb = _wrap(int(a), dtype.bits), _wrap(int(b), dtype.bits)
        cmp_op = cmp_op[:-1]
    elif dtype.is_signed:
        fa, fb = _as_signed_pair(a, b, dtype)
    else:
        fa, fb = _wrap(int(a), dtype.bits), _wrap(int(b), dtype.bits)
    if cmp_op == "eq":
        return fa == fb
    if cmp_op == "ne":
        return fa != fb
    if cmp_op == "lt":
        return fa < fb
    if cmp_op == "le":
        return fa <= fb
    if cmp_op == "gt":
        return fa > fb
    if cmp_op == "ge":
        return fa >= fb
    raise EmulationError("unsupported comparison %r" % cmp_op)


def _evaluate(inst, op, dtype, srcs):
    """Compute the result value of one non-memory instruction for one lane."""
    if op == "mov" or op == "cvta":
        value = srcs[0]
        if dtype is not None and dtype.is_float:
            return float(value)
        if dtype is not None and dtype.is_integer:
            return _wrap(int(value), dtype.bits)
        return value

    if op == "cvt":
        return _convert(inst, dtype, srcs[0])

    if op == "setp":
        return _compare(inst.cmp_op, srcs[0], srcs[1], dtype)

    if op == "selp":
        return srcs[0] if bool(srcs[2]) else srcs[1]

    if dtype is not None and dtype.is_float:
        return _evaluate_float(op, srcs)

    return _evaluate_int(inst, op, dtype, srcs)


def _convert(inst, dest_dtype, value):
    # source type is the second type suffix the parser stashed in modifiers
    src_dtype = None
    for mod in inst.modifiers:
        try:
            from ..ptx.isa import dtype_from_name
            src_dtype = dtype_from_name(mod)
            break
        except Exception:
            continue
    if src_dtype is not None and src_dtype.is_integer and src_dtype.is_signed:
        value = _sx(int(value), src_dtype.bits)
    elif src_dtype is not None and src_dtype.is_integer:
        value = _wrap(int(value), src_dtype.bits)
    if dest_dtype.is_float:
        return float(value)
    return _wrap(int(value), dest_dtype.bits)


def _evaluate_float(op, srcs):
    a = float(srcs[0]) if srcs else 0.0
    b = float(srcs[1]) if len(srcs) > 1 else 0.0
    c = float(srcs[2]) if len(srcs) > 2 else 0.0
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op in ("mad", "fma"):
        return a * b + c
    if op == "div":
        return a / b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    if op == "abs":
        return abs(a)
    if op == "neg":
        return -a
    if op == "rcp":
        return 1.0 / a
    if op == "sqrt":
        return math.sqrt(a)
    if op == "rsqrt":
        return 1.0 / math.sqrt(a)
    if op == "sin":
        return math.sin(a)
    if op == "cos":
        return math.cos(a)
    if op == "ex2":
        return 2.0 ** a
    if op == "lg2":
        return math.log2(a)
    raise EmulationError("unsupported float op %r" % op)


def _evaluate_int(inst, op, dtype, srcs):
    bits = dtype.bits if dtype is not None else 32
    signed = dtype.is_signed if dtype is not None else False
    ints = [int(v) for v in srcs]

    if op == "add":
        return _wrap(ints[0] + ints[1], bits)
    if op == "sub":
        return _wrap(ints[0] - ints[1], bits)
    if op == "mul":
        if inst.mul_mode == "wide":
            a, b = (_as_signed_pair(ints[0], ints[1], dtype)
                    if signed else (_wrap(ints[0], bits), _wrap(ints[1], bits)))
            return _wrap(a * b, bits * 2)
        if inst.mul_mode == "hi":
            a, b = (_as_signed_pair(ints[0], ints[1], dtype)
                    if signed else (_wrap(ints[0], bits), _wrap(ints[1], bits)))
            return _wrap((a * b) >> bits, bits)
        return _wrap(ints[0] * ints[1], bits)
    if op == "mad":
        if inst.mul_mode == "wide":
            a, b = (_as_signed_pair(ints[0], ints[1], dtype)
                    if signed else (_wrap(ints[0], bits), _wrap(ints[1], bits)))
            return _wrap(a * b + ints[2], bits * 2)
        return _wrap(ints[0] * ints[1] + ints[2], bits)
    if op == "div":
        a, b = (_as_signed_pair(ints[0], ints[1], dtype)
                if signed else (_wrap(ints[0], bits), _wrap(ints[1], bits)))
        return _wrap(_trunc_div(a, b), bits)
    if op == "rem":
        a, b = (_as_signed_pair(ints[0], ints[1], dtype)
                if signed else (_wrap(ints[0], bits), _wrap(ints[1], bits)))
        return _wrap(_trunc_rem(a, b), bits)
    if op == "min":
        a, b = (_as_signed_pair(ints[0], ints[1], dtype)
                if signed else (_wrap(ints[0], bits), _wrap(ints[1], bits)))
        return _wrap(min(a, b), bits)
    if op == "max":
        a, b = (_as_signed_pair(ints[0], ints[1], dtype)
                if signed else (_wrap(ints[0], bits), _wrap(ints[1], bits)))
        return _wrap(max(a, b), bits)
    if op == "abs":
        return _wrap(abs(_sx(ints[0], bits)), bits)
    if op == "neg":
        return _wrap(-ints[0], bits)
    if op == "and":
        return _wrap(ints[0] & ints[1], bits)
    if op == "or":
        return _wrap(ints[0] | ints[1], bits)
    if op == "xor":
        return _wrap(ints[0] ^ ints[1], bits)
    if op == "not":
        return _wrap(~ints[0], bits)
    if op == "shl":
        # PTX reads the shift amount as unsigned and clamps at the
        # register width; wrapping first keeps a negative register
        # value (a huge unsigned) from reaching Python's `<<`.
        shift = min(_wrap(ints[1], 64), bits)
        return _wrap(ints[0] << shift, bits)
    if op == "shr":
        shift = min(_wrap(ints[1], 64), bits)
        if signed:
            return _wrap(_sx(ints[0], bits) >> shift, bits)
        return _wrap(ints[0], bits) >> shift
    raise EmulationError("unsupported integer op %r" % op)
