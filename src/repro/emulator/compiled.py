"""Compiled warp engine: per-kernel generated Python hot paths.

``REPRO_ENGINE=compiled`` (or ``Emulator(engine="compiled")``) selects
this engine.  Instead of interpreting one instruction at a time, it
lazily *generates and compiles* straight-line Python for each basic
segment of the kernel — maximal runs of non-control instructions that
do not cross a SIMT reconvergence point — and drives those segments
with the same reconvergence-stack loop the scalar engine uses.

Why this is fast where the vectorized engine is not: on branchy,
data-dependent kernels (bfs, ccl, grm) warps run with a handful of
active lanes, so NumPy's per-instruction dispatch overhead dominates.
The generated code pays its costs *per segment* instead:

* register files are register-major (``{name: [v]*32}``), so dict
  lookups hoist out of the lane loop and per-lane access is a list
  index;
* one fused ``for l in lanes`` loop executes a whole run of ALU
  instructions with values carried in Python locals;
* memory instructions keep their own lane loop (preserving the scalar
  engine's instruction-major access order, which matters when lanes
  race) and go through the precompiled fast accessors of
  :mod:`repro.emulator.memory`;
* traces are appended in batches (:meth:`ColumnarWarpTrace.append_run`
  for address-less runs, :meth:`ColumnarWarpTrace.append_memory` per
  memory op) — identical columns to the other engines.

When Numba is importable (see :mod:`repro.emulator._njit`) selected
numeric helpers elsewhere in the pipeline are additionally
``njit``-compiled; this engine itself is pure Python + ``compile()``
and needs no optional dependency.

Semantics are pinned by ``tests/emulator/test_engine_differential.py``:
serialized traces must be byte-identical to the scalar oracle and
metrics-registry snapshots engine-invariant, including memory faults,
watchdog and barrier-deadlock behavior.
"""

from __future__ import annotations

import math
import struct

from .._bits import lanes_of as _lanes_of
from ..ptx.isa import Imm, MemRef, Reg, Space, SReg, dtype_from_name
from ..resilience.errors import CodegenError
from ._njit import HAVE_NUMBA
from .columnar import op_kind
from .grid import FULL_MASK, WARP_SIZE
from .machine import (
    _NEVER,
    EmulationError,
    MemoryFaultError,
    WatchdogError,
    _atom_result,
    _coerce_store,
    _trunc_div,
    _trunc_rem,
)
from .memory import MemoryError_

_U64_MASK = (1 << 64) - 1
_pack_d = struct.Struct("<d").pack

_CMP_PY = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
           "gt": ">", "ge": ">="}

#: Value-kind lattice element for codegen peepholes: ``(kind, mbits)``.
#: ``kind`` is "int" / "float" / "bool" / None (unknown); for "int",
#: ``mbits`` (when not None) guarantees the value lies in [0, 2**mbits).
_UNKNOWN = (None, None)


def _merge_kind(a, b):
    """Join two value kinds (e.g. across a predicated write)."""
    ka, ma = a
    kb, mb = b
    if ka != kb or ka is None:
        return _UNKNOWN
    if ma is None or mb is None:
        return (ka, None)
    return (ka, max(ma, mb))


def _static_write_kind(inst):
    """Upper bound on the value kind ``inst`` can write to its dests,
    assuming nothing about its inputs (flow-insensitive)."""
    op = inst.opcode
    dt = inst.dtype
    if inst.is_memory:
        if inst.space is Space.PARAM:
            return _UNKNOWN  # launch params arrive uncoerced
        if dt is None:
            return _UNKNOWN
        if dt.is_float:
            return ("float", None)
        if dt.is_signed:
            return ("int", None)  # signed unpack can yield negatives
        return ("int", dt.bits)
    if op == "setp":
        return ("bool", None)
    if op == "selp":
        return _UNKNOWN  # passes a source through raw
    if op in ("mov", "cvta") and (
            dt is None or not (dt.is_float or dt.is_integer)):
        return _UNKNOWN  # raw move
    if dt is not None and dt.is_float:
        return ("float", None)
    if dt is not None and dt.is_integer:
        bits = dt.bits
        if op in ("mul", "mad") and inst.mul_mode == "wide":
            bits = 2 * dt.bits
        return ("int", bits)
    return _UNKNOWN


def _infer_entry_kinds(insts, reg_names):
    """Whole-kernel ``reg -> (kind, mbits)`` invariant: at any point a
    register holds either its initial 0 or some write site's result,
    so the join of all static write kinds bounds every read."""
    kinds = {}
    for inst in insts:
        if not inst.dests or inst.is_store:
            continue
        k = _static_write_kind(inst)
        for d in inst.dests:
            if isinstance(d, Reg):
                prev = kinds.get(d.name)
                kinds[d.name] = k if prev is None else _merge_kind(prev, k)
    # the initial 0 is subsumed by every claim: it lies in any int
    # range, and behaves as 0.0 / False under all coerced uses
    return {name: kinds.get(name, ("int", 0)) for name in reg_names}


def _is_control(inst):
    return (inst.is_branch or inst.is_exit or inst.is_barrier
            or inst.opcode == "membar")


def _san(name):
    return name.lstrip("%").replace(".", "_")


class _CWarpState:
    """Register-major warp state (``regs[name][lane]``)."""

    __slots__ = ("warp_id", "regs", "sregs", "_raw_sregs", "stack",
                 "done_mask", "at_barrier", "trace", "init_mask")

    def __init__(self, warp_id, init_mask, sregs, trace):
        self.warp_id = warp_id
        self.regs = None    # filled on first run_warp (per-kernel names)
        self.sregs = None   # transposed lazily for the used keys only
        self._raw_sregs = sregs
        self.stack = [[_NEVER, 0, init_mask]]
        self.done_mask = FULL_MASK & ~init_mask
        self.at_barrier = False
        self.trace = trace
        self.init_mask = init_mask

    @property
    def finished(self):
        return not self.stack


class CompiledEngine:
    """Engine facade: generated segments + the scalar driver loop."""

    name = "compiled"

    def __init__(self):
        self._kernels = {}

    def describe(self):
        """Engine identity for manifests and span attributes (never for
        metrics — snapshots must be engine-invariant)."""
        return {"engine": self.name,
                "strategy": "per-kernel generated Python segments",
                "numba": HAVE_NUMBA}

    def make_warp(self, warp_id, init_mask, sregs, trace):
        return _CWarpState(warp_id, init_mask, sregs, trace)

    def pred_mask(self, warp, preg, negated, live):
        P = warp.regs.get(preg.name)
        pmask = 0
        if P is None:
            return live if negated else 0
        for lane in _lanes_of(live):
            if bool(P[lane]) != negated:
                pmask |= 1 << lane
        return pmask

    def _compiled_kernel(self, kernel, cfg):
        entry = self._kernels.get(id(kernel))
        if entry is not None and entry.kernel is kernel:
            return entry
        # Anything the segment analyzer raises here is an engine
        # infrastructure failure, not a property of the workload: the
        # scalar oracle would run the same kernel fine.  Typed as
        # CodegenError so the fallback chain can downgrade the engine.
        try:
            entry = _CompiledKernel(kernel, cfg)
        except Exception as exc:
            raise CodegenError(
                "kernel analysis failed: %s" % (exc,),
                kernel=kernel.name) from exc
        self._kernels[id(kernel)] = entry
        return entry

    def run_warp(self, emu, kernel, cfg, warp, shared, params):
        """Execute ``warp`` until it finishes or consumes a barrier —
        the compiled counterpart of ``Emulator._run_warp``."""
        ck = self._compiled_kernel(kernel, cfg)
        if warp.regs is None:
            warp.regs = {name: [0] * WARP_SIZE for name in ck.reg_names}
            raw = warp._raw_sregs
            warp.sregs = {
                k: [(s[k] if s is not None else 0) for s in raw]
                for k in ck.sreg_names}
        insts = ck.insts
        stack = warp.stack
        record = warp.trace if emu.record_trace else None
        budget = emu.max_warp_insts
        by_pc = ck.by_pc
        # executed-count bookkeeping stays in a local inside the hot
        # loop; the finally block keeps the emulator's view exact on
        # every exit path (barrier return, faults, watchdog)
        executed = emu._executed
        try:
            while stack:
                entry = stack[-1]
                rpc = entry[0]
                pc = entry[1]
                live = entry[2] & ~warp.done_mask
                if live == 0 or pc == rpc:
                    stack.pop()
                    continue
                seg = by_pc[pc]
                if seg is None:
                    try:
                        seg = ck.segment(pc, emu)
                    except CodegenError:
                        raise
                    except Exception as exc:
                        raise CodegenError(
                            "segment compilation failed at pc %#x: %s"
                            % (insts[pc].pc, exc),
                            kernel=kernel.name) from exc
                if seg is not False:
                    fn, n = seg
                    if executed + n > budget:
                        left = budget - executed
                        if left <= 0:
                            executed += 1
                            raise WatchdogError(
                                budget, kernel=kernel.name, pc=insts[pc].pc,
                                cta=warp.trace.cta_id, warp=warp.warp_id)
                        # run a truncated segment so the watchdog trips
                        # at the same instruction as the scalar engine
                        try:
                            fn, n = ck.segment(pc, emu, limit=left)
                        except CodegenError:
                            raise
                        except Exception as exc:
                            raise CodegenError(
                                "segment compilation failed at pc %#x: %s"
                                % (insts[pc].pc, exc),
                                kernel=kernel.name) from exc
                    executed += n
                    try:
                        fn(warp, live, _lanes_of(live), shared, params,
                           record)
                    except MemoryError_ as exc:
                        inst = insts[getattr(exc, "_idx", pc)]
                        raise MemoryFaultError(
                            str(exc), kernel=kernel.name, pc=inst.pc,
                            cta=warp.trace.cta_id, warp=warp.warp_id,
                            lane=exc.lane, address=exc.addr,
                            space=(inst.space.name.lower()
                                   if inst.space is not None else None)
                        ) from exc
                    entry[1] = pc + n
                    continue
                # control instruction: branch / exit / barrier / membar
                executed += 1
                if executed > budget:
                    raise WatchdogError(budget, kernel=kernel.name,
                                        pc=insts[pc].pc,
                                        cta=warp.trace.cta_id,
                                        warp=warp.warp_id)
                inst = insts[pc]
                exec_mask = live
                if inst.pred is not None:
                    preg, negated = inst.pred
                    exec_mask = self.pred_mask(warp, preg, negated, live)
                if record is not None:
                    record.append(inst, exec_mask)
                if inst.is_branch:
                    taken = exec_mask
                    not_taken = live & ~exec_mask
                    target = kernel.target_index(inst)
                    if taken == 0:
                        entry[1] = pc + 1
                    elif not_taken == 0:
                        entry[1] = target
                    else:
                        reconv = cfg.reconvergence_index(pc)
                        rpc_idx = reconv if reconv is not None else _NEVER
                        entry[1] = rpc_idx
                        stack.append([rpc_idx, pc + 1, not_taken])
                        stack.append([rpc_idx, target, taken])
                    continue
                if inst.is_exit:
                    warp.done_mask |= exec_mask
                    entry[1] = pc + 1
                    continue
                if inst.is_barrier:
                    entry[1] = pc + 1
                    warp.at_barrier = True
                    return
                entry[1] = pc + 1  # membar
        finally:
            emu._executed = executed


class _CompiledKernel:
    """Per-kernel compilation state: segment boundaries + code cache."""

    def __init__(self, kernel, cfg):
        self.kernel = kernel
        self.cfg = cfg
        self.insts = kernel.instructions
        # segments must never run across a possible reconvergence
        # index: the driver checks ``pc == rpc`` between segments
        stop = set()
        for i, inst in enumerate(self.insts):
            if inst.is_branch:
                r = cfg.reconvergence_index(i)
                if r is not None:
                    stop.add(r)
        self.stop = stop
        names = set()
        snames = set()
        for inst in self.insts:
            for d in inst.dests:
                if isinstance(d, Reg):
                    names.add(d.name)
            for s in inst.srcs:
                if isinstance(s, Reg):
                    names.add(s.name)
                elif isinstance(s, SReg):
                    snames.add(s.name)
                elif isinstance(s, MemRef):
                    if isinstance(s.base, Reg):
                        names.add(s.base.name)
                    elif isinstance(s.base, SReg):
                        snames.add(s.base.name)
            if inst.pred is not None:
                names.add(inst.pred[0].name)
        self.reg_names = sorted(names)
        self.sreg_names = sorted(snames)
        #: flow-insensitive ``reg -> (kind, mbits)``: the join of what
        #: every static write site can produce.  Registers never
        #: written hold their initial 0.  (The int 0 a float register
        #: starts with is value-equivalent to 0.0 in every coerced use,
        #: so all-float-written registers still count as "float".)
        self.entry_kind = _infer_entry_kinds(self.insts, self.reg_names)
        #: per-pc dispatch cache: ``None`` = not yet classified,
        #: ``False`` = control instruction, else ``(fn, n_insts)``
        self.by_pc = [None] * len(self.insts)
        self._segs = {}

    def segment(self, start, emu, limit=None):
        """``(fn, n_insts)`` for the segment at instruction index
        ``start``, or ``False`` when a control instruction sits there.
        Compiled lazily, cached per ``(start, limit)``."""
        key = (start, limit)
        try:
            return self._segs[key]
        except KeyError:
            pass
        insts = self.insts
        if _is_control(insts[start]):
            self._segs[key] = False
            self.by_pc[start] = False
            return False
        cap = len(insts) if limit is None else min(len(insts), start + limit)
        end = start + 1
        while (end < cap and end not in self.stop
               and not _is_control(insts[end])):
            end += 1
        fn = _compile_segment(self, start, end, emu)
        result = self._segs[key] = (fn, end - start)
        if limit is None:
            self.by_pc[start] = result
        return result


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


class _SegmentCompiler:
    """Builds the Python source + namespace for one segment."""

    def __init__(self, ck, start, end, emu):
        self.ck = ck
        self.insts = ck.insts
        self.start = start
        self.end = end
        self.emu = emu
        self.ns = {
            "_MERR": MemoryError_,
            "_EERR": EmulationError,
            "_atom": _atom_result,
            "_coerce": _coerce_store,
            "_tdiv": _trunc_div,
            "_trem": _trunc_rem,
            "_pack_d": _pack_d,
            "_ifb": int.from_bytes,
            "_U64M": _U64_MASK,
            "_sqrt": math.sqrt,
            "_sin": math.sin,
            "_cos": math.cos,
            "_log2": math.log2,
        }
        self.hoists = []
        self._hoisted = {}
        self._n = 0
        #: reg name -> (kind, mbits) known to hold for every live lane
        #: at the current emission point (live lanes are fixed within a
        #: segment, so fused write-backs and unpredicated loads define
        #: all of them).  Seeded with the kernel-wide invariant and
        #: refined in program order; lets codegen drop redundant
        #: coercions and re-masks.
        self.reg_kind = dict(ck.entry_kind)

    # -- naming / hoisting -------------------------------------------------

    def _fresh(self, prefix):
        self._n += 1
        return "_%s%d" % (prefix, self._n)

    def bind(self, value, prefix):
        name = self._fresh(prefix)
        self.ns[name] = value
        return name

    def hoist(self, key, make_line, var_prefix):
        var = self._hoisted.get(key)
        if var is None:
            var = self._fresh(var_prefix)
            self._hoisted[key] = var
            self.hoists.append(make_line(var))
        return var

    def reg_list(self, name):
        return self.hoist(("reg", name),
                          lambda v: "%s = R[%r]" % (v, name), "R")

    def sreg_list(self, name):
        return self.hoist(("sreg", name),
                          lambda v: "%s = S[%r]" % (v, name), "S")

    def param_value(self, name):
        return self.hoist(("param", name),
                          lambda v: "%s = params[%r]" % (v, name), "P")

    def accessor(self, space, dtype, store):
        """Fast memory accessor: global ones bind directly (the memory
        image is fixed per emulator), shared ones are fetched from the
        per-CTA object at segment entry."""
        kind = "storer" if store else "loader"
        if space is Space.SHARED:
            dt = self.bind(dtype, "dt")
            return self.hoist(("sh", kind, dtype),
                              lambda v: "%s = shared.%s(%s)" % (v, kind, dt),
                              "A")
        fn = getattr(self.emu.memory, kind)(dtype)
        key = ("gl", kind, dtype)
        var = self._hoisted.get(key)
        if var is None:
            var = self.bind(fn, "G")
            self._hoisted[key] = var
        return var

    # -- source assembly ---------------------------------------------------

    def compile(self):
        body = []
        i = self.start
        while i < self.end:
            inst = self.insts[i]
            if inst.is_memory and inst.space is not Space.PARAM:
                body.extend(self._emit_memory(i))
                i += 1
            else:
                j = i
                while (j < self.end
                       and not (self.insts[j].is_memory
                                and self.insts[j].space is not Space.PARAM)):
                    j += 1
                body.extend(self._emit_fused(i, j))
                i = j
        src = ["def _segment(warp, live, lanes, shared, params, record):",
               "    R = warp.regs",
               "    S = warp.sregs"]
        src.extend("    " + line for line in self.hoists)
        src.extend("    " + line for line in body)
        code = "\n".join(src) + "\n"
        exec(compile(code, "<segment %s:%d-%d>"
                     % (self.ck.kernel.name, self.start, self.end),
                     "exec"), self.ns)
        return self.ns["_segment"]

    # -- fused ALU blocks --------------------------------------------------

    def _emit_fused(self, start, end):
        """One ``for l in lanes`` loop covering insts [start, end) —
        all non-memory, so lanes are independent and values flow
        through Python locals."""
        pre = []          # before the lane loop (mask accumulators)
        top = []          # loop-top per-lane register loads
        body = []         # loop body (base indent inside the loop)
        defined = {}      # reg name -> local var
        loaded = set()    # regs already loaded at loop top
        wrote = []        # regs needing write-back, in definition order
        appends = []      # trace appends, in program order
        run = []          # batched consecutive unpredicated pcs
        kinds = {}        # reg name -> (kind, mbits) within this block

        def local_read(name):
            var = defined.get(name)
            if var is None:
                var = "v_" + _san(name)
                defined[name] = var
                loaded.add(name)
                kinds.setdefault(name, self.reg_kind.get(name, _UNKNOWN))
                top.append("%s = %s[l]" % (var, self.reg_list(name)))
            return var

        def local_write(name, need_old):
            var = defined.get(name)
            if var is None:
                if need_old:
                    var = local_read(name)
                else:
                    var = "v_" + _san(name)
                    defined[name] = var
            if name not in wrote:
                wrote.append(name)
            return var

        def kindof(name):
            return kinds.get(name, _UNKNOWN)

        def flush_run():
            if run:
                if len(run) == 1:
                    appends.append("record.append_run((%d,), live)" % run[0])
                else:
                    name = self.bind(tuple(run), "pcs")
                    appends.append("record.append_run(%s, live)" % name)
                del run[:]

        for idx in range(start, end):
            inst = self.insts[idx]
            # register reads before the write is registered, so an inst
            # reading its own dest (add %r, %r, 1) loads the old value
            for s_op in inst.srcs:
                if isinstance(s_op, Reg):
                    local_read(s_op.name)
            if inst.pred is not None:
                flush_run()
                preg, negated = inst.pred
                pv = local_read(preg.name)
                macc = "_m%d" % idx
                pre.append("%s = 0" % macc)
                guard = ("if not %s:" % pv) if negated else ("if %s:" % pv)
                inner = ["%s |= 1 << l" % macc]
                lines, dk = self._alu_lines(inst, local_read,
                                            lambda n: local_write(n, True),
                                            kindof)
                inner.extend(lines)
                body.append(guard)
                body.extend("    " + line for line in inner)
                appends.append("record.append_run((%d,), %s)"
                               % (inst.pc, macc))
                if inst.dests:
                    # lanes failing the guard keep the old value
                    name = inst.dests[0].name
                    kinds[name] = _merge_kind(kindof(name), dk)
            else:
                lines, dk = self._alu_lines(inst, local_read,
                                            lambda n: local_write(n, False),
                                            kindof)
                body.extend(lines)
                if inst.dests:
                    kinds[inst.dests[0].name] = dk
                run.append(inst.pc)
        flush_run()

        out = list(pre)
        loop = top + body + ["%s[l] = %s" % (self.reg_list(n), defined[n])
                             for n in wrote]
        if loop:
            out.append("for l in lanes:")
            out.extend("    " + line for line in loop)
        if appends:
            out.append("if record is not None:")
            out.extend("    " + line for line in appends)
        for n in wrote:
            self.reg_kind[n] = kinds.get(n, _UNKNOWN)
        return out

    def _alu_lines(self, inst, rd, wr, kindof):
        """Statements computing one non-memory instruction for lane
        ``l`` (locals only) — mirrors ``machine._evaluate``.

        Returns ``(lines, dest_kind)`` where ``dest_kind`` is the
        ``(kind, mbits)`` the destination holds afterwards (see
        ``_merge_kind``), letting later instructions elide redundant
        ``int()``/``float()`` coercions and re-masks."""
        if inst.is_memory:  # Space.PARAM
            return self._param_lines(inst, wr)
        if not inst.dests:
            return [], _UNKNOWN
        op = inst.opcode
        dt = inst.dtype

        def kind(op_):
            if isinstance(op_, Reg):
                return kindof(op_.name)
            if isinstance(op_, Imm):
                v = op_.value
                if isinstance(v, float):
                    return ("float", None)
                return ("int", v.bit_length()) if v >= 0 else ("int", None)
            if isinstance(op_, SReg):
                return ("int", None)  # nonnegative, width unknown
            return _UNKNOWN

        def src(op_, mode):
            if isinstance(op_, Imm):
                v = op_.value
                if mode == "int":
                    v = int(v)
                elif mode == "float":
                    v = float(v)
                return repr(v)
            if isinstance(op_, Reg):
                var = rd(op_.name)
                k = kindof(op_.name)[0]
                if mode == "int":
                    # bool is an int subclass: arithmetic/masking agree
                    return var if k in ("int", "bool") else "int(%s)" % var
                if mode == "float":
                    return var if k == "float" else "float(%s)" % var
                return var
            if isinstance(op_, SReg):
                e = "%s[l]" % self.sreg_list(op_.name)
                return ("float(%s)" % e) if mode == "float" else e
            raise EmulationError("unsupported source operand %r" % (op_,))

        dst = wr(inst.dests[0].name)
        srcs = inst.srcs

        if op in ("mov", "cvta"):
            s0 = srcs[0]
            if dt is not None and dt.is_float:
                return ["%s = %s" % (dst, src(s0, "float"))], ("float", None)
            if dt is not None and dt.is_integer:
                m = (1 << dt.bits) - 1
                if isinstance(s0, Imm):
                    return (["%s = %r" % (dst, int(s0.value) & m)],
                            ("int", dt.bits))
                k, mb = kind(s0)
                if k == "int" and mb is not None and mb <= dt.bits:
                    return ["%s = %s" % (dst, src(s0, "raw"))], ("int", mb)
                return (["%s = %s & %#x" % (dst, src(s0, "int"), m)],
                        ("int", dt.bits))
            return ["%s = %s" % (dst, src(s0, "raw"))], kind(s0)

        if op == "cvt":
            return self._cvt_lines(inst, dst, src, kind)

        if op == "setp":
            return self._setp_lines(inst, dst, src, kind)

        if op == "selp":
            lines = ["%s = %s if %s else %s"
                     % (dst, src(srcs[0], "raw"), src(srcs[2], "raw"),
                        src(srcs[1], "raw"))]
            return lines, _merge_kind(kind(srcs[0]), kind(srcs[1]))

        if dt is not None and dt.is_float:
            return self._float_lines(inst, dst, src)
        return self._int_lines(inst, dst, src, kind)

    def _param_lines(self, inst, wr):
        value = self.param_value(inst.memref.base.name)
        dst = wr(inst.dests[0].name)
        return ["%s = %s" % (dst, value)], _UNKNOWN

    def _cvt_lines(self, inst, dst, src, kind):
        src_dt = None
        for mod in inst.modifiers:
            try:
                src_dt = dtype_from_name(mod)
                break
            except Exception:
                continue
        lines = []
        s0 = inst.srcs[0]
        e = src(s0, "raw")
        k, mb = kind(s0)
        if src_dt is not None and src_dt.is_integer:
            if src_dt.is_signed:
                # a value known narrower than the sign bit sign-extends
                # to itself
                if not (k == "int" and mb is not None
                        and mb < src_dt.bits):
                    m = (1 << src_dt.bits) - 1
                    sb = 1 << (src_dt.bits - 1)
                    t = self._fresh("t")
                    ie = e if k in ("int", "bool") else "int(%s)" % e
                    lines.append("%s = ((%s & %#x) ^ %#x) - %#x"
                                 % (t, ie, m, sb, sb))
                    e, k, mb = t, "int", None  # may be negative
            elif not (k == "int" and mb is not None
                      and mb <= src_dt.bits):
                t = self._fresh("t")
                ie = e if k in ("int", "bool") else "int(%s)" % e
                lines.append("%s = %s & %#x"
                             % (t, ie, (1 << src_dt.bits) - 1))
                e, k, mb = t, "int", src_dt.bits
        dt = inst.dtype
        if dt.is_float:
            if k == "float":
                lines.append("%s = %s" % (dst, e))
            else:
                lines.append("%s = float(%s)" % (dst, e))
            return lines, ("float", None)
        if k == "int" and mb is not None and mb <= dt.bits:
            lines.append("%s = %s" % (dst, e))
            return lines, ("int", mb)
        ie = e if k in ("int", "bool") else "int(%s)" % e
        lines.append("%s = %s & %#x" % (dst, ie, (1 << dt.bits) - 1))
        return lines, ("int", dt.bits)

    def _setp_lines(self, inst, dst, src, kind):
        dt = inst.dtype
        cmp_op = inst.cmp_op
        if dt is not None and dt.is_float:
            py = _CMP_PY.get(cmp_op)
            if py is None:
                return (["raise _EERR(%r)"
                         % ("unsupported comparison %r" % cmp_op)],
                        _UNKNOWN)
            return (["%s = %s %s %s"
                     % (dst, src(inst.srcs[0], "float"), py,
                        src(inst.srcs[1], "float"))],
                    ("bool", None))
        bits = dt.bits if dt is not None else 32
        if cmp_op.endswith("u") and cmp_op not in ("eq", "ne"):
            base, signed = cmp_op[:-1], False
        elif dt is not None and dt.is_signed:
            base, signed = cmp_op, True
        else:
            base, signed = cmp_op, False
        py = _CMP_PY.get(base)
        if py is None:
            return (["raise _EERR(%r)"
                     % ("unsupported comparison %r" % base)], _UNKNOWN)

        def operand(op_):
            if isinstance(op_, Imm):
                v = int(op_.value) & ((1 << bits) - 1)
                if signed and v >> (bits - 1):
                    v -= 1 << bits
                return repr(v)
            e = src(op_, "int")
            k, mb = kind(op_)
            m, sb = (1 << bits) - 1, 1 << (bits - 1)
            if signed:
                if k == "int" and mb is not None and mb < bits:
                    return e  # narrower than the sign bit: already itself
                return "(((%s & %#x) ^ %#x) - %#x)" % (e, m, sb, sb)
            if k == "int" and mb is not None and mb <= bits:
                return e
            return "(%s & %#x)" % (e, m)

        return (["%s = %s %s %s"
                 % (dst, operand(inst.srcs[0]), py,
                    operand(inst.srcs[1]))],
                ("bool", None))

    def _float_lines(self, inst, dst, src):
        op = inst.opcode
        s = inst.srcs
        a = src(s[0], "float") if s else "0.0"
        b = src(s[1], "float") if len(s) > 1 else "0.0"
        c = src(s[2], "float") if len(s) > 2 else "0.0"
        simple = {"add": "%s + %s" % (a, b), "sub": "%s - %s" % (a, b),
                  "mul": "%s * %s" % (a, b), "div": "%s / %s" % (a, b),
                  "min": "min(%s, %s)" % (a, b),
                  "max": "max(%s, %s)" % (a, b),
                  "abs": "abs(%s)" % a, "neg": "-%s" % a,
                  "rcp": "1.0 / %s" % a, "sqrt": "_sqrt(%s)" % a,
                  "rsqrt": "1.0 / _sqrt(%s)" % a,
                  "sin": "_sin(%s)" % a, "cos": "_cos(%s)" % a,
                  "ex2": "2.0 ** %s" % a, "lg2": "_log2(%s)" % a}
        if op in ("mad", "fma"):
            return ["%s = %s * %s + %s" % (dst, a, b, c)], ("float", None)
        expr = simple.get(op)
        if expr is None:
            return (["raise _EERR(%r)" % ("unsupported float op %r" % op)],
                    _UNKNOWN)
        return ["%s = %s" % (dst, expr)], ("float", None)

    def _int_lines(self, inst, dst, src, kind):
        op = inst.opcode
        dt = inst.dtype
        bits = dt.bits if dt is not None else 32
        signed = dt.is_signed if dt is not None else False
        m = (1 << bits) - 1
        sb = 1 << (bits - 1)
        m2 = (1 << (2 * bits)) - 1
        s = inst.srcs
        full = ("int", bits)

        def iexpr(k):
            op_ = s[k]
            if isinstance(op_, Imm):
                return repr(int(op_.value))
            return src(op_, "int")

        def masked(k, limit):
            """True when operand ``k`` is a known int in [0, 2**limit)."""
            op_ = s[k]
            if isinstance(op_, Imm):
                v = op_.value
                return isinstance(v, int) and 0 <= v < (1 << limit)
            kd, mb = kind(op_)
            return kd == "int" and mb is not None and mb <= limit

        def wrapped(k):
            """Src ``k`` wrapped (or sign-extended) to ``bits``, inline."""
            op_ = s[k]
            if isinstance(op_, Imm):
                v = int(op_.value) & m
                if signed and v >> (bits - 1):
                    v -= 1 << bits
                return repr(v)
            e = src(op_, "int")
            if signed:
                if masked(k, bits - 1):
                    return e  # narrower than the sign bit: already itself
                return "(((%s & %#x) ^ %#x) - %#x)" % (e, m, sb, sb)
            if masked(k, bits):
                return e
            return "(%s & %#x)" % (e, m)

        if op == "add":
            return (["%s = (%s + %s) & %#x" % (dst, iexpr(0), iexpr(1), m)],
                    full)
        if op == "sub":
            return (["%s = (%s - %s) & %#x" % (dst, iexpr(0), iexpr(1), m)],
                    full)
        if op == "mul":
            if inst.mul_mode == "wide":
                return (["%s = (%s * %s) & %#x"
                         % (dst, wrapped(0), wrapped(1), m2)],
                        ("int", 2 * bits))
            if inst.mul_mode == "hi":
                return (["%s = ((%s * %s) >> %d) & %#x"
                         % (dst, wrapped(0), wrapped(1), bits, m)], full)
            return (["%s = (%s * %s) & %#x" % (dst, iexpr(0), iexpr(1), m)],
                    full)
        if op == "mad":
            if inst.mul_mode == "wide":
                return (["%s = (%s * %s + %s) & %#x"
                         % (dst, wrapped(0), wrapped(1), iexpr(2), m2)],
                        ("int", 2 * bits))
            return (["%s = (%s * %s + %s) & %#x"
                     % (dst, iexpr(0), iexpr(1), iexpr(2), m)], full)
        if op in ("div", "rem", "min", "max"):
            fn = {"div": "_tdiv(%s, %s)", "rem": "_trem(%s, %s)",
                  "min": "min(%s, %s)", "max": "max(%s, %s)"}[op]
            return ([("%s = (" + fn + ") & %#x")
                     % (dst, wrapped(0), wrapped(1), m)], full)
        if op == "abs":
            if masked(0, bits - 1):  # nonnegative: abs is the identity
                return ["%s = %s" % (dst, iexpr(0))], kind(s[0])
            return (["%s = abs(((%s & %#x) ^ %#x) - %#x) & %#x"
                     % (dst, iexpr(0), m, sb, sb, m)], full)
        if op == "neg":
            return ["%s = (-%s) & %#x" % (dst, iexpr(0), m)], full
        if op in ("and", "or", "xor"):
            sym = {"and": "&", "or": "|", "xor": "^"}[op]
            if masked(0, bits) and masked(1, bits):
                return (["%s = %s %s %s"
                         % (dst, iexpr(0), sym, iexpr(1))], full)
            return (["%s = (%s %s %s) & %#x"
                     % (dst, iexpr(0), sym, iexpr(1), m)], full)
        if op == "not":
            return ["%s = (~%s) & %#x" % (dst, iexpr(0), m)], full
        if op in ("shl", "shr"):
            lines = []
            amt = s[1]
            if isinstance(amt, Imm):  # fold the wrap-and-clamp at codegen
                sh = int(amt.value) & _U64_MASK
                shs = repr(bits if sh > bits else sh)
            else:
                t = self._fresh("t")
                if masked(1, 64):
                    lines.append("%s = %s" % (t, iexpr(1)))
                else:
                    lines.append("%s = %s & %#x" % (t, iexpr(1), _U64_MASK))
                lines.append("%s = %d if %s > %d else %s"
                             % (t, bits, t, bits, t))
                shs = t
            if op == "shl":
                lines.append("%s = (%s << %s) & %#x"
                             % (dst, iexpr(0), shs, m))
            elif signed:
                if masked(0, bits - 1):  # nonnegative: plain shift
                    lines.append("%s = %s >> %s" % (dst, iexpr(0), shs))
                else:
                    lines.append(
                        "%s = ((((%s & %#x) ^ %#x) - %#x) >> %s) & %#x"
                        % (dst, iexpr(0), m, sb, sb, shs, m))
            else:
                lines.append("%s = %s >> %s" % (dst, wrapped(0), shs))
            return lines, full
        return (["raise _EERR(%r)" % ("unsupported integer op %r" % op)],
                _UNKNOWN)

    # -- memory instructions -----------------------------------------------

    def _emit_memory(self, idx):
        """One memory instruction as its own lane loop (instruction-
        major order, like the scalar engine)."""
        inst = self.insts[idx]
        dt = inst.dtype
        width = dt.nbytes
        memref = inst.memref
        base = memref.base
        ln, ad = "_ln%d" % idx, "_ad%d" % idx

        if isinstance(base, Reg):
            aexpr = "%s[l]" % self.reg_list(base.name)
            if self.reg_kind.get(base.name, _UNKNOWN)[0] != "int":
                aexpr = "int(%s)" % aexpr
        elif isinstance(base, Imm):
            aexpr = repr(int(base.value))
        elif isinstance(base, SReg):
            aexpr = "%s[l]" % self.sreg_list(base.name)
        else:
            aexpr = None  # scalar raises EmulationError for Sym bases
        if aexpr is not None and memref.offset:
            aexpr = "%s + %d" % (aexpr, memref.offset)

        def vsrc(op_):
            """A store/atomic source operand inside the memory loop
            (no fused locals here — registers come from their lists)."""
            if isinstance(op_, Imm):
                return repr(op_.value)
            if isinstance(op_, Reg):
                return "%s[l]" % self.reg_list(op_.name)
            if isinstance(op_, SReg):
                return "%s[l]" % self.sreg_list(op_.name)
            raise EmulationError("unsupported source operand %r" % (op_,))

        def vkind(op_):
            if isinstance(op_, Reg):
                return self.reg_kind.get(op_.name, _UNKNOWN)
            if isinstance(op_, SReg):
                return ("int", None)
            return _UNKNOWN

        predicated = inst.pred is not None
        inner = []
        if aexpr is None:
            inner.append("raise _EERR(%r)"
                         % ("cannot address through %r" % (base,)))
        else:
            inner.append("a = %s" % aexpr)
            if predicated:
                # the executing lane subset is data-dependent
                inner.append("%s.append(l)" % ln)
            inner.append("_ada(a)")

        is_store = inst.is_store
        vals = "_vl%d" % idx
        if aexpr is not None and inst.is_load:
            acc = self.accessor(inst.space, dt, store=False)
            for k, d in enumerate(inst.dests):
                dl = self.reg_list(d.name)
                addr = "a" if k == 0 else "a + %d" % (k * width)
                inner.append("%s[l] = %s(%s)" % (dl, acc, addr))
        elif aexpr is not None and is_store:
            acc = self.accessor(inst.space, dt, store=True)
            for k, vop in enumerate(inst.srcs[1:]):
                addr = "a" if k == 0 else "a + %d" % (k * width)
                if isinstance(vop, Imm):
                    coerced = _coerce_store(vop.value, dt)
                    if dt.is_float:
                        enc = int.from_bytes(_pack_d(coerced), "little")
                    else:
                        enc = coerced & _U64_MASK
                    inner.append("_vla(%#x)" % enc)
                    inner.append("%s(%s, %r)" % (acc, addr, coerced))
                    continue
                kd, mb = vkind(vop)
                if dt.is_float:
                    if kd == "float":
                        ve = vsrc(vop)
                        inner.append('_vla(_ifb(_pack_d(%s), "little"))'
                                     % ve)
                        inner.append("%s(%s, %s)" % (acc, addr, ve))
                        continue
                    t = self._fresh("t")
                    inner.append("%s = float(%s)" % (t, vsrc(vop)))
                    inner.append('_vla(_ifb(_pack_d(%s), "little"))' % t)
                    inner.append("%s(%s, %s)" % (acc, addr, t))
                    continue
                # a value already known to fit (and, for signed types,
                # to be nonnegative) is its own coercion and encoding
                fit = dt.bits - 1 if dt.is_signed else dt.bits
                if kd == "int" and mb is not None and mb <= fit:
                    ve = vsrc(vop)
                    inner.append("_vla(%s)" % ve)
                    inner.append("%s(%s, %s)" % (acc, addr, ve))
                    continue
                t = self._fresh("t")
                m = (1 << dt.bits) - 1
                ie = vsrc(vop)
                if kd not in ("int", "bool"):
                    ie = "int(%s)" % ie
                inner.append("%s = %s & %#x" % (t, ie, m))
                if dt.is_signed:
                    sb, c = 1 << (dt.bits - 1), 1 << dt.bits
                    inner.append("%s = %s - %d if %s >= %d else %s"
                                 % (t, t, c, t, sb, t))
                    inner.append("_vla(%s & _U64M)" % t)
                else:
                    inner.append("_vla(%s)" % t)
                inner.append("%s(%s, %s)" % (acc, addr, t))
        elif aexpr is not None:  # atomic (``red`` writes no old value back)
            lacc = self.accessor(inst.space, dt, store=False)
            sacc = self.accessor(inst.space, dt, store=True)
            dtv = self.bind(dt, "dt")
            dl = (self.reg_list(inst.dests[0].name) if inst.dests else None)
            inner.append("old = %s(a)" % lacc)
            inner.append("o1 = %s" % vsrc(inst.srcs[1]))
            o2 = "None"
            if len(inst.srcs) > 2:
                inner.append("o2 = %s" % vsrc(inst.srcs[2]))
                o2 = "o2"
            if dt.is_signed:
                m, sb = (1 << dt.bits) - 1, 1 << (dt.bits - 1)
                inner.append("o1 = ((int(o1) & %#x) ^ %#x) - %#x"
                             % (m, sb, sb))
                if o2 != "None":
                    inner.append("o2 = ((int(o2) & %#x) ^ %#x) - %#x"
                                 % (m, sb, sb))
            inner.append("new = _atom(%r, old, o1, %s, %s)"
                         % (inst.atom_op, o2, dtv))
            inner.append("%s(a, _coerce(new, %s))" % (sacc, dtv))
            if dl is not None:
                inner.append("%s[l] = old" % dl)

        if predicated:
            out = ["%s = []" % ln, "%s = []" % ad]
        else:
            # every live lane executes, so the lane column is just the
            # live-lane tuple; only addresses are built in the loop
            out = ["%s = list(lanes)" % ln, "%s = []" % ad]
        out.append("_ada = %s.append" % ad)
        if is_store:
            out.append("%s = []" % vals)
            out.append("_vla = %s.append" % vals)
        mask_expr = "live"
        loop = []
        if predicated:
            preg, negated = inst.pred
            pm = "_pm%d" % idx
            out.append("%s = 0" % pm)
            mask_expr = pm
            pl = "%s[l]" % self.reg_list(preg.name)
            loop.append("for l in lanes:")
            loop.append("    if %s:" % (("not " + pl) if negated else pl))
            loop.append("        %s |= 1 << l" % pm)
            loop.extend("        " + line for line in inner)
        else:
            loop.append("for l in lanes:")
            loop.extend("    " + line for line in inner)
        out.append("try:")
        out.extend("    " + line for line in loop)
        out.append("except _MERR as e:")
        if predicated:
            out.append("    if e.lane is None and %s:" % ln)
            out.append("        e.lane = %s[-1]" % ln)
        else:
            # addresses append just before the access, so the faulting
            # lane is the one whose address went in last
            out.append("    if e.lane is None and %s:" % ad)
            out.append("        e.lane = %s[len(%s) - 1]" % (ln, ad))
        out.append("    e._idx = %d" % idx)
        out.append("    raise")
        out.append("if record is not None:")
        out.append("    record.append_memory(%d, %s, %d, %s, %s%s)"
                   % (inst.pc, mask_expr, op_kind(inst), ln, ad,
                      (", " + vals) if is_store else ""))
        if aexpr is not None and inst.dests and not is_store:
            if dt.is_float:
                nk = ("float", None)
            elif dt.is_signed:
                nk = ("int", None)  # signed unpack can yield negatives
            else:
                nk = ("int", dt.bits)
            for d in inst.dests:
                if predicated:
                    self.reg_kind[d.name] = _merge_kind(
                        self.reg_kind.get(d.name, _UNKNOWN), nk)
                else:
                    self.reg_kind[d.name] = nk
        return out


def _compile_segment(ck, start, end, emu):
    return _SegmentCompiler(ck, start, end, emu).compile()
