"""Trace (de)serialization: save an application run, replay it later.

Emulation is the expensive step of the pipeline; serializing a
:class:`WorkloadRun`'s traces lets downstream tooling (or a later
session) re-run timing experiments without re-executing the kernels —
the classic trace-driven-simulator workflow GPGPU-Sim users know.

Format (schema v3): a zero-copy columnar container.  The file is

* an 8-byte magic (:data:`MAGIC`),
* a little-endian ``uint32`` header length,
* a compact JSON header (version, application name, printed PTX-subset
  kernel text, and per-launch metadata: geometry, per-warp op counts and
  per-launch column lengths), then
* the raw little-endian column arrays of every launch, each aligned to
  :data:`ALIGN` bytes, in a canonical order derived from the header.

Loading memory-maps the file and hands each warp *views* into the map —
no per-record parsing, no copies; a 100×-scale trace opens in
milliseconds.  The kernels travel along as printed PTX-subset text (the
printer/parser roundtrip is classification-preserving, see
``tests/ptx/test_printer.py``), so a loaded file is fully
self-contained: kernels, classifications and traces.

The schema-v2 gzip-JSON format remains readable: :func:`load_run`
sniffs the gzip magic and falls back to the legacy decoder (same
integrity checks as before).  :func:`save_run_legacy` still writes it,
for migration tests and older tooling.

Both formats are byte-deterministic — identical runs serialize to
identical files (the v2 gzip stream carries no mtime; the v3 container
has no timestamps at all).  The trace cache and the engine differential
tests rely on this.
"""

from __future__ import annotations

import gzip
import json
import mmap
import os
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core import ClassificationResult, classify_kernel
from ..ptx import Module, parse_module, print_module
from ..resilience.artifacts import compute_checksum, verify_checksum
from .columnar import (
    COLUMNS,
    KIND_NONE,
    _PC_SHIFT,
    ColumnarLaunchTrace,
    op_kind,
    to_columnar,
)
from .grid import Dim3, LaunchConfig
from .trace import ApplicationTrace

#: Schema v3 stores traces as typed columns in a memory-mappable
#: container (see module docstring).  Schema v2 (gzip JSON) added the
#: access-kind codes and store values; v3 keeps exactly those fields.
FORMAT_VERSION = 3

#: The last schema written as gzip JSON; still readable.
LEGACY_FORMAT_VERSION = 2

MAGIC = b"REPROTRC"
ALIGN = 64

#: Set to ``0`` to skip load-time column checksum verification (one
#: extra hash pass over the mapped file; on by default).
ENV_TRACE_VERIFY = "REPRO_TRACE_VERIFY"

_KIND_LOAD, _KIND_STORE, _KIND_ATOMIC = 0, 1, 2

# retained names: the v2 wire codes are the columnar ones
from .columnar import SPACE_CODES as _SPACE_CODES  # noqa: E402,F401
from .columnar import SPACE_NAMES as _SPACE_NAMES  # noqa: E402,F401

_op_kind = op_kind


def _align(n):
    return (n + ALIGN - 1) // ALIGN * ALIGN


def _launch_header_and_columns(launch, module):
    """Flatten one launch into header metadata + concatenated columns."""
    kernel = module[launch.kernel_name]
    col = to_columnar(launch, kernel.instructions).seal()
    warps_meta = []
    per_col = {name: [] for name, _ in COLUMNS}
    for warp in col.warps:
        warps_meta.append([warp.cta_id, warp.warp_id, len(warp)])
        for name, _ in COLUMNS:
            per_col[name].append(getattr(warp, name))
    arrays = {}
    for name, dt in COLUMNS:
        parts = per_col[name]
        arrays[name] = (np.concatenate(parts) if parts
                        else np.zeros(0, dtype=dt))
    header = {
        "kernel": launch.kernel_name,
        "grid": list(launch.config.grid),
        "block": list(launch.config.block),
        "shared_size": launch.shared_size,
        "warps": warps_meta,
        "columns": {name: len(arrays[name]) for name, _ in COLUMNS},
    }
    return header, arrays


def _source_lines(module):
    """Per-kernel source-line numbers, in instruction order.

    ``Instruction.line`` points into the text the module was *parsed*
    from.  The payload stores the canonical ``print_module`` text, so a
    re-parse on load would silently re-number every instruction against
    the printed layout — and diagnostics (``repro advise``) would report
    different PTX lines on a trace-cache hit than on a fresh run.
    Persisting the original numbers keeps load_run a faithful inverse.
    """
    return {k.name: [inst.line for inst in k.instructions]
            for k in module}


def _restamp_lines(module, payload):
    """Restore saved source-line numbers onto a re-parsed module.

    Best effort: entries written before the ``lines`` field existed
    (or whose instruction counts disagree) keep the printed-text
    numbering rather than failing the load.
    """
    for kernel in module:
        lines = payload.get("lines", {}).get(kernel.name)
        if lines is None or len(lines) != len(kernel.instructions):
            continue
        for inst, line in zip(kernel.instructions, lines):
            inst.line = int(line)


def save_run(run, path):
    """Serialize a run's kernels and traces to ``path`` (schema v3)."""
    module = run.module
    launches = []
    blobs = []
    for launch in run.trace:
        header, arrays = _launch_header_and_columns(launch, module)
        launches.append(header)
        for name, dt in COLUMNS:
            blobs.append(np.ascontiguousarray(arrays[name], dtype=dt))
    payload = {
        "version": FORMAT_VERSION,
        "name": run.trace.name,
        "ptx": print_module(module),
        "lines": _source_lines(module),
        "launches": launches,
        # digest of the column payload (blob bytes in canonical order,
        # padding excluded — so it is independent of the header length)
        "checksum": compute_checksum(b.tobytes() for b in blobs),
    }
    head = json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(len(head).to_bytes(4, "little"))
        fh.write(head)
        pos = len(MAGIC) + 4 + len(head)
        for blob in blobs:
            pad = _align(pos) - pos
            fh.write(b"\0" * pad)
            data = blob.tobytes()
            fh.write(data)
            pos += pad + len(data)
    return path


def save_run_legacy(run, path):
    """Serialize in the schema-v2 gzip-JSON format (migration tooling
    and format-compatibility tests)."""
    payload = {
        "version": LEGACY_FORMAT_VERSION,
        "name": run.trace.name,
        "ptx": print_module(run.module),
        "lines": _source_lines(run.module),
        "launches": [_encode_launch_v2(launch) for launch in run.trace],
    }
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    with open(path, "wb") as fh:
        # filename="" and mtime=0 keep the gzip header content-only.
        with gzip.GzipFile(filename="", fileobj=fh, mode="wb",
                           mtime=0) as gz:
            gz.write(data)
    return path


def _encode_op_v2(op):
    if op.addresses is None:
        return [op.pc, op.active_mask]
    flat = []
    for lane, addr in op.addresses:
        flat.append(lane)
        flat.append(addr)
    encoded = [op.pc, op.active_mask, flat, _op_kind(op.inst)]
    if op.inst.is_store:
        encoded.append(list(op.values if op.values is not None else ()))
    return encoded


def _encode_launch_v2(launch):
    return {
        "kernel": launch.kernel_name,
        "grid": list(launch.config.grid),
        "block": list(launch.config.block),
        "shared_size": launch.shared_size,
        "warps": [
            {"cta": warp.cta_id, "warp": warp.warp_id,
             "ops": [_encode_op_v2(op) for op in warp.ops]}
            for warp in launch.warps
        ],
    }


@dataclass
class LoadedRun:
    """A deserialized run: kernels, classifications and traces."""

    name: str
    module: Module
    trace: ApplicationTrace
    classifications: Dict[str, ClassificationResult]
    #: schema version the file on disk used (legacy entries trigger
    #: trace-cache migration).
    format_version: int = FORMAT_VERSION


def load_run(path):
    """Load a file written by :func:`save_run` (or the legacy v2
    :func:`save_run_legacy` format, auto-detected)."""
    with open(path, "rb") as fh:
        head = fh.read(len(MAGIC))
        if head[:2] == b"\x1f\x8b":
            return _load_run_v2(path)
        if len(head) < len(MAGIC):
            # EOFError, not ValueError: a near-empty file is a torn
            # write, which the trace cache retries before quarantining
            raise EOFError("truncated trace file: short magic")
        if head != MAGIC:
            raise ValueError(
                "unsupported trace-file version: %r is neither a v%d "
                "container nor a legacy gzip trace"
                % (head[:8], FORMAT_VERSION))
        length_bytes = fh.read(4)
        if len(length_bytes) < 4:
            # EOFError: short streams are possibly a racing reader and
            # retried by the trace cache before being called corrupt
            raise EOFError("truncated trace file: missing header length")
        hlen = int.from_bytes(length_bytes, "little")
        head_json = fh.read(hlen)
        if len(head_json) < hlen:
            raise EOFError("truncated trace file: short header")
        payload = json.loads(head_json.decode("utf-8"))
        if payload.get("version") != FORMAT_VERSION:
            raise ValueError("unsupported trace-file version: %r"
                             % payload.get("version"))
        fh.seek(0)
        buf = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)

    if os.environ.get(ENV_TRACE_VERIFY, "1") != "0":
        _verify_container(buf, payload, hlen, path)

    module = parse_module(payload["ptx"])
    _restamp_lines(module, payload)
    classifications = {k.name: classify_kernel(k) for k in module}
    app = ApplicationTrace(name=payload["name"])
    pos = len(MAGIC) + 4 + hlen
    for launch_data in payload["launches"]:
        kernel = module[launch_data["kernel"]]
        config = LaunchConfig(grid=Dim3(*launch_data["grid"]),
                              block=Dim3(*launch_data["block"]))
        launch = ColumnarLaunchTrace(
            kernel_name=kernel.name, config=config,
            instructions=kernel.instructions,
            shared_size=launch_data["shared_size"])
        arrays = {}
        counts = launch_data["columns"]
        for name, dt in COLUMNS:
            pos = _align(pos)
            count = int(counts[name])
            nbytes = count * np.dtype(dt).itemsize
            if pos + nbytes > len(buf):
                raise EOFError(
                    "truncated trace file: column %r of launch %r ends "
                    "beyond EOF" % (name, kernel.name))
            if count:
                arrays[name] = np.frombuffer(buf, dtype=dt, count=count,
                                             offset=pos)
            else:
                arrays[name] = np.zeros(0, dtype=dt)
            pos += nbytes
        _validate_columns(launch, arrays)
        op_lo = 0
        addr_lo = 0
        val_lo = 0
        acount = arrays["acount"]
        vcount = _value_counts(launch, arrays)
        for cta_id, warp_id, nops in launch_data["warps"]:
            op_hi = op_lo + int(nops)
            addr_hi = addr_lo + int(acount[op_lo:op_hi].sum(dtype=np.int64))
            val_hi = val_lo + int(vcount[op_lo:op_hi].sum(dtype=np.int64))
            warp = launch.new_warp(int(cta_id), int(warp_id))
            warp.seal(_columns=(
                arrays["pc"][op_lo:op_hi], arrays["mask"][op_lo:op_hi],
                arrays["kind"][op_lo:op_hi], arrays["acount"][op_lo:op_hi],
                arrays["lanes"][addr_lo:addr_hi],
                arrays["addrs"][addr_lo:addr_hi],
                arrays["vals"][val_lo:val_hi]))
            launch.warps.append(warp)
            op_lo, addr_lo, val_lo = op_hi, addr_hi, val_hi
        if op_lo != len(arrays["pc"]) or addr_lo != len(arrays["lanes"]) \
                or val_lo != len(arrays["vals"]):
            raise ValueError(
                "corrupt trace: per-warp op counts do not cover the "
                "columns of launch %r" % kernel.name)
        app.add(launch)
    return LoadedRun(name=payload["name"], module=module,
                     trace=app, classifications=classifications,
                     format_version=FORMAT_VERSION)


def _verify_container(buf, payload, hlen, path):
    """Check the header's column checksum against the mapped bytes.

    Hashes each column's blob region (padding excluded) in the same
    canonical order :func:`save_run` wrote them.  Containers without a
    checksum record (older writers) are accepted unchanged; a mismatch
    raises :class:`~repro.resilience.artifacts.ChecksumError`, which the
    trace cache treats as corruption (quarantine + regenerate).
    """
    record = payload.get("checksum")
    if not record:
        return

    def _blob_regions():
        pos = len(MAGIC) + 4 + hlen
        for launch_data in payload["launches"]:
            counts = launch_data["columns"]
            for name, dt in COLUMNS:
                pos = _align(pos)
                nbytes = int(counts[name]) * np.dtype(dt).itemsize
                if pos + nbytes > len(buf):
                    raise EOFError(
                        "truncated trace file: column %r ends beyond EOF"
                        % name)
                yield buf[pos:pos + nbytes]
                pos += nbytes

    verify_checksum(_blob_regions(), record, path)


def _value_counts(launch, arrays):
    """Per-op stored-value counts from the kind/acount columns."""
    pc = arrays["pc"]
    if not len(pc):
        return np.zeros(0, dtype=np.int64)
    is_store = (arrays["kind"] & 3) == _KIND_STORE
    vec = launch._vec_by_idx[pc >> _PC_SHIFT]
    return np.where(is_store, arrays["acount"] * vec, 0).astype(np.int64)


def _validate_columns(launch, arrays):
    """Schema-v3 integrity: the kind column is redundant with the
    instructions, so a mismatch means corruption (same invariant the v2
    loader enforces per record)."""
    pc = arrays["pc"]
    if not len(pc):
        return
    idx = pc >> _PC_SHIFT
    if int(idx.max()) >= len(launch._insts):
        raise ValueError("corrupt trace: pc %#x beyond kernel %r"
                         % (int(pc.max()), launch.kernel_name))
    expect = np.asarray(launch._kind_of, dtype=np.uint8)[idx]
    kind = arrays["kind"]
    # ops that recorded no addresses legitimately carry KIND_NONE even
    # for memory instructions (param reads, predicated-off accesses
    # trace addresses=() instead — kind stays)
    bad = (kind != expect) & (kind != KIND_NONE)
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        raise ValueError(
            "corrupt trace: access kind %d at pc %#x does not match "
            "instruction %s"
            % (int(kind[i]), int(pc[i]),
               launch._insts[int(idx[i])].mnemonic()))
    # a memory instruction that recorded addresses but claims KIND_NONE
    # would silently drop its accesses: reject
    dropped = (kind == KIND_NONE) & (arrays["acount"] != 0)
    if dropped.any():
        i = int(np.flatnonzero(dropped)[0])
        raise ValueError(
            "corrupt trace: access kind missing at pc %#x"
            % int(pc[i]))


def _load_run_v2(path):
    """Decode the legacy gzip-JSON format (schema v2), then convert the
    records into columnar launches so every consumer sees one layout."""
    from .trace import KernelLaunchTrace, TraceOp, WarpTrace

    with gzip.open(path, "rt", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("version") != LEGACY_FORMAT_VERSION:
        raise ValueError("unsupported trace-file version: %r"
                         % payload.get("version"))
    module = parse_module(payload["ptx"])
    _restamp_lines(module, payload)
    classifications = {k.name: classify_kernel(k) for k in module}
    app = ApplicationTrace(name=payload["name"])
    for launch_data in payload["launches"]:
        kernel = module[launch_data["kernel"]]
        config = LaunchConfig(grid=Dim3(*launch_data["grid"]),
                              block=Dim3(*launch_data["block"]))
        launch = KernelLaunchTrace(
            kernel_name=kernel.name, config=config,
            shared_size=launch_data["shared_size"])
        for warp_data in launch_data["warps"]:
            warp = WarpTrace(cta_id=warp_data["cta"],
                             warp_id=warp_data["warp"])
            for encoded in warp_data["ops"]:
                pc, mask = encoded[0], encoded[1]
                inst = kernel.instruction_at(pc)
                addresses = values = None
                if len(encoded) > 2:
                    flat = encoded[2]
                    addresses = tuple(
                        (flat[i], flat[i + 1])
                        for i in range(0, len(flat), 2))
                    # integrity check: the kind code is redundant with
                    # the instruction, so a mismatch means corruption.
                    if len(encoded) < 4 or encoded[3] != _op_kind(inst):
                        raise ValueError(
                            "corrupt trace: access kind %r at pc %#x does "
                            "not match instruction %s"
                            % (encoded[3] if len(encoded) > 3 else None,
                               pc, inst.mnemonic()))
                    if inst.is_store:
                        if len(encoded) < 5:
                            raise ValueError(
                                "corrupt trace: store at pc %#x carries "
                                "no values" % pc)
                        values = tuple(encoded[4])
                warp.ops.append(TraceOp(inst, mask, addresses, values))
            launch.warps.append(warp)
        app.add(to_columnar(launch, kernel.instructions))
    return LoadedRun(name=payload["name"], module=module,
                     trace=app, classifications=classifications,
                     format_version=LEGACY_FORMAT_VERSION)
