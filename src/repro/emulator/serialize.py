"""Trace (de)serialization: save an application run, replay it later.

Emulation is the expensive step of the pipeline; serializing a
:class:`WorkloadRun`'s traces lets downstream tooling (or a later
session) re-run timing experiments without re-executing the kernels —
the classic trace-driven-simulator workflow GPGPU-Sim users know.

Format: gzip-compressed JSON.  The kernels travel along as printed
PTX-subset text (the printer/parser roundtrip is classification-
preserving, see ``tests/ptx/test_printer.py``), so a loaded file is
fully self-contained: kernels, classifications and traces.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from typing import Dict

from ..core import ClassificationResult, classify_kernel
from ..ptx import Module, parse_module, print_module
from .grid import Dim3, LaunchConfig
from .trace import ApplicationTrace, KernelLaunchTrace, TraceOp, WarpTrace

#: Schema v2 adds, for every memory op, an access-``kind`` code
#: (load/store/atomic + address space) and, for stores, the stored
#: values (lane-major, element-minor) — the inputs the correctness
#: analyzer (:mod:`repro.analysis`) needs to tell benign same-value
#: write sharing apart from real conflicts.  The kind code is fully
#: determined by the instruction, which makes it a cheap integrity
#: check on load and keeps the two engines byte-identical for free.
FORMAT_VERSION = 2

_KIND_LOAD, _KIND_STORE, _KIND_ATOMIC = 0, 1, 2

#: stable wire codes for address spaces (enum order is not wire format)
_SPACE_CODES = {"global": 0, "shared": 1, "local": 2, "param": 3,
                "const": 4, "tex": 5}
_SPACE_NAMES = {code: name for name, code in _SPACE_CODES.items()}


def _op_kind(inst):
    """The schema-v2 access-kind code for a memory instruction."""
    if inst.is_store:
        k = _KIND_STORE
    elif inst.is_atomic:
        k = _KIND_ATOMIC
    else:
        k = _KIND_LOAD
    space = inst.space.value if inst.space is not None else "global"
    return k | (_SPACE_CODES[space] << 2)


def _encode_op(op):
    if op.addresses is None:
        return [op.pc, op.active_mask]
    flat = []
    for lane, addr in op.addresses:
        flat.append(lane)
        flat.append(addr)
    encoded = [op.pc, op.active_mask, flat, _op_kind(op.inst)]
    if op.inst.is_store:
        encoded.append(list(op.values if op.values is not None else ()))
    return encoded


def _encode_launch(launch):
    return {
        "kernel": launch.kernel_name,
        "grid": list(launch.config.grid),
        "block": list(launch.config.block),
        "shared_size": launch.shared_size,
        "warps": [
            {"cta": warp.cta_id, "warp": warp.warp_id,
             "ops": [_encode_op(op) for op in warp.ops]}
            for warp in launch.warps
        ],
    }


def save_run(run, path):
    """Serialize a :class:`WorkloadRun`'s kernels and traces to ``path``.

    The output is byte-deterministic: the gzip stream carries no mtime,
    so two identical runs serialize to identical files.  The trace cache
    and the engine differential tests rely on this.
    """
    payload = {
        "version": FORMAT_VERSION,
        "name": run.trace.name,
        "ptx": print_module(run.module),
        "launches": [_encode_launch(launch) for launch in run.trace],
    }
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    with open(path, "wb") as fh:
        # filename="" and mtime=0 keep the gzip header content-only.
        with gzip.GzipFile(filename="", fileobj=fh, mode="wb",
                           mtime=0) as gz:
            gz.write(data)
    return path


@dataclass
class LoadedRun:
    """A deserialized run: kernels, classifications and traces."""

    name: str
    module: Module
    trace: ApplicationTrace
    classifications: Dict[str, ClassificationResult]


def load_run(path):
    """Load a file written by :func:`save_run`."""
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError("unsupported trace-file version: %r"
                         % payload.get("version"))
    module = parse_module(payload["ptx"])
    classifications = {k.name: classify_kernel(k) for k in module}
    app = ApplicationTrace(name=payload["name"])
    for launch_data in payload["launches"]:
        kernel = module[launch_data["kernel"]]
        config = LaunchConfig(grid=Dim3(*launch_data["grid"]),
                              block=Dim3(*launch_data["block"]))
        launch = KernelLaunchTrace(
            kernel_name=kernel.name, config=config,
            shared_size=launch_data["shared_size"])
        for warp_data in launch_data["warps"]:
            warp = WarpTrace(cta_id=warp_data["cta"],
                             warp_id=warp_data["warp"])
            for encoded in warp_data["ops"]:
                pc, mask = encoded[0], encoded[1]
                inst = kernel.instruction_at(pc)
                addresses = values = None
                if len(encoded) > 2:
                    flat = encoded[2]
                    addresses = tuple(
                        (flat[i], flat[i + 1])
                        for i in range(0, len(flat), 2))
                    # integrity check: the kind code is redundant with
                    # the instruction, so a mismatch means corruption.
                    if len(encoded) < 4 or encoded[3] != _op_kind(inst):
                        raise ValueError(
                            "corrupt trace: access kind %r at pc %#x does "
                            "not match instruction %s"
                            % (encoded[3] if len(encoded) > 3 else None,
                               pc, inst.mnemonic()))
                    if inst.is_store:
                        if len(encoded) < 5:
                            raise ValueError(
                                "corrupt trace: store at pc %#x carries "
                                "no values" % pc)
                        values = tuple(encoded[4])
                warp.ops.append(TraceOp(inst, mask, addresses, values))
            launch.warps.append(warp)
        app.add(launch)
    return LoadedRun(name=payload["name"], module=module,
                     trace=app, classifications=classifications)
