"""Warp-level execution traces produced by the functional emulator.

A trace records, per warp, every executed instruction with its active mask
and (for memory operations) the per-lane effective addresses.  Traces are
the interface between the functional emulator and both:

* the timing simulator (:mod:`repro.sim`), which replays them through the
  modeled memory hierarchy, and
* the trace-level locality analyses (:mod:`repro.profiling.locality`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .._bits import popcount
from ..ptx.isa import Instruction
from .grid import LaunchConfig


class TraceOp:
    """One dynamic warp instruction.

    ``addresses`` is ``None`` for non-memory instructions; for memory
    instructions it is a tuple of ``(lane, byte_address)`` pairs covering
    the lanes that actually issued an access.

    ``values`` (schema v2) is ``None`` except for stores, where it holds
    the stored values flattened lane-major (for ``st.v2``/``st.v4`` each
    lane contributes ``vector`` consecutive elements).  Store events are
    part of the serialized format so the correctness analyzer
    (:mod:`repro.analysis`) can distinguish benign same-value write
    sharing from genuinely conflicting inter-CTA writes.
    """

    __slots__ = ("inst", "active_mask", "addresses", "values")

    def __init__(self, inst, active_mask, addresses=None, values=None):
        self.inst: Instruction = inst
        self.active_mask: int = active_mask
        self.addresses: Optional[Tuple[Tuple[int, int], ...]] = addresses
        self.values: Optional[Tuple[object, ...]] = values

    @property
    def pc(self):
        return self.inst.pc

    @property
    def active_count(self):
        return popcount(self.active_mask)

    @property
    def is_memory(self):
        return self.addresses is not None

    def __repr__(self):
        return "TraceOp(%#x %s mask=%#010x%s)" % (
            self.inst.pc, self.inst.mnemonic(), self.active_mask,
            " %d addrs" % len(self.addresses) if self.addresses else "")


@dataclass
class WarpTrace:
    """All ops executed by one warp of one CTA."""

    cta_id: int           # linearized CTA id
    warp_id: int          # warp index within the CTA
    ops: List[TraceOp] = field(default_factory=list)

    @property
    def global_warp_key(self):
        return (self.cta_id, self.warp_id)

    def __len__(self):
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)


@dataclass
class KernelLaunchTrace:
    """The complete trace of one kernel launch."""

    kernel_name: str
    config: LaunchConfig
    warps: List[WarpTrace] = field(default_factory=list)
    #: bytes of static shared memory per CTA (limits SM occupancy).
    shared_size: int = 0

    # -- aggregate statistics (Table I columns) -------------------------------

    def total_warp_instructions(self):
        return sum(len(w) for w in self.warps)

    def total_thread_instructions(self):
        """Thread-level dynamic instruction count (sums active lanes)."""
        return sum(op.active_count for w in self.warps for op in w.ops)

    def count_ops(self, predicate):
        return sum(1 for w in self.warps for op in w.ops
                   if predicate(op))

    def global_load_warp_count(self):
        """Number of executed global-load warp instructions."""
        return self.count_ops(lambda op: op.inst.is_global_load)

    def shared_load_warp_count(self):
        return self.count_ops(lambda op: op.inst.is_shared_load)

    def dynamic_counts_by_pc(self, only_global_loads=True):
        """``{pc: executed warp count}`` — the weights for Figure 1."""
        counts: Dict[int, int] = {}
        for warp in self.warps:
            for op in warp.ops:
                if only_global_loads and not op.inst.is_global_load:
                    continue
                counts[op.pc] = counts.get(op.pc, 0) + 1
        return counts

    def iter_memory_ops(self, space=None, loads_only=False):
        """Yields ``(warp_trace, op)`` for memory operations."""
        for warp in self.warps:
            for op in warp.ops:
                if op.addresses is None:
                    continue
                if loads_only and not op.inst.is_load:
                    continue
                if space is not None and op.inst.space is not space:
                    continue
                yield warp, op

    def __iter__(self):
        return iter(self.warps)


@dataclass
class ApplicationTrace:
    """Every launch an application performed, in order.

    GPU applications often launch the same kernel repeatedly (BFS iterates
    until the frontier is empty); the per-launch traces are concatenated
    for whole-application statistics.
    """

    name: str
    launches: List[KernelLaunchTrace] = field(default_factory=list)

    def add(self, launch_trace):
        self.launches.append(launch_trace)
        return launch_trace

    def total_warp_instructions(self):
        return sum(launch.total_warp_instructions()
                   for launch in self.launches)

    def count_ops(self, predicate):
        return sum(launch.count_ops(predicate) for launch in self.launches)

    def global_load_warp_count(self):
        return sum(launch.global_load_warp_count() for launch in self.launches)

    def shared_load_warp_count(self):
        return sum(launch.shared_load_warp_count() for launch in self.launches)

    def dynamic_counts_by_pc(self, kernel_name):
        """Summed per-PC global-load counts for one kernel across launches."""
        counts: Dict[int, int] = {}
        for launch in self.launches:
            if launch.kernel_name != kernel_name:
                continue
            for pc, n in launch.dynamic_counts_by_pc().items():
                counts[pc] = counts.get(pc, 0) + n
        return counts

    def kernel_names(self):
        seen = []
        for launch in self.launches:
            if launch.kernel_name not in seen:
                seen.append(launch.kernel_name)
        return seen

    def __iter__(self):
        return iter(self.launches)

    def __len__(self):
        return len(self.launches)
