"""Optional Numba acceleration gate.

Numba is an *optional* dependency: when it is importable, selected
numeric helpers are ``@njit``-compiled; when it is not, the same
functions run as plain Python/NumPy — semantics are identical either
way (the engine differential suites run in both configurations in CI).

Import :func:`maybe_njit` rather than ``numba.njit`` so call sites stay
import-safe on minimal installs::

    from ._njit import maybe_njit

    @maybe_njit(cache=True)
    def hot(values): ...
"""

from __future__ import annotations

try:  # pragma: no cover - exercised by the with-numba CI job
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # the supported baseline: pure NumPy fallback
    _njit = None
    HAVE_NUMBA = False


def maybe_njit(*args, **kwargs):
    """``numba.njit`` when available, identity decorator otherwise.

    Supports both the bare (``@maybe_njit``) and parameterized
    (``@maybe_njit(cache=True)``) forms.
    """
    if args and callable(args[0]) and len(args) == 1 and not kwargs:
        fn = args[0]
        return _njit(fn) if HAVE_NUMBA else fn
    if HAVE_NUMBA:
        return _njit(*args, **kwargs)

    def identity(fn):
        return fn
    return identity
