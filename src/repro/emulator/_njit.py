"""Optional Numba acceleration gate.

Numba is an *optional* dependency: when it is importable, selected
numeric helpers are ``@njit``-compiled; when it is not, the same
functions run as plain Python/NumPy — semantics are identical either
way (the engine differential suites run in both configurations in CI).

Import :func:`maybe_njit` rather than ``numba.njit`` so call sites stay
import-safe on minimal installs::

    from ._njit import maybe_njit

    @maybe_njit(cache=True)
    def hot(values): ...

A *broken* Numba (importable but unable to decorate, or failing to JIT
on first call — version skew against NumPy is the classic cause) must
not take the pipeline down either: :func:`maybe_njit` degrades to the
pure-Python function, warns once per process, and counts the downgrade
under ``engine.njit_fallbacks`` so the degradation is visible in the
metrics snapshot.
"""

from __future__ import annotations

import functools
import warnings

try:  # pragma: no cover - exercised by the with-numba CI job
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # the supported baseline: pure NumPy fallback
    _njit = None
    HAVE_NUMBA = False
except Exception as _exc:  # pragma: no cover - broken install
    # importable-but-broken (e.g. llvmlite/NumPy version skew raising
    # at import time): same fallback as "absent", but say so.
    warnings.warn("numba import failed (%s); running pure-Python"
                  % (_exc,), RuntimeWarning, stacklevel=2)
    _njit = None
    HAVE_NUMBA = False

_warned = set()


def _count_fallback(where):
    # local import: obs must stay unimported until first failure so
    # this module is safe at any point of the package import graph
    from ..obs.metrics import get_registry

    get_registry().counter(
        "engine.njit_fallbacks",
        "numba JIT failures degraded to pure Python").inc(1, where=where)


def _warn_once(where, exc):
    if where in _warned:
        return
    _warned.add(where)
    warnings.warn(
        "numba failed to JIT %s (%s: %s); falling back to pure Python "
        "for the rest of the process" % (where, type(exc).__name__, exc),
        RuntimeWarning, stacklevel=3)


def _guarded(fn, jitted):
    """Dispatch to the jitted function until it fails, then swap to the
    pure-Python original permanently (numba raises at first *call* for
    typing errors, not at decoration)."""
    state = {"fn": jitted}

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        current = state["fn"]
        if current is fn:
            return fn(*args, **kwargs)
        try:
            return current(*args, **kwargs)
        except Exception as exc:
            state["fn"] = fn
            _warn_once(fn.__qualname__, exc)
            _count_fallback(fn.__qualname__)
            return fn(*args, **kwargs)

    return wrapper


def _decorate(fn, *args, **kwargs):
    if not HAVE_NUMBA:
        return fn
    try:
        jitted = _njit(*args, **kwargs)(fn) if (args or kwargs) \
            else _njit(fn)
    except Exception as exc:
        _warn_once(fn.__qualname__, exc)
        _count_fallback(fn.__qualname__)
        return fn
    return _guarded(fn, jitted)


def maybe_njit(*args, **kwargs):
    """``numba.njit`` when available and working, identity otherwise.

    Supports both the bare (``@maybe_njit``) and parameterized
    (``@maybe_njit(cache=True)``) forms.  Decoration-time and first-call
    JIT failures both degrade to the original Python function (see the
    module docstring).
    """
    if args and callable(args[0]) and len(args) == 1 and not kwargs:
        return _decorate(args[0])

    def parameterized(fn):
        return _decorate(fn, *args, **kwargs)
    return parameterized
