"""Device-memory model for the functional emulator.

:class:`MemoryImage` plays the role of the GPU's global (and constant)
address space: workloads allocate named buffers, copy numpy arrays in and
out (the ``cudaMalloc``/``cudaMemcpy`` equivalents), and the emulator reads
and writes scalars at absolute byte addresses during kernel execution.

Shared memory is modeled separately by :class:`SharedMemory`, one instance
per CTA, addressed from offset 0 (matching how PTX shared-space addressing
works after symbol resolution).
"""

from __future__ import annotations

import bisect
import struct
from typing import Dict, List

import numpy as np

from ..ptx.isa import DType

#: Base of the global heap: matches the look of real CUDA device pointers
#: and keeps address 0 invalid (null).
GLOBAL_BASE = 0x1000_0000

#: Allocation alignment.  256 B mirrors cudaMalloc's guarantee and keeps
#: buffers aligned to the 128 B blocks the locality analysis uses.
ALLOC_ALIGN = 256

_STRUCT_FMT = {
    DType.U8: "<B", DType.S8: "<b",
    DType.U16: "<H", DType.S16: "<h",
    DType.U32: "<I", DType.S32: "<i",
    DType.B32: "<I",
    DType.U64: "<Q", DType.S64: "<q",
    DType.B64: "<Q",
    DType.F32: "<f", DType.F64: "<d",
}

_NP_DTYPE = {
    DType.U8: np.uint8, DType.S8: np.int8,
    DType.U16: np.uint16, DType.S16: np.int16,
    DType.U32: np.uint32, DType.S32: np.int32, DType.B32: np.uint32,
    DType.U64: np.uint64, DType.S64: np.int64, DType.B64: np.uint64,
    DType.F32: np.float32, DType.F64: np.float64,
}


class MemoryError_(Exception):
    """Access outside any allocation, or a misaligned access (the
    emulator's segfault).

    ``addr`` carries the faulting byte address so the emulator can
    attach warp/lane context when it re-raises as
    :class:`repro.emulator.machine.MemoryFaultError`.
    """

    def __init__(self, message, addr=None):
        super().__init__(message)
        self.addr = addr
        #: faulting lane, attached by the execution engines when known.
        self.lane = None


class Allocation:
    """One contiguous named device buffer."""

    __slots__ = ("name", "base", "size", "data")

    def __init__(self, name, base, size):
        self.name = name
        self.base = base
        self.size = size
        self.data = bytearray(size)

    @property
    def end(self):
        return self.base + self.size

    def __repr__(self):
        return "Allocation(%r, base=%#x, size=%d)" % (
            self.name, self.base, self.size)


class MemoryImage:
    """The global device address space: named allocations + typed access."""

    def __init__(self, base=GLOBAL_BASE):
        self._next = base
        self._allocs: List[Allocation] = []
        self._bases: List[int] = []
        self._by_name: Dict[str, Allocation] = {}

    # -- allocation -------------------------------------------------------

    def alloc(self, name, nbytes):
        """Allocate ``nbytes``; returns the base address."""
        if name in self._by_name:
            raise ValueError("allocation %r already exists" % name)
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        base = (self._next + ALLOC_ALIGN - 1) // ALLOC_ALIGN * ALLOC_ALIGN
        alloc = Allocation(name, base, nbytes)
        self._allocs.append(alloc)
        self._bases.append(base)
        self._by_name[name] = alloc
        self._next = base + nbytes
        return base

    def alloc_array(self, name, array):
        """Allocate and copy a numpy array in; returns the base address."""
        array = np.ascontiguousarray(array)
        base = self.alloc(name, array.nbytes)
        alloc = self._by_name[name]
        alloc.data[:] = array.tobytes()
        return base

    def base_of(self, name):
        return self._by_name[name].base

    def allocation(self, name):
        return self._by_name[name]

    def read_array(self, name, np_dtype, count=None):
        """Copy an allocation out as a numpy array."""
        alloc = self._by_name[name]
        arr = np.frombuffer(bytes(alloc.data), dtype=np_dtype)
        if count is not None:
            arr = arr[:count]
        return arr.copy()

    def write_array(self, name, array):
        """Overwrite an allocation's contents from a numpy array."""
        alloc = self._by_name[name]
        raw = np.ascontiguousarray(array).tobytes()
        if len(raw) > alloc.size:
            raise ValueError("array larger than allocation %r" % name)
        alloc.data[:len(raw)] = raw

    # -- scalar access ---------------------------------------------------------

    def _find(self, addr):
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            alloc = self._allocs[i]
            if alloc.base <= addr < alloc.end:
                return alloc
        raise MemoryError_("invalid global access at %#x" % addr, addr=addr)

    def load(self, addr, dtype):
        """Read one scalar of ``dtype`` at absolute address ``addr``."""
        alloc = self._find(addr)
        size = dtype.nbytes
        if addr % size:
            raise MemoryError_("misaligned %d-byte load at %#x"
                               % (size, addr), addr=addr)
        off = addr - alloc.base
        if off + size > alloc.size:
            raise MemoryError_("access at %#x crosses end of %r"
                               % (addr, alloc.name), addr=addr)
        return struct.unpack_from(_STRUCT_FMT[dtype], alloc.data, off)[0]

    def store(self, addr, dtype, value):
        """Write one scalar of ``dtype`` at absolute address ``addr``."""
        alloc = self._find(addr)
        size = dtype.nbytes
        if addr % size:
            raise MemoryError_("misaligned %d-byte store at %#x"
                               % (size, addr), addr=addr)
        off = addr - alloc.base
        if off + size > alloc.size:
            raise MemoryError_("access at %#x crosses end of %r"
                               % (addr, alloc.name), addr=addr)
        struct.pack_into(_STRUCT_FMT[dtype], alloc.data, off, value)

    def valid(self, addr):
        """True when ``addr`` falls inside some allocation."""
        try:
            self._find(addr)
            return True
        except MemoryError_:
            return False

    def allocations(self):
        return list(self._allocs)

    # -- fast accessors (compiled-engine hot path) -------------------------

    def loader(self, dtype):
        """A ``load(addr) -> value`` closure specialized for ``dtype``.

        Binds the struct codec once and caches the last-hit allocation
        (accesses are strongly clustered per buffer), falling back to
        :meth:`load` on any miss/misalignment so faults raise the exact
        same :class:`MemoryError_` messages as the slow path.
        """
        cache = self.__dict__.setdefault("_fast_loaders", {})
        fn = cache.get(dtype)
        if fn is None:
            fn = cache[dtype] = self._make_accessor(dtype, store=False)
        return fn

    def storer(self, dtype):
        """A ``store(addr, value)`` closure; see :meth:`loader`."""
        cache = self.__dict__.setdefault("_fast_storers", {})
        fn = cache.get(dtype)
        if fn is None:
            fn = cache[dtype] = self._make_accessor(dtype, store=True)
        return fn

    def _make_accessor(self, dtype, store):
        codec = struct.Struct(_STRUCT_FMT[dtype])
        size = codec.size
        bases = self._bases          # list identity survives alloc()
        allocs = self._allocs
        bisect_right = bisect.bisect_right
        # last-hit allocation as a flat [base, end, data] cell: the hot
        # path touches only locals, no attribute/property lookups.
        # (Allocation.data is mutated in place, never rebound, so the
        # cached buffer stays the live one.)
        last = [0, 0, b""]
        if store:
            pack_into = codec.pack_into
            slow = self.store

            def store_fast(addr, value):
                base, end, data = last
                if not base <= addr < end:
                    i = bisect_right(bases, addr) - 1
                    if i < 0:
                        return slow(addr, dtype, value)  # raises
                    alloc = allocs[i]
                    base = alloc.base
                    end = base + alloc.size
                    if not base <= addr < end:
                        return slow(addr, dtype, value)  # raises
                    data = alloc.data
                    last[0] = base
                    last[1] = end
                    last[2] = data
                if addr % size or addr + size > end:
                    return slow(addr, dtype, value)  # raises
                pack_into(data, addr - base, value)
            return store_fast

        unpack_from = codec.unpack_from
        slow = self.load

        def load_fast(addr):
            base, end, data = last
            if not base <= addr < end:
                i = bisect_right(bases, addr) - 1
                if i < 0:
                    return slow(addr, dtype)  # raises
                alloc = allocs[i]
                base = alloc.base
                end = base + alloc.size
                if not base <= addr < end:
                    return slow(addr, dtype)  # raises
                data = alloc.data
                last[0] = base
                last[1] = end
                last[2] = data
            if addr % size or addr + size > end:
                return slow(addr, dtype)  # raises
            return unpack_from(data, addr - base)[0]
        return load_fast


class SharedMemory:
    """Per-CTA shared memory, addressed from offset 0."""

    def __init__(self, size):
        self.size = max(size, 1)
        self.data = bytearray(self.size)

    def load(self, addr, dtype):
        size = dtype.nbytes
        if addr < 0 or addr + size > self.size:
            raise MemoryError_("invalid shared access at %#x (size %d)"
                               % (addr, self.size), addr=addr)
        if addr % size:
            raise MemoryError_("misaligned %d-byte shared load at %#x"
                               % (size, addr), addr=addr)
        return struct.unpack_from(_STRUCT_FMT[dtype], self.data, addr)[0]

    def store(self, addr, dtype, value):
        size = dtype.nbytes
        if addr < 0 or addr + size > self.size:
            raise MemoryError_("invalid shared access at %#x (size %d)"
                               % (addr, self.size), addr=addr)
        if addr % size:
            raise MemoryError_("misaligned %d-byte shared store at %#x"
                               % (size, addr), addr=addr)
        struct.pack_into(_STRUCT_FMT[dtype], self.data, addr, value)

    def loader(self, dtype):
        """A ``load(addr) -> value`` closure specialized for ``dtype``
        (same fault behavior as :meth:`load`; compiled-engine hot path)."""
        cache = self.__dict__.setdefault("_fast_loaders", {})
        fn = cache.get(dtype)
        if fn is None:
            codec = struct.Struct(_STRUCT_FMT[dtype])
            size, unpack_from = codec.size, codec.unpack_from
            data, limit, slow = self.data, self.size, self.load

            def load_fast(addr):
                if addr < 0 or addr + size > limit or addr % size:
                    return slow(addr, dtype)  # raises
                return unpack_from(data, addr)[0]
            fn = cache[dtype] = load_fast
        return fn

    def storer(self, dtype):
        """A ``store(addr, value)`` closure; see :meth:`loader`."""
        cache = self.__dict__.setdefault("_fast_storers", {})
        fn = cache.get(dtype)
        if fn is None:
            codec = struct.Struct(_STRUCT_FMT[dtype])
            size, pack_into = codec.size, codec.pack_into
            data, limit, slow = self.data, self.size, self.store

            def store_fast(addr, value):
                if addr < 0 or addr + size > limit or addr % size:
                    return slow(addr, dtype, value)  # raises
                pack_into(data, addr, value)
            fn = cache[dtype] = store_fast
        return fn


def np_dtype_for(dtype):
    """The numpy dtype matching a PTX :class:`DType`."""
    return _NP_DTYPE[dtype]
