"""The one rendering of a metrics registry for external consumers.

Both exporters — the ``repro metrics export`` CLI and the analysis
service's ``GET /metrics`` endpoint — call :func:`render`, so the two
surfaces can never drift: a scrape of the service and a CLI export
over the same registry are byte-identical (a parity test pins this).
"""

from __future__ import annotations

import json

from .metrics import get_registry

#: formats :func:`render` accepts.
FORMATS = ("prom", "json")


def render_prometheus(registry=None, prefix="repro"):
    """The registry as Prometheus text exposition."""
    registry = registry if registry is not None else get_registry()
    return registry.to_prometheus(prefix=prefix)


def render_json(registry=None):
    """The registry snapshot as canonical JSON text (sorted keys,
    indent 2, trailing newline)."""
    registry = registry if registry is not None else get_registry()
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n"


def render(registry=None, fmt="prom"):
    """Render a registry in one of :data:`FORMATS`."""
    if fmt == "prom":
        return render_prometheus(registry)
    if fmt == "json":
        return render_json(registry)
    raise ValueError("unknown metrics format %r (choices: %s)"
                     % (fmt, ", ".join(FORMATS)))


__all__ = ["FORMATS", "render", "render_json", "render_prometheus"]
