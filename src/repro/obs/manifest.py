"""Exportable run manifests: what ran, with what, and what came out.

Every experiment/figure run can be stamped with a :class:`RunManifest`:
the command and its arguments, the tool versions that shape results
(emulator semantics, trace format, Python), per-application outcome
records (status, pipeline stage reached, wall-clock, trace-cache
hit/miss), the structured failure records, and a full metrics-registry
snapshot.  ``repro figures`` writes one as ``manifest.json`` next to its
outputs; its failure list is by construction the same data as
``failures.json``, so the two can never disagree.

Wall-clock fields live here (and in spans) rather than in the metrics
registry, which is reserved for deterministic counts — see
DESIGN.md section 9.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

#: manifest schema version, bumped on incompatible layout changes.
MANIFEST_VERSION = 1


def tool_versions():
    """The version facts that determine whether two runs are comparable."""
    from ..emulator.machine import EMULATOR_VERSION
    from ..emulator.serialize import FORMAT_VERSION

    return {
        "python": platform.python_version(),
        "emulator": EMULATOR_VERSION,
        "trace_format": FORMAT_VERSION,
        "manifest": MANIFEST_VERSION,
    }


@dataclass
class AppRecord:
    """Per-application outcome inside a manifest."""

    name: str
    status: str                      # "ok" | "failed"
    stage: Optional[str] = None      # failing stage, or None when ok
    error: Optional[str] = None
    wall_seconds: Optional[float] = None
    trace_cache: Optional[str] = None  # "hit" | "miss" | None (unused)
    engine: Optional[str] = None     # the engine that produced the trace
    seed: Optional[object] = None
    #: engine downgrades recorded during the run (the
    #: :meth:`~repro.resilience.fallback.FallbackEvent.to_json` dicts);
    #: ``None`` when the run stayed on its requested engine.
    fallbacks: Optional[List[Dict[str, object]]] = None

    def to_json(self):
        out = {"name": self.name, "status": self.status}
        for key in ("stage", "error", "wall_seconds", "trace_cache",
                    "engine", "seed", "fallbacks"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


class RunManifest:
    """Accumulates one run's provenance; serializes to JSON."""

    def __init__(self, command, arguments=None):
        self.command = command
        self.arguments: Dict[str, object] = dict(arguments or {})
        self.started_at = time.time()
        self.finished_at: Optional[float] = None
        self.versions = tool_versions()
        self.hostname = platform.node()
        self.apps: List[AppRecord] = []
        self.failures: List[Dict[str, object]] = []
        self.metrics: Optional[Dict[str, object]] = None
        #: free-form JSON-serializable sections stamped into the
        #: manifest by the producing command (e.g. the sweep engine's
        #: per-shard point statuses).  Empty sections are omitted.
        self.extras: Dict[str, object] = {}

    # -- recording --------------------------------------------------------

    def record_result(self, result):
        """Record one runner outcome (:class:`AppResult` or
        :class:`AppFailure`); returns the :class:`AppRecord`."""
        if result.ok:
            meta = getattr(result, "meta", {}) or {}
            record = AppRecord(
                name=result.name, status="ok",
                wall_seconds=meta.get("wall_seconds"),
                trace_cache=meta.get("trace_cache"),
                engine=meta.get("engine"),
                seed=meta.get("seed"),
                fallbacks=meta.get("fallbacks"))
        else:
            record = AppRecord(
                name=result.name, status="failed",
                stage=result.stage, error=result.error)
            self.failures.append(result.to_json())
        self.apps.append(record)
        return record

    def attach_metrics(self, registry=None):
        """Snapshot a metrics registry into the manifest (the process
        registry by default)."""
        from .metrics import get_registry

        reg = registry if registry is not None else get_registry()
        self.metrics = reg.snapshot()
        return self.metrics

    def finish(self):
        self.finished_at = time.time()
        return self

    # -- summaries --------------------------------------------------------

    def summary(self):
        ok = [a for a in self.apps if a.status == "ok"]
        return {
            "apps": len(self.apps),
            "completed": len(ok),
            "failed": len(self.apps) - len(ok),
            "trace_cache_hits": sum(1 for a in ok
                                    if a.trace_cache == "hit"),
            "trace_cache_misses": sum(1 for a in ok
                                      if a.trace_cache == "miss"),
            "wall_seconds": (self.finished_at - self.started_at
                             if self.finished_at is not None else None),
        }

    # -- serialization ----------------------------------------------------

    def to_json(self):
        if self.finished_at is None:
            self.finish()
        out = {
            "command": self.command,
            "arguments": self.arguments,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "hostname": self.hostname,
            "versions": self.versions,
            "summary": self.summary(),
            "apps": [a.to_json() for a in self.apps],
            "failures": self.failures,
            "metrics": self.metrics,
        }
        if self.extras:
            out["extras"] = dict(self.extras)
        return out

    def write(self, path):
        from ..resilience.artifacts import atomic_write_json

        return atomic_write_json(path, self.to_json())


def load_manifest(path):
    """Read a manifest written by :meth:`RunManifest.write` back as a
    plain dict (no object reconstruction — manifests are artifacts)."""
    with open(path) as fh:
        return json.load(fh)
