"""Publishing bridges: pipeline objects → metrics-registry series.

The emulator trace, the simulator's :class:`~repro.sim.stats.SimStats`
and the locality report all keep their own cheap in-object counters
(the hot paths are untouched); this module converts each of them into
registry series at application granularity.  The published values are
*exactly* the inputs of the paper's figures — ``figures.fig1_data`` can
be recomputed from ``app.loads.dynamic``, ``fig2_data`` from
``sim.class.requests`` / ``sim.class.warp_insts``, ``fig3_data`` from
``sim.l1.cycles`` and ``fig8_data`` from the ``sim.class.l*`` counters —
and ``tests/obs/test_bridge.py`` asserts that correspondence value for
value.

Everything published here is a deterministic function of the executed
work, never of wall-clock time, so two runs of the same workload (even
on different emulator engines) produce identical series.
"""

from __future__ import annotations


from ..sim.stats import CLASS_LABELS
from .metrics import get_registry

#: per-class ClassStats fields → counter names (the Figure 2/5/8 inputs).
_CLASS_FIELDS = {
    "warp_insts": "sim.class.warp_insts",
    "requests": "sim.class.requests",
    "active_threads": "sim.class.active_threads",
    "l1_hit": "sim.class.l1_hit",
    "l1_hit_reserved": "sim.class.l1_hit_reserved",
    "l1_miss": "sim.class.l1_miss",
    "l2_hit": "sim.class.l2_hit",
    "l2_miss": "sim.class.l2_miss",
    "completed": "sim.class.completed",
    "turnaround_sum": "sim.class.turnaround_cycles",
    "wait_prev_sum": "sim.class.wait_prev_cycles",
    "wait_cur_sum": "sim.class.wait_cur_cycles",
}

#: scalar SimStats fields → counter names.
_SIM_FIELDS = {
    "issued_warp_insts": "sim.issued_warp_insts",
    "shared_load_insts": "sim.shared_load_insts",
    "global_load_insts": "sim.global_load_insts",
    "global_store_insts": "sim.global_store_insts",
    "active_sm_cycles": "sim.active_sm_cycles",
    "icnt_injected": "sim.icnt.injected",
    "icnt_queue_delay": "sim.icnt.queue_delay_cycles",
    "l2_stall_cycles": "sim.l2.stall_cycles",
    "dram_reads": "sim.dram.reads",
    "dram_writes": "sim.dram.writes",
    "prefetch_issued": "sim.prefetch.issued",
    "prefetch_dropped": "sim.prefetch.dropped",
    "shared_bank_conflict_cycles": "sim.shared.bank_conflict_cycles",
}


def publish_trace(name, run, registry=None):
    """Emulator-trace counters for one application (no timing model).

    ``app.loads.dynamic{app,load_category}`` carries the dynamic D/N
    global-load split — Figure 1's exact input; the ``app.trace.*``
    family carries the Table I instruction counts; ``app.coalescing.*``
    carries the trace-level coalescing summary (Figure 2's trace-side
    counterpart and the golden-stats headline numbers).
    """
    from ..sim.coalescer import summarize_trace

    reg = registry if registry is not None else get_registry()
    det, nondet = run.dynamic_class_split()
    dynamic = reg.counter(
        "app.loads.dynamic",
        "dynamic global-load warp instructions per load class (Figure 1)")
    dynamic.inc(det, app=name, load_category="D")
    dynamic.inc(nondet, app=name, load_category="N")

    trace = run.trace
    reg.counter("app.trace.launches",
                "kernel launches per application").inc(
        len(trace), app=name)
    reg.counter("app.trace.warp_insts",
                "executed warp instructions per application").inc(
        trace.total_warp_instructions(), app=name)
    reg.counter("app.trace.global_loads",
                "executed global-load warp instructions").inc(
        trace.global_load_warp_count(), app=name)
    reg.counter("app.trace.shared_loads",
                "executed shared-load warp instructions").inc(
        trace.shared_load_warp_count(), app=name)

    summary = summarize_trace(trace, run.classifications)
    warp_loads = reg.counter(
        "app.coalescing.warp_loads",
        "global-load warp instructions entering the coalescer, per class")
    requests = reg.counter(
        "app.coalescing.requests",
        "128B memory requests after coalescing, per class (Figure 2)")
    uncoalesced = reg.counter(
        "app.coalescing.uncoalesced_loads",
        "warp loads producing more than one memory request, per class")
    for label in CLASS_LABELS:
        warp_loads.inc(summary.warp_loads[label], app=name,
                       load_category=label)
        requests.inc(summary.requests[label], app=name,
                     load_category=label)
        uncoalesced.inc(summary.uncoalesced[label], app=name,
                        load_category=label)
    return reg


def publish_sim(name, stats, registry=None):
    """Timing-simulation counters for one application.

    Everything the figure layer reads from :class:`SimStats` — the
    per-class counters (Figures 2, 5, 8), the L1 cycle outcomes
    (Figure 3), unit busy cycles (Figure 4) and the issue-stall,
    interconnect, DRAM and prefetch telemetry — as labelled series.
    """
    reg = registry if registry is not None else get_registry()
    for field, metric_name in _CLASS_FIELDS.items():
        counter = reg.counter(metric_name)
        for label in CLASS_LABELS:
            counter.inc(getattr(stats.classes[label], field),
                        app=name, load_category=label)
    l1_cycles = reg.counter(
        "sim.l1.cycles",
        "L1 cache cycles by outcome and load class (Figure 3)")
    for label in CLASS_LABELS:
        for outcome, cycles in stats.l1_cycles_by_class[label].items():
            l1_cycles.inc(cycles, app=name, load_category=label,
                          outcome=outcome.value)
    unit_busy = reg.counter("sim.unit_busy_cycles",
                            "functional-unit busy cycles (Figure 4)")
    for unit, cycles in stats.unit_busy.items():
        unit_busy.inc(cycles, app=name, unit=unit)
    issue_stall = reg.counter("sim.issue_stall_cycles",
                              "SM-active cycles with no issue, by reason")
    for reason, cycles in stats.issue_stall.items():
        issue_stall.inc(cycles, app=name, reason=reason)
    for field, metric_name in _SIM_FIELDS.items():
        reg.counter(metric_name).inc(getattr(stats, field), app=name)
    reg.gauge("sim.cycles", "simulated cycles per application").set(
        stats.cycles, app=name)
    return reg


def publish_locality(name, locality, registry=None):
    """Locality-report gauges — Figures 10 and 11's exact inputs."""
    reg = registry if registry is not None else get_registry()
    reg.gauge("locality.cold_miss_ratio",
              "fraction of global-load accesses that are cold misses "
              "(Figure 10)").set(locality.cold_miss_ratio, app=name)
    reg.gauge("locality.accesses_per_block",
              "mean accesses per 128B block (Figure 10)").set(
        locality.mean_accesses_per_block, app=name)
    reg.gauge("locality.shared_block_ratio",
              "fraction of blocks touched by more than one CTA "
              "(Figure 11)").set(locality.shared_block_ratio, app=name)
    reg.gauge("locality.shared_access_ratio",
              "fraction of accesses to multi-CTA blocks (Figure 11)").set(
        locality.shared_access_ratio, app=name)
    reg.gauge("locality.mean_ctas_per_shared_block",
              "mean CTA count on shared blocks (Figure 11)").set(
        locality.mean_ctas_per_shared_block, app=name)
    return reg


def publish_result(result, registry=None):
    """Publish one :class:`~repro.experiments.runner.AppResult` whole:
    trace counters, simulation counters (when simulated) and locality
    gauges."""
    reg = registry if registry is not None else get_registry()
    publish_trace(result.name, result.run, reg)
    if result.stats is not None:
        publish_sim(result.name, result.stats, reg)
    if result.locality is not None:
        publish_locality(result.name, result.locality, reg)
    return reg
