"""Hierarchical metrics registry: counters, gauges and histograms.

Every layer of the pipeline — the emulator, the timing simulator's
components (coalescer-fed class counters, MSHRs, interconnect, memory
partitions), the trace cache and the experiment runner — publishes into
one :class:`MetricsRegistry` under dotted hierarchical names
(``sim.class.requests``, ``trace_cache.lookups``) with labels such as
``app``, ``kernel``, ``load_category`` and ``sm``.

Design rules (DESIGN.md section 9):

* hot loops never touch the registry.  Components accumulate into their
  existing cheap counters (:class:`~repro.sim.stats.SimStats`, the
  trace-cache module counters) and *publish* aggregates at stage
  boundaries — per launch, per application, per lookup.  The old stats
  objects therefore keep working unchanged; the registry is a layer on
  top of them, not a replacement of their hot paths (the compatibility
  shim the refactor preserves);
* metric values must be **deterministic functions of the work done**:
  counts, never wall-clock durations.  Timing lives in spans
  (:mod:`repro.obs.tracing`) and in run manifests
  (:mod:`repro.obs.manifest`), which are allowed to differ between
  runs.  This is what lets the differential test assert that the scalar
  and vectorized engines produce *identical registry snapshots*;
* label sets are closed and low-cardinality (apps, kernels, the three
  load classes, SM/partition indices), so exports stay small.

A process-global default registry is returned by :func:`get_registry`;
tests and CLI commands swap in a fresh one with :func:`isolated_registry`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry", "isolated_registry",
]

#: default histogram bucket upper bounds (generic powers-of-4 scale that
#: suits both request counts and cycle-ish magnitudes).
DEFAULT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, float("inf"))


def _label_key(labels):
    """Canonical, deterministic encoding of a label dict."""
    if not labels:
        return ""
    return ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))


def _parse_label_key(key):
    """Inverse of :func:`_label_key` (used by exporters and tests)."""
    if not key:
        return {}
    out = {}
    for part in key.split(","):
        k, _, v = part.partition("=")
        out[k] = v
    return out


class _Metric:
    """Common base: one named family of labelled series."""

    kind = "untyped"

    def __init__(self, name, help="", registry=None):
        self.name = name
        self.help = help
        self._registry = registry
        self._series: Dict[str, object] = {}

    def _lock(self):
        return self._registry._lock if self._registry is not None \
            else threading.Lock()

    def labels(self):
        """Sorted label-key strings of every series."""
        return sorted(self._series)

    def series(self):
        """``{label_key: value}`` snapshot (deterministically ordered)."""
        return {key: self._series[key] for key in sorted(self._series)}


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        key = _label_key(labels)
        with self._lock():
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels):
        return self._series.get(_label_key(labels), 0)

    def total(self):
        return sum(self._series.values())


class Gauge(_Metric):
    """A value that can go up and down (set-only in this codebase)."""

    kind = "gauge"

    def set(self, value, **labels):
        with self._lock():
            self._series[_label_key(labels)] = value

    def set_max(self, value, **labels):
        """Keep the running maximum (high-water marks)."""
        key = _label_key(labels)
        with self._lock():
            current = self._series.get(key)
            if current is None or value > current:
                self._series[key] = value

    def value(self, **labels):
        return self._series.get(_label_key(labels))


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name, help="", registry=None,
                 buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, registry)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets or self.buckets[-1] != float("inf"):
            self.buckets = self.buckets + (float("inf"),)

    def observe(self, value, **labels):
        key = _label_key(labels)
        with self._lock():
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "count": 0, "sum": 0.0,
                    "buckets": [0] * len(self.buckets)}
            series["count"] += 1
            series["sum"] += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["buckets"][i] += 1
                    break

    def count(self, **labels):
        series = self._series.get(_label_key(labels))
        return series["count"] if series else 0

    def sum(self, **labels):
        series = self._series.get(_label_key(labels))
        return series["sum"] if series else 0.0

    def mean(self, **labels):
        series = self._series.get(_label_key(labels))
        if not series or not series["count"]:
            return 0.0
        return series["sum"] / series["count"]


class MetricsRegistry:
    """Process-wide home of every metric family.

    Registration is idempotent: asking for an existing name returns the
    existing family (so library modules can declare their metrics at the
    point of use without import-order coupling); re-registering under a
    different kind is an error.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    # -- registration -----------------------------------------------------

    def _register(self, cls, name, help, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        "metric %r already registered as a %s"
                        % (name, existing.kind))
                return existing
            metric = cls(name, help=help, registry=self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help=""):
        return self._register(Counter, name, help)

    def gauge(self, name, help=""):
        return self._register(Gauge, name, help)

    def histogram(self, name, help="", buckets=DEFAULT_BUCKETS):
        return self._register(Histogram, name, help, buckets=buckets)

    # -- access -----------------------------------------------------------

    def get(self, name):
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def __contains__(self, name):
        return name in self._metrics

    def reset(self):
        with self._lock:
            self._metrics.clear()

    # -- exports ----------------------------------------------------------

    def snapshot(self):
        """A plain, deterministic, JSON-serializable dump of every series.

        ``{kind: {name: {label_key: value}}}`` with all keys sorted.
        Two runs that performed identical work produce identical
        snapshots — the property the engine-differential suite asserts.
        """
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.kind == "histogram":
                    out["histograms"][name] = {
                        key: {"count": s["count"], "sum": s["sum"],
                              "buckets": list(s["buckets"])}
                        for key, s in metric.series().items()}
                elif metric.kind == "gauge":
                    out["gauges"][name] = metric.series()
                else:
                    out["counters"][name] = metric.series()
        return out

    def to_prometheus(self, prefix="repro"):
        """Render every series as a Prometheus text-format exposition.

        Dotted names become underscore-separated (``sim.class.requests``
        → ``repro_sim_class_requests``); counters get the conventional
        ``_total`` suffix.
        """
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                flat = "%s_%s" % (prefix, name.replace(".", "_").
                                  replace("-", "_"))
                if metric.kind == "counter" and not flat.endswith("_total"):
                    flat += "_total"
                if metric.help:
                    lines.append("# HELP %s %s" % (flat, metric.help))
                lines.append("# TYPE %s %s" % (flat, metric.kind))
                for key, value in metric.series().items():
                    labels = _parse_label_key(key)
                    if metric.kind == "histogram":
                        cumulative = 0
                        for bound, count in zip(metric.buckets,
                                                value["buckets"]):
                            cumulative += count
                            le = "+Inf" if bound == float("inf") \
                                else _format_value(bound)
                            lines.append("%s_bucket%s %s" % (
                                flat,
                                _prom_labels(labels, le=le),
                                cumulative))
                        lines.append("%s_sum%s %s" % (
                            flat, _prom_labels(labels),
                            _format_value(value["sum"])))
                        lines.append("%s_count%s %s" % (
                            flat, _prom_labels(labels), value["count"]))
                    else:
                        rendered = _format_value(value) \
                            if value is not None else "NaN"
                        lines.append("%s%s %s" % (
                            flat, _prom_labels(labels), rendered))
        return "\n".join(lines) + "\n"


def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _prom_labels(labels, **extra):
    merged = dict(labels)
    merged.update(extra)
    if not merged:
        return ""
    inner = ",".join('%s="%s"' % (k, str(v).replace("\\", "\\\\").
                                  replace('"', '\\"'))
                     for k, v in sorted(merged.items()))
    return "{%s}" % inner


# ---------------------------------------------------------------------------
# the process-global default registry
# ---------------------------------------------------------------------------

_registry = MetricsRegistry()


def get_registry():
    """The current process-global registry (swappable for isolation)."""
    return _registry


def set_registry(registry):
    """Replace the global registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def isolated_registry(registry=None):
    """Temporarily swap in a fresh (or provided) registry.

    Used by tests and by CLI commands that want an export scoped to one
    command invocation rather than the process lifetime.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
