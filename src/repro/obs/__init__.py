"""Observability layer: metrics registry, span tracing, run manifests.

Three cooperating subsystems (DESIGN.md section 9):

* :mod:`repro.obs.metrics` — a hierarchical registry of labelled
  counters/gauges/histograms that every pipeline layer publishes into;
  values are deterministic counts, exportable as JSON snapshots or
  Prometheus text (``repro metrics export``);
* :mod:`repro.obs.tracing` — span-based wall-clock tracing with
  parent/child nesting across parse → emulate → simulate → profile,
  renderable as a timeline tree or Chrome ``trace_event`` JSON
  (``repro trace <app>``);
* :mod:`repro.obs.manifest` — per-run provenance records (config,
  seeds, cache hits, wall-clock, failures, metrics snapshot) written by
  ``repro figures`` as ``manifest.json``.

:mod:`repro.obs.bridge` converts the pipeline's existing stats objects
(:class:`~repro.sim.stats.SimStats`, traces, locality reports) into
registry series whose values are exactly the figures' inputs.
"""

from .bridge import (
    publish_locality,
    publish_result,
    publish_sim,
    publish_trace,
)
from .manifest import AppRecord, RunManifest, load_manifest, tool_versions
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    isolated_registry,
    set_registry,
)
from .tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)

__all__ = [
    "AppRecord", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL_TRACER", "RunManifest", "Span", "Tracer",
    "current_span", "get_registry", "get_tracer", "isolated_registry",
    "load_manifest", "publish_locality", "publish_result", "publish_sim",
    "publish_trace", "set_registry", "set_tracer", "span", "tool_versions",
    "use_tracer",
]
