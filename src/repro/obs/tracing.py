"""Span-based tracing for the parse → emulate → simulate → profile pipeline.

A *span* is one timed region of work with a name, attributes, and
parent/child nesting; the library emits them from every pipeline stage
(``repro.workloads.base`` for parse/setup/emulate/verify,
``repro.emulator.machine`` per kernel launch, ``repro.sim.gpu`` per
simulated launch, ``repro.experiments.runner`` per application and
stage).  Instrumentation uses the module-level :func:`span` helper::

    from ..obs import tracing

    with tracing.span("emulate.launch", kernel=kernel.name) as sp:
        ...
        sp.set(warp_insts=n)

By default the current tracer is a disabled no-op whose spans cost one
dict lookup and no allocation, so library callers never pay for tracing
they did not ask for.  ``repro trace <app>`` (and tests) install a real
:class:`Tracer` with :func:`use_tracer`, then render the recorded tree
(:meth:`Tracer.render_tree`) or export Chrome ``trace_event`` JSON
(:meth:`Tracer.to_chrome_trace`) loadable in Perfetto / ``chrome://tracing``.

Span *timing* is wall-clock (monotonic) and therefore run-dependent;
anything that must be reproducible belongs in the metrics registry
(:mod:`repro.obs.metrics`), not in span durations.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = [
    "Span", "Tracer", "NULL_TRACER",
    "get_tracer", "set_tracer", "use_tracer", "span", "current_span",
]


class Span:
    """One timed, attributed region of work."""

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children",
                 "thread_id")

    def __init__(self, name, attrs, start_ns, thread_id):
        self.name = name
        self.attrs: Dict[str, object] = attrs
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.children: List["Span"] = []
        self.thread_id = thread_id

    def set(self, **attrs):
        """Attach (or overwrite) attributes after the span started."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self):
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self):
        return self.duration_ns / 1e6

    def find(self, name):
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        """Yield ``(depth, span)`` over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def __repr__(self):
        return "Span(%r, %.3fms, %d children)" % (
            self.name, self.duration_ms, len(self.children))


class _NullSpan:
    """The span handed out by a disabled tracer: accepts everything,
    records nothing."""

    __slots__ = ()

    def set(self, **attrs):
        return self

    name = None
    attrs: Dict[str, object] = {}
    children: List[Span] = []


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans with thread-local nesting.

    ``enabled=False`` turns every :meth:`span` into a no-op context;
    the module-level :data:`NULL_TRACER` is exactly that and serves as
    the process default.
    """

    def __init__(self, enabled=True):
        self.enabled = enabled
        self.roots: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        #: epoch base so exported timestamps are small positive offsets.
        self._epoch_ns = time.perf_counter_ns()

    # -- recording --------------------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name, **attrs):
        if not self.enabled:
            yield _NULL_SPAN
            return
        sp = Span(name, dict(attrs), time.perf_counter_ns(),
                  threading.get_ident())
        stack = self._stack()
        if stack:
            stack[-1].children.append(sp)
        else:
            with self._lock:
                self.roots.append(sp)
        stack.append(sp)
        try:
            yield sp
        finally:
            sp.end_ns = time.perf_counter_ns()
            stack.pop()

    def current(self):
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def find(self, name):
        """First span named ``name`` anywhere in the forest."""
        for root in self.roots:
            if root.name == name:
                return root
            found = root.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        for root in self.roots:
            yield from root.walk()

    # -- rendering --------------------------------------------------------

    def render_tree(self, attr_limit=4):
        """ASCII timeline tree: duration, name and leading attributes."""
        lines = []
        for depth, sp in self.walk():
            attrs = ""
            if sp.attrs:
                shown = list(sp.attrs.items())[:attr_limit]
                attrs = "  [%s]" % ", ".join(
                    "%s=%s" % kv for kv in shown)
                if len(sp.attrs) > attr_limit:
                    attrs = attrs[:-1] + ", ...]"
            lines.append("%10.3f ms  %s%s%s"
                         % (sp.duration_ms, "  " * depth, sp.name, attrs))
        return "\n".join(lines)

    # -- Chrome trace_event export ---------------------------------------

    def to_chrome_trace(self, process_name="repro"):
        """The Chrome ``trace_event`` JSON object (Perfetto-loadable).

        Every span becomes one complete (``"ph": "X"``) event with
        microsecond timestamps relative to the tracer's creation; span
        attributes ride along in ``args``.
        """
        events = [{
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }]
        for _depth, sp in self.walk():
            events.append({
                "name": sp.name,
                "cat": sp.name.split(".")[0],
                "ph": "X",
                "pid": 0,
                "tid": sp.thread_id % 100000,
                "ts": (sp.start_ns - self._epoch_ns) / 1000.0,
                "dur": sp.duration_ns / 1000.0,
                "args": {k: _jsonable(v) for k, v in sp.attrs.items()},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path, process_name="repro"):
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(process_name), fh, indent=1)
            fh.write("\n")
        return path


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


#: the process default: tracing off, spans are free.
NULL_TRACER = Tracer(enabled=False)

_tracer = NULL_TRACER


def get_tracer():
    return _tracer


def set_tracer(tracer):
    """Install ``tracer`` as the process-current tracer; returns the
    previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer=None):
    """Temporarily install a (fresh by default) enabled tracer."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name, **attrs):
    """Open a span on the process-current tracer (no-op by default)."""
    return _tracer.span(name, **attrs)


def current_span():
    return _tracer.current()
