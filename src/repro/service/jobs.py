"""Job model for the analysis service: requests, records, content keys.

A **job request** names one analysis of one kernel set — the PTX (or a
registered workload that provides both PTX and inputs), the input
``scale``/``seed``, the emulator engine, simulator knobs and which
analysis stages to run.  Its :meth:`~JobRequest.key` is a SHA-256 over
the canonical request fields *plus the tool versions that shape
results* (exactly the trick the sweep engine's point keys use): two
requests with the same key are guaranteed to produce byte-identical
result payloads, so results are content-addressed in the artifact
store and an idempotent resubmission can be served from storage
without re-emulating anything.

A **job record** is the queue's durable view of one submission:
status, tenant, priority, attempts, error context and the result key.
Records serialize to JSON (with an artifact self-checksum) so the
queue survives a process death and recovers from the store.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

#: result/record schema version (bumped on incompatible layout changes).
JOB_SCHEMA_VERSION = 1

#: legal job states, in lifecycle order.
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUSES = (STATUS_QUEUED, STATUS_RUNNING, STATUS_DONE, STATUS_FAILED)

#: states that count against a tenant's quota.
OUTSTANDING = (STATUS_QUEUED, STATUS_RUNNING)

#: race-detector modes a request may ask for.
RACE_MODES = ("interval", "predictive")

#: emulator engines a request may pin (None = the default engine).
ENGINES = ("vectorized", "scalar", "compiled")

#: simulator knobs accepted in ``JobRequest.knobs`` — deliberately the
#: same surface (names and defaults) as the ``repro simulate`` CLI, so
#: the service's timing numbers are value-identical to the CLI path.
KNOB_DEFAULTS = {
    "sms": 4,
    "partitions": 2,
    "l1_kb": 2,
    "l2_kb": 64,
    "scheduler": "lrr",
    "prefetcher": "none",
    "cta_policy": "round_robin",
    "top": 8,
}

_KNOB_CHOICES = {
    "scheduler": ("lrr", "gto"),
    "prefetcher": ("none", "stride", "indirect_oracle"),
    "cta_policy": ("round_robin", "clustered"),
}


class JobError(ValueError):
    """A request that can never run (unknown app, bad knob, PTX that
    does not match its named workload) — an HTTP 400, not a 500."""


def _versions():
    from ..emulator.machine import EMULATOR_VERSION
    from ..emulator.serialize import FORMAT_VERSION

    return {"emulator": EMULATOR_VERSION, "trace_format": FORMAT_VERSION,
            "job_schema": JOB_SCHEMA_VERSION}


@dataclass(frozen=True)
class JobRequest:
    """One analysis request (semantic fields only — tenant and priority
    are routing concerns and live on the :class:`JobRecord`)."""

    app: Optional[str] = None
    ptx: Optional[str] = None
    scale: float = 0.25
    seed: int = 7
    engine: Optional[str] = None
    simulate: bool = True
    races: Optional[str] = None
    advise: bool = False
    knobs: Tuple[Tuple[str, object], ...] = ()

    # -- construction -----------------------------------------------------

    @classmethod
    def from_json(cls, body):
        """Build and validate a request from a (HTTP) JSON body."""
        if not isinstance(body, dict):
            raise JobError("request body must be a JSON object")
        known = {"app", "ptx", "scale", "seed", "engine", "simulate",
                 "races", "advise", "knobs"}
        unknown = sorted(set(body) - known - {"tenant", "priority"})
        if unknown:
            raise JobError("unknown request field(s): %s"
                           % ", ".join(unknown))
        knobs = body.get("knobs") or {}
        if not isinstance(knobs, dict):
            raise JobError("knobs must be a JSON object")
        request = cls(
            app=body.get("app"),
            ptx=body.get("ptx"),
            scale=body.get("scale", 0.25),
            seed=body.get("seed", 7),
            engine=body.get("engine"),
            simulate=bool(body.get("simulate", True)),
            races=body.get("races"),
            advise=bool(body.get("advise", False)),
            knobs=tuple(sorted(knobs.items())),
        )
        request.validate()
        return request

    def validate(self):
        """Raise :class:`JobError` on a structurally bad request."""
        if not self.app and not self.ptx:
            raise JobError("request needs an 'app' name and/or "
                           "'ptx' source")
        if self.app is not None:
            from ..workloads import workload_names

            if self.app not in workload_names(include_extended=True):
                raise JobError("unknown app %r" % self.app)
        if not isinstance(self.scale, (int, float)) or self.scale <= 0:
            raise JobError("scale must be a positive number")
        if not isinstance(self.seed, int):
            raise JobError("seed must be an integer")
        if self.engine is not None and self.engine not in ENGINES:
            raise JobError("unknown engine %r (choices: %s)"
                           % (self.engine, ", ".join(ENGINES)))
        if self.races is not None and self.races not in RACE_MODES:
            raise JobError("unknown races mode %r (choices: %s)"
                           % (self.races, ", ".join(RACE_MODES)))
        for name, value in self.knobs:
            if name not in KNOB_DEFAULTS:
                raise JobError("unknown knob %r (choices: %s)"
                               % (name, ", ".join(sorted(KNOB_DEFAULTS))))
            choices = _KNOB_CHOICES.get(name)
            if choices is not None and value not in choices:
                raise JobError("bad knob %s=%r (choices: %s)"
                               % (name, value, ", ".join(choices)))
            if choices is None and (not isinstance(value, int)
                                    or isinstance(value, bool)
                                    or value <= 0):
                raise JobError("knob %r must be a positive integer" % name)
        if not self.app and (self.simulate or self.races or self.advise):
            # raw PTX carries no inputs or launch geometry: only the
            # static stages can run
            raise JobError(
                "a ptx-only request is static analysis only: set "
                "simulate=false and omit races/advise, or name an "
                "'app' that provides inputs")
        return self

    # -- canonical form / content key -------------------------------------

    def knob(self, name):
        """The effective value of one simulator knob."""
        for key, value in self.knobs:
            if key == name:
                return value
        return KNOB_DEFAULTS[name]

    def canonical(self):
        """The deterministic dict the content key (and the result
        payload's ``request`` echo) is computed over."""
        return {
            "app": self.app,
            "ptx": self.ptx,
            "scale": self.scale,
            "seed": self.seed,
            "engine": self.engine,
            "simulate": self.simulate,
            "races": self.races,
            "advise": self.advise,
            "knobs": {k: v for k, v in self.knobs},
        }

    def key(self):
        """Content address of this request's result.

        Includes the emulator/trace-format versions, so bumping either
        changes every key and stale results are recomputed rather than
        silently served (the sweep-point staleness rule).
        """
        payload = {"request": self.canonical(), "versions": _versions()}
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def to_json(self):
        return self.canonical()


@dataclass
class JobRecord:
    """The queue's durable view of one submitted job."""

    id: str
    key: str
    tenant: str
    priority: int
    status: str
    request: JobRequest
    attempts: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    error_context: Optional[Dict[str, object]] = None
    result_key: Optional[str] = None
    #: "hit" when the result came straight from the artifact store
    #: (idempotent resubmission), "miss" when a worker computed it.
    result_cache: Optional[str] = None
    #: recovery bookkeeping: True when a restart found this job leased
    #: by a dead worker and re-queued it.
    recovered: bool = False

    @property
    def outstanding(self):
        return self.status in OUTSTANDING

    @property
    def wall_seconds(self):
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_json(self, include_request=True):
        out = {
            "schema": JOB_SCHEMA_VERSION,
            "id": self.id,
            "key": self.key,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
        }
        for name in ("started_at", "finished_at", "error",
                     "error_context", "result_key", "result_cache"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        if self.recovered:
            out["recovered"] = True
        wall = self.wall_seconds
        if wall is not None:
            out["wall_seconds"] = wall
        if include_request:
            out["request"] = self.request.to_json()
        return out

    @classmethod
    def from_json(cls, payload):
        body = payload.get("request") or {}
        request = JobRequest.from_json(body)
        record = cls(
            id=payload["id"],
            key=payload["key"],
            tenant=payload.get("tenant", "default"),
            priority=int(payload.get("priority", 0)),
            status=payload["status"],
            request=request,
            attempts=int(payload.get("attempts", 0)),
            submitted_at=payload.get("submitted_at", 0.0),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            error=payload.get("error"),
            error_context=payload.get("error_context"),
            result_key=payload.get("result_key"),
            result_cache=payload.get("result_cache"),
            recovered=bool(payload.get("recovered", False)),
        )
        if record.status not in STATUSES:
            raise JobError("bad job status %r" % record.status)
        return record

    def copy(self, **changes):
        return replace(self, **changes)


__all__ = [
    "ENGINES",
    "JOB_SCHEMA_VERSION",
    "JobError",
    "JobRecord",
    "JobRequest",
    "KNOB_DEFAULTS",
    "OUTSTANDING",
    "RACE_MODES",
    "STATUSES",
    "STATUS_DONE",
    "STATUS_FAILED",
    "STATUS_QUEUED",
    "STATUS_RUNNING",
]
