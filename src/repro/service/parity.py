"""HTTP/CLI parity checker: ``python -m repro.service.parity``.

The service's reason to exist is *the same analysis, over a wire* —
so CI proves it literally.  For each checked application this script:

1. submits the job over HTTP to a live service and polls it done;
2. runs the identical request in-process through
   :func:`repro.service.pipeline.execute_job`;
3. asserts the two result payloads are **byte-identical** as canonical
   JSON;
4. re-renders the CLI surfaces — ``repro classify`` and
   ``repro simulate`` stdout — and asserts the payload's embedded
   report texts match them byte-for-byte.

Any drift (a knob default forked between CLI flag and service schema,
a render path duplicated and edited once) fails the process with a
diff-style report.

With ``--serve`` the script boots its own service on an ephemeral
port first, so the CI job needs no orchestration beyond one command.
"""

from __future__ import annotations

import argparse
import difflib
import io
import json
import sys
import tempfile

DEFAULT_APPS = ("2mm", "bfs")


def _canonical(payload):
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _cli_stdout(argv):
    from ..cli import main

    buffer = io.StringIO()
    status = main(argv, out=buffer)
    if status != 0:
        raise RuntimeError("CLI %r exited %d" % (argv, status))
    return buffer.getvalue()


def _diff(label, expected, actual):
    lines = difflib.unified_diff(
        expected.splitlines(keepends=True),
        actual.splitlines(keepends=True),
        fromfile=label + " (expected)", tofile=label + " (actual)")
    return "".join(lines)


def check_app(client, app, scale, out=sys.stdout, with_ptx=False):
    """All parity assertions for one application; returns the list of
    failure descriptions (empty = parity holds).

    ``with_ptx`` ships the workload's PTX source in the submission
    body (the full ``POST /kernels`` shape: source + knobs over the
    wire, validated server-side against the named workload)."""
    from .jobs import JobRequest
    from .pipeline import execute_job

    body = {"app": app, "scale": scale}
    if with_ptx:
        from ..workloads import get_workload

        body["ptx"] = get_workload(app, scale=scale).ptx()
    status, ack = client.submit(body)
    if status != 201:
        return ["%s: submit returned %d: %s"
                % (app, status, ack.get("error"))]
    final = client.wait(ack["id"], timeout=300.0)
    if final["status"] != "done":
        return ["%s: job finished %s: %s"
                % (app, final["status"], final.get("error"))]
    _, with_result = client.job(ack["id"], include_result=True)
    http_payload = with_result["result"]

    failures = []
    local_payload = execute_job(JobRequest.from_json(body))
    http_text = _canonical(http_payload)
    local_text = _canonical(local_payload)
    if http_text != local_text:
        failures.append("%s: HTTP result differs from in-process "
                        "pipeline:\n%s"
                        % (app, _diff("result.json", local_text,
                                      http_text)))

    cli_classify = _cli_stdout(["classify", app])
    service_classify = "".join(
        kernel["text"] + "\n\n"
        for kernel in http_payload["classification"]["kernels"])
    if cli_classify != service_classify:
        failures.append("%s: classification text differs from "
                        "`repro classify`:\n%s"
                        % (app, _diff("classify", cli_classify,
                                      service_classify)))

    cli_simulate = _cli_stdout(["simulate", app, "--scale", str(scale)])
    service_simulate = http_payload["simulation"]["text"]
    if cli_simulate != service_simulate:
        failures.append("%s: simulation text differs from "
                        "`repro simulate`:\n%s"
                        % (app, _diff("simulate", cli_simulate,
                                      service_simulate)))

    if not failures:
        out.write("parity OK: %s (%d result bytes, %d sim cycles)\n"
                  % (app, len(http_text),
                     http_payload["simulation"]["cycles"]))
    return failures


def main(argv=None, out=sys.stdout):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.parity",
        description="assert HTTP results byte-match the CLI pipeline")
    parser.add_argument("--url", help="base URL of a running service "
                                      "(e.g. http://127.0.0.1:8077)")
    parser.add_argument("--serve", action="store_true",
                        help="boot an in-process service on an "
                             "ephemeral port instead of --url")
    parser.add_argument("--apps", default=",".join(DEFAULT_APPS),
                        help="comma-separated applications to check")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--with-ptx", action="store_true",
                        help="ship each workload's PTX source in the "
                             "submission body")
    args = parser.parse_args(argv)
    if not args.url and not args.serve:
        parser.error("provide --url or --serve")

    from .loadgen import ServiceClient

    server = service = tmp = None
    if args.serve:
        from .app import AnalysisService
        from .http import ServiceServer

        tmp = tempfile.TemporaryDirectory(prefix="repro-parity-")
        service = AnalysisService(tmp.name, workers=2).start()
        server = ServiceServer(service)
        server.serve_background()
        url = server.url
    else:
        url = args.url

    failures = []
    try:
        client = ServiceClient(url)
        for app in args.apps.split(","):
            failures.extend(check_app(client, app.strip(), args.scale,
                                      out=out, with_ptx=args.with_ptx))
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if service is not None:
            service.stop()
        if tmp is not None:
            tmp.cleanup()
    for failure in failures:
        out.write("PARITY FAILURE: %s\n" % failure)
    out.write("%d parity failure(s)\n" % len(failures))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
