"""Pluggable artifact stores: one interface over every durable byte.

The pipeline produces four families of durable artifacts — cached
traces, sweep point results, job records and job results — and before
this module each family carried its own file-handling code.  An
:class:`ArtifactStore` is the shared abstraction: a flat namespace of
``/``-separated keys over immutable-ish blobs, with the
crash-consistency guarantees of :mod:`repro.resilience.artifacts`
(atomic tempfile+rename publication, JSON payload self-checksums) built
into every backend rather than re-implemented per caller.

Backends
--------
:class:`LocalDirStore`
    A directory tree.  This is the production backend today: the trace
    cache, the sweep engine's point files and the analysis service's
    job/result records all sit on one of these.  Keys map to relative
    paths, writes are atomic, damaged entries can be quarantined into
    the directory's ``.corrupt/`` sidecar.

:class:`ObjectStore`
    The object-store (S3/MinIO-style) backend **stub**.  The interface
    is final — ``put``/``get``/``delete``/``list`` against a
    bucket+prefix through an injected client — but no real client
    ships yet: constructing one without a ``client`` raises
    :class:`StoreUnavailableError` with a pointer at the local backend.
    Tests inject an in-memory fake client to pin the contract down so
    a future ``boto3``/``minio`` adapter only has to satisfy four
    methods.

:func:`open_store` turns a URL (``/path``, ``file:///path``,
``s3://bucket/prefix``) into a backend, so every consumer — the trace
cache's ``REPRO_TRACE_CACHE_DIR``, ``repro serve --store`` — selects
its storage the same way.
"""

from __future__ import annotations

import abc
import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Iterable, List, Optional

from ..resilience.artifacts import (
    atomic_write_bytes,
    verify_payload_checksum,
)
from ..resilience.quarantine import quarantine_file

__all__ = [
    "ArtifactStore",
    "LocalDirStore",
    "ObjectStore",
    "StoreError",
    "StoreUnavailableError",
    "open_store",
]


class StoreError(RuntimeError):
    """An artifact store operation failed structurally (bad key,
    unusable backend) — distinct from a missing key (``KeyError``)."""


class StoreUnavailableError(StoreError):
    """The requested backend exists as an interface but cannot run in
    this environment (e.g. the object-store stub without a client)."""


def _json_bytes(payload):
    """The canonical JSON artifact encoding (shared with
    :func:`repro.resilience.artifacts.atomic_write_json`): indent 2,
    sorted keys, trailing newline."""
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    return (text + "\n").encode("utf-8")


class ArtifactStore(abc.ABC):
    """A flat namespace of ``/``-separated keys over byte blobs.

    Keys are relative POSIX-style paths (``jobs/j000003.json``,
    ``<sha>.trace``).  Reads of missing keys raise ``KeyError`` so
    "absent" and "unreadable" stay distinguishable; transient backend
    errors surface as ``OSError`` and structural misuse as
    :class:`StoreError`.
    """

    #: URL scheme this backend answers to in :func:`open_store`.
    scheme = "abstract"

    # -- required primitives ----------------------------------------------

    @abc.abstractmethod
    def put_bytes(self, key, data):
        """Atomically publish ``data`` under ``key`` (overwrites)."""

    @abc.abstractmethod
    def get_bytes(self, key):
        """The blob at ``key``; raises ``KeyError`` when absent."""

    @abc.abstractmethod
    def exists(self, key):
        """True when ``key`` currently resolves to a blob."""

    @abc.abstractmethod
    def delete(self, key):
        """Remove ``key``; returns True when something was removed."""

    @abc.abstractmethod
    def keys(self, prefix=""):
        """Sorted keys under ``prefix`` (deterministic order)."""

    # -- JSON layer (shared across backends) ------------------------------

    def put_json(self, key, payload):
        """Store a JSON payload in the canonical artifact encoding."""
        self.put_bytes(key, _json_bytes(payload))

    def get_json(self, key, verify=True):
        """Load a JSON payload; with ``verify`` the payload's
        self-checksum (when present) is validated —
        :class:`~repro.resilience.artifacts.ChecksumError` on mismatch.
        """
        payload = json.loads(self.get_bytes(key).decode("utf-8"))
        if verify:
            verify_payload_checksum(payload, path=key)
        return payload

    # -- optional capabilities --------------------------------------------

    def path_of(self, key) -> Optional[Path]:
        """The local filesystem path behind ``key``, for backends that
        have one (memory-mapped trace loads need a real file); ``None``
        otherwise."""
        return None

    def put_file(self, key, producer: Callable[[str], None]):
        """Publish a file-shaped artifact written by ``producer(path)``.

        The producer writes into a private temporary path; publication
        is atomic.  Backends without local paths stage through a
        temporary file and upload its bytes.
        """
        fd, tmp = tempfile.mkstemp(prefix=".store-put-")
        os.close(fd)
        try:
            producer(tmp)
            with open(tmp, "rb") as fh:
                self.put_bytes(key, fh.read())
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def quarantine(self, key, kind="artifact", reason="corrupt"):
        """Move a damaged entry out of the lookup path, keeping the
        bytes inspectable.  Backends without a sidecar just delete."""
        self.delete(key)
        return None

    def describe(self):
        """Human-readable location string (for logs and manifests)."""
        return "%s:" % self.scheme


class LocalDirStore(ArtifactStore):
    """Artifacts as files under one root directory.

    All writes go through the crash-consistent
    :func:`~repro.resilience.artifacts.atomic_write_bytes` path, so a
    reader (or a resume after SIGKILL) sees whole blobs or nothing.
    Quarantine delegates to the ``.corrupt/`` sidecar convention shared
    with the trace cache and sweep points.
    """

    scheme = "file"

    def __init__(self, root, fsync=True):
        self.root = Path(root)
        self.fsync = fsync

    def _path(self, key):
        key = str(key)
        if not key or key.startswith(("/", "\\")):
            raise StoreError("bad artifact key %r (absolute or empty)" % key)
        parts = Path(key).parts
        if ".." in parts:
            raise StoreError("bad artifact key %r (escapes the root)" % key)
        return self.root.joinpath(*parts)

    # -- primitives -------------------------------------------------------

    def put_bytes(self, key, data):
        atomic_write_bytes(self._path(key), data, fsync=self.fsync)

    def get_bytes(self, key):
        path = self._path(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None

    def exists(self, key):
        return self._path(key).is_file()

    def delete(self, key):
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def keys(self, prefix=""):
        base = self.root
        if not base.is_dir():
            return []
        out: List[str] = []
        for path in base.rglob("*"):
            if not path.is_file():
                continue
            rel = path.relative_to(base).as_posix()
            # quarantine sidecars and in-flight temporaries are not
            # published artifacts
            if "/.corrupt/" in "/" + rel or rel.startswith(".corrupt/"):
                continue
            if path.name.startswith((".tmp-", ".store-put-")):
                continue
            if prefix and not rel.startswith(prefix):
                continue
            out.append(rel)
        return sorted(out)

    # -- capabilities -----------------------------------------------------

    def path_of(self, key):
        return self._path(key)

    def put_file(self, key, producer):
        """Producer writes a sibling temp file; an ``os.replace`` makes
        publication atomic without buffering the blob in memory."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=".tmp-" + path.name[:24] + "-",
            suffix=path.suffix or ".part", dir=str(path.parent))
        os.close(fd)
        try:
            producer(tmp)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        return path

    def quarantine(self, key, kind="artifact", reason="corrupt"):
        return quarantine_file(self._path(key), kind=kind, reason=reason)

    def describe(self):
        return str(self.root)


class ObjectStore(ArtifactStore):
    """Object-store backend **stub** (S3/MinIO layout, DESIGN.md §16).

    The contract an adapter client must satisfy (all paths are
    ``<prefix>/<key>`` object names inside ``bucket``):

    ``put_object(bucket, name, data: bytes)``
        store, overwriting;
    ``get_object(bucket, name) -> bytes | None``
        fetch, ``None`` when absent;
    ``delete_object(bucket, name) -> bool``
        remove, report whether anything existed;
    ``list_objects(bucket, prefix) -> Iterable[str]``
        object names under a prefix.

    No real client ships yet — constructing without one raises
    :class:`StoreUnavailableError` so callers fail with a clear message
    instead of a deep ``ImportError`` — but the in-memory fake used by
    the test suite pins the interface for the eventual adapter.
    """

    scheme = "s3"

    def __init__(self, bucket, prefix="", client=None):
        if client is None:
            raise StoreUnavailableError(
                "the object-store backend is a stub: no client is "
                "available in this environment (use a local directory "
                "store, or inject a client implementing put_object/"
                "get_object/delete_object/list_objects)")
        if not bucket:
            raise StoreError("object store needs a bucket name")
        self.bucket = bucket
        self.prefix = prefix.strip("/")
        self.client = client

    def _name(self, key):
        key = str(key).lstrip("/")
        if not key or ".." in Path(key).parts:
            raise StoreError("bad artifact key %r" % key)
        return "%s/%s" % (self.prefix, key) if self.prefix else key

    def put_bytes(self, key, data):
        self.client.put_object(self.bucket, self._name(key), bytes(data))

    def get_bytes(self, key):
        data = self.client.get_object(self.bucket, self._name(key))
        if data is None:
            raise KeyError(key)
        return data

    def exists(self, key):
        return self.client.get_object(self.bucket, self._name(key)) \
            is not None

    def delete(self, key):
        return bool(self.client.delete_object(self.bucket, self._name(key)))

    def keys(self, prefix=""):
        base = self._name(prefix) if prefix else (
            self.prefix + "/" if self.prefix else "")
        names: Iterable[str] = self.client.list_objects(self.bucket, base)
        strip = len(self.prefix) + 1 if self.prefix else 0
        return sorted(name[strip:] for name in names)

    def describe(self):
        return "s3://%s/%s" % (self.bucket, self.prefix)


def open_store(url, client=None):
    """Build the store behind a location string.

    * ``s3://bucket/prefix`` → :class:`ObjectStore` (stub today:
      raises :class:`StoreUnavailableError` unless ``client`` is
      injected);
    * ``file:///abs/path`` or a plain path → :class:`LocalDirStore`.
    """
    url = str(url)
    if url.startswith("s3://"):
        rest = url[len("s3://"):]
        bucket, _, prefix = rest.partition("/")
        return ObjectStore(bucket, prefix, client=client)
    if url.startswith("file://"):
        url = url[len("file://"):]
    if not url:
        raise StoreError("empty store location")
    return LocalDirStore(url)
