"""Load generator for the analysis service (the service benchmark).

Replays a deterministic mixed workload — the Table I applications
cycled through varied analysis stages and simulator knobs — against a
running service at a configurable client concurrency, then audits the
run for correctness and summarizes latency:

* **lost** jobs: submitted and acknowledged but absent from the
  server's job listing afterwards;
* **duplicated** jobs: one acknowledged submission appearing under
  more than one job id (distinct submissions *sharing* a result via
  the content-addressed store are expected, and counted as
  ``result_cache_hits`` instead);
* **latency**: per-job submit→done wall time, reported as
  p50/p95/p99/mean/max milliseconds plus whole-run ``jobs_per_sec``.

The report dict nests like every ``BENCH_*.json`` in this repo, so the
CI perf gate diffs it with ``repro sweep compare`` tolerance rules
(``latency_ms.p95=3.0:up``, ``totals.jobs_per_sec=0.75:down``,
exact-zero ``totals.lost``/``totals.duplicated``).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

#: default mixed-workload applications (the paper's Table I suite);
#: resolved lazily so the loadgen can aim at a remote server without
#: importing the pipeline.
DEFAULT_APPS: Optional[List[str]] = None

#: stage variations cycled across the mix: plain classify+simulate,
#: then with races, then emulate-only, then with the advisor.
_STAGES = (
    {},
    {"races": "interval"},
    {"simulate": False},
    {"advise": True},
)


def default_mix(jobs, apps=None, scale=0.1, seed=7):
    """The deterministic job-body list a loadgen run replays.

    Cycles the application list against :data:`_STAGES` variations, so
    consecutive jobs differ in both app and analysis depth — a mixed
    queue, not thirty copies of one request.  Repeats beyond one full
    cycle are *intentionally identical* requests: they exercise the
    content-addressed result path under concurrency.
    """
    if apps is None:
        from ..workloads import workload_names

        apps = list(workload_names())
    bodies = []
    for index in range(jobs):
        app = apps[index % len(apps)]
        stage = _STAGES[(index // len(apps)) % len(_STAGES)]
        body = {"app": app, "scale": scale, "seed": seed}
        body.update(stage)
        bodies.append(body)
    return bodies


class ServiceClient:
    """Minimal stdlib HTTP client for the service API."""

    def __init__(self, base_url, timeout=60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method, path, body=None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(self.base_url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            payload = exc.read().decode("utf-8", "replace")
            try:
                return exc.code, json.loads(payload)
            except json.JSONDecodeError:
                return exc.code, {"error": payload}

    def submit(self, body):
        return self._request("POST", "/kernels", body)

    def job(self, job_id, include_result=False):
        suffix = "" if include_result else "?result=0"
        return self._request("GET", "/jobs/%s%s" % (job_id, suffix))

    def jobs(self):
        return self._request("GET", "/jobs")

    def wait(self, job_id, timeout=120.0, poll=0.05):
        """Poll until the job leaves the outstanding states."""
        deadline = time.monotonic() + timeout
        while True:
            status, body = self.job(job_id)
            if status == 200 and body["status"] in ("done", "failed"):
                return body
            if time.monotonic() > deadline:
                raise TimeoutError("job %s still %s after %.0fs"
                                   % (job_id, body.get("status"), timeout))
            time.sleep(poll)


def _percentile(sorted_values, fraction):
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(fraction * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def run_loadgen(base_url, jobs=30, clients=8, scale=0.1, apps=None,
                timeout=120.0, poll=0.05, log=None):
    """Drive a running service; returns the benchmark report dict."""
    bodies = default_mix(jobs, apps=apps, scale=scale)
    client = ServiceClient(base_url, timeout=timeout)
    lock = threading.Lock()
    cursor = {"next": 0}
    outcomes: List[Dict[str, object]] = []
    errors: List[str] = []

    def _client_loop():
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(bodies):
                    return
                cursor["next"] = index + 1
            body = bodies[index]
            t0 = time.perf_counter()
            try:
                status, ack = client.submit(body)
                if status != 201:
                    raise RuntimeError("submit -> %d: %s"
                                       % (status, ack.get("error")))
                final = client.wait(ack["id"], timeout=timeout, poll=poll)
                latency = time.perf_counter() - t0
                with lock:
                    outcomes.append({
                        "index": index, "app": body["app"],
                        "id": ack["id"], "status": final["status"],
                        "result_cache": final.get("result_cache"),
                        "latency_s": latency,
                    })
            except Exception as exc:  # noqa: BLE001 — audit, don't crash
                with lock:
                    errors.append("job %d (%s): %s: %s"
                                  % (index, body.get("app"),
                                     type(exc).__name__, exc))

    started = time.perf_counter()
    threads = [threading.Thread(target=_client_loop,
                                name="loadgen-%d" % i, daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    # -- audit: every acknowledged job exists exactly once server-side
    _, listing = client.jobs()
    server_ids = [j["id"] for j in listing.get("jobs", [])]
    acked_ids = [o["id"] for o in outcomes]
    lost = sorted(set(acked_ids) - set(server_ids))
    duplicated = sorted(
        {i for i in acked_ids if acked_ids.count(i) > 1}
        | {i for i in server_ids if server_ids.count(i) > 1})
    failed = [o for o in outcomes if o["status"] != "done"]
    hits = sum(1 for o in outcomes if o.get("result_cache") == "hit")

    latencies = sorted(o["latency_s"] for o in outcomes)
    latency_ms = {
        "p50": 1000 * _percentile(latencies, 0.50),
        "p95": 1000 * _percentile(latencies, 0.95),
        "p99": 1000 * _percentile(latencies, 0.99),
        "mean": (1000 * sum(latencies) / len(latencies)
                 if latencies else 0.0),
        "max": 1000 * latencies[-1] if latencies else 0.0,
    }
    report = {
        "config": {
            "jobs": jobs, "clients": clients, "scale": scale,
            "apps": sorted({b["app"] for b in bodies}),
        },
        "totals": {
            "jobs": len(outcomes),
            "submit_errors": len(errors),
            "lost": len(lost),
            "duplicated": len(duplicated),
            "failed": len(failed),
            "result_cache_hits": hits,
            "wall_seconds": round(wall, 4),
            "jobs_per_sec": (round(len(outcomes) / wall, 3)
                             if wall > 0 else 0.0),
        },
        "latency_ms": {k: round(v, 2) for k, v in latency_ms.items()},
    }
    if errors:
        report["errors"] = errors[:20]
    if log is not None:
        log("loadgen: %d jobs, %d clients: p50 %.0fms p95 %.0fms "
            "p99 %.0fms, %.2f jobs/s, lost=%d dup=%d failed=%d"
            % (len(outcomes), clients, latency_ms["p50"],
               latency_ms["p95"], latency_ms["p99"],
               report["totals"]["jobs_per_sec"], len(lost),
               len(duplicated), len(failed)))
    return report


__all__ = ["ServiceClient", "default_mix", "run_loadgen"]
