"""stdlib HTTP front end for the analysis service.

A :class:`~http.server.ThreadingHTTPServer` over the
:class:`~repro.service.app.AnalysisService` facade — no web framework,
no new dependencies.  Routes:

``POST /kernels``
    Submit a job (JSON body = a
    :class:`~repro.service.jobs.JobRequest`, plus optional ``tenant``
    and ``priority``).  201 with the job record; 400 on a malformed
    request (:class:`~repro.service.jobs.JobError`); 429 over quota.
``GET /jobs/<id>``
    Job status; includes the full result payload once ``done``.
    ``?result=0`` returns the record alone.
``GET /jobs``
    All job records (no payloads); ``?tenant=NAME`` filters.
``GET /metrics``
    Prometheus text exposition of the process registry — rendered by
    :func:`repro.obs.export.render_prometheus`, the same function
    ``repro metrics export`` uses, so the two can never drift.
    Scrapes do not count themselves into the registry (else the
    CLI/HTTP parity assertion could never hold).
``GET /healthz``
    Queue depth, per-status counts, store location.

Error bodies are always JSON: ``{"error": "..."}`` plus route-specific
fields (429 carries ``tenant``/``limit``/``outstanding``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..obs.export import render_prometheus
from ..obs.metrics import get_registry
from .jobs import JobError
from .queue import QuotaExceededError

#: request bodies beyond this are rejected with 413 (a PTX kernel is
#: a few KiB; this is generous headroom, not a real workload bound).
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceHandler(BaseHTTPRequestHandler):
    """One request; ``self.server.service`` is the shared facade."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send(self, status, body, content_type="application/json"):
        if isinstance(body, (dict, list)):
            body = json.dumps(body, indent=2, sort_keys=True) + "\n"
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type",
                         content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _error(self, status, message, **fields):
        self._send(status, dict(fields, error=message))

    def _count(self, route, status):
        get_registry().counter(
            "service.http.requests",
            "HTTP requests served, by route and status").inc(
            1, route=route, status=str(status))

    # -- routes -----------------------------------------------------------

    def do_GET(self):  # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/metrics":
            # deliberately uncounted: a scrape must not mutate what it
            # reports, or CLI/HTTP registry parity breaks
            self._send(200, render_prometheus(),
                       content_type="text/plain; version=0.0.4")
            return
        if url.path == "/healthz":
            self._send(200, self.server.service.stats())
            self._count("healthz", 200)
            return
        if parts[:1] == ["jobs"] and len(parts) == 2:
            query = parse_qs(url.query)
            include = query.get("result", ["1"])[0] not in ("0", "false")
            body = self.server.service.job_json(parts[1],
                                                include_result=include)
            if body is None:
                self._error(404, "no such job: %s" % parts[1])
                self._count("job", 404)
                return
            self._send(200, body)
            self._count("job", 200)
            return
        if parts == ["jobs"]:
            query = parse_qs(url.query)
            tenant = query.get("tenant", [None])[0]
            self._send(200,
                       {"jobs": self.server.service.jobs_json(tenant)})
            self._count("jobs", 200)
            return
        self._error(404, "no such route: %s" % url.path)
        self._count("other", 404)

    def do_POST(self):  # noqa: N802 — stdlib naming
        url = urlparse(self.path)
        if url.path != "/kernels":
            self._error(404, "no such route: %s" % url.path)
            self._count("other", 404)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            # the body is never read: answer and drop the connection
            # rather than draining megabytes we already refused
            self.close_connection = True
            self._error(413, "request body too large or unsized")
            self._count("submit", 413)
            return
        try:
            body = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, "request body is not JSON: %s" % exc)
            self._count("submit", 400)
            return
        try:
            record = self.server.service.submit(body)
        except QuotaExceededError as exc:
            self._error(exc.status, str(exc), tenant=exc.tenant,
                        limit=exc.limit, outstanding=exc.outstanding)
            self._count("submit", exc.status)
            return
        except JobError as exc:
            self._error(400, str(exc))
            self._count("submit", 400)
            return
        self._send(201, record.to_json(include_request=False))
        self._count("submit", 201)


class ServiceServer(ThreadingHTTPServer):
    """The HTTP server bound to one :class:`AnalysisService`."""

    daemon_threads = True

    def __init__(self, service, host="127.0.0.1", port=0, verbose=False):
        self.service = service
        self.verbose = verbose
        ThreadingHTTPServer.__init__(self, (host, port), ServiceHandler)

    @property
    def url(self):
        host, port = self.server_address[:2]
        return "http://%s:%d" % (host, port)

    def serve_background(self):
        """Serve on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-service-http", daemon=True)
        thread.start()
        return thread


def serve(service, host="127.0.0.1", port=8077, verbose=True):
    """Run the blocking server loop (the ``repro serve`` entry)."""
    server = ServiceServer(service, host=host, port=port, verbose=verbose)
    try:
        server.serve_forever()
    finally:
        server.server_close()


__all__ = ["MAX_BODY_BYTES", "ServiceHandler", "ServiceServer", "serve"]
