"""Worker pool: leases jobs, runs the pipeline, stores results.

Each worker is a daemon thread in a loop of *lease → execute →
publish → complete*.  The pool's contract with the queue keeps jobs
exactly-once under crashes:

* a result is published into the artifact store (atomic write with a
  self-checksum) *before* the job record flips to ``done`` — a worker
  that dies in between leaves a ``running`` record the next
  :class:`~repro.service.queue.JobQueue` recovery re-queues, and the
  re-run short-circuits on the already-stored result;
* results are stored under the request's content key
  (``results/<sha256>.json``), so two jobs with identical requests
  share one result and an idempotent resubmission never re-emulates;
* a pipeline failure (memory fault, watchdog, injected chaos fault)
  is contained to its job: the record goes to ``failed`` with the
  exception's structured context and the worker moves on — the same
  fault-isolation stance as the figure runner's degraded mode.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from ..obs.metrics import get_registry
from ..resilience.artifacts import attach_checksum
from .pipeline import execute_job

#: store namespace content-addressed results live under.
RESULTS_PREFIX = "results/"

#: exception attributes copied into a failed job's ``error_context``
#: (mirrors the figure runner's AppFailure context fields).
_CONTEXT_FIELDS = ("kernel", "pc", "cta", "warp", "lane", "address",
                   "space", "budget", "warp_status", "rss_mb", "budget_mb",
                   "stage")


def result_key_for(request):
    """The artifact-store key of a request's (content-addressed)
    result payload."""
    return RESULTS_PREFIX + request.key() + ".json"


def _error_context(exc):
    context = {}
    for attr in _CONTEXT_FIELDS:
        value = getattr(exc, attr, None)
        if value is not None:
            context[attr] = value
    return context or None


class WorkerPool:
    """``workers`` daemon threads draining one
    :class:`~repro.service.queue.JobQueue` into an artifact store."""

    def __init__(self, queue, store, workers=2, use_trace_cache=True,
                 poll_seconds=0.2):
        self.queue = queue
        self.store = store
        self.workers = int(workers)
        self.use_trace_cache = use_trace_cache
        self.poll_seconds = poll_seconds
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    # -- lifecycle --------------------------------------------------------

    def start(self):
        if self._threads:
            return self
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop, name="repro-worker-%d" % index,
                daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, wait=True):
        """Signal every worker to exit after its current job."""
        self._stop.set()
        self.queue.close()
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []

    @property
    def running(self):
        return any(t.is_alive() for t in self._threads)

    # -- the work loop ----------------------------------------------------

    def _loop(self):
        while not self._stop.is_set():
            record = self.queue.lease(timeout=self.poll_seconds)
            if record is None:
                if self._stop.is_set():
                    return
                continue
            self.process(record)

    def process(self, record):
        """Run one leased job to completion (or structured failure)."""
        registry = get_registry()
        key = result_key_for(record.request)
        try:
            # double-check the content-addressed store: an identical
            # request may have finished while this one sat queued
            if self.store.exists(key):
                self.queue.complete(record.id, key, result_cache="hit")
                return record.id
            payload = execute_job(record.request,
                                  use_trace_cache=self.use_trace_cache)
            self.store.put_json(key, attach_checksum(payload))
            self.queue.complete(record.id, key)
            return record.id
        except Exception as exc:  # noqa: BLE001 — fault isolation boundary
            registry.counter(
                "service.worker.failures",
                "jobs that failed inside a worker").inc(
                1, error=type(exc).__name__)
            self.queue.fail(
                record.id, "%s: %s" % (type(exc).__name__, exc),
                context=_error_context(exc))
            return record.id


def drain(queue, store, use_trace_cache=True, limit=None) -> int:
    """Synchronously process queued jobs in the calling thread (tests
    and one-shot CLI use; no threads involved).  Returns the number of
    jobs processed."""
    pool = WorkerPool(queue, store, workers=0,
                      use_trace_cache=use_trace_cache)
    done = 0
    while limit is None or done < limit:
        record = queue.lease(timeout=0)
        if record is None:
            break
        pool.process(record)
        done += 1
    return done


__all__ = ["RESULTS_PREFIX", "WorkerPool", "drain", "result_key_for"]
