"""Priority job queue with per-tenant quotas and durable recovery.

The queue is the service's one point of coordination:

* **ordering** — a binary heap keyed on ``(-priority, sequence)``:
  higher ``priority`` leases first, FIFO within a priority level;
* **quotas** — each tenant may have at most ``quota`` *outstanding*
  (queued + running) jobs; a submit beyond that raises
  :class:`QuotaExceededError`, which the HTTP layer maps to a 429.
  Done/failed jobs stop counting, so a well-behaved tenant's quota
  recycles as its work drains;
* **durability** — every record transition is persisted into the
  artifact store (``jobs/<id>.json``, atomic write + self-checksum)
  *before* it becomes observable, so a SIGKILL at any point leaves a
  recoverable store: :meth:`JobQueue.recover` (run on construction)
  re-queues ``queued`` jobs and re-queues ``running`` jobs whose
  worker died mid-lease — exactly once each, so a crash loses no job
  and duplicates none.  A record that fails its checksum is
  quarantined, not trusted;
* **idempotency** — submissions carry a content key
  (:meth:`~repro.service.jobs.JobRequest.key`); the caller may pass
  ``done_result_key`` when the keyed result already exists in the
  artifact store, recording the job as ``done`` without it ever
  touching the heap (counted under ``service.result_cache``).

All counters published here are deterministic counts (DESIGN.md §9):
submissions, rejections, completions, recoveries — never latencies,
which live in the job records and ``BENCH_service.json``.
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, List, Optional

from ..obs.metrics import get_registry
from ..resilience.artifacts import ChecksumError, attach_checksum
from .jobs import (
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUEUED,
    STATUS_RUNNING,
    JobError,
    JobRecord,
)

#: store namespace job records live under.
JOBS_PREFIX = "jobs/"


class QuotaExceededError(RuntimeError):
    """A tenant is at its outstanding-job quota (HTTP 429)."""

    status = 429

    def __init__(self, tenant, limit, outstanding):
        self.tenant = tenant
        self.limit = limit
        self.outstanding = outstanding
        super().__init__(
            "tenant %r has %d outstanding job(s), quota is %d"
            % (tenant, outstanding, limit))


def _count(name, help_text, **labels):
    get_registry().counter("service.%s" % name, help_text).inc(1, **labels)


class JobQueue:
    """Thread-safe priority queue of :class:`JobRecord` objects, backed
    by an :class:`~repro.service.store.ArtifactStore`.

    ``quota`` bounds outstanding jobs per tenant (``None`` = unlimited).
    Construction immediately recovers whatever the store holds; the
    re-queued ids are available as :attr:`recovered_ids`.
    """

    def __init__(self, store, quota=None):
        self.store = store
        self.quota = quota
        self._cond = threading.Condition()
        self._heap: List[tuple] = []
        self._records: Dict[str, JobRecord] = {}
        self._seq = 0
        self._next_id = 1
        self._closed = False
        self.recovered_ids = self.recover()

    # -- persistence ------------------------------------------------------

    def _record_key(self, job_id):
        return JOBS_PREFIX + job_id + ".json"

    def _persist(self, record):
        payload = attach_checksum(record.to_json())
        self.store.put_json(self._record_key(record.id), payload)

    def recover(self):
        """Rebuild in-memory state from the store (called once, from
        ``__init__``).  Returns the ids that went back on the heap."""
        requeued = []
        with self._cond:
            for key in self.store.keys(JOBS_PREFIX):
                try:
                    payload = self.store.get_json(key)
                    record = JobRecord.from_json(payload)
                except ChecksumError:
                    self.store.quarantine(key, kind="service_job",
                                          reason="checksum")
                    _count("queue.quarantined",
                           "job records dropped at recovery", reason="checksum")
                    continue
                except (KeyError, ValueError, JobError):
                    self.store.quarantine(key, kind="service_job",
                                          reason="unreadable")
                    _count("queue.quarantined",
                           "job records dropped at recovery",
                           reason="unreadable")
                    continue
                if record.status == STATUS_RUNNING:
                    # the worker holding the lease is gone: the job is
                    # not lost — it goes back on the heap, visibly
                    record = record.copy(status=STATUS_QUEUED,
                                         started_at=None, recovered=True)
                    self._persist(record)
                    _count("queue.recovered",
                           "jobs re-queued at recovery, by prior status",
                           status="running")
                elif record.status == STATUS_QUEUED:
                    _count("queue.recovered",
                           "jobs re-queued at recovery, by prior status",
                           status="queued")
                self._records[record.id] = record
                if record.status == STATUS_QUEUED:
                    self._push(record)
                    requeued.append(record.id)
                if record.id.startswith("j"):
                    try:
                        self._next_id = max(self._next_id,
                                            int(record.id[1:]) + 1)
                    except ValueError:
                        pass
        return requeued

    # -- heap internals (callers hold the lock) ---------------------------

    def _push(self, record):
        self._seq += 1
        heapq.heappush(self._heap, (-record.priority, self._seq, record.id))

    def _allocate_id(self):
        job_id = "j%06d" % self._next_id
        self._next_id += 1
        return job_id

    # -- submission -------------------------------------------------------

    def outstanding(self, tenant):
        """Queued + running jobs currently charged to ``tenant``."""
        with self._cond:
            return sum(1 for r in self._records.values()
                       if r.tenant == tenant and r.outstanding)

    def submit(self, request, tenant="default", priority=0,
               done_result_key=None):
        """Enqueue one request; returns its :class:`JobRecord`.

        ``done_result_key`` short-circuits the job as already ``done``
        (the idempotent-resubmission path: the content-addressed result
        is sitting in the artifact store, so nothing needs to run).
        Raises :class:`QuotaExceededError` when the tenant is at its
        outstanding quota — a short-circuited job never counts, it is
        born finished.
        """
        with self._cond:
            if done_result_key is None and self.quota is not None:
                used = sum(1 for r in self._records.values()
                           if r.tenant == tenant and r.outstanding)
                if used >= self.quota:
                    _count("queue.rejected",
                           "submissions rejected over quota", tenant=tenant)
                    raise QuotaExceededError(tenant, self.quota, used)
            record = JobRecord(
                id=self._allocate_id(), key=request.key(), tenant=tenant,
                priority=int(priority), status=STATUS_QUEUED,
                request=request)
            if done_result_key is not None:
                import time

                record.status = STATUS_DONE
                record.result_key = done_result_key
                record.result_cache = "hit"
                record.finished_at = time.time()
                _count("result_cache",
                       "job results served from the artifact store vs "
                       "computed", result="hit")
            self._persist(record)
            self._records[record.id] = record
            _count("queue.submitted", "jobs accepted into the queue",
                   tenant=tenant)
            if record.status == STATUS_QUEUED:
                self._push(record)
                self._cond.notify()
            return record

    # -- worker side ------------------------------------------------------

    def lease(self, timeout=None):
        """Pop the highest-priority queued job and mark it running.

        Blocks up to ``timeout`` seconds (forever when ``None``) and
        returns ``None`` on timeout or queue shutdown.
        """
        with self._cond:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    record = self._records.get(job_id)
                    if record is None or record.status != STATUS_QUEUED:
                        continue  # superseded entry
                    import time

                    record.status = STATUS_RUNNING
                    record.started_at = time.time()
                    record.attempts += 1
                    self._persist(record)
                    return record
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def _finish(self, job_id, status, **changes):
        import time

        with self._cond:
            record = self._records.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.status != STATUS_RUNNING:
                raise JobError("job %s is %s, not running"
                               % (job_id, record.status))
            record.status = status
            record.finished_at = time.time()
            for name, value in changes.items():
                setattr(record, name, value)
            self._persist(record)
            _count("jobs", "job completions by outcome", status=status)
            return record

    def complete(self, job_id, result_key, result_cache="miss"):
        """Mark a leased job done, pointing at its stored result."""
        record = self._finish(job_id, STATUS_DONE, result_key=result_key,
                              result_cache=result_cache)
        _count("result_cache",
               "job results served from the artifact store vs computed",
               result=result_cache)
        return record

    def fail(self, job_id, error, context=None):
        """Mark a leased job failed with its structured error context."""
        return self._finish(job_id, STATUS_FAILED, error=error,
                            error_context=context or None)

    def requeue(self, job_id):
        """Put a running job back on the heap (an orderly worker
        shutdown mid-lease; distinct from crash recovery)."""
        with self._cond:
            record = self._records.get(job_id)
            if record is None:
                raise KeyError(job_id)
            if record.status != STATUS_RUNNING:
                raise JobError("job %s is %s, not running"
                               % (job_id, record.status))
            record.status = STATUS_QUEUED
            record.started_at = None
            self._persist(record)
            self._push(record)
            self._cond.notify()
            return record

    # -- inspection -------------------------------------------------------

    def get(self, job_id):
        with self._cond:
            return self._records.get(job_id)

    def jobs(self, tenant=None):
        """All records (optionally one tenant's), in id order."""
        with self._cond:
            records = [r for r in self._records.values()
                       if tenant is None or r.tenant == tenant]
        return sorted(records, key=lambda r: r.id)

    def depth(self):
        """Currently queued (not yet leased) jobs."""
        with self._cond:
            return sum(1 for r in self._records.values()
                       if r.status == STATUS_QUEUED)

    def counts(self):
        """``{status: count}`` over every known job."""
        out = {}
        with self._cond:
            for record in self._records.values():
                out[record.status] = out.get(record.status, 0) + 1
        return out

    def close(self):
        """Wake every blocked :meth:`lease` with ``None`` (shutdown)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


__all__ = ["JOBS_PREFIX", "JobQueue", "QuotaExceededError"]
