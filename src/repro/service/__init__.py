"""Analysis-as-a-service: async job API over the paper pipeline.

The layers, bottom up (DESIGN.md section 16):

* :mod:`repro.service.store` — pluggable :class:`ArtifactStore`
  (local directory today, object-store stub for later) shared by the
  trace cache, the sweep engine's point files and the service's
  job/result records;
* :mod:`repro.service.jobs` — the job model: validated requests with
  content keys, durable records;
* :mod:`repro.service.queue` — priority queue with per-tenant quotas
  and crash recovery;
* :mod:`repro.service.pipeline` — one deterministic execution of one
  job (classification, simulation, races, advise), value-identical to
  the CLI by shared render paths;
* :mod:`repro.service.worker` — the worker pool draining the queue
  into the store;
* :mod:`repro.service.app` / :mod:`repro.service.http` — the facade
  and its stdlib HTTP front end (``repro serve``);
* :mod:`repro.service.loadgen` / :mod:`repro.service.parity` — the
  benchmark harness behind ``BENCH_service.json`` and the CI proof
  that HTTP results byte-match the CLI.

This ``__init__`` is import-light on purpose: the trace cache imports
:mod:`repro.service.store`, and an eager import of the worker stack
here would close a cycle back through the emulator.
"""

from __future__ import annotations

_EXPORTS = {
    "AnalysisService": "app",
    "ArtifactStore": "store",
    "JobError": "jobs",
    "JobQueue": "queue",
    "JobRequest": "jobs",
    "LocalDirStore": "store",
    "ObjectStore": "store",
    "QuotaExceededError": "queue",
    "ServiceServer": "http",
    "StoreError": "store",
    "StoreUnavailableError": "store",
    "WorkerPool": "worker",
    "execute_job": "pipeline",
    "open_store": "store",
    "run_loadgen": "loadgen",
    "serve": "http",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    if name in _EXPORTS:
        from importlib import import_module

        module = import_module("." + _EXPORTS[name], __name__)
        return getattr(module, name)
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
