"""The analysis pipeline a service worker runs for one job.

:func:`execute_job` turns a validated
:class:`~repro.service.jobs.JobRequest` into a **deterministic** JSON
result payload: D/N load classification, timing-simulation statistics
with the critical-load ranking, an optional race report and an
optional advisor verdict.  Deterministic means byte-identical across
runs, machines and cache states — the payload carries counts, cycles
and rendered reports but never wall-clock, hostnames or registry
snapshots — which is what makes results content-addressable by the
request key and lets the CI service job assert that the HTTP answer
byte-matches the in-process CLI pipeline.

Value-identity with the CLI is by construction, not by convention:

* classification text is :func:`repro.core.format_kernel_report` — the
  exact function ``repro classify`` prints;
* the simulation block is :func:`render_simulation`, which
  ``repro simulate`` itself calls (``repro.cli._cmd_simulate`` was
  refactored onto it), over a config built by :func:`build_job_config`
  from the same knob names and defaults as the CLI flags;
* race reports are :meth:`~repro.analysis.races.RaceReport.to_json`,
  the same structure ``repro races --json`` writes.

Emulation goes through the fault-isolated, trace-cached
:class:`~repro.experiments.runner.ExperimentRunner`, so service
workers share traces with every other consumer and honor the
``REPRO_INJECT_FAULTS`` hooks the chaos tests drive.
"""

from __future__ import annotations

import io

from ..core import format_kernel_report
from ..profiling.critical import format_critical_loads, rank_critical_loads
from ..profiling.turnaround import class_breakdown
from ..ptx import parse_module, print_module, verify_module
from ..sim.config import TESLA_C2050
from .jobs import JOB_SCHEMA_VERSION, JobError, JobRequest, _versions

__all__ = [
    "build_job_config",
    "canonical_ptx",
    "execute_job",
    "render_simulation",
]


def build_job_config(request):
    """The validated :class:`~repro.sim.config.GPUConfig` for a job —
    the same construction as the ``repro simulate`` CLI flags, so equal
    knobs produce equal configs (and therefore equal numbers)."""
    return TESLA_C2050.scaled(
        num_sms=request.knob("sms"),
        num_partitions=request.knob("partitions"),
        l1_size=request.knob("l1_kb") * 1024,
        l2_size=request.knob("l2_kb") * 1024,
        warp_scheduler=request.knob("scheduler"),
        prefetcher=request.knob("prefetcher"),
    ).validate()


def render_simulation(name, stats, config, classifications, top=8):
    """The ``repro simulate`` report text (shared with the CLI: there
    is exactly one rendering of a simulation and the parity check in CI
    compares it byte-for-byte over HTTP vs stdout)."""
    out = io.StringIO()
    out.write("%s simulated: %d warp insts in %d cycles\n"
              % (name, stats.issued_warp_insts, stats.cycles))
    for label in ("D", "N"):
        cls = stats.classes[label]
        if cls.warp_insts == 0:
            continue
        breakdown = class_breakdown(stats, config, label)
        out.write("  [%s] %d loads | %.2f req/warp | L1 miss %.0f%% | "
                  "L2 miss %.0f%% | turnaround %.0f cycles\n"
                  % (label, cls.warp_insts, cls.requests_per_warp(),
                     100 * cls.l1_miss_ratio(), 100 * cls.l2_miss_ratio(),
                     breakdown.total))
    out.write("  L1 cycles lost to reservation fails: %.0f%%\n"
              % (100 * stats.reservation_fail_fraction()))
    idle = stats.unit_idle_fractions()
    out.write("  unit idle: SP %.0f%%  SFU %.0f%%  LD/ST %.0f%%\n"
              % (100 * idle["sp"], 100 * idle["sfu"], 100 * idle["ldst"]))
    if stats.prefetch_issued:
        out.write("  prefetches issued: %d\n" % stats.prefetch_issued)
    out.write("\n")
    loads = rank_critical_loads(stats, config, classifications, top=top)
    out.write(format_critical_loads(loads, limit=top) + "\n")
    return out.getvalue()


def canonical_ptx(source):
    """The parser/printer-canonicalized form of PTX source (cosmetic
    differences vanish; a parse error becomes a :class:`JobError`)."""
    try:
        return print_module(parse_module(source))
    except Exception as exc:  # noqa: BLE001 — user input boundary
        raise JobError("unparsable PTX: %s: %s"
                       % (type(exc).__name__, exc)) from exc


def check_ptx_matches_app(request):
    """When a request carries both an ``app`` and raw ``ptx``, the PTX
    must canonicalize to the registered workload's kernels — otherwise
    the workload's inputs and launch geometry would be meaningless for
    the submitted code.  Raises :class:`JobError` on mismatch."""
    if not (request.app and request.ptx):
        return
    from ..workloads import get_workload

    workload = get_workload(request.app, scale=request.scale,
                            seed=request.seed)
    if canonical_ptx(request.ptx) != canonical_ptx(workload.ptx()):
        raise JobError(
            "submitted ptx does not match workload %r (after "
            "canonicalization); submit it without 'app' for static "
            "analysis" % request.app)


def _classification_payload(module, classifications, dynamic_split=None):
    kernels = []
    for kernel in module:
        result = classifications[kernel.name]
        kernels.append({
            "name": kernel.name,
            "text": format_kernel_report(result),
            "deterministic": len(result.deterministic),
            "nondeterministic": len(result.nondeterministic),
            "loads": [
                {
                    "pc": load.pc,
                    "class": str(load.load_class),
                    "instruction": str(load.instruction),
                    "tainted_by": list(load.tainting_pcs),
                }
                for load in result
            ],
        })
    out = {"kernels": kernels}
    if dynamic_split is not None:
        det, nondet = dynamic_split
        out["dynamic_split"] = {"deterministic": det,
                                "nondeterministic": nondet}
    return out


def _simulation_payload(name, stats, config, classifications, top):
    classes = {}
    for label in ("D", "N"):
        cls = stats.classes[label]
        if cls.warp_insts == 0:
            continue
        breakdown = class_breakdown(stats, config, label)
        classes[label] = {
            "loads": cls.warp_insts,
            "requests_per_warp": cls.requests_per_warp(),
            "l1_miss_ratio": cls.l1_miss_ratio(),
            "l2_miss_ratio": cls.l2_miss_ratio(),
            "turnaround_cycles": breakdown.total,
        }
    idle = stats.unit_idle_fractions()
    ranked = rank_critical_loads(stats, config, classifications, top=top)
    return {
        "cycles": stats.cycles,
        "issued_warp_insts": stats.issued_warp_insts,
        "classes": classes,
        "reservation_fail_fraction": stats.reservation_fail_fraction(),
        "unit_idle": {unit: idle[unit] for unit in sorted(idle)},
        "dram_reads": stats.dram_reads,
        "dram_writes": stats.dram_writes,
        "prefetch_issued": stats.prefetch_issued,
        "critical_loads": [
            {
                "kernel": load.kernel,
                "pc": load.pc,
                "class": load.load_class,
                "executions": load.executions,
                "total_requests": load.total_requests,
                "mean_turnaround": load.mean_turnaround,
            }
            for load in ranked[:top]
        ],
        "text": render_simulation(name, stats, config, classifications,
                                  top=top),
    }


def _execute_static(request):
    """PTX-only job: static verification + classification (no inputs,
    so nothing dynamic can run)."""
    from ..core import classify_kernel

    module = parse_module(request.ptx)
    report = verify_module(module)
    errors = len(report.errors())
    payload = {
        "schema": JOB_SCHEMA_VERSION,
        "kind": "static",
        "app": None,
        "request": request.canonical(),
        "versions": _versions(),
        "verification": {
            "errors": errors,
            "warnings": len(report.warnings()),
            "text": report.format() if len(report) else "",
        },
        "classification": None,
        "simulation": None,
        "races": None,
        "advise": None,
    }
    if not errors:
        classifications = {kernel.name: classify_kernel(kernel)
                           for kernel in module}
        payload["classification"] = _classification_payload(
            module, classifications)
    return payload


def execute_job(request, use_trace_cache=True):
    """Run one job request end-to-end; returns the result payload.

    Raises :class:`JobError` for requests that can never succeed and
    lets pipeline failures (memory faults, watchdogs, injected faults)
    propagate — the worker records those as the job's structured
    failure.
    """
    if isinstance(request, dict):
        request = JobRequest.from_json(request)
    request.validate()
    if request.app is None:
        return _execute_static(request)
    check_ptx_matches_app(request)

    from ..experiments.runner import ExperimentRunner

    config = build_job_config(request)
    runner = ExperimentRunner(
        scale=request.scale, seed=request.seed, config=config,
        cta_policy=request.knob("cta_policy"),
        simulate=request.simulate, engine=request.engine,
        use_trace_cache=use_trace_cache, strict=True)
    result = runner.result(request.app)
    run = result.run
    payload = {
        "schema": JOB_SCHEMA_VERSION,
        "kind": "app",
        "app": request.app,
        "request": request.canonical(),
        "versions": _versions(),
        # the runner's meta resolves the engine identically whether the
        # trace came fresh or from the cache (run.engine is "" on a
        # cache hit) — payload bytes must not depend on cache state
        "engine": result.meta.get("engine"),
        "classification": _classification_payload(
            run.module, run.classifications,
            dynamic_split=run.dynamic_class_split()),
        "simulation": None,
        "races": None,
        "advise": None,
    }
    if result.stats is not None:
        payload["simulation"] = _simulation_payload(
            request.app, result.stats, config, run.classifications,
            top=request.knob("top"))
    if request.races:
        from ..analysis import analyze_trace

        report = analyze_trace(run.trace, run.classifications,
                               app=request.app, mode=request.races)
        payload["races"] = dict(report.to_json(), mode=request.races,
                                text=report.format())
    if request.advise:
        from ..advise import advise_app

        report = advise_app(request.app, runner=runner,
                            verify=request.simulate)
        payload["advise"] = {
            "verified": report.verified,
            "diagnoses": len(report.diagnoses),
            "recommendation": report.recommendation,
            "verdict": report.verdict,
        }
    return payload
