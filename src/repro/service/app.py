"""The analysis service facade: one object tying store + queue + pool.

:class:`AnalysisService` is what both the HTTP layer and the tests
drive — the HTTP handlers stay a thin JSON shim over it, so every
behavior (quotas, idempotent resubmission, recovery) is testable
without sockets.
"""

from __future__ import annotations

from typing import Optional

from .jobs import STATUS_DONE, JobError, JobRequest
from .queue import JobQueue, QuotaExceededError
from .store import ArtifactStore, open_store
from .worker import WorkerPool, drain, result_key_for


class AnalysisService:
    """Analysis-as-a-service over one artifact store.

    ``store`` is an :class:`~repro.service.store.ArtifactStore` or a
    location string for :func:`~repro.service.store.open_store`.
    ``quota`` bounds outstanding jobs per tenant; ``workers`` sizes the
    pool (0 = no background threads; call :meth:`drain` to process
    synchronously, which is what the deterministic tests do).
    """

    def __init__(self, store, quota=None, workers=2, use_trace_cache=True):
        if not isinstance(store, ArtifactStore):
            store = open_store(store)
        self.store = store
        self.queue = JobQueue(store, quota=quota)
        self.pool = WorkerPool(self.queue, store, workers=workers,
                               use_trace_cache=use_trace_cache)
        self.use_trace_cache = use_trace_cache

    # -- lifecycle --------------------------------------------------------

    def start(self):
        if self.pool.workers:
            self.pool.start()
        return self

    def stop(self):
        self.pool.stop()

    def drain(self, limit=None):
        """Process queued jobs in the calling thread (no pool needed)."""
        return drain(self.queue, self.store,
                     use_trace_cache=self.use_trace_cache, limit=limit)

    # -- submission -------------------------------------------------------

    def submit(self, body):
        """Submit one job from a JSON body; returns its ``JobRecord``.

        Raises :class:`~repro.service.jobs.JobError` (→ 400) on a bad
        request and :class:`~repro.service.queue.QuotaExceededError`
        (→ 429) over quota.  When the content-addressed result already
        sits in the store, the job is born ``done`` without queueing —
        the idempotent-resubmission fast path.
        """
        if not isinstance(body, dict):
            raise JobError("request body must be a JSON object")
        tenant = body.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise JobError("tenant must be a non-empty string")
        priority = body.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise JobError("priority must be an integer")
        request = JobRequest.from_json(body)
        done_key: Optional[str] = None
        key = result_key_for(request)
        if self.store.exists(key):
            done_key = key
        return self.queue.submit(request, tenant=tenant,
                                 priority=priority,
                                 done_result_key=done_key)

    # -- inspection -------------------------------------------------------

    def result_payload(self, record):
        """The stored result payload for a done job (``None`` while the
        job is anything but done)."""
        if record.status != STATUS_DONE or not record.result_key:
            return None
        payload = self.store.get_json(record.result_key)
        # the checksum is a storage concern, verified on read just
        # above; the served payload stays byte-identical to what
        # execute_job produced
        payload.pop("checksum", None)
        return payload

    def job_json(self, job_id, include_result=True):
        """The ``GET /jobs/<id>`` body: the record, plus the result
        payload once done.  ``None`` for an unknown id (→ 404)."""
        record = self.queue.get(job_id)
        if record is None:
            return None
        body = record.to_json()
        if include_result and record.status == STATUS_DONE:
            body["result"] = self.result_payload(record)
        return body

    def jobs_json(self, tenant=None):
        """The ``GET /jobs`` body: id-ordered record summaries."""
        return [r.to_json(include_request=False)
                for r in self.queue.jobs(tenant)]

    def stats(self):
        """Queue depth and per-status counts (``GET /healthz``)."""
        return {
            "depth": self.queue.depth(),
            "jobs": self.queue.counts(),
            "workers": self.pool.workers,
            "store": self.store.describe(),
        }


__all__ = ["AnalysisService", "JobError", "QuotaExceededError"]
