"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    The benchmark suite with Table I metadata.
``classify <app> | --file kernel.ptx``
    Static load classification (the paper's Section V analysis).
``verify <app> | --file kernel.ptx``
    Static PTX verification (type/def-use/CFG/barrier checks); exits 1
    when error-severity diagnostics are found.
``run <app>``
    Execute an application functionally, verify it, and print its
    Table I characteristics.
``simulate <app>``
    Run the full pipeline including the timing model and print the
    per-class statistics and the critical-load ranking.
``figures``
    Regenerate every table/figure; supports ``--jobs`` (parallel
    emulation), ``--engine`` and the on-disk trace cache.  Stamps the
    output directory with a ``manifest.json`` run manifest.
``trace <app>``
    Run the pipeline under the span tracer and print the timing tree;
    ``--trace-out`` additionally writes Chrome ``trace_event`` JSON
    (loadable in Perfetto / ``chrome://tracing``).
``metrics export``
    Run a set of applications and export the resulting metrics-registry
    snapshot as JSON or Prometheus text exposition.
``serve``
    Run the analysis service: an async HTTP job API (``POST /kernels``,
    ``GET /jobs/<id>``, ``GET /metrics``) backed by a priority queue
    with per-tenant quotas, a worker-thread pool over the
    fault-isolated experiment pipeline, and a pluggable artifact store
    holding job records and content-addressed results (DESIGN.md
    section 16).
``cache info|clear``
    Inspect or empty the content-addressed trace cache.
``races <app> | --all``
    Trace-based correctness analysis: shared-memory data races,
    inter-CTA global write conflicts, divergent/mismatched barriers and
    uninitialized shared-memory reads.  ``--mode interval`` (default)
    is the barrier-interval baseline; ``--mode predictive`` is the
    streaming happens-before detector that models atomics and fences
    as synchronization and predicts races the observed schedule
    serialized.  Exits 1 when findings are reported (``--no-fail``
    suppresses the failure exit).
``advise <app>``
    The closed-loop optimization advisor: per-line memory heat map,
    rule-based diagnosis of uncoalesced / burst-prone / cache-thrashing
    loads localized to PTX source lines, and a recommendation from the
    :mod:`repro.optim` transforms whose effect is *verified* by
    re-simulating the transformed trace (``--no-verify`` skips the
    timing runs).  ``--json``/``--heatmap-out`` export the structured
    reports; ``--out DIR`` writes both plus a ``manifest.json``.
``sweep run|status|report|compare``
    The declarative parameter-sweep engine (DESIGN.md section 11):
    ``run`` executes (a shard of) a committed spec resumably, writing
    content-addressed per-point results; ``status`` summarizes
    completion; ``report`` merges shard outputs into a
    byte-deterministic aggregate; ``compare`` diffs two metric JSON
    files with per-metric tolerances, exiting 1 on regression (the CI
    perf gate).
"""

from __future__ import annotations

import argparse
import sys

from .core import classify_kernel, format_kernel_report
from .ptx import parse_module
from .sim.config import TESLA_C2050
from .sim.gpu import GPU
from .workloads import WORKLOAD_CLASSES, get_workload, workload_names


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Revealing Critical Loads and Hidden "
                    "Data Locality in GPGPU Applications' (IISWC 2015)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 15 benchmark applications")

    p_classify = sub.add_parser(
        "classify", help="classify global loads (deterministic vs "
                         "non-deterministic)")
    p_classify.add_argument("app", nargs="?",
                            help="workload name (e.g. bfs)")
    p_classify.add_argument("--file", help="classify a PTX-subset file "
                                           "instead of a workload")

    p_verify = sub.add_parser(
        "verify", help="statically verify PTX (types, def-before-use, "
                       "branch targets, barriers)")
    p_verify.add_argument("app", nargs="?",
                          help="workload name (e.g. bfs)")
    p_verify.add_argument("--file", help="verify a PTX-subset file "
                                         "instead of a workload")

    p_run = sub.add_parser("run", help="execute and verify a workload")
    p_run.add_argument("app", choices=workload_names())
    p_run.add_argument("--scale", type=float, default=0.25)
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--engine", choices=("vectorized", "scalar", "compiled"),
                       default=None,
                       help="warp-execution engine (default: vectorized)")

    p_sim = sub.add_parser("simulate",
                           help="execute, verify and time-simulate")
    p_sim.add_argument("app", choices=workload_names())
    p_sim.add_argument("--scale", type=float, default=0.25)
    p_sim.add_argument("--seed", type=int, default=7)
    p_sim.add_argument("--sms", type=int, default=4)
    p_sim.add_argument("--partitions", type=int, default=2)
    p_sim.add_argument("--l1-kb", type=int, default=2)
    p_sim.add_argument("--l2-kb", type=int, default=64)
    p_sim.add_argument("--scheduler", choices=("lrr", "gto"),
                       default="lrr")
    p_sim.add_argument("--prefetcher",
                       choices=("none", "stride", "indirect_oracle"),
                       default="none")
    p_sim.add_argument("--cta-policy",
                       choices=("round_robin", "clustered"),
                       default="round_robin")
    p_sim.add_argument("--top", type=int, default=8,
                       help="critical loads to list")
    p_sim.add_argument("--engine", choices=("vectorized", "scalar", "compiled"),
                       default=None,
                       help="warp-execution engine (default: vectorized)")

    p_fig = sub.add_parser(
        "figures", help="regenerate tables/figures for a set of apps and "
                        "write them (plus results.json) to a directory")
    p_fig.add_argument("--apps", default=None,
                       help="comma-separated workload names "
                            "(default: all 15)")
    p_fig.add_argument("--scale", type=float, default=0.5)
    p_fig.add_argument("--out", default="repro-results",
                       help="output directory")
    p_fig.add_argument("--jobs", type=int, default=1,
                       help="worker processes for emulation+simulation")
    p_fig.add_argument("--engine", choices=("vectorized", "scalar", "compiled"),
                       default=None,
                       help="warp-execution engine (default: vectorized)")
    p_fig.add_argument("--trace-cache", action="store_true",
                       help="reuse/populate the on-disk trace cache")
    p_fig.add_argument("--strict", action="store_true",
                       help="abort (exit nonzero) on the first failing "
                            "application instead of degrading")
    p_fig.add_argument("--timeout", type=float, default=None,
                       help="per-application timeout in seconds "
                            "(parallel runs only)")

    p_trace = sub.add_parser(
        "trace", help="run the pipeline under the span tracer and print "
                      "the timing tree")
    p_trace.add_argument("app", choices=workload_names())
    p_trace.add_argument("--scale", type=float, default=0.25)
    p_trace.add_argument("--engine", choices=("vectorized", "scalar", "compiled"),
                         default=None,
                         help="warp-execution engine (default: vectorized)")
    p_trace.add_argument("--no-simulate", action="store_true",
                         help="skip the timing simulation stage")
    p_trace.add_argument("--trace-out", default=None, metavar="PATH",
                         help="write Chrome trace_event JSON "
                              "(open in Perfetto or chrome://tracing)")

    p_metrics = sub.add_parser(
        "metrics", help="export a metrics-registry snapshot for a set of "
                        "applications")
    p_metrics.add_argument("action", choices=("export",))
    p_metrics.add_argument("--apps", default=None,
                           help="comma-separated workload names "
                                "(default: all 15)")
    p_metrics.add_argument("--scale", type=float, default=0.25)
    p_metrics.add_argument("--format", choices=("json", "prom"),
                           default="json", dest="fmt",
                           help="JSON snapshot or Prometheus text "
                                "exposition")
    p_metrics.add_argument("--no-simulate", action="store_true",
                           help="skip the timing simulation stage "
                                "(trace/locality series only)")
    p_metrics.add_argument("--out", default=None, metavar="PATH",
                           help="write to a file instead of stdout")

    p_serve = sub.add_parser(
        "serve", help="run the analysis service HTTP API "
                      "(POST /kernels, GET /jobs/<id>, GET /metrics)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8077,
                         help="TCP port (0 picks an ephemeral port)")
    p_serve.add_argument("--store", default="service-data",
                         help="artifact store location: a directory, "
                              "file:// URL or s3:// URL "
                              "(default: ./service-data)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker threads draining the job queue")
    p_serve.add_argument("--quota", type=int, default=None,
                         help="max outstanding jobs per tenant "
                              "(default: unlimited)")
    p_serve.add_argument("--no-trace-cache", action="store_true",
                         help="emulate every job cold instead of using "
                              "the content-addressed trace cache")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress per-request access logging")

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the on-disk trace cache")
    p_cache.add_argument("action", choices=("info", "clear"))

    p_races = sub.add_parser(
        "races", help="trace-based race/sync-bug detection "
                      "(barrier-interval happens-before); exits 1 when "
                      "findings are reported")
    p_races.add_argument("app", nargs="?",
                         choices=workload_names(include_extended=True),
                         help="workload name (or use --all)")
    p_races.add_argument("--all", action="store_true", dest="all_apps",
                         help="analyze every registered workload")
    p_races.add_argument("--scale", type=float, default=0.25)
    p_races.add_argument("--seed", type=int, default=7)
    p_races.add_argument("--engine", choices=("vectorized", "scalar", "compiled"),
                         default=None,
                         help="warp-execution engine (default: vectorized)")
    p_races.add_argument("--mode", choices=("interval", "predictive"),
                         default="interval",
                         help="detector: barrier-interval baseline or "
                              "predictive happens-before (models atomics "
                              "and fences as synchronization)")
    p_races.add_argument("--no-fail", action="store_true",
                         help="exit 0 even when findings are reported "
                              "(for exploratory runs)")
    p_races.add_argument("--json", default=None, metavar="PATH",
                         dest="json_out",
                         help="write the structured reports as JSON")

    p_adv = sub.add_parser(
        "advise", help="memory heat map + rule-based diagnosis + "
                       "simulator-verified optimization recommendation")
    p_adv.add_argument("app", choices=workload_names())
    p_adv.add_argument("--scale", type=float, default=0.25)
    p_adv.add_argument("--engine",
                       choices=("vectorized", "scalar", "compiled"),
                       default=None,
                       help="warp-execution engine (default: vectorized)")
    p_adv.add_argument("--config", choices=("bench", "tiny", "c2050"),
                       default="bench",
                       help="GPU model for the verification runs")
    p_adv.add_argument("--trace-cache", action="store_true",
                       help="reuse/populate the on-disk trace cache")
    p_adv.add_argument("--no-verify", action="store_true",
                       help="diagnosis only: skip the baseline and "
                            "transform timing simulations")
    p_adv.add_argument("--max-requests", type=int, default=4,
                       help="sub-warp line budget for the warp_split "
                            "candidate")
    p_adv.add_argument("--cluster", type=int, default=2,
                       help="SM cluster size for the semi_global_l2 "
                            "candidate")
    p_adv.add_argument("--top", type=int, default=5,
                       help="diagnoses to print in the text report")
    p_adv.add_argument("--json", default=None, metavar="PATH",
                       dest="json_out",
                       help="write the advice report as JSON")
    p_adv.add_argument("--heatmap-out", default=None, metavar="PATH",
                       help="write the per-line heat map as JSON")
    p_adv.add_argument("--out", default=None, metavar="DIR",
                       help="write advice.json, heatmap.json and "
                            "manifest.json to a directory")

    p_sweep = sub.add_parser(
        "sweep", help="declarative parameter sweeps: sharded resumable "
                      "runs, aggregate reports, tolerance-gated compare")
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    ps_run = sweep_sub.add_parser(
        "run", help="execute (a shard of) a sweep spec into --out; "
                    "completed points are skipped on rerun")
    ps_run.add_argument("spec", help="sweep spec JSON file (see sweeps/)")
    ps_run.add_argument("--out", default="sweep-results",
                        help="output directory (point files land in "
                             "<out>/points)")
    ps_run.add_argument("--shard", default="1/1", metavar="K/N",
                        help="run the K-th of N deterministic shards")
    ps_run.add_argument("--jobs", type=int, default=1,
                        help="worker processes across (app, scale) groups")
    ps_run.add_argument("--engine", choices=("vectorized", "scalar", "compiled"),
                        default=None,
                        help="warp-execution engine for cold emulations")
    ps_run.add_argument("--no-trace-cache", action="store_true",
                        help="skip the on-disk trace cache")
    ps_run.add_argument("--strict", action="store_true",
                        help="abort on the first failing point instead "
                             "of recording and continuing")

    ps_status = sweep_sub.add_parser(
        "status", help="completion summary for a sweep's output dir(s)")
    ps_status.add_argument("dirs", nargs="+",
                           help="sweep output directories")
    ps_status.add_argument("--spec", default=None,
                           help="spec file (default: sweep.json found in "
                                "the directories)")
    ps_status.add_argument("--shard-count", type=int, default=1,
                           help="also break completion down over N shards")

    ps_report = sweep_sub.add_parser(
        "report", help="merge point files from one or more output dirs "
                       "into an aggregate report (byte-deterministic)")
    ps_report.add_argument("dirs", nargs="+",
                           help="sweep output directories (e.g. the four "
                                "shard artifacts)")
    ps_report.add_argument("--spec", default=None,
                           help="spec file (default: sweep.json found in "
                                "the directories)")
    ps_report.add_argument("--out", default=None,
                           help="write report.json + report.txt here "
                                "instead of printing")
    ps_report.add_argument("--strict", action="store_true",
                           help="exit 1 when any grid point is missing")

    ps_cmp = sweep_sub.add_parser(
        "compare", help="diff two metric JSON files with per-metric "
                        "relative tolerances; exits 1 on regression")
    ps_cmp.add_argument("old", help="baseline JSON (e.g. the committed "
                                    "BENCH_emulator.json or a report.json)")
    ps_cmp.add_argument("new", help="candidate JSON")
    ps_cmp.add_argument("--key", action="append", default=[],
                        metavar="GLOB=TOL[:up|:down]",
                        help="tolerance rule for matching dotted paths; "
                             "first match wins (e.g. "
                             "'totals.*_speedup=0.8:down')")
    ps_cmp.add_argument("--default-tolerance", type=float, default=0.0,
                        help="relative tolerance for unmatched paths "
                             "(default 0: exact)")
    ps_cmp.add_argument("--only", action="append", default=[],
                        metavar="GLOB",
                        help="compare only paths matching these globs")
    ps_cmp.add_argument("--ignore", action="append", default=[],
                        metavar="GLOB",
                        help="skip paths matching these globs")
    ps_cmp.add_argument("--json", default=None, metavar="PATH",
                        dest="json_out",
                        help="write the structured comparison as JSON")
    ps_cmp.add_argument("--verbose", action="store_true",
                        help="print every compared value, not just "
                             "failures")
    return parser


def _cmd_list(args, out):
    out.write("%-6s %-7s %-44s\n" % ("name", "cat", "description"))
    for cls in WORKLOAD_CLASSES:
        out.write("%-6s %-7s %-44s\n"
                  % (cls.name, cls.category, cls.description))
    return 0


def _cmd_classify(args, out):
    if args.file:
        with open(args.file) as fh:
            module = parse_module(fh.read())
        for kernel in module:
            out.write(format_kernel_report(classify_kernel(kernel)) + "\n\n")
        return 0
    if not args.app:
        out.write("error: provide a workload name or --file\n")
        return 2
    workload = get_workload(args.app, scale=0.25)
    module = parse_module(workload.ptx())
    for kernel in module:
        out.write(format_kernel_report(classify_kernel(kernel)) + "\n\n")
    return 0


def _cmd_verify(args, out):
    from .ptx import verify_module

    if args.file:
        with open(args.file) as fh:
            module = parse_module(fh.read())
    elif args.app:
        workload = get_workload(args.app, scale=0.25)
        module = parse_module(workload.ptx())
    else:
        out.write("error: provide a workload name or --file\n")
        return 2
    report = verify_module(module)
    if len(report):
        out.write(report.format() + "\n")
    errors = len(report.errors())
    warnings = len(report.warnings())
    out.write("%d error(s), %d warning(s)\n" % (errors, warnings))
    return 1 if errors else 0


def _cmd_run(args, out):
    workload = get_workload(args.app, scale=args.scale, seed=args.seed)
    run = workload.run(engine=args.engine)
    trace = run.trace
    total = trace.total_warp_instructions()
    loads = trace.global_load_warp_count()
    out.write("%s (%s): %s\n" % (workload.name, workload.category,
                                 workload.data_set))
    out.write("  launches:               %d\n" % len(trace))
    out.write("  warp instructions:      %d\n" % total)
    out.write("  global load warps:      %d (%.2f%%)\n"
              % (loads, 100.0 * loads / total if total else 0.0))
    out.write("  shared load warps:      %d\n"
              % trace.shared_load_warp_count())
    det, nondet = run.dynamic_class_split()
    out.write("  dynamic D/N split:      %d / %d\n" % (det, nondet))
    out.write("  functional verification: PASS\n")
    return 0


def _cmd_simulate(args, out):
    # the report text is rendered by the same function the analysis
    # service embeds in result payloads — CI asserts the two surfaces
    # byte-match, so there is exactly one render path
    from .service.pipeline import render_simulation

    workload = get_workload(args.app, scale=args.scale, seed=args.seed)
    run = workload.run(engine=args.engine)
    config = TESLA_C2050.scaled(
        num_sms=args.sms, num_partitions=args.partitions,
        l1_size=args.l1_kb * 1024, l2_size=args.l2_kb * 1024,
        warp_scheduler=args.scheduler, prefetcher=args.prefetcher,
    ).validate()
    gpu = GPU(config, cta_policy=args.cta_policy)
    for launch in run.trace:
        gpu.run_launch(launch, run.classifications[launch.kernel_name])
    out.write(render_simulation(workload.name, gpu.stats, config,
                                run.classifications, top=args.top))
    return 0


def _cmd_figures(args, out):
    import os

    from .experiments import export_json
    from .experiments.runner import BENCH_CONFIG, ExperimentRunner
    from .experiments import tables, figures as fig
    from .obs.manifest import RunManifest
    from .obs.metrics import isolated_registry

    names = (args.apps.split(",") if args.apps else workload_names())
    run_manifest = RunManifest("figures", {
        "apps": names, "scale": args.scale, "jobs": args.jobs,
        "engine": args.engine, "trace_cache": args.trace_cache,
        "strict": args.strict, "timeout": args.timeout,
    })
    with isolated_registry() as registry:
        runner = ExperimentRunner(scale=args.scale, config=BENCH_CONFIG,
                                  jobs=args.jobs, engine=args.engine,
                                  use_trace_cache=args.trace_cache,
                                  strict=args.strict, timeout=args.timeout)
        try:
            mixed = runner.results(names)
        except Exception as exc:                # noqa: BLE001 — strict abort
            if not args.strict:
                raise
            out.write("error: %s: %s\n" % (type(exc).__name__, exc))
            return 1
        for result in mixed:
            run_manifest.record_result(result)
        run_manifest.attach_metrics(registry)
    results = [r for r in mixed if r.ok]
    failures = [r for r in mixed if not r.ok]

    from .resilience.artifacts import atomic_write_json

    os.makedirs(args.out, exist_ok=True)
    manifest = {
        "completed": [r.name for r in results],
        "failures": [f.to_json() for f in failures],
    }
    manifest_path = os.path.join(args.out, "failures.json")
    atomic_write_json(manifest_path, manifest)
    run_manifest_path = os.path.join(args.out, "manifest.json")
    run_manifest.finish().write(run_manifest_path)
    out.write("wrote %s\n" % run_manifest_path)
    summary = run_manifest.summary()
    if args.trace_cache:
        out.write("trace cache: %d hit(s), %d miss(es)\n"
                  % (summary["trace_cache_hits"],
                     summary["trace_cache_misses"]))
    for failure in failures:
        out.write("FAILED %s\n" % failure.format())
    if failures:
        out.write("continuing with %d of %d application(s); manifest: %s\n"
                  % (len(results), len(mixed), manifest_path))
    if not results:
        out.write("no application completed; wrote %s\n" % manifest_path)
        return 0
    renders = {
        "table1": tables.render_table1,
        "table3": tables.render_table3,
        "fig1": fig.render_fig1, "fig2": fig.render_fig2,
        "fig3": fig.render_fig3, "fig4": fig.render_fig4,
        "fig5": fig.render_fig5, "fig6": fig.render_fig6,
        "fig8": fig.render_fig8, "fig9": fig.render_fig9,
        "fig10": fig.render_fig10, "fig11": fig.render_fig11,
        "fig12": fig.render_fig12,
    }
    for name, render in renders.items():
        path = os.path.join(args.out, "%s.txt" % name)
        with open(path, "w") as fh:
            fh.write(render(results) + "\n")
        out.write("wrote %s\n" % path)
    json_path = os.path.join(args.out, "results.json")
    export_json(results, path=json_path)
    out.write("wrote %s\n" % json_path)
    out.write("wrote %s\n" % manifest_path)
    return 0


def _cmd_trace(args, out):
    from .experiments.runner import BENCH_CONFIG, ExperimentRunner
    from .obs import tracing
    from .obs.metrics import isolated_registry

    tracer = tracing.Tracer()
    with isolated_registry(), tracing.use_tracer(tracer):
        with tracing.span("pipeline", app=args.app, scale=args.scale):
            runner = ExperimentRunner(
                scale=args.scale, config=BENCH_CONFIG,
                simulate=not args.no_simulate, engine=args.engine)
            runner.result(args.app)
    out.write(tracer.render_tree())
    if args.trace_out:
        tracer.write_chrome_trace(args.trace_out)
        out.write("wrote %s (load in Perfetto or chrome://tracing)\n"
                  % args.trace_out)
    return 0


def _cmd_metrics(args, out):
    from .experiments.runner import BENCH_CONFIG, ExperimentRunner
    from .obs.export import render
    from .obs.metrics import isolated_registry

    names = (args.apps.split(",") if args.apps else workload_names())
    with isolated_registry() as registry:
        runner = ExperimentRunner(scale=args.scale, config=BENCH_CONFIG,
                                  simulate=not args.no_simulate,
                                  strict=False)
        mixed = runner.results(names)
        for failure in (r for r in mixed if not r.ok):
            out.write("FAILED %s\n" % failure.format())
        # the same render the service's GET /metrics uses (obs.export
        # is the single registry-export path)
        text = render(registry, fmt=args.fmt)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        out.write("wrote %s\n" % args.out)
    else:
        out.write(text)
    return 0


def _cmd_serve(args, out):
    from .service.app import AnalysisService
    from .service.http import ServiceServer

    service = AnalysisService(
        args.store, quota=args.quota, workers=args.workers,
        use_trace_cache=not args.no_trace_cache).start()
    server = ServiceServer(service, host=args.host, port=args.port,
                           verbose=not args.quiet)
    out.write("serving on %s (store: %s, workers: %d%s)\n"
              % (server.url, service.store.describe(), args.workers,
                 ", quota: %d" % args.quota if args.quota else ""))
    if service.queue.recovered_ids:
        out.write("recovered %d queued job(s) from the store\n"
                  % len(service.queue.recovered_ids))
    if hasattr(out, "flush"):
        out.flush()  # the boot line gates CI readiness polling
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


def _cmd_cache(args, out):
    from .emulator import trace_cache

    if args.action == "clear":
        removed = trace_cache.clear()
        out.write("removed %d cached trace(s)\n" % removed)
        return 0
    count, total = trace_cache.stats()
    out.write("directory: %s\n" % trace_cache.cache_dir())
    out.write("enabled:   %s\n" % ("yes" if trace_cache.cache_enabled()
                                   else "no (REPRO_TRACE_CACHE=0)"))
    out.write("entries:   %d (%.1f KiB)\n" % (count, total / 1024.0))
    qcount, qtotal = trace_cache.quarantine_stats()
    if qcount:
        out.write("quarantined: %d (%.1f KiB) in %s\n"
                  % (qcount, qtotal / 1024.0,
                     trace_cache.cache_dir() / ".corrupt"))
    return 0


def _cmd_races(args, out):
    import json

    from .analysis import analyze_workload

    if args.all_apps:
        names = workload_names(include_extended=True)
    elif args.app:
        names = [args.app]
    else:
        out.write("error: provide a workload name or --all\n")
        return 2
    reports = []
    for name in names:
        report = analyze_workload(name, scale=args.scale, seed=args.seed,
                                  engine=args.engine, mode=args.mode)
        reports.append(report)
        out.write(report.format() + "\n")
    findings = sum(len(r.findings) for r in reports)
    if args.json_out:
        payload = {"scale": args.scale, "seed": args.seed,
                   "mode": args.mode, "clean": findings == 0,
                   "reports": [r.to_json() for r in reports]}
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out.write("wrote %s\n" % args.json_out)
    if findings:
        out.write("%d finding(s) across %d application(s)\n"
                  % (findings, len(reports)))
        return 0 if args.no_fail else 1
    return 0


def _cmd_sweep_run(args, out):
    from .obs.metrics import isolated_registry
    from .sweep import (SpecError, SweepEngine, SweepError, SweepSpec,
                        parse_shard)

    try:
        spec = SweepSpec.load(args.spec)
        shard_index, shard_count = parse_shard(args.shard)
    except SpecError as exc:
        out.write("error: %s\n" % exc)
        return 2
    engine = SweepEngine(
        spec, args.out, jobs=args.jobs, engine=args.engine,
        use_trace_cache=not args.no_trace_cache, strict=args.strict)
    with isolated_registry():
        try:
            summary = engine.run(shard_index, shard_count)
        except SweepError as exc:
            out.write("error: %s\n" % exc)
            return 1
    out.write("sweep %s: shard %d/%d -> %s\n"
              % (spec.name, shard_index, shard_count, args.out))
    out.write("  points:   %d selected of %d total\n"
              % (summary["selected"], summary["total"]))
    out.write("  computed: %d\n  cached:   %d\n  failed:   %d\n"
              % (summary["computed"], summary["cached"],
                 summary["failed"]))
    for outcome in summary["outcomes"]:
        if outcome.status == "failed":
            out.write("FAILED %s: %s\n"
                      % (outcome.params, outcome.error))
    return 1 if summary["failed"] else 0


def _cmd_sweep_status(args, out):
    from .sweep import ReportError, SpecError, load_sweep_spec, sweep_status

    try:
        spec = load_sweep_spec(args.dirs, args.spec)
    except (ReportError, SpecError) as exc:
        out.write("error: %s\n" % exc)
        return 2
    status = sweep_status(spec, args.dirs, shard_count=args.shard_count)
    out.write("sweep %s: %d/%d point(s) done (%d missing)\n"
              % (spec.name, status["done"], status["total"],
                 status["missing"]))
    if args.shard_count > 1:
        for entry in status["shards"]:
            out.write("  shard %d/%d: %d/%d done\n"
                      % (entry["shard"], args.shard_count,
                         entry["done"], entry["points"]))
    return 0


def _cmd_sweep_report(args, out):
    from .sweep import (
        ReportError,
        SpecError,
        build_report,
        load_sweep_spec,
        render_report,
        scan_points,
        write_report,
    )

    try:
        spec = load_sweep_spec(args.dirs, args.spec)
    except (ReportError, SpecError) as exc:
        out.write("error: %s\n" % exc)
        return 2
    report = build_report(spec, scan_points(args.dirs))
    if args.out:
        json_path, txt_path = write_report(spec, report, args.out)
        out.write("wrote %s\nwrote %s\n" % (json_path, txt_path))
    else:
        out.write(render_report(spec, report) + "\n")
    if report["missing"]:
        out.write("missing %d of %d point(s)\n"
                  % (len(report["missing"]), report["points_total"]))
        if args.strict:
            return 1
    return 0


def _cmd_sweep_compare(args, out):
    import json

    from .sweep import compare_files, parse_rule

    try:
        rules = [parse_rule(text) for text in args.key]
    except ValueError as exc:
        out.write("error: %s\n" % exc)
        return 2
    try:
        result = compare_files(
            args.old, args.new, rules=rules,
            default_tolerance=args.default_tolerance,
            only=args.only, ignore=args.ignore)
    except (OSError, ValueError) as exc:
        out.write("error: %s\n" % exc)
        return 2
    out.write(result.format(verbose=args.verbose) + "\n")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(result.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        out.write("wrote %s\n" % args.json_out)
    return 0 if result.ok else 1


def _cmd_advise(args, out):
    import json
    import os

    from .advise import advise_app
    from .experiments.runner import BENCH_CONFIG, ExperimentRunner
    from .obs.manifest import RunManifest
    from .obs.metrics import isolated_registry
    from .sim.config import TINY

    config = {"bench": BENCH_CONFIG, "tiny": TINY,
              "c2050": TESLA_C2050}[args.config]
    run_manifest = RunManifest("advise", {
        "app": args.app, "scale": args.scale, "engine": args.engine,
        "config": args.config, "trace_cache": args.trace_cache,
        "verify": not args.no_verify, "max_requests": args.max_requests,
        "cluster": args.cluster,
    })
    with isolated_registry() as registry:
        runner = ExperimentRunner(
            scale=args.scale, config=config,
            simulate=not args.no_verify, engine=args.engine,
            use_trace_cache=args.trace_cache, strict=False)
        report = advise_app(
            args.app, runner=runner, verify=not args.no_verify,
            max_requests=args.max_requests, cluster_size=args.cluster,
            registry=registry)
        result = runner.result(args.app)
        run_manifest.record_result(result)
        run_manifest.attach_metrics(registry)
    run_manifest.extras["verdict"] = report.verdict
    run_manifest.extras["recommendation"] = report.recommendation

    out.write(report.format(top=args.top) + "\n")

    def _dump(path, payload):
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out.write("wrote %s\n" % path)

    if args.json_out:
        _dump(args.json_out, report.to_json())
    if args.heatmap_out:
        if report.heatmap is None:
            out.write("no heat map produced (profiling failed)\n")
        else:
            _dump(args.heatmap_out, report.heatmap.to_json())
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        _dump(os.path.join(args.out, "advice.json"), report.to_json())
        if report.heatmap is not None:
            _dump(os.path.join(args.out, "heatmap.json"),
                  report.heatmap.to_json())
        manifest_path = os.path.join(args.out, "manifest.json")
        run_manifest.finish().write(manifest_path)
        out.write("wrote %s\n" % manifest_path)
    return 0 if result.ok else 1


_SWEEP_COMMANDS = {
    "run": _cmd_sweep_run,
    "status": _cmd_sweep_status,
    "report": _cmd_sweep_report,
    "compare": _cmd_sweep_compare,
}


def _cmd_sweep(args, out):
    return _SWEEP_COMMANDS[args.sweep_command](args, out)


_COMMANDS = {
    "list": _cmd_list,
    "classify": _cmd_classify,
    "verify": _cmd_verify,
    "run": _cmd_run,
    "simulate": _cmd_simulate,
    "figures": _cmd_figures,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "races": _cmd_races,
    "advise": _cmd_advise,
    "sweep": _cmd_sweep,
}


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BrokenPipeError:
        # downstream pager/head closed the pipe: not an error
        return 0


if __name__ == "__main__":
    sys.exit(main())
