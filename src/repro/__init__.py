"""repro — reproduction of "Revealing Critical Loads and Hidden Data
Locality in GPGPU Applications" (Koo, Jeon, Annavaram; IISWC 2015).

The package layers bottom-up:

* :mod:`repro.ptx` — PTX-subset ISA, parser, builder, CFG;
* :mod:`repro.core` — the paper's contribution: backward-dataflow
  classification of global loads into deterministic / non-deterministic;
* :mod:`repro.emulator` — functional SIMT execution producing warp traces;
* :mod:`repro.sim` — cycle-level GPU timing model (GPGPU-Sim substitute);
* :mod:`repro.workloads` — the 15 Table I applications over synthetic
  inputs;
* :mod:`repro.profiling` — locality analysis, profiler counters and
  turnaround breakdowns;
* :mod:`repro.experiments` — harness regenerating every table and figure;
* :mod:`repro.optim` — the Section X microarchitectural suggestions as
  runnable ablations.

Quick start::

    from repro import get_workload, GPU, TESLA_C2050

    run = get_workload("bfs", scale=0.25).run()
    for name, result in run.classifications.items():
        print(name, [str(l) for l in result])
    gpu = GPU(TESLA_C2050.scaled(num_sms=4))
    for launch in run.trace:
        gpu.run_launch(launch, run.classifications[launch.kernel_name])
    print(gpu.stats.l1_cycle_fractions())
"""

from .core import (
    ClassificationResult,
    ClassifiedLoad,
    LoadClass,
    LoadClassifier,
    Provenance,
    classify_kernel,
    classify_module,
)
from .emulator import Dim3, Emulator, LaunchConfig, MemoryImage
from .ptx import CFG, Kernel, KernelBuilder, Module, parse_kernel, parse_module
from .sim import GPU, TESLA_C2050, TINY, GPUConfig, SimStats
from .workloads import Workload, WorkloadRun, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "ClassificationResult",
    "ClassifiedLoad",
    "LoadClass",
    "LoadClassifier",
    "Provenance",
    "classify_kernel",
    "classify_module",
    "Dim3",
    "Emulator",
    "LaunchConfig",
    "MemoryImage",
    "CFG",
    "Kernel",
    "KernelBuilder",
    "Module",
    "parse_kernel",
    "parse_module",
    "GPU",
    "TESLA_C2050",
    "TINY",
    "GPUConfig",
    "SimStats",
    "Workload",
    "WorkloadRun",
    "get_workload",
    "workload_names",
    "__version__",
]
