"""Section X.A ablation: sub-warp splitting of non-deterministic loads.

"To avoid bursty memory traffic generation by non-deterministic loads,
we suggest exploring techniques that partition non-deterministic loads
into multiple sub-loads using warp splitting algorithms.  Each sub-warp
then generates only a subset of memory requests."

Implemented as a trace transformation: every non-deterministic global
load whose lanes touch more than ``max_requests`` distinct 128 B blocks
is replaced by several sub-warp loads, each covering lanes that fit in
``max_requests`` blocks.  The transformed trace replays through the
unchanged timing model, so the resource-burst relief is measured, not
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emulator.trace import KernelLaunchTrace, TraceOp, WarpTrace
from ..sim.config import LINE_BYTES
from ..sim.gpu import GPU


def split_op(op, max_requests, line_bytes=LINE_BYTES):
    """Split one memory trace-op into sub-warp ops of bounded footprint.

    Greedy contract: the op's distinct ``line_bytes`` blocks are taken
    in ascending block-address order and packed whole into consecutive
    sub-warps of at most ``max_requests`` blocks each; every lane access
    joins the sub-warp that owns its block, and each sub-warp's accesses
    keep ascending ``(lane, address)`` order.  Grouping therefore
    depends only on the *multiset* of addresses — permuting the lane
    iteration order of an equal address set yields the same sub-warp
    block partition (the earlier lane-order greedy admitted a lane whose
    block was already in the current group even when a later flush would
    have grouped it better, so the split was iteration-order
    sensitive).  Ops touching at most ``max_requests`` blocks are
    returned unchanged.
    """
    blocks = sorted({addr // line_bytes for _lane, addr in op.addresses})
    if len(blocks) <= max_requests:
        return [op]
    group_of = {block: i // max_requests for i, block in enumerate(blocks)}
    groups = [[] for _ in range((len(blocks) + max_requests - 1)
                               // max_requests)]
    for lane, addr in sorted(op.addresses):
        groups[group_of[addr // line_bytes]].append((lane, addr))
    ops = []
    for group in groups:
        mask = 0
        for lane, _addr in group:
            mask |= 1 << lane
        ops.append(TraceOp(op.inst, mask, tuple(group)))
    return ops


def split_launch(launch_trace, classification, max_requests=4,
                 line_bytes=LINE_BYTES):
    """Transformed copy of a launch trace with N loads sub-warp split."""
    nondet_pcs = set()
    if classification is not None:
        nondet_pcs = {ld.pc for ld in classification
                      if not ld.is_deterministic}
    new_launch = KernelLaunchTrace(
        kernel_name=launch_trace.kernel_name,
        config=launch_trace.config,
        shared_size=launch_trace.shared_size,
    )
    for warp in launch_trace.warps:
        new_warp = WarpTrace(cta_id=warp.cta_id, warp_id=warp.warp_id)
        for op in warp.ops:
            if (op.addresses and op.inst.is_global_load
                    and op.pc in nondet_pcs):
                new_warp.ops.extend(split_op(op, max_requests, line_bytes))
            else:
                new_warp.ops.append(op)
        new_launch.warps.append(new_warp)
    return new_launch


@dataclass(frozen=True)
class SplitOutcome:
    """Before/after metrics for the warp-splitting ablation."""

    label: str
    cycles: int
    reservation_fail_fraction: float
    mean_n_turnaround: float
    n_requests_per_warp: float


def _outcome(label, stats):
    n = stats.classes["N"]
    return SplitOutcome(
        label=label,
        cycles=stats.cycles,
        reservation_fail_fraction=stats.reservation_fail_fraction(),
        mean_n_turnaround=n.mean_turnaround(),
        n_requests_per_warp=n.requests_per_warp(),
    )


def compare_warp_splitting(run, config, max_requests=4):
    """Simulate an application with and without sub-warp splitting.

    Returns ``{"baseline": SplitOutcome, "split": SplitOutcome}``.
    """
    baseline_gpu = GPU(config)
    split_gpu = GPU(config)
    for launch in run.trace:
        classification = run.classifications.get(launch.kernel_name)
        baseline_gpu.run_launch(launch, classification)
        split_gpu.run_launch(split_launch(launch, classification,
                                          max_requests,
                                          line_bytes=config.l1_line_size),
                             classification)
    return {
        "baseline": _outcome("baseline", baseline_gpu.stats),
        "split": _outcome("split(max=%d)" % max_requests, split_gpu.stats),
    }
