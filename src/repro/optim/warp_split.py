"""Section X.A ablation: sub-warp splitting of non-deterministic loads.

"To avoid bursty memory traffic generation by non-deterministic loads,
we suggest exploring techniques that partition non-deterministic loads
into multiple sub-loads using warp splitting algorithms.  Each sub-warp
then generates only a subset of memory requests."

Implemented as a trace transformation: every non-deterministic global
load whose lanes touch more than ``max_requests`` distinct 128 B blocks
is replaced by several sub-warp loads, each covering lanes that fit in
``max_requests`` blocks.  The transformed trace replays through the
unchanged timing model, so the resource-burst relief is measured, not
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emulator.trace import KernelLaunchTrace, TraceOp, WarpTrace
from ..sim.gpu import GPU

BLOCK = 128


def split_op(op, max_requests):
    """Split one memory trace-op into sub-warp ops of bounded footprint.

    Lanes are greedily packed: a lane joins the current sub-warp while the
    sub-warp's distinct-block count stays within ``max_requests``.
    """
    groups = []
    current = []
    blocks = set()
    for lane, addr in op.addresses:
        block = addr // BLOCK
        if block not in blocks and len(blocks) >= max_requests:
            groups.append(current)
            current = []
            blocks = set()
        blocks.add(block)
        current.append((lane, addr))
    if current:
        groups.append(current)
    if len(groups) <= 1:
        return [op]
    ops = []
    for group in groups:
        mask = 0
        for lane, _addr in group:
            mask |= 1 << lane
        ops.append(TraceOp(op.inst, mask, tuple(group)))
    return ops


def split_launch(launch_trace, classification, max_requests=4):
    """Transformed copy of a launch trace with N loads sub-warp split."""
    nondet_pcs = set()
    if classification is not None:
        nondet_pcs = {ld.pc for ld in classification
                      if not ld.is_deterministic}
    new_launch = KernelLaunchTrace(
        kernel_name=launch_trace.kernel_name,
        config=launch_trace.config,
        shared_size=launch_trace.shared_size,
    )
    for warp in launch_trace.warps:
        new_warp = WarpTrace(cta_id=warp.cta_id, warp_id=warp.warp_id)
        for op in warp.ops:
            if (op.addresses and op.inst.is_global_load
                    and op.pc in nondet_pcs):
                new_warp.ops.extend(split_op(op, max_requests))
            else:
                new_warp.ops.append(op)
        new_launch.warps.append(new_warp)
    return new_launch


@dataclass(frozen=True)
class SplitOutcome:
    """Before/after metrics for the warp-splitting ablation."""

    label: str
    cycles: int
    reservation_fail_fraction: float
    mean_n_turnaround: float
    n_requests_per_warp: float


def _outcome(label, stats):
    n = stats.classes["N"]
    return SplitOutcome(
        label=label,
        cycles=stats.cycles,
        reservation_fail_fraction=stats.reservation_fail_fraction(),
        mean_n_turnaround=n.mean_turnaround(),
        n_requests_per_warp=n.requests_per_warp(),
    )


def compare_warp_splitting(run, config, max_requests=4):
    """Simulate an application with and without sub-warp splitting.

    Returns ``{"baseline": SplitOutcome, "split": SplitOutcome}``.
    """
    baseline_gpu = GPU(config)
    split_gpu = GPU(config)
    for launch in run.trace:
        classification = run.classifications.get(launch.kernel_name)
        baseline_gpu.run_launch(launch, classification)
        split_gpu.run_launch(split_launch(launch, classification,
                                          max_requests),
                             classification)
    return {
        "baseline": _outcome("baseline", baseline_gpu.stats),
        "split": _outcome("split(max=%d)" % max_requests, split_gpu.stats),
    }
