"""Section X's suggested microarchitectural optimizations as runnable
ablations: clustered CTA scheduling, sub-warp splitting of
non-deterministic loads, and semi-global L2 caches."""

from .coalesce_oracle import (
    CoalesceOutcome,
    coalesced_launch,
    compare_perfect_coalescing,
)
from .cta_clustered import PolicyOutcome, compare_cta_policies, run_policy
from .semi_global_l2 import (
    L2Outcome,
    SemiGlobalL2GPU,
    compare_l2_organizations,
)
from .warp_split import (
    SplitOutcome,
    compare_warp_splitting,
    split_launch,
    split_op,
)

__all__ = [
    "CoalesceOutcome",
    "coalesced_launch",
    "compare_perfect_coalescing",
    "PolicyOutcome",
    "compare_cta_policies",
    "run_policy",
    "L2Outcome",
    "SemiGlobalL2GPU",
    "compare_l2_organizations",
    "SplitOutcome",
    "compare_warp_splitting",
    "split_launch",
    "split_op",
]
