"""Section X.C ablation: semi-global L2 caches.

"As adjacent two to five CTAs share data blocks, a shared L2 cache that
spans only a few SMs, rather than sharing across all SMs, can reduce
interconnection costs and improve access latency."

Model: SMs are grouped into clusters; each cluster owns an equal share
of the L2 partitions and its requests go only to that share, over a
shorter interconnect.  Capacity per cluster shrinks correspondingly
(same total silicon), so the experiment measures the locality-vs-
capacity trade the paper hypothesizes about.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.gpu import GPU


class SemiGlobalL2GPU(GPU):
    """GPU variant whose L2 partitions are private to SM clusters."""

    def __init__(self, config, cluster_size=2, icnt_speedup=2,
                 **kwargs):
        if config.num_sms % cluster_size:
            raise ValueError("cluster_size must divide num_sms")
        self.cluster_size = cluster_size
        num_clusters = config.num_sms // cluster_size
        if config.num_partitions % num_clusters:
            raise ValueError("num_partitions must be divisible by the "
                             "number of clusters")
        # a cluster-local crossbar is smaller: model with reduced latency
        local_config = config.scaled(
            icnt_latency=max(1, config.icnt_latency // icnt_speedup))
        super().__init__(local_config, **kwargs)
        self.slices_per_cluster = (config.num_partitions // num_clusters)

    def partition_of(self, sm_id, block_addr):
        cluster = sm_id // self.cluster_size
        base = cluster * self.slices_per_cluster
        line = block_addr // self.config.l1_line_size
        return base + line % self.slices_per_cluster


@dataclass(frozen=True)
class L2Outcome:
    """Headline metrics for one L2 organization."""

    label: str
    cycles: int
    l2_miss_ratio: float
    mean_d_turnaround: float
    mean_n_turnaround: float
    dram_reads: int


def _outcome(label, stats):
    hits = sum(c.l2_hit for c in stats.classes.values())
    misses = sum(c.l2_miss for c in stats.classes.values())
    total = hits + misses
    return L2Outcome(
        label=label,
        cycles=stats.cycles,
        l2_miss_ratio=misses / total if total else 0.0,
        mean_d_turnaround=stats.classes["D"].mean_turnaround(),
        mean_n_turnaround=stats.classes["N"].mean_turnaround(),
        dram_reads=stats.dram_reads,
    )


def compare_l2_organizations(run, config, cluster_size=2):
    """Simulate an application under global and semi-global L2.

    Returns ``{"global": L2Outcome, "semi_global": L2Outcome}``.
    """
    baseline = GPU(config)
    semi = SemiGlobalL2GPU(config, cluster_size=cluster_size)
    for launch in run.trace:
        classification = run.classifications.get(launch.kernel_name)
        baseline.run_launch(launch, classification)
        semi.run_launch(launch, classification)
    return {
        "global": _outcome("global L2", baseline.stats),
        "semi_global": _outcome(
            "semi-global L2 (cluster=%d)" % cluster_size, semi.stats),
    }
