"""Section X.B ablation: clustered vs. round-robin CTA scheduling.

"It would be better to assign neighbouring two CTAs to the same SM
(i.e. CTA0 and CTA1 to SM0, CTA2 and CTA3 to SM1, ...) for better data
locality in L1 cache."  This module runs the same application trace
under both policies and reports the L1 behaviour delta.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.gpu import GPU


@dataclass(frozen=True)
class PolicyOutcome:
    """Headline metrics of one policy run."""

    policy: str
    cycles: int
    l1_miss_ratio: float
    l1_hits: int
    l1_misses: int
    reservation_fail_fraction: float

    @staticmethod
    def from_stats(policy, stats):
        hits = sum(c.l1_hit + c.l1_hit_reserved
                   for c in stats.classes.values())
        misses = sum(c.l1_miss for c in stats.classes.values())
        total = hits + misses
        return PolicyOutcome(
            policy=policy,
            cycles=stats.cycles,
            l1_miss_ratio=misses / total if total else 0.0,
            l1_hits=hits,
            l1_misses=misses,
            reservation_fail_fraction=stats.reservation_fail_fraction(),
        )


def run_policy(run, config, policy, cluster=2):
    """Simulate one application run under a CTA scheduling policy."""
    gpu = GPU(config, cta_policy=policy)
    for launch in run.trace:
        gpu.run_launch(launch, run.classifications.get(launch.kernel_name))
    return PolicyOutcome.from_stats(policy, gpu.stats)


def compare_cta_policies(run, config):
    """Run round-robin and clustered scheduling on the same trace.

    Returns ``{policy_name: PolicyOutcome}``.
    """
    return {
        "round_robin": run_policy(run, config, "round_robin"),
        "clustered": run_policy(run, config, "clustered"),
    }
