"""What-if study: perfectly coalesced non-deterministic loads.

The paper's central observation is that non-deterministic loads hurt
*because they do not coalesce*.  This ablation quantifies exactly that:
it rewrites every non-deterministic load in a trace so its active lanes
compact into the *minimal* number of 128 B blocks — chosen from the
blocks the access actually touched, so temporal locality across
executions is preserved — and re-simulates.  The speedup is the
headroom a perfect coalescing mechanism (or data layout) could unlock;
everything else (instruction stream, dependencies, lane counts, the
touched data) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emulator.trace import KernelLaunchTrace, TraceOp, WarpTrace
from ..sim.config import LINE_BYTES
from ..sim.gpu import GPU

WORD = 4


def coalesce_op(op, line_bytes=LINE_BYTES):
    """A copy of ``op`` whose lanes pack into the fewest possible blocks,
    drawn from the blocks the original access touched."""
    words_per_block = line_bytes // WORD
    touched = sorted({addr // line_bytes for _lane, addr in op.addresses})
    addresses = []
    for i, (lane, _addr) in enumerate(op.addresses):
        block = touched[i // words_per_block]
        word = i % words_per_block
        addresses.append((lane, block * line_bytes + word * WORD))
    return TraceOp(op.inst, op.active_mask, tuple(addresses))


def coalesced_launch(launch_trace, classification, line_bytes=LINE_BYTES):
    """Transformed copy of a launch with N loads perfectly coalesced."""
    nondet_pcs = set()
    if classification is not None:
        nondet_pcs = {ld.pc for ld in classification
                      if not ld.is_deterministic}
    new_launch = KernelLaunchTrace(
        kernel_name=launch_trace.kernel_name,
        config=launch_trace.config,
        shared_size=launch_trace.shared_size,
    )
    for warp in launch_trace.warps:
        new_warp = WarpTrace(cta_id=warp.cta_id, warp_id=warp.warp_id)
        for op in warp.ops:
            if (op.addresses and op.inst.is_global_load
                    and op.pc in nondet_pcs):
                new_warp.ops.append(coalesce_op(op, line_bytes))
            else:
                new_warp.ops.append(op)
        new_launch.warps.append(new_warp)
    return new_launch


@dataclass(frozen=True)
class CoalesceOutcome:
    """Before/after metrics for the perfect-coalescing study."""

    label: str
    cycles: int
    n_requests_per_warp: float
    reservation_fail_fraction: float
    mean_n_turnaround: float


def _outcome(label, stats):
    n = stats.classes["N"]
    return CoalesceOutcome(
        label=label,
        cycles=stats.cycles,
        n_requests_per_warp=n.requests_per_warp(),
        reservation_fail_fraction=stats.reservation_fail_fraction(),
        mean_n_turnaround=n.mean_turnaround(),
    )


def compare_perfect_coalescing(run, config):
    """Simulate an application as-is and with oracle-coalesced N loads.

    Returns ``{"baseline": CoalesceOutcome, "coalesced": ...}``.
    """
    baseline = GPU(config)
    oracle = GPU(config)
    for launch in run.trace:
        classification = run.classifications.get(launch.kernel_name)
        baseline.run_launch(launch, classification)
        oracle.run_launch(coalesced_launch(launch, classification,
                                           line_bytes=config.l1_line_size),
                          classification)
    return {
        "baseline": _outcome("baseline", baseline.stats),
        "coalesced": _outcome("perfectly coalesced", oracle.stats),
    }
