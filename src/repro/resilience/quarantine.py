"""Quarantine for damaged artifacts.

Deleting a corrupt file destroys the evidence; leaving it in place
poisons every later lookup.  Quarantine does neither: the file moves
into a ``.corrupt/`` sidecar directory next to where it lived, named
uniquely, so

* the store heals itself (the next lookup is a clean miss and the next
  store regenerates the artifact), and
* a human (or a bug report) can still inspect exactly which bytes went
  bad.

Every quarantine is counted under ``artifacts.quarantined`` with
``{kind, reason}`` labels; callers that own a more specific counter
(the trace cache's ``trace_cache.quarantined``) bump it themselves.
"""

from __future__ import annotations

import os
from pathlib import Path

#: Sidecar directory (under the artifact's own directory) holding
#: quarantined files.
CORRUPT_DIR = ".corrupt"


def quarantine_dir(directory):
    """The quarantine sidecar for an artifact directory."""
    return Path(directory) / CORRUPT_DIR


def quarantine_file(path, kind="artifact", reason="corrupt"):
    """Move ``path`` into its directory's ``.corrupt/`` sidecar.

    Returns the quarantined path, or ``None`` when the move failed (a
    best-effort unlink is attempted instead so the bad entry cannot be
    read again either way).  Never raises.
    """
    path = Path(path)
    target = None
    try:
        qdir = quarantine_dir(path.parent)
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        serial = 0
        while target.exists():
            serial += 1
            target = qdir / ("%s.%d" % (path.name, serial))
        os.replace(str(path), str(target))
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
        target = None
    # Lazy import: keeps the resilience package importable from inside
    # the emulator package without pulling in obs -> sim -> emulator.
    from ..obs.metrics import get_registry

    get_registry().counter(
        "artifacts.quarantined",
        "damaged artifacts moved to .corrupt/ sidecars").inc(
        1, kind=kind, reason=reason)
    return target


def quarantined_entries(directory):
    """Files currently sitting in a directory's quarantine sidecar."""
    qdir = quarantine_dir(directory)
    if not qdir.is_dir():
        return []
    return sorted(p for p in qdir.iterdir() if p.is_file())


def clear_quarantine(directory):
    """Delete a directory's quarantine sidecar; returns files removed."""
    removed = 0
    for entry in quarantined_entries(directory):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    try:
        quarantine_dir(directory).rmdir()
    except OSError:
        pass
    return removed
