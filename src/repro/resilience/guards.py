"""Resource guards: turn an OOM kill into a structured failure.

The large benchmark tier (bfs at 100x scale) makes resident-set blowups
a realistic failure mode.  A worker the kernel OOM-kills looks like a
``BrokenProcessPool`` — no stage, no context, and the whole pool dies
with it.  These guards fail *first*, inside Python, with a
:class:`MemoryBudgetError` that the experiment runner isolates like any
other per-application failure:

* ``REPRO_MAX_RSS_MB`` sets a resident-set budget; the emulator checks
  it at CTA boundaries and the columnar trace builders at chunk
  boundaries (both are outside the per-instruction hot loops);
* ``REPRO_COLUMNAR_CHUNK_OPS`` caps the columnar producers' Python-list
  staging buffers, so peak overhead during trace production is bounded
  and the consumer side streams the same chunks
  (:meth:`~repro.emulator.columnar.ColumnarWarpTrace.iter_chunks`)
  instead of materializing whole launches.

The RSS probe reads ``/proc/self/statm`` (one small pread) and degrades
to :func:`resource.getrusage` peak-RSS elsewhere; when neither source
exists the guard is inert rather than wrong.
"""

from __future__ import annotations

import os

ENV_MAX_RSS = "REPRO_MAX_RSS_MB"
ENV_CHUNK_OPS = "REPRO_COLUMNAR_CHUNK_OPS"

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


class MemoryBudgetError(RuntimeError):
    """The process crossed its configured resident-set budget.

    Deliberately *not* an :class:`~repro.resilience.errors.EngineFailure`:
    retrying on another engine cannot shrink the working set, so this
    propagates to the experiment runner's per-application isolation
    instead of the fallback chain.
    """

    def __init__(self, rss_mb, budget_mb, context=None):
        self.rss_mb = rss_mb
        self.budget_mb = budget_mb
        self.context = context
        where = " during %s" % context if context else ""
        super().__init__(
            "resident set %.0f MB exceeds the %s=%d MB budget%s; the run "
            "was stopped before the kernel OOM killer would have"
            % (rss_mb, ENV_MAX_RSS, budget_mb, where))


def current_rss_mb():
    """Current resident set in MB, or ``None`` when unknown."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE / (1024.0 * 1024.0)
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak_kb / 1024.0
    except Exception:  # noqa: BLE001 — probe only, never a new failure
        return None


def memory_budget_mb():
    """The configured budget in MB, or ``None`` when unguarded."""
    value = os.environ.get(ENV_MAX_RSS)
    if not value:
        return None
    try:
        budget = int(value)
    except ValueError:
        raise ValueError("%s must be an integer (MB), got %r"
                         % (ENV_MAX_RSS, value)) from None
    return budget if budget > 0 else None


def check_memory_budget(context=None):
    """Raise :class:`MemoryBudgetError` when over budget.

    One env lookup when unguarded, so the check is safe at production
    choke points (CTA boundaries, columnar chunk flushes, pipeline
    stage transitions).
    """
    budget = memory_budget_mb()
    if budget is None:
        return
    rss = current_rss_mb()
    if rss is not None and rss > budget:
        raise MemoryBudgetError(rss, budget, context=context)


def columnar_chunk_ops(default):
    """Producer-side columnar chunk cap (ops per staging buffer)."""
    value = os.environ.get(ENV_CHUNK_OPS)
    if not value:
        return default
    try:
        ops = int(value)
    except ValueError:
        raise ValueError("%s must be an integer, got %r"
                         % (ENV_CHUNK_OPS, value)) from None
    return max(1, min(ops, default))
