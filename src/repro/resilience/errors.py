"""Failure taxonomy of the resilience layer.

The split that matters is *whose fault it is*:

* :class:`EngineFailure` and subclasses mean the execution **engine's
  infrastructure** broke — the kernel itself may be perfectly fine, so
  retrying on a simpler engine is both safe and likely to succeed.
  The fallback chain (:mod:`repro.resilience.fallback`) catches
  exactly this family and nothing else; semantic emulation errors
  (memory faults, watchdog, barrier deadlocks) are properties of the
  *kernel* and reproduce identically on every engine, so retrying
  them would only mask real bugs.
* Artifact damage (:class:`~repro.resilience.artifacts.ChecksumError`,
  truncation errors raised by the loaders) means a **file** is bad —
  the artifact store quarantines it and regenerates.
"""

from __future__ import annotations


class EngineFailure(Exception):
    """An execution engine's infrastructure failed (not the kernel).

    Raising this (or a subclass) from inside an emulation attempt tells
    the fallback chain that re-running on a simpler engine is safe and
    worthwhile.
    """

    #: short machine-readable reason recorded in ``engine.fallbacks``
    #: metrics and run manifests; subclasses override.
    reason = "engine_failure"


class CodegenError(EngineFailure):
    """Per-kernel code generation or compilation raised.

    Wraps whatever the generator threw (syntax assembly bugs, a broken
    ``compile()``/JIT toolchain, an injected chaos fault) so the caller
    can distinguish "the compiled engine cannot run this kernel" from
    "this kernel is broken".
    """

    reason = "codegen"

    def __init__(self, detail, kernel=None, engine="compiled"):
        self.kernel = kernel
        self.engine = engine
        where = " for kernel %r" % kernel if kernel else ""
        super().__init__("%s engine code generation failed%s: %s"
                         % (engine, where, detail))


class TraceIntegrityError(EngineFailure, ValueError):
    """A produced (or loaded) trace violates the columnar schema
    invariants — column lengths, ragged-table offsets or kind codes
    disagree.

    Doubles as a :class:`ValueError` so artifact loaders that predate
    the resilience layer (and the trace cache's corrupt-entry
    handling) keep treating it as structural corruption.
    """

    reason = "trace_integrity"
