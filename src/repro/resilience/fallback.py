"""Engine fallback chain: compiled -> vectorized -> scalar.

Every engine is differentially tested to produce byte-identical traces,
so when a fancier engine's *infrastructure* fails (codegen raises, a
JIT backend is broken, a produced trace fails the columnar invariants)
the run can transparently retry on a simpler engine without changing
any result downstream.  :func:`run_with_fallback` implements the retry
loop; each downgrade is

* counted in the metrics registry under ``engine.fallbacks`` with
  ``{from, to, reason}`` (plus ``app``) labels, and
* returned as a :class:`FallbackEvent` so the caller can stamp it into
  the run manifest — operators see the degradation, users see results.

Only :class:`~repro.resilience.errors.EngineFailure` triggers a retry.
Semantic emulation errors (memory faults, watchdog, barrier deadlock)
reproduce identically on every engine and propagate unchanged, as does
an exhausted chain (the scalar engine has no fallback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .errors import EngineFailure

#: Downgrade order.  Keys are engine names, values the engine tried
#: next when the key engine raises an :class:`EngineFailure`.
FALLBACK_CHAIN = {
    "compiled": "vectorized",
    "vectorized": "scalar",
    "scalar": None,
}


def fallback_chain(engine):
    """The engines tried for a requested ``engine``, in order.

    Unknown engine names get no fallback (the attempt's own error
    reporting is clearer than a surprise engine swap).
    """
    chain = [engine]
    seen = {engine}
    nxt = FALLBACK_CHAIN.get(engine)
    while nxt is not None and nxt not in seen:
        chain.append(nxt)
        seen.add(nxt)
        nxt = FALLBACK_CHAIN.get(nxt)
    return chain


@dataclass(frozen=True)
class FallbackEvent:
    """One recorded engine downgrade."""

    from_engine: str
    to_engine: str
    reason: str                     # EngineFailure.reason
    error: str                      # exception class name
    message: str
    app: Optional[str] = None

    def to_json(self):
        out = {"from": self.from_engine, "to": self.to_engine,
               "reason": self.reason, "error": self.error,
               "message": self.message}
        if self.app is not None:
            out["app"] = self.app
        return out


def _record_event(event):
    # Imported lazily: this package is reachable from the emulator's
    # columnar module, and a module-level obs import would close an
    # emulator -> resilience -> obs -> sim -> emulator.columnar cycle.
    from ..obs.metrics import get_registry

    labels = {"from": event.from_engine, "to": event.to_engine,
              "reason": event.reason}
    if event.app is not None:
        labels["app"] = event.app
    get_registry().counter(
        "engine.fallbacks",
        "engine downgrades after an infrastructure failure").inc(
        1, **labels)


def run_with_fallback(attempt, engine, app=None):
    """Call ``attempt(engine_name)`` down the fallback chain.

    ``attempt`` must be restartable from scratch (each retry re-runs
    input generation against fresh memory — a failed engine may have
    executed stores before dying).  Returns ``(result, engine_used,
    events)`` where ``events`` is the ordered :class:`FallbackEvent`
    list (empty on the happy path, which adds no overhead beyond one
    function call).

    Raises the last :class:`EngineFailure` when the chain is exhausted,
    and re-raises any non-engine exception immediately.
    """
    chain = fallback_chain(engine)
    events = []
    for i, name in enumerate(chain):
        try:
            return attempt(name), name, events
        except EngineFailure as exc:
            nxt = chain[i + 1] if i + 1 < len(chain) else None
            if nxt is None:
                raise
            event = FallbackEvent(
                from_engine=name, to_engine=nxt,
                reason=getattr(exc, "reason", "engine_failure"),
                error=type(exc).__name__, message=str(exc), app=app)
            events.append(event)
            _record_event(event)
    raise AssertionError("unreachable: fallback chain cannot be empty")
