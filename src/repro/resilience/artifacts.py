"""Crash-consistent artifact I/O: checksums + atomic writes.

Every durable artifact the pipeline produces (v3 trace containers,
sweep point results, manifests, failure reports) goes through two
defenses:

* **atomic replacement** — payloads are written to a same-directory
  temporary file, flushed and fsynced, then :func:`os.replace`'d into
  place, so a concurrent reader (or a reader after a SIGKILL) observes
  either the old content or the new content, never a torn prefix;
* **content checksums** — the payload carries a digest of its own
  bytes, so silent corruption *after* the write (bit rot, a torn page,
  hostile tests) is detected on load instead of producing wrong
  numbers.

The digest algorithm is ``xxh64`` when the optional :mod:`xxhash`
package is importable (fast, non-cryptographic — these are integrity
checks, not signatures) and ``sha256`` otherwise; loaders accept both,
so caches written on one machine verify on another.  Unknown algorithm
names are *skipped*, not rejected: a future writer must not brick an
old reader.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

try:  # optional accelerator; sha256 is the always-available baseline
    import xxhash as _xxhash
except ImportError:
    _xxhash = None

#: JSON key under which payload self-checksums are stored.
CHECKSUM_KEY = "checksum"


class ChecksumError(ValueError):
    """An artifact's content digest does not match its recorded one."""

    def __init__(self, path, algo, expected, actual):
        self.path = str(path)
        self.algo = algo
        self.expected = expected
        self.actual = actual
        super().__init__(
            "corrupt artifact %s: %s digest %s does not match recorded %s"
            % (path, algo, actual, expected))


def preferred_algo():
    """Digest algorithm new artifacts are written with."""
    return "xxh64" if _xxhash is not None else "sha256"


def _hasher(algo):
    if algo == "sha256":
        return hashlib.sha256()
    if algo == "xxh64" and _xxhash is not None:
        return _xxhash.xxh64()
    return None


def compute_checksum(data, algo=None):
    """``{"algo", "hex"}`` record for ``data`` (bytes or an iterable of
    byte chunks)."""
    algo = algo or preferred_algo()
    h = _hasher(algo)
    if h is None:
        raise ValueError("unsupported checksum algorithm %r" % (algo,))
    if isinstance(data, (bytes, bytearray, memoryview)):
        h.update(data)
    else:
        for chunk in data:
            h.update(chunk)
    return {"algo": algo, "hex": h.hexdigest()}


def verify_checksum(data, record, path="<data>"):
    """Check ``data`` against a ``{"algo", "hex"}`` record.

    Returns ``True`` on match, ``None`` when the record is absent or
    uses an unknown algorithm (forward compatibility: skip, don't
    reject).  Raises :class:`ChecksumError` on a mismatch.
    """
    if not record:
        return None
    algo = record.get("algo")
    expected = record.get("hex")
    if not algo or not expected or _hasher(algo) is None:
        return None
    actual = compute_checksum(data, algo)["hex"]
    if actual != expected:
        raise ChecksumError(path, algo, expected, actual)
    return True


# -- JSON payload self-checksums -------------------------------------------

def canonical_json_bytes(payload):
    """The canonical byte encoding checksums are computed over."""
    return json.dumps(payload, separators=(",", ":"),
                      sort_keys=True, default=str).encode("utf-8")


def checksum_payload(payload, algo=None):
    """Digest of a JSON payload, excluding its own checksum field."""
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    return compute_checksum(canonical_json_bytes(body), algo)


def attach_checksum(payload, algo=None):
    """Return ``payload`` with its self-checksum stamped in."""
    payload[CHECKSUM_KEY] = checksum_payload(payload, algo)
    return payload


def verify_payload_checksum(payload, path="<payload>"):
    """Verify a payload's self-checksum; same contract as
    :func:`verify_checksum` (None when unchecked, raise on mismatch)."""
    record = payload.get(CHECKSUM_KEY) if isinstance(payload, dict) else None
    if not record:
        return None
    algo = record.get("algo")
    if not algo or _hasher(algo) is None:
        return None
    actual = checksum_payload(payload, algo)["hex"]
    if actual != record.get("hex"):
        raise ChecksumError(path, algo, record.get("hex"), actual)
    return True


# -- atomic writes ---------------------------------------------------------

def atomic_write_bytes(path, data, fsync=True):
    """Write ``data`` to ``path`` via tempfile + rename.

    The temporary file lives in ``path``'s directory so the final
    :func:`os.replace` is a same-filesystem atomic rename.  ``fsync``
    flushes the payload to disk before the rename, closing the
    power-loss window where the rename survives but the data does not.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=".tmp-" + path.name[:24] + "-", suffix=path.suffix or ".part",
        dir=str(path.parent))
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass
    return path


def atomic_write_json(path, payload, indent=2, fsync=True):
    """Atomic, canonical JSON write (sorted keys, trailing newline) —
    the shared implementation behind point files, manifests and
    failure reports."""
    text = json.dumps(payload, indent=indent, sort_keys=True, default=str)
    return atomic_write_bytes(path, (text + "\n").encode("utf-8"),
                              fsync=fsync)
