"""Self-healing execution layer: degrade, never die.

The pipeline has three classes of infrastructure failure that are *not*
the workload's fault and therefore should not abort an experiment:

* an **engine** fails — per-kernel codegen raises, a JIT backend is
  broken, or a produced trace diverges from the columnar schema
  invariants (:mod:`.fallback` retries on the next engine in the
  chain and records the downgrade);
* an **artifact** is damaged — a trace container or sweep point file
  was torn, truncated or bit-flipped (:mod:`.artifacts` checksums and
  atomically writes them; :mod:`.quarantine` moves damaged files aside
  so regeneration can heal the store);
* a **resource budget** is exceeded — the process is about to be
  OOM-killed (:mod:`.guards` turns that into a structured, isolated
  :class:`~repro.resilience.guards.MemoryBudgetError` instead).

Nothing in this package imports the emulator or simulator, so every
layer of the pipeline can depend on it without cycles.  The chaos
harness (``repro.testing.chaos`` + ``pytest -m chaos``) drives each
degradation path and asserts the recovered outputs are byte-identical
to a fault-free run.
"""

from .artifacts import (
    ChecksumError,
    atomic_write_bytes,
    atomic_write_json,
    attach_checksum,
    checksum_payload,
    compute_checksum,
    verify_checksum,
    verify_payload_checksum,
)
from .errors import CodegenError, EngineFailure, TraceIntegrityError
from .fallback import (
    FALLBACK_CHAIN,
    FallbackEvent,
    fallback_chain,
    run_with_fallback,
)
from .guards import (
    MemoryBudgetError,
    check_memory_budget,
    columnar_chunk_ops,
    current_rss_mb,
    memory_budget_mb,
)
from .quarantine import CORRUPT_DIR, quarantine_file

__all__ = [
    "CORRUPT_DIR",
    "ChecksumError",
    "CodegenError",
    "EngineFailure",
    "FALLBACK_CHAIN",
    "FallbackEvent",
    "MemoryBudgetError",
    "TraceIntegrityError",
    "atomic_write_bytes",
    "atomic_write_json",
    "attach_checksum",
    "check_memory_budget",
    "checksum_payload",
    "columnar_chunk_ops",
    "compute_checksum",
    "current_rss_mb",
    "fallback_chain",
    "memory_budget_mb",
    "quarantine_file",
    "run_with_fallback",
    "verify_checksum",
    "verify_payload_checksum",
]
