"""Recall/precision scorecard for the race-detector modes.

Scores both detector modes (``interval`` baseline, ``predictive``
happens-before) against the planted-bug corpus and the benign-idiom
precision corpus in :mod:`repro.testing.races`.  Ground truth for every
case is its *predictive* expectation set: the planted corpus is built
so that set is exactly the real bugs — interval-mode expectations are
either equal (bugs both modes see) or document the baseline's known
blind spots / false positives.

The gates encode the predictive mode's contract:

* 100% recall — every planted bug found at its exact pc;
* zero false positives — nothing flagged beyond ground truth, in
  particular nothing on the benign corpus;
* strict domination — predictive finds strictly more true positives
  than the interval baseline and at least matches its recall;
* per-case superset — on every planted case the predictive findings
  cover the interval findings (compared as ``(kind, {pc, other_pc})``
  so attribution orientation cannot mask a miss).

``python -m repro.testing.scorecard`` prints the table and exits
nonzero when any gate fails — CI runs it as the regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

from .races import ALL_CASES, BENIGN_CASES, PLANTED_CASES

MODES = ("interval", "predictive")


@dataclass
class ModeScore:
    """Aggregated detection quality for one detector mode."""

    mode: str
    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def recall(self):
        denom = self.tp + self.fn
        return 1.0 if denom == 0 else self.tp / denom

    @property
    def precision(self):
        denom = self.tp + self.fp
        return 1.0 if denom == 0 else self.tp / denom

    def to_json(self):
        return {"mode": self.mode, "tp": self.tp, "fp": self.fp,
                "fn": self.fn, "recall": self.recall,
                "precision": self.precision}


def _pair_keys(report):
    """Orientation-free finding identities: ``(kind, {pc, other_pc})``."""
    return {(f.kind, frozenset((f.pc, f.other_pc)))
            for f in report.findings}


def score_corpus(engine=None):
    """Run every corpus case through both modes; returns the scorecard.

    The result dict has ``modes`` (aggregated :class:`ModeScore` JSON),
    ``cases`` (per-case detail), ``gates`` (name -> bool) and
    ``passed``.
    """
    scores = {mode: ModeScore(mode) for mode in MODES}
    cases = []
    superset_ok = True
    benign_names = {case.name for case in BENIGN_CASES}
    for case in ALL_CASES:
        _, kernel = case.build()
        truth = case.expected_findings(kernel, "predictive")
        row = {"case": case.name, "benign": case.name in benign_names,
               "truth": sorted(truth)}
        reports = {}
        for mode in MODES:
            report = case.run(engine=engine, mode=mode)
            reports[mode] = report
            got = {(f.kind, f.pc) for f in report.findings}
            score = scores[mode]
            score.tp += len(got & truth)
            score.fp += len(got - truth)
            score.fn += len(truth - got)
            row[mode] = sorted(got)
        if case.name not in benign_names:
            covered = _pair_keys(reports["interval"]) <= _pair_keys(
                reports["predictive"])
            row["superset"] = covered
            superset_ok = superset_ok and covered
        cases.append(row)
    interval, predictive = scores["interval"], scores["predictive"]
    gates = {
        "predictive_full_recall": predictive.recall == 1.0,
        "predictive_zero_fp": predictive.fp == 0,
        "predictive_recall_dominates":
            predictive.recall >= interval.recall,
        "predictive_strictly_more_tp": predictive.tp > interval.tp,
        "predictive_cuts_fp": predictive.fp < interval.fp,
        "predictive_superset_on_planted": superset_ok,
    }
    return {
        "modes": {mode: score.to_json() for mode, score in scores.items()},
        "cases": cases,
        "gates": gates,
        "passed": all(gates.values()),
    }


def format_scorecard(card):
    lines = ["race-detector scorecard (%d planted, %d benign case(s))"
             % (len(PLANTED_CASES), len(BENIGN_CASES))]
    for mode in MODES:
        m = card["modes"][mode]
        lines.append(
            "  %-10s recall=%.3f precision=%.3f tp=%d fp=%d fn=%d"
            % (mode, m["recall"], m["precision"], m["tp"], m["fp"],
               m["fn"]))
    for name, passed in card["gates"].items():
        lines.append("  gate %-32s %s" % (name,
                                          "pass" if passed else "FAIL"))
    lines.append("scorecard: %s"
                 % ("PASS" if card["passed"] else "FAIL"))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-scorecard",
        description="score both race-detector modes against the planted "
                    "and benign corpora; exit nonzero if a gate fails")
    parser.add_argument("--engine", default=None,
                        help="emulator engine override (scalar, "
                             "vectorized, compiled)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the scorecard as JSON")
    args = parser.parse_args(argv)
    card = score_corpus(engine=args.engine)
    print(format_scorecard(card))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(card, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.json)
    return 0 if card["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
