"""File-corruption helpers for the chaos harness.

The resilience layer (``repro.resilience``) promises that a damaged
artifact — a torn write, a truncated container, a flipped bit — is
detected, quarantined and regenerated rather than silently poisoning
results.  These helpers *produce* exactly those damage patterns
deterministically, so ``pytest -m chaos`` can assert every promise:

* :func:`truncate_file` — a crash mid-write without atomic rename
  (or a filesystem that ran out of space): the file ends early.
* :func:`torn_write` — a partially flushed rewrite: the first bytes
  of new content over the old file, then nothing.
* :func:`flip_bit` — silent media corruption: one bit differs, the
  file structure is otherwise intact (the case only checksums catch).
* :func:`blob_region` — the byte range of a schema-v3 trace
  container's column arrays, so a flipped bit can be aimed past the
  structural header at data that *only* the checksum pass inspects.

All helpers operate in place on an existing file and return the path,
so they compose with the cache/sweep layout helpers in tests.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path

from ..emulator.serialize import MAGIC


def truncate_file(path, keep):
    """Cut ``path`` down to its first ``keep`` bytes (crash mid-write).

    ``keep`` may be negative to drop that many bytes from the end.
    """
    path = Path(path)
    size = path.stat().st_size
    if keep < 0:
        keep = max(0, size + keep)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return path


def torn_write(path, data, keep):
    """Overwrite ``path`` with only the first ``keep`` bytes of
    ``data`` — what a non-atomic rewrite leaves behind when the
    process dies before flushing the rest."""
    path = Path(path)
    with open(path, "wb") as fh:
        fh.write(data[:keep])
    return path


def flip_bit(path, offset, bit=0):
    """XOR one bit of ``path`` in place (silent media corruption).

    ``offset`` may be negative to index from the end; ``bit`` selects
    the bit within the byte (0 = least significant).
    """
    path = Path(path)
    size = path.stat().st_size
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError("offset %d outside file of %d bytes"
                         % (offset, size))
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)[0]
        fh.seek(offset)
        fh.write(bytes([byte ^ (1 << bit)]))
    return path


def blob_region(path):
    """The ``(start, end)`` byte range of a v3 container's column data.

    Bits flipped inside this range leave the magic, header and column
    geometry untouched — the load path's structural validation passes
    and only the checksum pass can notice.  Raises ``ValueError`` for
    files that are not v3 containers.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        head = fh.read(len(MAGIC))
        if head != MAGIC:
            raise ValueError("%s is not a v3 trace container" % path)
        (hlen,) = struct.unpack("<I", fh.read(4))
        # parsing the header both finds where the blobs start and
        # guarantees we really are past every structurally-checked byte
        json.loads(fh.read(hlen).decode("utf-8"))
    start = len(MAGIC) + 4 + hlen
    return start, os.path.getsize(path)


__all__ = ["blob_region", "flip_bit", "torn_write", "truncate_file"]
