"""Seeded fault-injection kernels with *planted* synchronization bugs.

The race detector (:mod:`repro.analysis`) claims zero findings across
the stock workload registry; that claim is only credible if the
detector demonstrably finds bugs when they exist.  Each
:class:`PlantedCase` here is a small PTX kernel with one deliberate,
precisely-located bug (or, for the control case, none), plus the exact
``(kind, pc)`` findings the detector must produce — recall is tested
pc-exact, not just "something was flagged".

These kernels are *not* part of the workload registry: they exist only
for the detector's recall tests (``pytest -m races``) and are emulated
directly via :class:`~repro.emulator.Emulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..analysis import RaceKind, analyze_trace
from ..core import classify_kernel
from ..emulator import ApplicationTrace, Emulator, MemoryImage
from ..ptx import parse_module

_WW_SHARED = """
.entry race_ww_shared ( .param .u64 out )
{
    .reg .u32 %r<8>;
    .shared .u32 s_flag[1];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_flag;
    st.shared.u32  [%r2], %r1;      // BUG: all 64 threads write element 0
    bar.sync       0;
    ld.shared.u32  %r3, [%r2];
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r3;
    exit;
}
"""

_RW_MISSING_BAR = """
.entry race_rw_missing_bar ( .param .u64 out )
{
    .reg .u32 %r<12>;
    .shared .u32 s_data[64];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_data;
    shl.b32        %r3, %r1, 2;
    add.u32        %r4, %r2, %r3;
    st.shared.u32  [%r4], %r1;      // each thread its own element
    // BUG: missing bar.sync before reading the other warp's element
    add.u32        %r5, %r1, 32;
    and.b32        %r6, %r5, 63;
    shl.b32        %r7, %r6, 2;
    add.u32        %r8, %r2, %r7;
    ld.shared.u32  %r9, [%r8];
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r9;
    exit;
}
"""

_DIVERGENT_BAR = """
.entry race_divergent_bar ( .param .u64 out )
{
    .reg .u32 %r<8>;
    mov.u32        %r1, %tid.x;
    and.b32        %r2, %r1, 1;
    setp.eq.u32    %p1, %r2, 1;
    @%p1 bra       SKIP;
    bar.sync       0;               // BUG: odd lanes branch around this
SKIP:
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r1;
    exit;
}
"""

_BAR_MISMATCH = """
.entry race_bar_mismatch ( .param .u64 out )
{
    .reg .u32 %r<8>;
    mov.u32        %r1, %tid.x;
    bar.sync       0;               // both warps
    shr.u32        %r2, %r1, 5;
    setp.ne.u32    %p1, %r2, 0;
    @%p1 bra       DONE;
    bar.sync       0;               // BUG: warp 0 only
DONE:
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r1;
    exit;
}
"""

_UNINIT_READ = """
.entry race_uninit_read ( .param .u64 out )
{
    .reg .u32 %r<8>;
    .shared .u32 s_buf[32];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_buf;
    shl.b32        %r3, %r1, 2;
    add.u32        %r4, %r2, %r3;
    ld.shared.u32  %r5, [%r4];      // BUG: never written by anyone
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r5;
    exit;
}
"""

_INTERCTA_WW = """
.entry race_intercta_ww ( .param .u64 out )
{
    .reg .u32 %r<4>;
    mov.u32        %r1, %ctaid.x;
    ld.param.u64   %rd1, [out];
    st.global.u32  [%rd1], %r1;     // BUG: CTA 0 writes 0, CTA 1 writes 1
    exit;
}
"""

_CLEAN_CONTROL = """
.entry clean_reduction ( .param .u64 out, .param .u64 flag )
{
    .reg .u32 %r<16>;
    .shared .u32 s_buf[64];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_buf;
    shl.b32        %r3, %r1, 2;
    add.u32        %r4, %r2, %r3;
    st.shared.u32  [%r4], %r1;      // distinct elements per thread
    bar.sync       0;
    add.u32        %r5, %r1, 1;
    and.b32        %r6, %r5, 63;
    shl.b32        %r7, %r6, 2;
    add.u32        %r8, %r2, %r7;
    ld.shared.u32  %r9, [%r8];      // neighbour read, after the barrier
    mov.u32        %r10, %ctaid.x;
    shl.b32        %r11, %r10, 6;
    add.u32        %r12, %r11, %r1;
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r12;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r9;     // unique element per thread
    ld.param.u64   %rd5, [flag];
    st.global.u32  [%rd5], 1;       // same value from every CTA: benign
    add.u64        %rd6, %rd5, 4;
    atom.add.global.u32 %r13, [%rd6], 1;  // atomics never conflict
    exit;
}
"""


_CLEAN_ATOMIC_COUNTER = """
.entry clean_atomic_counter ( .param .u64 out )
{
    .reg .u32 %r<12>;
    .shared .u32 s_count[1];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_count;
    atom.add.shared.u32 %r3, [%r2], 1;    // protected: atomics serialize
    bar.sync       0;
    ld.shared.u32  %r4, [%r2];
    mov.u32        %r5, %ctaid.x;
    shl.b32        %r6, %r5, 6;
    add.u32        %r7, %r6, %r1;
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r7;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r4;
    exit;
}
"""

_CLEAN_RED_REDUCTION = """
.entry clean_red_reduction ( .param .u64 out, .param .u64 total )
{
    .reg .u32 %r<12>;
    .shared .u32 s_sum[1];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_sum;
    red.add.shared.u32 [%r2], %r1;        // protected: reductions serialize
    bar.sync       0;
    ld.shared.u32  %r3, [%r2];
    ld.param.u64   %rd1, [total];
    red.add.global.u32 [%rd1], %r3;       // cross-CTA reduction: still atomic
    mov.u32        %r4, %ctaid.x;
    shl.b32        %r5, %r4, 6;
    add.u32        %r6, %r5, %r1;
    ld.param.u64   %rd2, [out];
    cvt.u64.u32    %rd3, %r6;
    shl.b64        %rd4, %rd3, 2;
    add.u64        %rd5, %rd2, %rd4;
    st.global.u32  [%rd5], %r3;
    exit;
}
"""

_MEMBAR_HANDOFF = """
.entry clean_membar_handoff ( .param .u64 data, .param .u64 flag,
                              .param .u64 out )
{
    .reg .u32 %r<16>;
    mov.u32        %r1, %tid.x;
    shr.u32        %r2, %r1, 5;
    ld.param.u64   %rd1, [data];
    ld.param.u64   %rd2, [flag];
    ld.param.u64   %rd3, [out];
    and.b32        %r3, %r1, 31;
    shl.b32        %r4, %r3, 2;
    cvt.u64.u32    %rd4, %r4;
    add.u64        %rd5, %rd1, %rd4;
    setp.ne.u32    %p1, %r2, 0;
    @%p1 bra       CONSUME;
    st.global.u32  [%rd5], %r1;           // produce
    membar.gl;
    atom.add.global.u32 %r5, [%rd2], 1;   // release the flag
    bra            DONE;
CONSUME:
    atom.add.global.u32 %r6, [%rd2], 0;   // acquire the flag
    membar.gl;
    ld.global.u32  %r7, [%rd5];           // consume: fence-ordered
    add.u64        %rd6, %rd3, %rd4;
    st.global.u32  [%rd6], %r7;
DONE:
    exit;
}
"""

_UNFENCED_HANDOFF = """
.entry race_unfenced_handoff ( .param .u64 data, .param .u64 out )
{
    .reg .u32 %r<16>;
    mov.u32        %r1, %tid.x;
    shr.u32        %r2, %r1, 5;
    ld.param.u64   %rd1, [data];
    ld.param.u64   %rd3, [out];
    and.b32        %r3, %r1, 31;
    shl.b32        %r4, %r3, 2;
    cvt.u64.u32    %rd4, %r4;
    add.u64        %rd5, %rd1, %rd4;
    setp.ne.u32    %p1, %r2, 0;
    @%p1 bra       CONSUME;
    st.global.u32  [%rd5], %r1;           // produce
    bra            DONE;
CONSUME:
    ld.global.u32  %r7, [%rd5];           // BUG: nothing orders this read
    add.u64        %rd6, %rd3, %rd4;
    st.global.u32  [%rd6], %r7;
DONE:
    exit;
}
"""

_ATOMIC_PLAIN_MIX = """
.entry race_atomic_plain_mix ( .param .u64 out )
{
    .reg .u32 %r<12>;
    .shared .u32 s_count[1];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_count;
    atom.add.shared.u32 %r3, [%r2], 1;
    setp.ne.u32    %p1, %r1, 0;
    @%p1 bra       SKIP;
    st.shared.u32  [%r2], 0;              // BUG: plain reset races the atomics
SKIP:
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r3;
    exit;
}
"""

_INTERWARP_WW = """
.entry race_interwarp_ww ( .param .u64 out )
{
    .reg .u32 %r<12>;
    .shared .u32 s_buf[32];
    mov.u32        %r1, %tid.x;
    and.b32        %r2, %r1, 31;
    shl.b32        %r3, %r2, 2;
    mov.u32        %r4, s_buf;
    add.u32        %r5, %r4, %r3;
    st.shared.u32  [%r5], %r1;            // BUG: warps 0 and 1 collide per element
    bar.sync       0;
    ld.shared.u32  %r6, [%r5];
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r6;
    exit;
}
"""

_PREDICTIVE_RW_GLOBAL = """
.entry race_predictive_rw_global ( .param .u64 buf, .param .u64 out )
{
    .reg .u32 %r<12>;
    mov.u32        %r1, %tid.x;
    xor.b32        %r2, %r1, 32;
    shl.b32        %r3, %r2, 2;
    ld.param.u64   %rd1, [buf];
    cvt.u64.u32    %rd2, %r3;
    add.u64        %rd3, %rd1, %rd2;
    ld.global.u32  %r4, [%rd3];           // BUG: reads the other warp's slot
    shl.b32        %r5, %r1, 2;
    cvt.u64.u32    %rd4, %r5;
    add.u64        %rd5, %rd1, %rd4;
    st.global.u32  [%rd5], %r1;           // ... which that warp writes
    ld.param.u64   %rd6, [out];
    add.u64        %rd7, %rd6, %rd4;
    st.global.u32  [%rd7], %r4;
    exit;
}
"""

_FENCED_SHARED_HANDOFF = """
.entry benign_fenced_shared_handoff ( .param .u64 out )
{
    .reg .u32 %r<16>;
    .shared .u32 s_data[32];
    .shared .u32 s_flag[1];
    mov.u32        %r1, %tid.x;
    shr.u32        %r2, %r1, 5;
    and.b32        %r3, %r1, 31;
    shl.b32        %r4, %r3, 2;
    mov.u32        %r5, s_data;
    add.u32        %r6, %r5, %r4;
    mov.u32        %r7, s_flag;
    setp.ne.u32    %p1, %r2, 0;
    @%p1 bra       CONSUME;
    st.shared.u32  [%r6], %r1;            // produce
    membar.cta;
    atom.add.shared.u32 %r8, [%r7], 1;    // release the flag
    bra            DONE;
CONSUME:
    atom.add.shared.u32 %r9, [%r7], 0;    // acquire the flag
    membar.cta;
    ld.shared.u32  %r10, [%r6];           // consume: fence-ordered
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r4;
    add.u64        %rd3, %rd1, %rd2;
    st.global.u32  [%rd3], %r10;
DONE:
    exit;
}
"""

_SAME_VALUE_FRONTIER = """
.entry benign_same_value_frontier ( .param .u64 level, .param .u64 out )
{
    .reg .u32 %r<12>;
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, %ctaid.x;
    ld.param.u64   %rd1, [level];
    st.global.u32  [%rd1], 7;             // every thread, every CTA: value 7
    shl.b32        %r3, %r2, 6;
    add.u32        %r4, %r3, %r1;
    ld.param.u64   %rd2, [out];
    cvt.u64.u32    %rd3, %r4;
    shl.b64        %rd4, %rd3, 2;
    add.u64        %rd5, %rd2, %rd4;
    st.global.u32  [%rd5], %r1;
    exit;
}
"""

_GUARD_EXIT = """
.entry benign_guard_exit ( .param .u64 out )
{
    .reg .u32 %r<12>;
    .shared .u32 s_buf[32];
    mov.u32        %r1, %tid.x;
    setp.ge.u32    %p1, %r1, 32;
    @%p1 bra       DONE;                  // warp 1 exits before any barrier
    shl.b32        %r2, %r1, 2;
    mov.u32        %r3, s_buf;
    add.u32        %r4, %r3, %r2;
    st.shared.u32  [%r4], %r1;
    bar.sync       0;
    add.u32        %r5, %r1, 1;
    and.b32        %r6, %r5, 31;
    shl.b32        %r7, %r6, 2;
    add.u32        %r8, %r3, %r7;
    ld.shared.u32  %r9, [%r8];
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r2;
    add.u64        %rd3, %rd1, %rd2;
    st.global.u32  [%rd3], %r9;
DONE:
    exit;
}
"""

_WARP_BROADCAST = """
.entry benign_warp_broadcast ( .param .u64 out )
{
    .reg .u32 %r<12>;
    .shared .u32 s_val[1];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_val;
    setp.ne.u32    %p1, %r1, 0;
    @%p1 bra       WAIT;
    st.shared.u32  [%r2], 42;             // lane 0 publishes
WAIT:
    bar.sync       0;
    ld.shared.u32  %r3, [%r2];            // everyone reads after the barrier
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r3;
    exit;
}
"""


@dataclass(frozen=True)
class PlantedCase:
    """One planted-bug kernel plus the findings the detector must emit.

    ``expected`` lists ``(kind, mnemonic_prefix, nth)`` locators: the
    detector must report ``kind`` at exactly the pc of the ``nth``
    instruction whose mnemonic starts with ``mnemonic_prefix`` (and
    nothing else).  The control case has an empty ``expected``.

    ``expected_predictive`` holds the predictive-mode locators; ``None``
    means both modes must agree.  A case whose bug only the
    happens-before detector can see (the observed schedule serialized
    it) has an empty ``expected`` and a non-empty
    ``expected_predictive``; a case the *baseline* false-positives on
    (fence-ordered sharing) has the reverse.
    """

    name: str
    description: str
    ptx: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    buffers: Dict[str, int] = field(default_factory=dict)
    expected: Tuple[Tuple[str, str, int], ...] = ()
    expected_predictive: Optional[Tuple[Tuple[str, str, int], ...]] = None

    def build(self):
        """Parse the PTX; returns ``(module, kernel)``."""
        module = parse_module(self.ptx)
        return module, module[self.name.replace("-", "_")]

    def expected_for(self, mode):
        """The locator tuple for one detector mode."""
        if mode == "predictive" and self.expected_predictive is not None:
            return self.expected_predictive
        return self.expected

    def expected_findings(self, kernel, mode="interval"):
        """Resolve the locators against assigned pcs: ``{(kind, pc)}``."""
        resolved = set()
        for kind, prefix, nth in self.expected_for(mode):
            matches = [inst for inst in kernel.instructions
                       if inst.mnemonic().startswith(prefix)]
            resolved.add((kind, matches[nth].pc))
        return resolved

    def run(self, engine=None, mode="interval"):
        """Emulate the kernel and analyze it; returns the report."""
        module, kernel = self.build()
        mem = MemoryImage()
        params = {name: mem.alloc(name, size)
                  for name, size in self.buffers.items()}
        emu = Emulator(mem, engine=engine)
        app = ApplicationTrace(name=self.name)
        app.add(emu.launch(kernel, self.grid, self.block, params))
        classifications = {k.name: classify_kernel(k) for k in module}
        return analyze_trace(app, classifications, app=self.name,
                             mode=mode)


PLANTED_CASES = (
    PlantedCase(
        name="race_ww_shared",
        description="64 threads store their tid to one shared element "
                    "in the same barrier interval",
        ptx=_WW_SHARED, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.SHARED_RACE, "st.shared", 0),),
    ),
    PlantedCase(
        name="race_rw_missing_bar",
        description="cross-warp shared read of another thread's element "
                    "with the bar.sync omitted",
        ptx=_RW_MISSING_BAR, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.SHARED_RACE, "ld.shared", 0),
                  (RaceKind.UNINIT_SHARED_READ, "ld.shared", 0)),
    ),
    PlantedCase(
        name="race_divergent_bar",
        description="odd lanes branch around a bar.sync their siblings "
                    "execute",
        ptx=_DIVERGENT_BAR, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.DIVERGENT_BARRIER, "bar", 0),),
    ),
    PlantedCase(
        name="race_bar_mismatch",
        description="warp 0 executes two barriers, warp 1 only one",
        ptx=_BAR_MISMATCH, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.BARRIER_MISMATCH, "bar", 1),),
    ),
    PlantedCase(
        name="race_uninit_read",
        description="shared element read with no write anywhere in the "
                    "kernel",
        ptx=_UNINIT_READ, grid=(1, 1, 1), block=(32, 1, 1),
        buffers={"out": 32 * 4},
        expected=((RaceKind.UNINIT_SHARED_READ, "ld.shared", 0),),
    ),
    PlantedCase(
        name="race_intercta_ww",
        description="two CTAs store their (different) ctaid to the same "
                    "global element",
        ptx=_INTERCTA_WW, grid=(2, 1, 1), block=(32, 1, 1),
        buffers={"out": 4},
        expected=((RaceKind.GLOBAL_WRITE_CONFLICT, "st.global", 0),),
    ),
    PlantedCase(
        name="clean_reduction",
        description="control: barriered neighbour exchange, unique "
                    "global elements, same-value flag, atomics — no bug",
        ptx=_CLEAN_CONTROL, grid=(2, 1, 1), block=(64, 1, 1),
        buffers={"out": 2 * 64 * 4, "flag": 8},
        expected=(),
    ),
    PlantedCase(
        name="clean_atomic_counter",
        description="atomics-protected shared counter: serialized by "
                    "hardware, must not be flagged in either mode",
        ptx=_CLEAN_ATOMIC_COUNTER, grid=(2, 1, 1), block=(64, 1, 1),
        buffers={"out": 2 * 64 * 4},
        expected=(),
    ),
    PlantedCase(
        name="clean_red_reduction",
        description="red.add reductions into shared and global "
                    "accumulators: atomic read-modify-writes, no bug",
        ptx=_CLEAN_RED_REDUCTION, grid=(2, 1, 1), block=(64, 1, 1),
        buffers={"out": 2 * 64 * 4, "total": 4},
        expected=(),
    ),
    PlantedCase(
        name="clean_membar_handoff",
        description="membar-ordered producer/consumer through global "
                    "memory behind an atomic flag: fence edges order it",
        ptx=_MEMBAR_HANDOFF, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"data": 32 * 4, "flag": 4, "out": 32 * 4},
        expected=(),
    ),
    PlantedCase(
        name="race_unfenced_handoff",
        description="producer/consumer with the fence and flag removed: "
                    "the deterministic schedule serialized it, so only "
                    "the predictive detector can see the race",
        ptx=_UNFENCED_HANDOFF, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"data": 32 * 4, "out": 32 * 4},
        expected=(),
        expected_predictive=(
            (RaceKind.PREDICTED_GLOBAL_RACE, "ld.global", 0),),
    ),
    PlantedCase(
        name="race_atomic_plain_mix",
        description="one thread's plain store resets a counter other "
                    "threads update atomically in the same interval",
        ptx=_ATOMIC_PLAIN_MIX, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=(),
        expected_predictive=(
            (RaceKind.ATOMIC_PLAIN_RACE, "st.shared", 0),),
    ),
    PlantedCase(
        name="race_interwarp_ww",
        description="warps 0 and 1 store to the same 32 shared elements "
                    "in one interval (inter-warp, not inter-lane)",
        ptx=_INTERWARP_WW, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.SHARED_RACE, "st.shared", 0),),
    ),
    PlantedCase(
        name="race_predictive_rw_global",
        description="each thread reads the slot the opposite warp "
                    "writes, same CTA, no barrier: serialized by the "
                    "replay order, predicted racy",
        ptx=_PREDICTIVE_RW_GLOBAL, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"buf": 64 * 4, "out": 64 * 4},
        expected=(),
        expected_predictive=(
            (RaceKind.PREDICTED_GLOBAL_RACE, "ld.global", 0),),
    ),
)

#: Benign idioms for the precision corpus: correct kernels the detector
#: must stay silent on.  ``benign_fenced_shared_handoff`` is the one
#: deliberate exception — the interval baseline false-positives on it
#: (its ``expected`` documents those false findings), while the
#: predictive mode proves the fence ordering and stays clean.
BENIGN_CASES = (
    PlantedCase(
        name="benign_same_value_frontier",
        description="every thread of every CTA writes the same value to "
                    "one global flag (BFS frontier idiom)",
        ptx=_SAME_VALUE_FRONTIER, grid=(2, 1, 1), block=(64, 1, 1),
        buffers={"level": 4, "out": 2 * 64 * 4},
        expected=(),
    ),
    PlantedCase(
        name="benign_guard_exit",
        description="warp 1 guard-exits before the barrier; warp 0 does "
                    "a correctly barriered exchange",
        ptx=_GUARD_EXIT, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 32 * 4},
        expected=(),
    ),
    PlantedCase(
        name="benign_warp_broadcast",
        description="lane 0 publishes one shared value, everyone reads "
                    "it after the barrier",
        ptx=_WARP_BROADCAST, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=(),
    ),
    PlantedCase(
        name="benign_fenced_shared_handoff",
        description="shared-memory producer/consumer behind membar + "
                    "atomic flag: correct, but the interval baseline "
                    "cannot see the fence edges and false-positives",
        ptx=_FENCED_SHARED_HANDOFF, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 32 * 4},
        expected=((RaceKind.SHARED_RACE, "ld.shared", 0),
                  (RaceKind.UNINIT_SHARED_READ, "ld.shared", 0)),
        expected_predictive=(),
    ),
)

ALL_CASES = PLANTED_CASES + BENIGN_CASES


def planted_names():
    return [case.name for case in PLANTED_CASES]


def get_planted(name):
    for case in ALL_CASES:
        if case.name == name:
            return case
    raise KeyError("unknown planted case %r" % name)
