"""Seeded fault-injection kernels with *planted* synchronization bugs.

The race detector (:mod:`repro.analysis`) claims zero findings across
the stock workload registry; that claim is only credible if the
detector demonstrably finds bugs when they exist.  Each
:class:`PlantedCase` here is a small PTX kernel with one deliberate,
precisely-located bug (or, for the control case, none), plus the exact
``(kind, pc)`` findings the detector must produce — recall is tested
pc-exact, not just "something was flagged".

These kernels are *not* part of the workload registry: they exist only
for the detector's recall tests (``pytest -m races``) and are emulated
directly via :class:`~repro.emulator.Emulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..analysis import RaceKind, analyze_trace
from ..core import classify_kernel
from ..emulator import ApplicationTrace, Emulator, MemoryImage
from ..ptx import parse_module

_WW_SHARED = """
.entry race_ww_shared ( .param .u64 out )
{
    .reg .u32 %r<8>;
    .shared .u32 s_flag[1];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_flag;
    st.shared.u32  [%r2], %r1;      // BUG: all 64 threads write element 0
    bar.sync       0;
    ld.shared.u32  %r3, [%r2];
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r3;
    exit;
}
"""

_RW_MISSING_BAR = """
.entry race_rw_missing_bar ( .param .u64 out )
{
    .reg .u32 %r<12>;
    .shared .u32 s_data[64];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_data;
    shl.b32        %r3, %r1, 2;
    add.u32        %r4, %r2, %r3;
    st.shared.u32  [%r4], %r1;      // each thread its own element
    // BUG: missing bar.sync before reading the other warp's element
    add.u32        %r5, %r1, 32;
    and.b32        %r6, %r5, 63;
    shl.b32        %r7, %r6, 2;
    add.u32        %r8, %r2, %r7;
    ld.shared.u32  %r9, [%r8];
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r9;
    exit;
}
"""

_DIVERGENT_BAR = """
.entry race_divergent_bar ( .param .u64 out )
{
    .reg .u32 %r<8>;
    mov.u32        %r1, %tid.x;
    and.b32        %r2, %r1, 1;
    setp.eq.u32    %p1, %r2, 1;
    @%p1 bra       SKIP;
    bar.sync       0;               // BUG: odd lanes branch around this
SKIP:
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r1;
    exit;
}
"""

_BAR_MISMATCH = """
.entry race_bar_mismatch ( .param .u64 out )
{
    .reg .u32 %r<8>;
    mov.u32        %r1, %tid.x;
    bar.sync       0;               // both warps
    shr.u32        %r2, %r1, 5;
    setp.ne.u32    %p1, %r2, 0;
    @%p1 bra       DONE;
    bar.sync       0;               // BUG: warp 0 only
DONE:
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r1;
    exit;
}
"""

_UNINIT_READ = """
.entry race_uninit_read ( .param .u64 out )
{
    .reg .u32 %r<8>;
    .shared .u32 s_buf[32];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_buf;
    shl.b32        %r3, %r1, 2;
    add.u32        %r4, %r2, %r3;
    ld.shared.u32  %r5, [%r4];      // BUG: never written by anyone
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r1;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r5;
    exit;
}
"""

_INTERCTA_WW = """
.entry race_intercta_ww ( .param .u64 out )
{
    .reg .u32 %r<4>;
    mov.u32        %r1, %ctaid.x;
    ld.param.u64   %rd1, [out];
    st.global.u32  [%rd1], %r1;     // BUG: CTA 0 writes 0, CTA 1 writes 1
    exit;
}
"""

_CLEAN_CONTROL = """
.entry clean_reduction ( .param .u64 out, .param .u64 flag )
{
    .reg .u32 %r<16>;
    .shared .u32 s_buf[64];
    mov.u32        %r1, %tid.x;
    mov.u32        %r2, s_buf;
    shl.b32        %r3, %r1, 2;
    add.u32        %r4, %r2, %r3;
    st.shared.u32  [%r4], %r1;      // distinct elements per thread
    bar.sync       0;
    add.u32        %r5, %r1, 1;
    and.b32        %r6, %r5, 63;
    shl.b32        %r7, %r6, 2;
    add.u32        %r8, %r2, %r7;
    ld.shared.u32  %r9, [%r8];      // neighbour read, after the barrier
    mov.u32        %r10, %ctaid.x;
    shl.b32        %r11, %r10, 6;
    add.u32        %r12, %r11, %r1;
    ld.param.u64   %rd1, [out];
    cvt.u64.u32    %rd2, %r12;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    st.global.u32  [%rd4], %r9;     // unique element per thread
    ld.param.u64   %rd5, [flag];
    st.global.u32  [%rd5], 1;       // same value from every CTA: benign
    atom.add.global.u32 %r13, [%rd5], 1;  // atomics never conflict
    exit;
}
"""


@dataclass(frozen=True)
class PlantedCase:
    """One planted-bug kernel plus the findings the detector must emit.

    ``expected`` lists ``(kind, mnemonic_prefix, nth)`` locators: the
    detector must report ``kind`` at exactly the pc of the ``nth``
    instruction whose mnemonic starts with ``mnemonic_prefix`` (and
    nothing else).  The control case has an empty ``expected``.
    """

    name: str
    description: str
    ptx: str
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    buffers: Dict[str, int] = field(default_factory=dict)
    expected: Tuple[Tuple[str, str, int], ...] = ()

    def build(self):
        """Parse the PTX; returns ``(module, kernel)``."""
        module = parse_module(self.ptx)
        return module, module[self.name.replace("-", "_")]

    def expected_findings(self, kernel):
        """Resolve the locators against assigned pcs: ``{(kind, pc)}``."""
        resolved = set()
        for kind, prefix, nth in self.expected:
            matches = [inst for inst in kernel.instructions
                       if inst.mnemonic().startswith(prefix)]
            resolved.add((kind, matches[nth].pc))
        return resolved

    def run(self, engine=None):
        """Emulate the kernel and analyze it; returns the report."""
        module, kernel = self.build()
        mem = MemoryImage()
        params = {name: mem.alloc(name, size)
                  for name, size in self.buffers.items()}
        emu = Emulator(mem, engine=engine)
        app = ApplicationTrace(name=self.name)
        app.add(emu.launch(kernel, self.grid, self.block, params))
        classifications = {k.name: classify_kernel(k) for k in module}
        return analyze_trace(app, classifications, app=self.name)


PLANTED_CASES = (
    PlantedCase(
        name="race_ww_shared",
        description="64 threads store their tid to one shared element "
                    "in the same barrier interval",
        ptx=_WW_SHARED, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.SHARED_RACE, "st.shared", 0),),
    ),
    PlantedCase(
        name="race_rw_missing_bar",
        description="cross-warp shared read of another thread's element "
                    "with the bar.sync omitted",
        ptx=_RW_MISSING_BAR, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.SHARED_RACE, "ld.shared", 0),
                  (RaceKind.UNINIT_SHARED_READ, "ld.shared", 0)),
    ),
    PlantedCase(
        name="race_divergent_bar",
        description="odd lanes branch around a bar.sync their siblings "
                    "execute",
        ptx=_DIVERGENT_BAR, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.DIVERGENT_BARRIER, "bar", 0),),
    ),
    PlantedCase(
        name="race_bar_mismatch",
        description="warp 0 executes two barriers, warp 1 only one",
        ptx=_BAR_MISMATCH, grid=(1, 1, 1), block=(64, 1, 1),
        buffers={"out": 64 * 4},
        expected=((RaceKind.BARRIER_MISMATCH, "bar", 1),),
    ),
    PlantedCase(
        name="race_uninit_read",
        description="shared element read with no write anywhere in the "
                    "kernel",
        ptx=_UNINIT_READ, grid=(1, 1, 1), block=(32, 1, 1),
        buffers={"out": 32 * 4},
        expected=((RaceKind.UNINIT_SHARED_READ, "ld.shared", 0),),
    ),
    PlantedCase(
        name="race_intercta_ww",
        description="two CTAs store their (different) ctaid to the same "
                    "global element",
        ptx=_INTERCTA_WW, grid=(2, 1, 1), block=(32, 1, 1),
        buffers={"out": 4},
        expected=((RaceKind.GLOBAL_WRITE_CONFLICT, "st.global", 0),),
    ),
    PlantedCase(
        name="clean_reduction",
        description="control: barriered neighbour exchange, unique "
                    "global elements, same-value flag, atomics — no bug",
        ptx=_CLEAN_CONTROL, grid=(2, 1, 1), block=(64, 1, 1),
        buffers={"out": 2 * 64 * 4, "flag": 8},
        expected=(),
    ),
)


def planted_names():
    return [case.name for case in PLANTED_CASES]


def get_planted(name):
    for case in PLANTED_CASES:
        if case.name == name:
            return case
    raise KeyError("unknown planted case %r" % name)
