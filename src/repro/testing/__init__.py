"""Test-support utilities shipped inside the package.

This package exists so robustness machinery can be exercised end to end:
:mod:`repro.testing.faults` lets tests (and the CI degraded-figures
smoke run) inject deterministic failures into the pipeline via the
``REPRO_INJECT_FAULTS`` environment variable, which propagates into the
parallel runner's worker processes, and :mod:`repro.testing.chaos`
deterministically damages on-disk artifacts (torn writes, truncation,
bit flips) so ``pytest -m chaos`` can drive every recovery path.
"""

from .chaos import flip_bit, torn_write, truncate_file
from .faults import FaultSpec, InjectedFault, check_fault, injected

__all__ = ["FaultSpec", "InjectedFault", "check_fault", "flip_bit",
           "injected", "torn_write", "truncate_file"]
