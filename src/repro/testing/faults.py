"""Deterministic fault injection for exercising failure-handling paths.

The experiment pipeline has three layers of fault tolerance (isolated
per-application failures, per-job timeouts, broken-worker recovery).
None of that machinery can be trusted unless it is driven regularly, so
this module provides the single switch that every degradation path in
the tests and the CI smoke run is keyed on:

``REPRO_INJECT_FAULTS`` is a comma-separated list of ``app:stage`` or
``app:stage:kind`` entries, e.g.::

    REPRO_INJECT_FAULTS="2mm:emulate,bfs:simulate:sleep=30"

Stages are checked with :func:`check_fault` at pipeline choke points
(``emulate`` at the top of ``Workload.run``, ``simulate``/``analyze``
inside the :class:`~repro.experiments.runner.ExperimentRunner`).  Kinds:

``error`` (default)
    raise :class:`InjectedFault`.
``sleep=N``
    sleep ``N`` seconds, then raise — for exercising job timeouts.
``exit``
    kill the *worker process* with ``os._exit`` — for exercising
    ``BrokenProcessPool`` recovery.  In the parent process this degrades
    to a plain raise so a stray variable cannot take down a test run.
``oom``
    raise :class:`~repro.resilience.guards.MemoryBudgetError` — for
    exercising resource-guard isolation without actually allocating.

The ``engine`` stage is special: its *kind* names an execution engine
(``app:engine:compiled``) and the fault fires as a
:class:`~repro.resilience.errors.CodegenError` at the top of that
engine's attempt inside :func:`~repro.workloads.base.Workload.run` —
the supported way to drive the fallback chain end-to-end without
breaking real codegen (see :func:`check_engine_fault`).

The environment variable (not an in-process registry) is the carrier so
that injection survives into ``ProcessPoolExecutor`` children, which
re-import everything under the ``spawn`` start method.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional

#: Environment variable holding the active fault specs.
ENV_VAR = "REPRO_INJECT_FAULTS"

#: Pipeline stages that have a :func:`check_fault` hook.
STAGES = ("emulate", "simulate", "analyze")

#: The engine-failure injection stage (see :func:`check_engine_fault`);
#: its kind field names the engine to fail instead of a failure mode.
ENGINE_STAGE = "engine"

#: Engine names accepted as the kind of an ``engine``-stage entry.
ENGINE_KINDS = ("scalar", "vectorized", "compiled")


class InjectedFault(RuntimeError):
    """The deliberate failure raised by an armed fault."""

    def __init__(self, name, stage, kind="error"):
        self.name = name
        self.stage = stage
        self.kind = kind
        super().__init__("injected %s fault in %r at stage %r"
                         % (kind, name, stage))


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``app:stage[:kind]`` entry."""

    name: str
    stage: str
    kind: str = "error"

    def matches(self, name, stage):
        return self.name == name and self.stage == stage


def parse_faults(value: Optional[str]) -> List[FaultSpec]:
    """Parse a ``REPRO_INJECT_FAULTS`` value; bad entries are errors
    (silently ignoring a typo would un-arm the fault and let a broken
    degradation path pass CI)."""
    specs = []
    if not value:
        return specs
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) == 2:
            name, stage = parts
            kind = "error"
        elif len(parts) == 3:
            name, stage, kind = parts
        else:
            raise ValueError("bad %s entry %r (want app:stage[:kind])"
                             % (ENV_VAR, entry))
        if stage == ENGINE_STAGE:
            if kind == "error" or kind not in ENGINE_KINDS:
                raise ValueError(
                    "bad %s entry %r (the engine stage needs an engine "
                    "kind: %s)" % (ENV_VAR, entry, ", ".join(ENGINE_KINDS)))
        elif stage not in STAGES:
            raise ValueError("bad %s stage %r (choices: %s)"
                             % (ENV_VAR, stage,
                                ", ".join(STAGES + (ENGINE_STAGE,))))
        elif kind not in ("error", "exit", "oom") \
                and not kind.startswith("sleep="):
            raise ValueError(
                "bad %s kind %r (choices: error, exit, oom, sleep=N)"
                % (ENV_VAR, kind))
        specs.append(FaultSpec(name, stage, kind))
    return specs


def active_faults() -> List[FaultSpec]:
    return parse_faults(os.environ.get(ENV_VAR))


def check_fault(name, stage):
    """Trigger the armed fault for ``(name, stage)``, if any.

    No-op (one env lookup) when ``REPRO_INJECT_FAULTS`` is unset, so the
    hook is safe at production choke points.
    """
    value = os.environ.get(ENV_VAR)
    if not value:
        return
    for spec in parse_faults(value):
        if spec.matches(name, stage):
            _trigger(spec)


def check_engine_fault(name, engine):
    """Fail engine ``engine`` of app ``name`` if so armed.

    Raises :class:`~repro.resilience.errors.CodegenError` — the same
    typed failure real codegen raises — so the fallback chain downgrades
    exactly as it would for a genuine infrastructure failure.  No-op
    (one env lookup) when ``REPRO_INJECT_FAULTS`` is unset.
    """
    value = os.environ.get(ENV_VAR)
    if not value:
        return
    for spec in parse_faults(value):
        if spec.name == name and spec.stage == ENGINE_STAGE \
                and spec.kind == engine:
            from ..resilience.errors import CodegenError

            raise CodegenError(
                "injected engine fault in %r" % name, engine=engine)


def _trigger(spec):
    if spec.kind.startswith("sleep="):
        time.sleep(float(spec.kind.split("=", 1)[1]))
    elif spec.kind == "exit" and multiprocessing.parent_process() is not None:
        # simulate a worker crash (segfault / OOM kill): bypass all
        # exception handling so the pool sees a dead process
        os._exit(13)
    elif spec.kind == "oom":
        from ..resilience.guards import MemoryBudgetError

        raise MemoryBudgetError(
            float("inf"), 0,
            context="injected oom in %r at stage %r"
            % (spec.name, spec.stage))
    raise InjectedFault(spec.name, spec.stage, spec.kind)


@contextmanager
def injected(name, stage, kind="error"):
    """Arm one fault for the duration of a ``with`` block (test helper).

    Appends to any faults already armed, and restores the previous
    environment on exit.
    """
    entry = "%s:%s" % (name, stage) if kind == "error" \
        else "%s:%s:%s" % (name, stage, kind)
    old = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = entry if not old else "%s,%s" % (old, entry)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = old
