"""Backward-dataflow classification of global loads (the paper's Section V).

For every value-producing instruction we compute the :class:`Provenance` of
the value it defines, by a monotone fixpoint over the kernel's reaching
definitions:

* ``ld.param`` / ``ld.const`` define :attr:`Provenance.PARAM` values
  (launch-time parameters);
* ``ld.global`` / ``ld.local`` / ``ld.shared`` / ``ld.tex`` and ``atom``
  define :attr:`Provenance.DATA` values (input-dependent data);
* every other instruction joins the provenance of its source operands,
  where special registers (``%tid``, ``%ctaid``, ...) and immediates
  contribute :attr:`Provenance.PARAM`.

A global load is **deterministic** iff the provenance of its address base
register is purely :attr:`Provenance.PARAM`; otherwise it is
**non-deterministic**.  Alongside the class we record *which* data-load PCs
taint each non-deterministic address, giving the per-load explanation the
paper derives by hand for its Code 1 example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from ..ptx.cfg import CFG
from ..ptx.isa import Imm, Instruction, MemRef, Space, SReg, Sym
from ..ptx.module import Kernel
from .defuse import ENTRY, ReachingDefs
from .provenance import LoadClass, Provenance


@dataclass(frozen=True)
class ClassifiedLoad:
    """Classification record for one static global-load instruction."""

    pc: int
    inst_index: int
    instruction: Instruction
    load_class: LoadClass
    provenance: Provenance
    #: PCs of the data loads / atomics that taint this load's address
    #: (empty for deterministic loads).
    tainting_pcs: Tuple[int, ...]

    @property
    def is_deterministic(self):
        return self.load_class is LoadClass.DETERMINISTIC

    def __str__(self):
        tag = str(self.load_class)
        extra = ""
        if self.tainting_pcs:
            extra = " <- data loads at " + ", ".join(
                "%#x" % pc for pc in self.tainting_pcs)
        return "[%s] %#06x: %s%s" % (tag, self.pc, self.instruction, extra)


@dataclass
class ClassificationResult:
    """All classified global loads of one kernel, with lookup helpers."""

    kernel: Kernel
    loads: List[ClassifiedLoad] = field(default_factory=list)

    def __post_init__(self):
        self._by_pc = {load.pc: load for load in self.loads}

    def class_of(self, pc):
        """The :class:`LoadClass` of the global load at ``pc``."""
        return self._by_pc[pc].load_class

    def get(self, pc):
        return self._by_pc.get(pc)

    @property
    def deterministic(self):
        return [ld for ld in self.loads if ld.is_deterministic]

    @property
    def nondeterministic(self):
        return [ld for ld in self.loads if not ld.is_deterministic]

    def static_fraction_deterministic(self):
        """Fraction of *static* global loads classified deterministic."""
        if not self.loads:
            return 1.0
        return len(self.deterministic) / len(self.loads)

    def __iter__(self):
        return iter(self.loads)

    def __len__(self):
        return len(self.loads)


class LoadClassifier:
    """Classifies a kernel's global loads with backward dataflow analysis."""

    def __init__(self, kernel, cfg=None):
        self.kernel = kernel
        self.cfg = cfg if cfg is not None else CFG(kernel)
        self.defuse = ReachingDefs(kernel, self.cfg)
        self._def_prov: List[Provenance] = []
        self._def_taint: List[FrozenSet[int]] = []
        self._solved = False

    # -- provenance fixpoint --------------------------------------------------

    def _initial_def_provenance(self, inst):
        """Provenance of the value defined by ``inst`` if it is a root,
        else :attr:`Provenance.BOTTOM` (to be computed from sources)."""
        if inst.is_load:
            if inst.space in (Space.PARAM, Space.CONST):
                return Provenance.PARAM
            return Provenance.DATA
        if inst.is_atomic:
            return Provenance.DATA
        return Provenance.BOTTOM

    def _operand_provenance(self, inst_index, operand):
        """Provenance + taint sources contributed by one source operand."""
        if isinstance(operand, (Imm, Sym)):
            return Provenance.PARAM, frozenset()
        if isinstance(operand, SReg):
            return Provenance.PARAM, frozenset()
        if isinstance(operand, MemRef):
            return self._operand_provenance(inst_index, operand.base)
        # a general-purpose register: join over reaching definitions
        prov = Provenance.BOTTOM
        taint: FrozenSet[int] = frozenset()
        for def_index in self.defuse.reaching(inst_index, operand):
            if def_index == ENTRY:
                prov = prov.join(Provenance.ENTRY)
            else:
                prov = prov.join(self._def_prov[def_index])
                taint = taint | self._def_taint[def_index]
        return prov, taint

    def _solve(self):
        if self._solved:
            return
        insts = self.kernel.instructions
        self._def_prov = [self._initial_def_provenance(i) for i in insts]
        self._def_taint = [
            frozenset((idx,)) if self._def_prov[idx] is Provenance.DATA
            else frozenset()
            for idx in range(len(insts))
        ]
        roots = {idx for idx in range(len(insts))
                 if self._def_prov[idx] is not Provenance.BOTTOM}

        changed = True
        while changed:
            changed = False
            for idx, inst in enumerate(insts):
                if idx in roots or not inst.writes():
                    continue
                prov = Provenance.BOTTOM
                taint: FrozenSet[int] = frozenset()
                for src in inst.srcs:
                    p, t = self._operand_provenance(idx, src)
                    prov = prov.join(p)
                    taint = taint | t
                if not inst.srcs:
                    prov = Provenance.PARAM
                if prov != self._def_prov[idx] or taint != self._def_taint[idx]:
                    self._def_prov[idx] = prov
                    self._def_taint[idx] = taint
                    changed = True
        self._solved = True

    # -- public API --------------------------------------------------------------

    def provenance_of_definition(self, inst_index):
        """Provenance of the value defined by instruction ``inst_index``."""
        self._solve()
        return self._def_prov[inst_index]

    def address_provenance(self, inst_index):
        """Provenance + tainting data-load indices of a memory instruction's
        effective address."""
        self._solve()
        inst = self.kernel.instructions[inst_index]
        ref = inst.memref
        if ref is None:
            raise ValueError("instruction at index %d is not a memory op"
                             % inst_index)
        return self._operand_provenance(inst_index, ref.base)

    def classify(self):
        """Classify every global load; returns a :class:`ClassificationResult`."""
        self._solve()
        loads = []
        for idx, inst in enumerate(self.kernel.instructions):
            if not inst.is_global_load:
                continue
            prov, taint = self.address_provenance(idx)
            if prov is Provenance.BOTTOM:
                # address from a literal base: purely parameterized
                prov = Provenance.PARAM
            loads.append(ClassifiedLoad(
                pc=inst.pc,
                inst_index=idx,
                instruction=inst,
                load_class=LoadClass.from_provenance(prov),
                provenance=prov,
                tainting_pcs=tuple(sorted(
                    self.kernel.instructions[t].pc for t in taint)),
            ))
        return ClassificationResult(kernel=self.kernel, loads=loads)


def classify_kernel(kernel):
    """One-shot helper: classify all global loads of ``kernel``."""
    return LoadClassifier(kernel).classify()


def classify_module(module):
    """Classify every kernel in a module; returns ``{name: result}``."""
    return {kernel.name: classify_kernel(kernel) for kernel in module}
