"""The paper's primary contribution: backward-dataflow load classification.

Global loads are split into *deterministic* (address built only from
launch-time parameterized values) and *non-deterministic* (address depends
on previously loaded data).  See :mod:`repro.core.classifier` for the
algorithm and the paper's Section V for the definition.
"""

from .classifier import (
    ClassificationResult,
    ClassifiedLoad,
    LoadClassifier,
    classify_kernel,
    classify_module,
)
from .defuse import ENTRY, ReachingDefs
from .provenance import LoadClass, Provenance
from .report import dynamic_split, format_kernel_report, merge_dynamic_split

__all__ = [
    "ClassificationResult",
    "ClassifiedLoad",
    "LoadClassifier",
    "classify_kernel",
    "classify_module",
    "ENTRY",
    "ReachingDefs",
    "LoadClass",
    "Provenance",
    "dynamic_split",
    "format_kernel_report",
    "merge_dynamic_split",
]
