"""Human-readable reports for load-classification results."""

from __future__ import annotations




def format_kernel_report(result, dynamic_counts=None):
    """Render one kernel's classification as an ASCII table.

    Parameters
    ----------
    result:
        A :class:`ClassificationResult`.
    dynamic_counts:
        Optional ``{pc: executed_warp_count}`` from a trace; when given, the
        report includes per-load dynamic weights and the dynamic D/N split
        (this is how the paper's Figure 1 weights static loads).
    """
    lines = []
    lines.append("kernel %s: %d global loads (%d deterministic, %d non-deterministic)"
                 % (result.kernel.name, len(result),
                    len(result.deterministic), len(result.nondeterministic)))
    header = "  %-6s %-2s %-38s %s" % ("PC", "", "instruction", "tainted by")
    lines.append(header)
    for load in result:
        taint = ", ".join("%#x" % pc for pc in load.tainting_pcs) or "-"
        row = "  %#06x %-2s %-38s %s" % (
            load.pc, load.load_class, str(load.instruction)[:38], taint)
        if dynamic_counts is not None:
            row += "   x%d" % dynamic_counts.get(load.pc, 0)
        lines.append(row)
    if dynamic_counts is not None:
        det, nondet = dynamic_split(result, dynamic_counts)
        total = det + nondet
        if total:
            lines.append("  dynamic split: %.1f%% deterministic / %.1f%% non-deterministic"
                         % (100.0 * det / total, 100.0 * nondet / total))
    return "\n".join(lines)


def dynamic_split(result, dynamic_counts):
    """Dynamic (execution-weighted) load counts ``(deterministic, nondet)``.

    This is the quantity Figure 1 of the paper plots: each static load's
    class weighted by how many warp instructions it executed.
    """
    det = 0
    nondet = 0
    for load in result:
        count = dynamic_counts.get(load.pc, 0)
        if load.is_deterministic:
            det += count
        else:
            nondet += count
    return det, nondet


def merge_dynamic_split(results_and_counts):
    """Aggregate the dynamic D/N split over several kernels.

    ``results_and_counts`` is an iterable of ``(ClassificationResult,
    {pc: count})`` pairs — one per kernel launch (or per kernel with summed
    counts).  Returns ``(deterministic, nondeterministic)`` totals.
    """
    det = 0
    nondet = 0
    for result, counts in results_and_counts:
        d, n = dynamic_split(result, counts)
        det += d
        nondet += n
    return det, nondet
