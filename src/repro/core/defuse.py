"""Reaching-definitions analysis over a PTX-subset kernel.

The paper's load classifier "traces the dependency graphs backwards for a
source register that is used in the address computation of a load"
(Section V).  Tracing backwards requires knowing, at each instruction, which
instructions may have defined each source register — the classic
*reaching definitions* dataflow problem [Aho et al., Compilers, 2nd ed.],
which the paper cites as the underlying machinery.

Definitions are identified by instruction index; the pseudo-definition
:data:`ENTRY` stands for "live-in at kernel entry" (a register read before
any write — legal PTX never does this, but the analysis must be total).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from ..ptx.cfg import CFG
from ..ptx.isa import Reg

#: Pseudo definition site: the register was never written on some path.
ENTRY = -1

_ENTRY_SET = frozenset((ENTRY,))


class ReachingDefs:
    """Computes and caches reaching definitions for one kernel.

    After construction, :meth:`reaching` answers "which definition sites of
    register ``reg`` may reach instruction ``inst_index``?".
    """

    def __init__(self, kernel, cfg=None):
        self.kernel = kernel
        self.cfg = cfg if cfg is not None else CFG(kernel)
        self._block_in: List[Dict[str, FrozenSet[int]]] = []
        self._solve()
        # per-instruction cache filled lazily by :meth:`reaching`
        self._cache: Dict[int, Dict[str, FrozenSet[int]]] = {}

    # -- dataflow ------------------------------------------------------------

    def _apply(self, state, inst, index):
        """Apply one instruction's definitions to a mutable state dict."""
        for reg in inst.writes():
            if inst.pred is None:
                state[reg.name] = frozenset((index,))
            else:
                # a predicated write may not execute: old defs survive
                old = state.get(reg.name, _ENTRY_SET)
                state[reg.name] = old | frozenset((index,))

    def _transfer_block(self, in_state, block):
        state = dict(in_state)
        for i in range(block.start, block.end):
            self._apply(state, self.kernel.instructions[i], i)
        return state

    def _register_universe(self):
        """Every register name the kernel mentions."""
        names = set()
        for inst in self.kernel.instructions:
            for reg in inst.writes():
                names.add(reg.name)
            for reg in inst.reads():
                if isinstance(reg, Reg):
                    names.add(reg.name)
        return names

    def _solve(self):
        blocks = self.cfg.blocks
        # The entry block is seeded with every register mapped to ENTRY; the
        # pseudo-definition then flows (and is killed by real definitions)
        # like any other, so "may be live-in" is tracked path-sensitively.
        entry_in = {name: _ENTRY_SET for name in self._register_universe()}
        in_state: List[Dict[str, FrozenSet[int]]] = [dict() for _ in blocks]
        out_state: List[Dict[str, FrozenSet[int]]] = [dict() for _ in blocks]
        if blocks:
            in_state[0] = entry_in

        changed = True
        while changed:
            changed = False
            for block in blocks:
                if block.index == 0:
                    merged = dict(entry_in)
                    # a loop back to the entry block also merges its preds
                    for p in block.predecessors:
                        for key, defs in out_state[p].items():
                            merged[key] = merged.get(key, frozenset()) | defs
                else:
                    merged = {}
                    for p in block.predecessors:
                        for key, defs in out_state[p].items():
                            merged[key] = merged.get(key, frozenset()) | defs
                in_state[block.index] = merged
                new_out = self._transfer_block(merged, block)
                if new_out != out_state[block.index]:
                    out_state[block.index] = new_out
                    changed = True
        self._block_in = in_state

    # -- queries -----------------------------------------------------------------

    def reaching(self, inst_index, reg):
        """Definition sites of ``reg`` that may reach ``inst_index``.

        ``reg`` may be a :class:`Reg` or a register name string.  Returns a
        frozenset of instruction indices; may contain :data:`ENTRY`.
        """
        name = reg.name if isinstance(reg, Reg) else reg
        state = self._cache.get(inst_index)
        if state is None:
            block = self.cfg.block_of(inst_index)
            state = dict(self._block_in[block.index])
            for i in range(block.start, inst_index):
                self._apply(state, self.kernel.instructions[i], i)
            self._cache[inst_index] = state
        return state.get(name, _ENTRY_SET)

    def definitions_of(self, reg_name):
        """All instruction indices that write ``reg_name``."""
        return [i for i, inst in enumerate(self.kernel.instructions)
                if any(w.name == reg_name for w in inst.writes())]
