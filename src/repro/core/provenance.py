"""The address-provenance lattice used by the load classifier.

The paper distinguishes two kinds of roots a load address can be traced
back to (Section V):

* **parameterized data** — CTA ids, thread ids, grid dimensions, constant
  kernel parameters (read with ``ld.param``) and literals.  These are fixed
  at kernel launch; an address built only from them is *deterministic*.
* **non-parameterized data** — values produced by prior data loads
  (``ld.global``, ``ld.local``, ``ld.shared``, ``ld.tex``) or atomics.  An
  address that transitively depends on any of these is *non-deterministic*.

We model provenance as a small powerset lattice (bitflags) so that joining
along multiple dataflow paths is a bitwise OR and the fixpoint is trivially
monotone.
"""

from __future__ import annotations

import enum


class Provenance(enum.IntFlag):
    """Bitflags describing where a value may come from."""

    #: No information yet (lattice bottom; only during fixpoint iteration).
    BOTTOM = 0
    #: Launch-time parameterized values: tid/ctaid/ntid/nctaid, ld.param,
    #: ld.const, immediates.
    PARAM = 1
    #: Values read by data loads (global/local/shared/tex) or atomics.
    DATA = 2
    #: Register potentially live-in at kernel entry (read before write).
    ENTRY = 4

    def join(self, other):
        """Lattice join: union of possible origins."""
        return Provenance(self | other)

    @property
    def is_deterministic(self):
        """True when the value is built purely from parameterized data.

        A value tainted by :attr:`DATA` is non-deterministic.  A value with
        an :attr:`ENTRY` component is treated as non-deterministic too: the
        analysis cannot prove where it comes from, and the paper's
        deterministic class requires a positive proof ("its source address
        is generated from parameterized data").
        """
        return bool(self & Provenance.PARAM) and not (
            self & (Provenance.DATA | Provenance.ENTRY))


class LoadClass(enum.Enum):
    """Final classification of a global load (the paper's two categories)."""

    DETERMINISTIC = "D"
    NONDETERMINISTIC = "N"

    def __str__(self):
        return self.value

    @classmethod
    def from_provenance(cls, prov):
        if prov.is_deterministic:
            return cls.DETERMINISTIC
        return cls.NONDETERMINISTIC
