"""The SIMT core (SM) timing model.

Replays warp traces produced by the functional emulator through a
cycle-level model of one streaming multiprocessor:

* a loose round-robin warp scheduler issuing up to ``issue_width``
  instructions per cycle, gated by a per-warp scoreboard,
* SP / SFU pipelines with initiation intervals and result latencies
  (their first-pipeline-stage occupancy is Figure 4's busy metric),
* an LD/ST unit with an in-order memory-instruction queue; the head
  instruction presents one coalesced request per cycle to the L1, and a
  request that suffers a reservation failure retries — those retry cycles
  are exactly the wasted L1 cycles of Figure 3,
* a private L1 data cache (tags + MSHRs, write-through / write-evict),
* CTA slots with ``bar.sync`` barrier tracking.

Global stores and atomics bypass L1 (Fermi behaviour): they only need an
interconnect credit, so their only reservation-failure mode is
``rsrv_fail_icnt``.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Dict, List, Optional, Set, Tuple

from ..emulator.columnar import _PC_SHIFT, KIND_NONE
from ..ptx.isa import Space, Unit
from .cache import Cache, Outcome
from .coalescer import coalesce_addresses
from .request import MemRequest


class InflightMemInst:
    """A memory warp-instruction from LD/ST issue to last data writeback."""

    __slots__ = ("warp", "dests", "pending", "requests", "outstanding",
                 "n_requests", "t_issue", "t_first_accept", "t_last_accept",
                 "l2_in_min", "l2_in_max", "back_min", "back_max",
                 "load_class", "pc", "kernel_name", "is_load", "is_store",
                 "fixed_latency", "port_cycles")

    def __init__(self, warp, dests, pc, kernel_name, load_class,
                 is_load, is_store, t_issue, fixed_latency=None):
        self.warp = warp
        self.dests = dests
        self.pending: List[MemRequest] = []
        self.requests: List[MemRequest] = []
        self.outstanding = 0
        self.n_requests = 0
        self.t_issue = t_issue
        self.t_first_accept = -1
        self.t_last_accept = -1
        # running extrema over this instruction's requests, maintained
        # at the stamp sites so completion is O(1), not O(requests)
        self.l2_in_min = -1
        self.l2_in_max = -1
        self.back_min = -1
        self.back_max = -1
        self.load_class = load_class
        self.pc = pc
        self.kernel_name = kernel_name
        self.is_load = is_load
        self.is_store = is_store
        self.fixed_latency = fixed_latency  # shared/const/empty accesses
        #: LD/ST port cycles a fixed-latency access occupies at the head
        #: (> 1 models shared-memory bank-conflict serialization)
        self.port_cycles = 1

    def accept(self, now):
        if self.t_first_accept < 0:
            self.t_first_accept = now
        self.t_last_accept = now

    def note_l2_in(self, t):
        """One of this instruction's requests entered an L2 slice."""
        if self.l2_in_min < 0:
            self.l2_in_min = self.l2_in_max = t
        elif t < self.l2_in_min:
            self.l2_in_min = t
        elif t > self.l2_in_max:
            self.l2_in_max = t

    def note_back(self, t):
        """One of this instruction's requests got its data back."""
        if self.back_min < 0:
            self.back_min = self.back_max = t
        elif t < self.back_min:
            self.back_min = t
        elif t > self.back_max:
            self.back_max = t


class _OpView:
    """The slice of one trace op the timing model consumes."""

    __slots__ = ("inst", "pc", "addresses")

    def __init__(self, inst, pc, addresses):
        self.inst = inst
        self.pc = pc
        self.addresses = addresses


class _WarpRun:
    """One resident warp replaying its trace.

    Columnar warp traces are replayed straight off their column arrays:
    each issued op materializes one transient :class:`_OpView` (cached
    while the issue pointer sits on it) instead of the legacy path's
    up-front list of per-op record objects.  Legacy record traces fall
    back to that list.
    """

    __slots__ = ("trace", "ptr", "n", "pending_regs", "at_barrier",
                 "cta", "trace_done", "age", "_ops", "_insts", "_pc",
                 "_kind", "_astart", "_lanes", "_addrs",
                 "_cur_idx", "_cur_op")

    def __init__(self, trace, cta, age=0):
        self.trace = trace
        self.ptr = 0
        self.pending_regs: Set[str] = set()
        self.at_barrier = False
        self.cta = cta
        self.age = age
        self._cur_idx = -1
        self._cur_op = None
        if hasattr(trace, "iter_chunks"):  # ColumnarWarpTrace
            trace.seal()
            self._ops = None
            self._insts = trace._launch.instructions
            self._pc = trace.pc
            self._kind = trace.kind
            self._astart = trace.astart
            self._lanes = trace.lanes
            self._addrs = trace.addrs
            self.n = len(trace.pc)
        else:
            self._ops = trace.ops
            self.n = len(self._ops)
        self.trace_done = not self.n

    def op_at(self, idx):
        """The op view at trace position ``idx`` (uncached)."""
        if self._ops is not None:
            return self._ops[idx]
        pc = int(self._pc[idx])
        inst = self._insts[pc >> _PC_SHIFT]
        addresses = None
        if self._kind[idx] != KIND_NONE:
            lo, hi = int(self._astart[idx]), int(self._astart[idx + 1])
            addresses = list(zip(self._lanes[lo:hi].tolist(),
                                 self._addrs[lo:hi].tolist()))
        return _OpView(inst, pc, addresses)

    def peek(self):
        """The op at the issue pointer (cached until the warp advances)."""
        if self._cur_idx != self.ptr:
            self._cur_op = self.op_at(self.ptr)
            self._cur_idx = self.ptr
        return self._cur_op

    @property
    def blocked(self):
        return self.trace_done or self.at_barrier


class _CTASlot:
    """Bookkeeping for one CTA resident on the SM."""

    __slots__ = ("cta_id", "warps", "warps_not_done", "barrier_count",
                 "outstanding")

    def __init__(self, cta_id):
        self.cta_id = cta_id
        self.warps: List[_WarpRun] = []
        self.warps_not_done = 0
        self.barrier_count = 0
        self.outstanding = 0  # issued ops whose writeback is pending

    @property
    def finished(self):
        return self.warps_not_done == 0 and self.outstanding == 0

    def check_barrier_release(self):
        """Release the barrier once every live warp has arrived."""
        waiting = [w for w in self.warps if w.at_barrier]
        if waiting and len(waiting) >= self.warps_not_done:
            for w in waiting:
                w.at_barrier = False
            self.barrier_count = 0
            return True
        return False


class SMCore:
    """One streaming multiprocessor."""

    def __init__(self, sm_id, config, stats, req_icnt, on_cta_finished,
                 partition_map=None):
        self.sm_id = sm_id
        self.config = config
        self.stats = stats
        self.req_icnt = req_icnt
        self.on_cta_finished = on_cta_finished
        if partition_map is None:
            partition_map = lambda sm, block: (
                (block // config.l1_line_size) % config.num_partitions)
        self.partition_map = partition_map
        self.l1 = Cache(
            num_sets=config.l1_num_sets,
            assoc=config.l1_assoc,
            line_size=config.l1_line_size,
            mshr_entries=config.l1_mshr_entries,
            mshr_merge=config.l1_mshr_merge,
            name="L1[%d]" % sm_id,
        )
        self.ldst_queue: deque = deque()
        self.warps: List[_WarpRun] = []
        self.ctas: Dict[int, _CTASlot] = {}
        self._rr = 0
        self._greedy: Optional[_WarpRun] = None  # gto scheduler state
        self._warp_age = count()
        self._sp_busy_until = 0
        self._sfu_busy_until = 0
        self._events: List = []
        self._seq = count()
        # prefetcher state (Section X.A extension)
        self._pf_queue: deque = deque()
        self._pf_stride: Dict[int, Tuple[int, int]] = {}
        #: per-launch context, set by the GPU before simulation
        self.kernel_name = ""
        self.pc_classes: Dict[int, str] = {}

    # -- occupancy -----------------------------------------------------------

    @property
    def resident_ctas(self):
        return len(self.ctas)

    @property
    def has_work(self):
        return bool(self.warps or self.ldst_queue or self._events)

    def assign_cta(self, cta_id, warp_traces):
        """Make a CTA resident; its warps join the scheduling pool."""
        slot = _CTASlot(cta_id)
        for trace in warp_traces:
            run = _WarpRun(trace, slot, age=next(self._warp_age))
            slot.warps.append(run)
            if not run.trace_done:
                slot.warps_not_done += 1
            self.warps.append(run)
        self.ctas[cta_id] = slot
        # a CTA with only empty warp traces finishes immediately
        if slot.finished:
            self._retire_cta(slot)

    def _retire_cta(self, slot):
        del self.ctas[slot.cta_id]
        keep = [w for w in self.warps if w.cta is not slot]
        self.warps = keep
        self._rr = 0 if not keep else self._rr % len(keep)
        if self._greedy is not None and self._greedy.cta is slot:
            self._greedy = None
        self.on_cta_finished(self.sm_id, slot.cta_id)

    # -- responses from the memory system ------------------------------------------

    def receive_response(self, req, now):
        """A data response arrived over the response network."""
        if req.is_atomic:
            self._complete_request(req, now)
            return
        waiters = self.l1.fill(req.block_addr)
        if req not in waiters:
            waiters.append(req)
        for waiter in waiters:
            self._complete_request(waiter, now)

    def _complete_request(self, req, now):
        req.t_back = now
        inflight = req.inflight
        if inflight is None:
            return  # prefetch fill: no warp is waiting
        inflight.note_back(now)
        inflight.outstanding -= 1
        if inflight.outstanding == 0 and not inflight.pending:
            self._finish_inflight(inflight, now)

    def _finish_inflight(self, inflight, now):
        warp = inflight.warp
        for dest in inflight.dests:
            warp.pending_regs.discard(dest)
        warp.cta.outstanding -= 1
        self._record_completion(inflight, now)
        if warp.cta.finished:
            self._retire_cta(warp.cta)

    def _record_completion(self, inflight, now):
        if not inflight.is_load or inflight.load_class is None \
                or not inflight.requests:
            return
        turnaround = now - inflight.t_issue
        wait_first = max(0, inflight.t_first_accept - inflight.t_issue)
        gap_l1d = max(0, inflight.t_last_accept - inflight.t_first_accept)
        # running extrema maintained at the stamp sites (note_l2_in /
        # note_back): completion stays O(1) for wide fan-out loads
        spread_l2_in = (inflight.l2_in_max - inflight.l2_in_min
                        if inflight.l2_in_min >= 0 else 0)
        spread_back = (inflight.back_max - inflight.back_min
                       if inflight.back_min >= 0 else 0)
        gap_icnt_l2 = max(0, spread_l2_in - gap_l1d)
        gap_l2_icnt = max(0, spread_back - spread_l2_in)
        self.stats.record_load_completion(
            inflight.kernel_name, inflight.pc, inflight.load_class,
            inflight.n_requests, turnaround, wait_first, gap_l1d,
            gap_icnt_l2, gap_l2_icnt)

    # -- per-cycle work ----------------------------------------------------------------

    def cycle(self, now):
        """Advance one cycle; returns True when the SM did any work."""
        worked = self._pop_events(now)
        demand = self._ldst_cycle(now)
        worked |= demand
        if not demand and self._pf_queue:
            # the L1 port is free this cycle: spend it on a prefetch
            worked |= self._prefetch_cycle(now)
        issued = self._issue(now)
        worked |= issued
        if self.warps:
            self.stats.active_sm_cycles += 1
            if not issued:
                self.stats.issue_stall[self.stall_reason()] += 1
        return worked

    def stall_reason(self):
        """Why no instruction can issue right now (coarse, prioritized)."""
        live = [w for w in self.warps if not w.trace_done]
        if not live:
            return "drained"
        runnable = [w for w in live if not w.at_barrier]
        if not runnable:
            return "barrier"
        for warp in runnable:
            if self._scoreboard_ready(warp, warp.peek().inst):
                return "unit_busy"
        return "scoreboard"

    def debug_state(self):
        """Scheduling-relevant state for deadlock reports."""
        warps = []
        for w in self.warps:
            if w.trace_done and not w.pending_regs:
                continue
            warps.append({"cta": w.cta.cta_id, "warp": w.trace.warp_id,
                          "op": "%d/%d" % (w.ptr, w.n),
                          "at_barrier": w.at_barrier,
                          "pending_regs": sorted(w.pending_regs)})
        return {"sm": self.sm_id,
                "resident_ctas": sorted(self.ctas),
                "stall": self.stall_reason() if self.warps else "empty",
                "ldst_queue": len(self.ldst_queue),
                "pending_events": len(self._events),
                "l1_mshr": self.l1.mshr.debug_state(),
                "warps": warps}

    def _pop_events(self, now):
        worked = False
        while self._events and self._events[0][0] <= now:
            _t, _s, kind, payload = heapq.heappop(self._events)
            worked = True
            if kind == "wb":
                warp, dests = payload
                for dest in dests:
                    warp.pending_regs.discard(dest)
                warp.cta.outstanding -= 1
                if warp.cta.finished:
                    self._retire_cta(warp.cta)
            elif kind == "hit":
                self._complete_request(payload, now)
            elif kind == "fixed":
                self._finish_inflight(payload, now)
        return worked

    def _schedule(self, time, kind, payload):
        heapq.heappush(self._events, (time, next(self._seq), kind, payload))

    # -- LD/ST unit ---------------------------------------------------------------------

    def _ldst_cycle(self, now):
        if not self.ldst_queue:
            return False
        self.stats.unit_busy["ldst"] += 1
        head = self.ldst_queue[0]

        if head.fixed_latency is not None:
            # shared/const/param accesses and all-inactive loads: fixed
            # latency, no L1 traffic; bank-conflicted shared accesses
            # occupy the port for several cycles
            head.port_cycles -= 1
            if head.port_cycles > 0:
                self.stats.shared_bank_conflict_cycles += 1
                return True
            self.ldst_queue.popleft()
            if head.dests:
                self._schedule(now + head.fixed_latency, "fixed", head)
            else:
                head.warp.cta.outstanding -= 1
                if head.warp.cta.finished:
                    self._retire_cta(head.warp.cta)
            return True

        req = head.pending[0]
        outcome = self._access_l1(req, now)
        self.stats.record_l1_cycle(outcome, req.load_class)
        if outcome.is_fail:
            return True
        if not req.is_write and not req.is_atomic:
            self.stats.record_l1_result(outcome, req.load_class)
        req.t_accept = now
        head.accept(now)
        head.pending.pop(0)
        if not head.pending:
            self.ldst_queue.popleft()
            if head.is_store:
                # write-through stores complete at acceptance
                head.warp.cta.outstanding -= 1
                if head.warp.cta.finished:
                    self._retire_cta(head.warp.cta)
            elif head.outstanding == 0:
                self._finish_inflight(head, now)
        return True

    def _access_l1(self, req, now):
        """Present one request to the L1 port; returns the outcome."""
        if req.is_write or req.is_atomic:
            # bypass: stores are write-through no-allocate (write-evict on
            # hit), atomics execute at the L2 — both only need a network slot
            if not self.req_icnt.can_inject(self.sm_id):
                return Outcome.RSRV_FAIL_ICNT
            if req.is_write:
                self.l1.write_touch(req.block_addr)
            self.req_icnt.inject(req, self.sm_id, req.partition, now)
            return Outcome.MISS

        outcome = self.l1.lookup(req.block_addr)
        if outcome is Outcome.HIT:
            self.l1.commit_hit(req.block_addr)
            self._schedule(now + self.config.l1_hit_latency, "hit", req)
            return outcome
        if outcome is Outcome.HIT_RESERVED:
            self.l1.commit_hit_reserved(req.block_addr, req)
            return outcome
        if outcome is Outcome.MISS:
            if not self.req_icnt.can_inject(self.sm_id):
                return Outcome.RSRV_FAIL_ICNT
            self.l1.commit_miss(req.block_addr, req)
            self.req_icnt.inject(req, self.sm_id, req.partition, now)
            return outcome
        return outcome  # a reservation failure from the cache itself

    # -- issue stage ------------------------------------------------------------------------

    def _scoreboard_ready(self, warp, inst):
        pend = warp.pending_regs
        if not pend:
            return True
        for name in inst.read_reg_names:
            if name in pend:
                return False
        for name in inst.write_reg_names:
            if name in pend:
                return False
        return True

    def _candidate_order(self):
        """Warp visit order according to the configured scheduler.

        ``lrr`` (the paper's baseline) rotates from the warp after the
        last issuer; ``gto`` keeps the greedy warp first, then falls back
        to the oldest-assigned warps.
        """
        n = len(self.warps)
        if self.config.warp_scheduler == "gto":
            ordered = sorted(self.warps, key=lambda w: w.age)
            greedy = self._greedy
            if greedy is not None and greedy in self.warps:
                ordered.remove(greedy)
                ordered.insert(0, greedy)
            return ordered
        start = self._rr % n
        return [self.warps[(start + k) % n] for k in range(n)]

    def _issue(self, now):
        if not self.warps:
            return False
        issued = 0
        rescan = True
        while rescan and issued < self.config.issue_width:
            rescan = False
            for warp in self._candidate_order():
                if warp.blocked:
                    continue
                op = warp.peek()
                inst = op.inst
                if not self._scoreboard_ready(warp, inst):
                    continue
                if not self._try_issue(warp, op, now):
                    continue
                issued += 1
                if self.config.warp_scheduler == "gto":
                    self._greedy = warp
                elif warp in self.warps:
                    # loose round-robin: restart after the issued warp
                    self._rr = (self.warps.index(warp) + 1) % len(self.warps)
                self._advance(warp)
                rescan = bool(self.warps)
                break
        return issued > 0

    def _advance(self, warp):
        warp.ptr += 1
        self.stats.issued_warp_insts += 1
        if warp.ptr >= warp.n:
            warp.trace_done = True
            warp.cta.warps_not_done -= 1
            warp.cta.check_barrier_release()
            if warp.cta.finished:
                self._retire_cta(warp.cta)

    def _try_issue(self, warp, op, now):
        inst = op.inst
        if inst.is_memory:
            return self._issue_memory(warp, op, now)

        unit = inst.unit
        if unit is Unit.SP:
            if self._sp_busy_until > now:
                return False
            self._sp_busy_until = now + self.config.sp_initiation_interval
            self.stats.unit_busy["sp"] += self.config.sp_initiation_interval
            latency = self.config.sp_latency
        elif unit is Unit.SFU:
            if self._sfu_busy_until > now:
                return False
            self._sfu_busy_until = now + self.config.sfu_initiation_interval
            self.stats.unit_busy["sfu"] += self.config.sfu_initiation_interval
            latency = self.config.sfu_latency
        else:  # CTRL: bra / bar / membar / exit occupy only the issue stage
            if inst.is_barrier:
                warp.at_barrier = True
                warp.cta.barrier_count += 1
                warp.cta.check_barrier_release()
            return True

        dests = tuple(r.name for r in inst.writes())
        if dests:
            warp.pending_regs.update(dests)
            warp.cta.outstanding += 1
            self._schedule(now + latency, "wb", (warp, dests))
        return True

    def _issue_memory(self, warp, op, now):
        if len(self.ldst_queue) >= self.config.ldst_queue_size:
            return False
        inst = op.inst
        dests = tuple(r.name for r in inst.writes())
        space = inst.space

        if space is Space.GLOBAL or space is Space.TEX or space is Space.LOCAL:
            load_class = self.pc_classes.get(inst.pc) if inst.is_load else None
            if inst.is_atomic:
                load_class = self.pc_classes.get(inst.pc)
            inflight = InflightMemInst(
                warp, dests, inst.pc, self.kernel_name, load_class,
                is_load=inst.is_load or inst.is_atomic,
                is_store=inst.is_store, t_issue=now)
            blocks = coalesce_addresses(
                op.addresses or (), line_size=self.config.l1_line_size,
                access_size=inst.access_bytes)
            if not blocks:
                # all lanes predicated off: trivial completion
                inflight.fixed_latency = 1
            for block in blocks:
                req = MemRequest(
                    block_addr=block, pc=inst.pc, load_class=load_class,
                    is_write=inst.is_store, is_atomic=inst.is_atomic,
                    sm_id=self.sm_id, inflight=inflight)
                req.t_issue = now
                req.partition = self.partition_map(self.sm_id, block)
                inflight.pending.append(req)
                inflight.requests.append(req)
            inflight.n_requests = len(blocks)
            inflight.outstanding = 0 if inst.is_store else len(blocks)
            if inst.is_load:
                self.stats.global_load_insts += 1
                self.stats.record_coalescing(
                    load_class, len(blocks),
                    len(op.addresses) if op.addresses else 0)
            elif inst.is_store:
                self.stats.global_store_insts += 1
        else:
            # shared / const / param: fixed-latency path, no L1 traffic
            if space is Space.SHARED:
                latency = self.config.shared_latency
                if inst.is_shared_load:
                    self.stats.shared_load_insts += 1
            else:
                latency = self.config.const_latency
            inflight = InflightMemInst(
                warp, dests if inst.is_load or inst.is_atomic else (),
                inst.pc, self.kernel_name, None,
                is_load=inst.is_load, is_store=inst.is_store,
                t_issue=now, fixed_latency=latency)
            if space is Space.SHARED and op.addresses:
                inflight.port_cycles = self._bank_conflict_degree(
                    op.addresses)

        if inflight.dests:
            warp.pending_regs.update(inflight.dests)
        warp.cta.outstanding += 1
        self.ldst_queue.append(inflight)
        if self.config.prefetcher != "none" and inst.is_load \
                and space is Space.GLOBAL:
            self._generate_prefetches(warp, op)
        return True

    def _bank_conflict_degree(self, addresses):
        """Port cycles a shared access needs: the worst bank's count of
        *distinct* words (same-word accesses broadcast for free)."""
        banks: Dict[int, Set[int]] = {}
        width = self.config.shared_bank_width
        nbanks = self.config.shared_banks
        for _lane, addr in addresses:
            word = addr // width
            banks.setdefault(word % nbanks, set()).add(word)
        if not banks:
            return 1
        return max(len(words) for words in banks.values())

    # -- prefetcher (Section X.A extension) --------------------------------

    def _pf_push(self, block):
        if len(self._pf_queue) >= self.config.prefetch_queue_size:
            self._pf_queue.popleft()
            self.stats.prefetch_dropped += 1
        self._pf_queue.append(block)

    def _generate_prefetches(self, warp, op):
        config = self.config
        if config.prefetcher == "stride":
            # classic per-PC stride prediction on the load's first block
            blocks = coalesce_addresses(op.addresses or (),
                                        line_size=config.l1_line_size)
            if not blocks:
                return
            first = blocks[0]
            last = self._pf_stride.get(op.pc)
            if last is not None:
                stride = first - last[0]
                if stride != 0 and stride == last[1]:
                    self._pf_push(first + stride)
                self._pf_stride[op.pc] = (first, stride)
            else:
                self._pf_stride[op.pc] = (first, 0)
            return
        # indirect oracle: look ahead in this warp's trace for the next
        # non-deterministic global load and prefetch its blocks — a
        # perfect indirect-address predictor (upper bound for [16])
        lookahead = config.prefetch_lookahead
        for idx in range(warp.ptr + 1,
                         min(warp.ptr + 1 + lookahead, warp.n)):
            future = warp.op_at(idx)
            if future.addresses is None or not future.inst.is_global_load:
                continue
            if self.pc_classes.get(future.inst.pc) != "N":
                continue
            for block in coalesce_addresses(
                    future.addresses, line_size=config.l1_line_size):
                self._pf_push(block)
            break

    def _prefetch_cycle(self, now):
        """Spend a free L1-port cycle on the oldest pending prefetch."""
        block = self._pf_queue.popleft()
        outcome = self.l1.lookup(block)
        if outcome is not Outcome.MISS:
            return True  # already present, in flight, or unprefetchable
        if not self.req_icnt.can_inject(self.sm_id):
            self._pf_queue.appendleft(block)
            return True
        req = MemRequest(block_addr=block, pc=0, load_class=None,
                         sm_id=self.sm_id, is_prefetch=True)
        req.t_issue = now
        req.partition = self.partition_map(self.sm_id, block)
        self.l1.commit_miss(block, req)
        self.req_icnt.inject(req, self.sm_id, req.partition, now)
        self.stats.prefetch_issued += 1
        return True

    # -- idle-jump support ----------------------------------------------------------

    def next_event_cycle(self, now):
        """Earliest future cycle this SM can make progress on its own, or
        ``None`` when it is waiting purely on external responses."""
        times = []
        if self.ldst_queue or self._pf_queue:
            times.append(now + 1)
        if self._events:
            times.append(self._events[0][0])
        runnable = any(not w.blocked for w in self.warps)
        if runnable:
            if self._sp_busy_until > now:
                times.append(self._sp_busy_until)
            if self._sfu_busy_until > now:
                times.append(self._sfu_busy_until)
        if not times:
            return None
        return max(now + 1, min(times))
