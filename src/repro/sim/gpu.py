"""Top-level GPU timing simulator.

Wires the SMs, the two interconnect directions and the memory partitions
together, assigns CTAs via a scheduling policy, and replays the warp
traces of one or more kernel launches cycle by cycle.

The main loop includes an *idle jump*: when no component can make
progress in the current cycle (every warp stalled on the scoreboard, all
queues drained, everything waiting on in-flight memory), the clock jumps
to the next scheduled event.  Jumped cycles still count toward total and
SM-active cycle statistics, so idle-fraction metrics (Figure 4) are
unaffected.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.classifier import ClassificationResult
from ..obs import tracing
from .config import TESLA_C2050
from .core import SMCore
from .cta_scheduler import make_scheduler
from .icnt import Interconnect
from .memory_partition import MemoryPartition
from .stats import SimStats


class SimulationError(Exception):
    """Raised on deadlock or cycle-budget exhaustion.

    ``state`` (when set) is the structured :meth:`GPU.debug_state`
    snapshot taken at the failing cycle; the formatted dump is also
    appended to the message so plain tracebacks show where the machine
    was stuck.
    """

    def __init__(self, message, state=None):
        self.state = state
        if state is not None:
            message = "%s\n%s" % (message, _format_state(state))
        super().__init__(message)


def _format_state(state):
    """Render a :meth:`GPU.debug_state` snapshot as an indented report."""
    lines = ["simulator state at failure:"]
    for icnt in state["interconnects"]:
        lines.append("  icnt %(name)s: %(in_flight)d in flight, "
                     "credits=%(credits)s" % icnt)
    for part in state["partitions"]:
        mshr = part["l2_mshr"]
        lines.append("  partition %d: rop=%d dram_queue=%d "
                     "dram_in_flight=%d resp_wait=%d+%d "
                     "L2-MSHR %d/%d" % (
                         part["partition"], part["rop_queue"],
                         part["dram_queue"], part["dram_in_flight"],
                         part["resp_wait_latency"], part["resp_wait_credit"],
                         mshr["occupancy"], mshr["capacity"]))
    for sm in state["sms"]:
        mshr = sm["l1_mshr"]
        lines.append("  sm %d: ctas=%s stall=%s ldst=%d events=%d "
                     "L1-MSHR %d/%d" % (
                         sm["sm"], sm["resident_ctas"], sm["stall"],
                         sm["ldst_queue"], sm["pending_events"],
                         mshr["occupancy"], mshr["capacity"]))
        for w in sm["warps"][:8]:
            lines.append("    cta %s warp %s: op %s%s pending=%s" % (
                w["cta"], w["warp"], w["op"],
                " at-barrier" if w["at_barrier"] else "",
                ",".join(w["pending_regs"]) or "-"))
    if state.get("unassigned_ctas"):
        lines.append("  unassigned CTAs: %d" % state["unassigned_ctas"])
    return "\n".join(lines)


class GPU:
    """A simulated GPU that replays emulator traces."""

    def __init__(self, config=TESLA_C2050, cta_policy="round_robin",
                 max_cycles=500_000_000):
        config.validate()
        self.config = config
        self.cta_policy = cta_policy
        self.max_cycles = max_cycles
        self.stats = SimStats()
        self.now = 0
        self.req_icnt = Interconnect(
            num_sources=config.num_sms, num_dests=config.num_partitions,
            latency=config.icnt_latency,
            credits_per_source=config.icnt_credits_per_sm, name="req")
        self.resp_icnt = Interconnect(
            num_sources=config.num_partitions, num_dests=config.num_sms,
            latency=config.icnt_latency,
            credits_per_source=config.icnt_credits_per_partition, name="resp")
        self.partitions = [MemoryPartition(p, config, self.stats)
                           for p in range(config.num_partitions)]
        self.sms = [SMCore(i, config, self.stats, self.req_icnt,
                           self._cta_finished,
                           partition_map=self.partition_of)
                    for i in range(config.num_sms)]
        self._scheduler = None
        self._cta_traces: Dict[int, List] = {}

    def partition_of(self, sm_id, block_addr):
        """Which memory partition serves ``block_addr`` for ``sm_id``.

        The baseline interleaves 128 B lines across all partitions,
        SM-independent.  Subclasses (e.g. the Section X.C semi-global L2
        ablation) override this to localize traffic.
        """
        return ((block_addr // self.config.l1_line_size)
                % self.config.num_partitions)

    # -- CTA flow ------------------------------------------------------------

    def _max_ctas_per_sm(self, launch_trace):
        threads = launch_trace.config.threads_per_cta
        limit = min(self.config.max_ctas_per_sm,
                    max(1, self.config.max_threads_per_sm // max(threads, 1)))
        if launch_trace.shared_size > 0:
            limit = min(limit, max(
                1, self.config.shared_mem_per_sm // launch_trace.shared_size))
        return max(1, limit)

    def _cta_finished(self, sm_id, cta_id):
        if self._scheduler is None:
            return
        nxt = self._scheduler.next_for(sm_id)
        if nxt is not None:
            self.sms[sm_id].assign_cta(nxt, self._cta_traces[nxt])

    # -- launch replay ----------------------------------------------------------

    def run_launch(self, launch_trace, classification=None):
        """Replay one kernel launch to completion.

        Parameters
        ----------
        launch_trace:
            A :class:`repro.emulator.trace.KernelLaunchTrace`.
        classification:
            The kernel's :class:`ClassificationResult` (or a plain
            ``{pc: "D"/"N"}`` mapping); loads without a classification are
            tallied under the ``"other"`` class.
        """
        pc_classes = _pc_class_map(classification)
        for sm in self.sms:
            sm.kernel_name = launch_trace.kernel_name
            sm.pc_classes = pc_classes

        by_cta: Dict[int, List] = {}
        for warp in launch_trace.warps:
            by_cta.setdefault(warp.cta_id, []).append(warp)
        cta_ids = sorted(by_cta)
        self._cta_traces = by_cta
        self._scheduler = make_scheduler(
            self.cta_policy, cta_ids, self.config.num_sms)

        start_cycle = self.now
        with tracing.span("simulate.launch",
                          kernel=launch_trace.kernel_name,
                          ctas=len(cta_ids)) as sp:
            # initial fill: deal CTAs round-robin across SMs until the
            # per-SM slot limit is reached (matching hardware launch
            # behaviour)
            slots = self._max_ctas_per_sm(launch_trace)
            for _round in range(slots):
                for sm in self.sms:
                    if self._scheduler.remaining == 0:
                        break
                    if sm.resident_ctas >= slots:
                        continue
                    nxt = self._scheduler.next_for(sm.sm_id)
                    if nxt is None:
                        break
                    sm.assign_cta(nxt, by_cta[nxt])

            self._run_until_drained()
            sp.set(cycles=self.now - start_cycle)
        self._scheduler = None
        self._cta_traces = {}
        return self.stats

    def run_application(self, app_trace, classifications):
        """Replay every launch of an application, in order.

        ``classifications`` maps kernel name to its
        :class:`ClassificationResult`.
        """
        for launch in app_trace.launches:
            self.run_launch(launch, classifications.get(launch.kernel_name))
        return self.stats

    # -- main loop ------------------------------------------------------------------

    def _work_pending(self):
        if self._scheduler is not None and self._scheduler.remaining:
            return True
        if any(sm.ctas for sm in self.sms):
            return True
        return False

    def _run_until_drained(self):
        start = self.now
        while self._work_pending():
            self.now += 1
            if self.now - start > self.max_cycles:
                raise SimulationError(
                    "cycle budget exceeded (%d cycles)" % self.max_cycles,
                    state=self.debug_state())
            worked = False
            for req, dst in self.req_icnt.deliver_ready(self.now):
                self.partitions[dst].receive(req, self.now)
                worked = True
            for req, dst in self.resp_icnt.deliver_ready(self.now):
                self.sms[dst].receive_response(req, self.now)
                worked = True
            for partition in self.partitions:
                worked |= partition.cycle(self.now, self.resp_icnt)
            for sm in self.sms:
                worked |= sm.cycle(self.now)
            if not worked:
                self._idle_jump()
        self.stats.cycles = self.now
        self.stats.icnt_injected = (self.req_icnt.total_injected
                                    + self.resp_icnt.total_injected)
        self.stats.icnt_queue_delay = (self.req_icnt.total_queue_delay
                                       + self.resp_icnt.total_queue_delay)

    def debug_state(self):
        """Structured snapshot of every component's in-flight state, for
        deadlock and budget-exhaustion reports."""
        return {
            "cycle": self.now,
            "interconnects": [self.req_icnt.debug_state(),
                              self.resp_icnt.debug_state()],
            "partitions": [p.debug_state() for p in self.partitions],
            "sms": [sm.debug_state() for sm in self.sms],
            "unassigned_ctas": (self._scheduler.remaining
                                if self._scheduler is not None else 0),
        }

    def publish_metrics(self, registry=None, include_stats=True, **labels):
        """Publish the machine's telemetry into a metrics registry.

        Covers the aggregate :class:`SimStats` (via the
        :mod:`repro.obs.bridge` shim, when an ``app`` label is given)
        plus per-component series the aggregate cannot express:
        per-partition L2/DRAM counts, per-direction interconnect
        telemetry, and per-SM/L2 MSHR high-water marks.

        ``include_stats=False`` publishes only the per-component series
        — for callers (the experiment runner) that publish the
        aggregate separately through :func:`~repro.obs.bridge.publish_result`.
        """
        from ..obs import bridge
        from ..obs.metrics import get_registry

        reg = registry if registry is not None else get_registry()
        app = labels.get("app")
        if include_stats and app is not None:
            bridge.publish_sim(app, self.stats, reg)
        self.req_icnt.publish_metrics(reg, **labels)
        self.resp_icnt.publish_metrics(reg, **labels)
        for partition in self.partitions:
            partition.publish_metrics(reg, **labels)
        for sm in self.sms:
            sm.l1.mshr.publish_metrics(reg, level="l1", sm=str(sm.sm_id),
                                       **labels)
        return reg

    def _idle_jump(self):
        """Nothing happened this cycle: jump the clock to the next event."""
        candidates = []
        for icnt in (self.req_icnt, self.resp_icnt):
            t = icnt.next_event_cycle()
            if t is not None:
                candidates.append(t)
        for partition in self.partitions:
            t = partition.next_event_cycle(self.now)
            if t is not None:
                candidates.append(t)
        for sm in self.sms:
            t = sm.next_event_cycle(self.now)
            if t is not None:
                candidates.append(t)
        if not candidates:
            raise SimulationError(
                "deadlock at cycle %d: no component has pending events"
                % self.now, state=self.debug_state())
        target = max(self.now + 1, min(candidates))
        skipped = target - self.now - 1
        if skipped > 0:
            # account skipped time: total cycles advance, and SMs holding
            # resident warps remain "active but stalled" (Figure 4 denominator
            # and the issue-stall breakdown)
            for sm in self.sms:
                if sm.warps:
                    self.stats.active_sm_cycles += skipped
                    self.stats.issue_stall[sm.stall_reason()] += skipped
            self.now += skipped


def _pc_class_map(classification):
    """Normalize a classification argument into ``{pc: "D"/"N"}``."""
    if classification is None:
        return {}
    if isinstance(classification, dict):
        return dict(classification)
    if isinstance(classification, ClassificationResult):
        return {load.pc: str(load.load_class) for load in classification}
    raise TypeError("classification must be None, a dict or a "
                    "ClassificationResult")
