"""Set-associative cache with reservation semantics.

Models exactly the access outcomes the paper measures for the L1 data
cache (Section VI, Figure 3):

* **hit** — a valid line holds the block;
* **hit reserved** — the block's tag is present but its data is still in
  flight from a previous miss; the request merges into the MSHR entry;
* **miss** — a line and an MSHR entry are reserved and a fill request can
  be sent on;
* **reservation fail by tags** — every line in the set is itself waiting
  for in-flight data, so no line can be evicted;
* **reservation fail by MSHRs** — no MSHR entry (or merge slot) available;
* *reservation fail by interconnect* is decided by the caller, which owns
  the downstream port — the cache exposes a two-phase ``lookup`` /
  ``commit_*`` API so the caller can check the interconnect before
  committing a miss.

On a failed reservation the request is retried on a later cycle; the
caller counts the wasted cycles (that is Figure 3's data).

Writes use Fermi's L1 policy: write-through, no write-allocate, and
write-evict on a write hit.
"""

from __future__ import annotations

import enum
from typing import List

from .mshr import MSHRTable


class Outcome(enum.Enum):
    """Result of presenting one request to the cache on one cycle."""

    HIT = "hit"
    HIT_RESERVED = "hit_reserved"
    MISS = "miss"
    RSRV_FAIL_TAGS = "rsrv_fail_tags"
    RSRV_FAIL_MSHR = "rsrv_fail_mshr"
    RSRV_FAIL_ICNT = "rsrv_fail_icnt"

    @property
    def is_fail(self):
        return self in (Outcome.RSRV_FAIL_TAGS, Outcome.RSRV_FAIL_MSHR,
                        Outcome.RSRV_FAIL_ICNT)


class _State(enum.Enum):
    INVALID = 0
    RESERVED = 1   # tag allocated, fill in flight
    VALID = 2


class _Line:
    __slots__ = ("tag", "state", "last_use")

    def __init__(self):
        self.tag = -1
        self.state = _State.INVALID
        self.last_use = 0


class Cache:
    """A single cache instance (one SM's L1, or one L2 slice)."""

    def __init__(self, num_sets, assoc, line_size, mshr_entries, mshr_merge,
                 name="cache"):
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_size = line_size
        self.name = name
        self.mshr = MSHRTable(mshr_entries, mshr_merge)
        self._sets: List[List[_Line]] = [
            [_Line() for _ in range(assoc)] for _ in range(num_sets)]
        self._tick = 0

    # -- geometry ------------------------------------------------------------

    def _index(self, block_addr):
        return (block_addr // self.line_size) % self.num_sets

    def _tag(self, block_addr):
        return block_addr // self.line_size

    def _find(self, block_addr):
        tag = self._tag(block_addr)
        for line in self._sets[self._index(block_addr)]:
            if line.tag == tag and line.state is not _State.INVALID:
                return line
        return None

    # -- two-phase access ---------------------------------------------------------

    def lookup(self, block_addr):
        """Classify what an access would do, without side effects.

        Returns :class:`Outcome` — one of HIT, HIT_RESERVED, MISS (meaning a
        miss *can* be reserved), RSRV_FAIL_TAGS, RSRV_FAIL_MSHR.
        """
        line = self._find(block_addr)
        if line is not None:
            if line.state is _State.VALID:
                return Outcome.HIT
            # reserved: data in flight — merge if the MSHR entry has room
            if self.mshr.can_merge(block_addr):
                return Outcome.HIT_RESERVED
            return Outcome.RSRV_FAIL_MSHR
        if self._victim(block_addr) is None:
            return Outcome.RSRV_FAIL_TAGS
        if not self.mshr.can_allocate():
            return Outcome.RSRV_FAIL_MSHR
        return Outcome.MISS

    def _victim(self, block_addr):
        """The line a miss would evict: an invalid line, else the LRU valid
        line; ``None`` when every line in the set is reserved."""
        candidates = self._sets[self._index(block_addr)]
        best = None
        for line in candidates:
            if line.state is _State.INVALID:
                return line
            if line.state is _State.VALID:
                if best is None or line.last_use < best.last_use:
                    best = line
        return best

    def commit_hit(self, block_addr):
        self._tick += 1
        line = self._find(block_addr)
        line.last_use = self._tick

    def commit_hit_reserved(self, block_addr, request):
        self.mshr.merge(block_addr, request)

    def commit_miss(self, block_addr, request):
        """Reserve a line + MSHR entry for a fill; caller sends the request
        downstream."""
        self._tick += 1
        line = self._victim(block_addr)
        line.tag = self._tag(block_addr)
        line.state = _State.RESERVED
        line.last_use = self._tick
        self.mshr.allocate(block_addr, request)

    # -- fills / writes --------------------------------------------------------------

    def fill(self, block_addr):
        """A fill arrived: validate the line, return the waiting requests."""
        line = self._find(block_addr)
        if line is not None and line.state is _State.RESERVED:
            line.state = _State.VALID
            self._tick += 1
            line.last_use = self._tick
        return self.mshr.fill(block_addr)

    def write_touch(self, block_addr):
        """Apply write-evict semantics for a write-through store: a write
        that hits a valid line invalidates it (Fermi L1 behaviour)."""
        line = self._find(block_addr)
        if line is not None and line.state is _State.VALID:
            line.state = _State.INVALID
            line.tag = -1

    def contains_valid(self, block_addr):
        line = self._find(block_addr)
        return line is not None and line.state is _State.VALID

    def reserved_count(self):
        return sum(1 for s in self._sets for line in s
                   if line.state is _State.RESERVED)

    def reset(self):
        for s in self._sets:
            for line in s:
                line.tag = -1
                line.state = _State.INVALID
                line.last_use = 0
        # reset in place: obs instrumentation holds a reference to this
        # table, so rebinding would silently detach its metrics
        self.mshr.reset()
