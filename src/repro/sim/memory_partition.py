"""A memory partition: ROP pipe, L2 cache slice, and its DRAM channel.

"Apart from the per-SM private memory sub-system, SMs also share a large
level-2 cache which is partitioned and accessed by SMs via an
interconnection network.  ...  Each memory controller is associated with
one or more level-2 cache partitions." (Section III.)

The model per partition:

* requests delivered by the interconnect enter a ROP pipeline
  (``rop_latency`` cycles of fixed delay, Table II),
* the L2 slice services one request per cycle: hits respond after
  ``l2_hit_latency``; misses reserve a line + MSHR entry and queue on the
  DRAM channel.  When the slice cannot reserve (all ways in the set
  reserved, or MSHRs full) the head request retries next cycle —
  head-of-line blocking that propagates congestion upstream,
* the DRAM channel serves one 128 B burst every ``dram_burst_interval``
  cycles (bandwidth) with ``dram_latency`` pipeline delay,
* responses compete for the partition's response-network credits; without
  a credit they wait, adding to the "wasted cycles in memory partitions"
  the paper measures in Figures 5-7.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import List, Tuple

from .cache import Cache, Outcome
from .request import MemRequest


class MemoryPartition:
    """One L2 slice plus its DRAM channel."""

    def __init__(self, pid, config, stats):
        self.pid = pid
        self.config = config
        self.stats = stats
        self.l2 = Cache(
            num_sets=config.l2_num_sets,
            assoc=config.l2_assoc,
            line_size=config.l2_line_size,
            mshr_entries=config.l2_mshr_entries,
            mshr_merge=config.l2_mshr_merge,
            name="L2[%d]" % pid,
        )
        self._seq = count()
        # requests in the ROP pipe, keyed by the cycle they reach the L2
        self._input: List[Tuple[int, int, MemRequest]] = []
        # L2 hits waiting out the L2 access latency
        self._resp_heap: List[Tuple[int, int, MemRequest]] = []
        # responses ready to inject into the response network
        self._resp_ready: deque = deque()
        # DRAM channel
        self._dram_queue: deque = deque()
        self._dram_busy_until = 0
        self._dram_heap: List[Tuple[int, int, MemRequest]] = []
        # per-partition telemetry (SimStats only keeps GPU-wide sums;
        # these expose the partition imbalance the paper attributes
        # turnaround spread to)
        self.l2_hits = 0
        self.l2_misses = 0
        self.stall_cycles = 0
        self.dram_reads = 0
        self.dram_writes = 0
        self.requests_received = 0

    # -- ingress ---------------------------------------------------------------

    def receive(self, request, now):
        """A request was delivered by the request network."""
        ready = now + self.config.rop_latency
        self.requests_received += 1
        heapq.heappush(self._input, (ready, next(self._seq), request))

    # -- per-cycle work ----------------------------------------------------------

    def cycle(self, now, resp_icnt):
        """Advance the partition one cycle; returns True if it did work."""
        worked = False
        worked |= self._dram_complete(now)
        worked |= self._dram_issue(now)
        worked |= self._l2_service(now)
        worked |= self._collect_responses(now)
        worked |= self._inject_responses(now, resp_icnt)
        return worked

    def _l2_service(self, now):
        if not self._input or self._input[0][0] > now:
            return False
        ready, seq, req = heapq.heappop(self._input)
        if req.t_l2_in < 0:
            req.t_l2_in = now
            if req.inflight is not None:
                req.inflight.note_l2_in(now)

        if req.is_write:
            # write-through, no-allocate; keep the L2 coherent by evicting
            self.l2.write_touch(req.block_addr)
            self._dram_queue.append(req)
            return True

        outcome = self.l2.lookup(req.block_addr)
        if outcome is Outcome.HIT:
            self.l2.commit_hit(req.block_addr)
            self.stats.record_l2_result(True, req.load_class)
            self.l2_hits += 1
            req.t_l2_out = now + self.config.l2_hit_latency
            heapq.heappush(self._resp_heap,
                           (req.t_l2_out, next(self._seq), req))
        elif outcome is Outcome.HIT_RESERVED:
            self.l2.commit_hit_reserved(req.block_addr, req)
            self.stats.record_l2_result(True, req.load_class)
            self.l2_hits += 1
        elif outcome is Outcome.MISS:
            self.l2.commit_miss(req.block_addr, req)
            self.stats.record_l2_result(False, req.load_class)
            self.l2_misses += 1
            self._dram_queue.append(req)
        else:
            # reservation failure at the slice: head-of-line retry
            self.stats.l2_stall_cycles += 1
            self.stall_cycles += 1
            heapq.heappush(self._input, (now + 1, seq, req))
        return True

    def _dram_issue(self, now):
        if not self._dram_queue:
            return False
        start = max(now, self._dram_busy_until)
        if start > now:
            return False
        req = self._dram_queue.popleft()
        self._dram_busy_until = start + self.config.dram_burst_interval
        done = (start + self.config.dram_latency
                + self.config.dram_burst_interval)
        if req.is_write:
            self.stats.dram_writes += 1
            self.dram_writes += 1
        else:
            self.stats.dram_reads += 1
            self.dram_reads += 1
        heapq.heappush(self._dram_heap, (done, next(self._seq), req))
        return True

    def _dram_complete(self, now):
        worked = False
        while self._dram_heap and self._dram_heap[0][0] <= now:
            _t, _s, req = heapq.heappop(self._dram_heap)
            worked = True
            if req.is_write:
                continue
            waiters = self.l2.fill(req.block_addr)
            if req not in waiters:
                waiters.append(req)
            for waiter in waiters:
                waiter.t_l2_out = now
                self._resp_ready.append(waiter)
        return worked

    def _collect_responses(self, now):
        worked = False
        while self._resp_heap and self._resp_heap[0][0] <= now:
            _t, _s, req = heapq.heappop(self._resp_heap)
            self._resp_ready.append(req)
            worked = True
        return worked

    def _inject_responses(self, now, resp_icnt):
        worked = False
        while self._resp_ready and resp_icnt.can_inject(self.pid):
            req = self._resp_ready.popleft()
            resp_icnt.inject(req, self.pid, req.sm_id, now)
            worked = True
        return worked

    # -- observability -----------------------------------------------------------

    def publish_metrics(self, registry, **labels):
        """Publish this partition's telemetry (labelled ``partition=N``
        plus caller labels — per-partition attribution SimStats' global
        sums cannot provide)."""
        pid = str(self.pid)
        registry.counter(
            "sim.partition.requests",
            "requests delivered to each memory partition").inc(
            self.requests_received, partition=pid, **labels)
        registry.counter(
            "sim.partition.l2_hits",
            "L2 slice hits (incl. hit-reserved) per partition").inc(
            self.l2_hits, partition=pid, **labels)
        registry.counter(
            "sim.partition.l2_misses",
            "L2 slice misses per partition").inc(
            self.l2_misses, partition=pid, **labels)
        registry.counter(
            "sim.partition.stall_cycles",
            "head-of-line retry cycles at the L2 slice").inc(
            self.stall_cycles, partition=pid, **labels)
        registry.counter(
            "sim.partition.dram_reads",
            "DRAM read bursts per channel").inc(
            self.dram_reads, partition=pid, **labels)
        registry.counter(
            "sim.partition.dram_writes",
            "DRAM write bursts per channel").inc(
            self.dram_writes, partition=pid, **labels)
        self.l2.mshr.publish_metrics(registry, level="l2",
                                     partition=pid, **labels)

    # -- idle-jump support -------------------------------------------------------

    def next_event_cycle(self, now):
        """Earliest future cycle at which this partition can make progress,
        or ``None`` when it has no pending work at all."""
        if self._resp_ready:
            return now + 1  # retrying injection every cycle
        times = []
        if self._input:
            times.append(self._input[0][0])
        if self._resp_heap:
            times.append(self._resp_heap[0][0])
        if self._dram_heap:
            times.append(self._dram_heap[0][0])
        if self._dram_queue:
            times.append(max(self._dram_busy_until, now + 1))
        if not times:
            return None
        return max(now + 1, min(times))

    @property
    def busy(self):
        return bool(self._input or self._resp_heap or self._resp_ready
                    or self._dram_queue or self._dram_heap)

    def debug_state(self):
        """Queue depths and in-flight L2 misses for deadlock reports."""
        return {"partition": self.pid,
                "rop_queue": len(self._input),
                "l2_mshr": self.l2.mshr.debug_state(),
                "dram_queue": len(self._dram_queue),
                "dram_in_flight": len(self._dram_heap),
                "dram_busy_until": self._dram_busy_until,
                "resp_wait_latency": len(self._resp_heap),
                "resp_wait_credit": len(self._resp_ready)}

    def reset_caches(self):
        self.l2.reset()
