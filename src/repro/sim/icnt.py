"""Interconnection network between SMs and memory partitions.

A credit-based crossbar abstraction:

* each source holds a fixed number of credits; injecting consumes one and
  the credit returns when the payload is delivered.  A source with no
  credits cannot inject — at the L1 this is the paper's *reservation fail
  by interconnection*;
* each destination port accepts one payload per cycle; payloads racing to
  the same port serialize, which models the congestion and the
  "imbalanced service time in memory partitions" of Figures 5-7.

Deliveries are kept in a heap, so the network costs O(log n) per payload
instead of per-cycle queue shuffling.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import List, Tuple


class Interconnect:
    """One direction of the network (requests or responses)."""

    def __init__(self, num_sources, num_dests, latency, credits_per_source,
                 name="icnt"):
        self.latency = latency
        self.name = name
        self.num_sources = num_sources
        self.num_dests = num_dests
        self._credits = [credits_per_source] * num_sources
        self._next_free = [0] * num_dests
        self._heap: List[Tuple[int, int, object, int, int]] = []
        self._seq = count()
        # statistics
        self.total_injected = 0
        self.total_queue_delay = 0
        self.max_in_flight = 0

    # -- injection ------------------------------------------------------------

    def can_inject(self, src):
        return self._credits[src] > 0

    def inject(self, payload, src, dst, cycle):
        """Send a payload; caller must have checked :meth:`can_inject`."""
        if self._credits[src] <= 0:
            raise RuntimeError("%s: source %d out of credits"
                               % (self.name, src))
        self._credits[src] -= 1
        arrival = cycle + self.latency
        deliver = max(arrival, self._next_free[dst] + 1)
        self._next_free[dst] = deliver
        self.total_injected += 1
        self.total_queue_delay += deliver - arrival
        heapq.heappush(self._heap, (deliver, next(self._seq), payload,
                                    src, dst))
        if len(self._heap) > self.max_in_flight:
            self.max_in_flight = len(self._heap)

    # -- delivery ---------------------------------------------------------------

    def deliver_ready(self, cycle):
        """Pop every payload whose delivery time has arrived.

        Returns a list of ``(payload, dst)``; the source's credit is
        returned as the payload leaves the network.
        """
        out = []
        heap = self._heap
        while heap and heap[0][0] <= cycle:
            _t, _s, payload, src, dst = heapq.heappop(heap)
            self._credits[src] += 1
            out.append((payload, dst))
        return out

    def next_event_cycle(self):
        """Cycle of the earliest pending delivery, or ``None`` when idle."""
        return self._heap[0][0] if self._heap else None

    @property
    def in_flight(self):
        return len(self._heap)

    def mean_queue_delay(self):
        if not self.total_injected:
            return 0.0
        return self.total_queue_delay / self.total_injected

    def publish_metrics(self, registry, **labels):
        """Publish this direction's telemetry (labelled by ``direction``
        via the network's name, plus caller-supplied labels)."""
        registry.counter(
            "sim.icnt.injections",
            "payloads injected per network direction").inc(
            self.total_injected, direction=self.name, **labels)
        registry.counter(
            "sim.icnt.queue_delay_cycles_by_direction",
            "destination-port serialization delay per direction").inc(
            self.total_queue_delay, direction=self.name, **labels)
        registry.gauge(
            "sim.icnt.max_in_flight",
            "high-water mark of payloads in the network").set(
            self.max_in_flight, direction=self.name, **labels)

    def debug_state(self):
        """Credit and in-flight state for deadlock reports."""
        return {"name": self.name,
                "in_flight": len(self._heap),
                "next_delivery": self._heap[0][0] if self._heap else None,
                "credits": list(self._credits)}
