"""Cycle-level GPU timing simulator (the GPGPU-Sim substitute).

Replays warp traces from :mod:`repro.emulator` through a model of the
paper's simulated hardware (Table II): SIMT cores with loose round-robin
scheduling, a coalescer, L1 caches with MSHRs and the three
reservation-failure modes, a credit-based interconnect, sliced L2 caches
and banked DRAM channels.
"""

from .cache import Cache, Outcome
from .coalescer import coalesce_addresses, coalescing_degree
from .config import TESLA_C2050, TINY, GPUConfig
from .core import SMCore
from .cta_scheduler import (
    ClusteredScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from .gpu import GPU, SimulationError
from .icnt import Interconnect
from .memory_partition import MemoryPartition
from .mshr import MSHRTable
from .request import MemRequest
from .stats import CLASS_LABELS, ClassStats, PCBucket, SimStats, class_label

__all__ = [
    "Cache",
    "Outcome",
    "coalesce_addresses",
    "coalescing_degree",
    "TESLA_C2050",
    "TINY",
    "GPUConfig",
    "SMCore",
    "ClusteredScheduler",
    "RoundRobinScheduler",
    "make_scheduler",
    "GPU",
    "SimulationError",
    "Interconnect",
    "MemoryPartition",
    "MSHRTable",
    "MemRequest",
    "CLASS_LABELS",
    "ClassStats",
    "PCBucket",
    "SimStats",
    "class_label",
]
