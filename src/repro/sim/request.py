"""Memory request objects that flow through the modeled hierarchy."""

from __future__ import annotations



class MemRequest:
    """One 128 B-granular memory transaction.

    A warp-level load/store is coalesced into one or more requests (one per
    distinct 128 B block touched).  The request keeps the timestamps the
    paper's turnaround-time breakdowns (Figures 5-7) are computed from:

    ``t_issue``
        warp instruction issued to the LD/ST unit,
    ``t_accept``
        the L1 accepted the request (hit, hit-reserved, or miss reserved) —
        the end of its reservation-fail stalls,
    ``t_l2_in``
        delivered to its memory partition,
    ``t_l2_out``
        data produced by the partition (L2 hit or DRAM return),
    ``t_back``
        data written back at the SM.
    """

    __slots__ = ("block_addr", "pc", "load_class", "is_write", "is_atomic",
                 "is_prefetch", "sm_id", "partition", "inflight",
                 "t_issue", "t_accept", "t_l2_in", "t_l2_out", "t_back")

    def __init__(self, block_addr, pc, load_class, is_write=False,
                 is_atomic=False, sm_id=0, inflight=None,
                 is_prefetch=False):
        self.block_addr = block_addr
        self.pc = pc
        self.load_class = load_class   # "D", "N", or None (stores / other)
        self.is_write = is_write
        self.is_atomic = is_atomic
        self.is_prefetch = is_prefetch
        self.sm_id = sm_id
        self.partition = -1
        self.inflight = inflight       # owning InflightMemInst (loads/atomics)
        self.t_issue = -1
        self.t_accept = -1
        self.t_l2_in = -1
        self.t_l2_out = -1
        self.t_back = -1

    @property
    def needs_response(self):
        return not self.is_write

    def __repr__(self):
        kind = "st" if self.is_write else ("atom" if self.is_atomic else "ld")
        return "MemRequest(%s %#x pc=%#x cls=%s)" % (
            kind, self.block_addr, self.pc, self.load_class)
