"""The memory-access coalescer.

"GPUs coalesce data accesses from multiple threads in a warp if they all
access consecutive memory locations.  The coalescer sits before the L1
cache and hence each coalesced request generates one memory access request
to the L1 cache." (Section VI.)

Following Fermi's global-memory transaction rules, lane addresses are
reduced to the set of distinct 128 B-aligned blocks they touch; each block
becomes one :class:`~repro.sim.request.MemRequest`.  A perfectly coalesced
warp (32 consecutive 4 B words) yields a single request; a fully scattered
warp yields up to 32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


def coalesce_addresses(addresses, line_size=128, access_size=4):
    """Reduce per-lane byte addresses to distinct block base addresses.

    Parameters
    ----------
    addresses:
        Iterable of ``(lane, byte_address)`` pairs (the trace format).
    line_size:
        Coalescing granularity; 128 B on Fermi and in the paper's analysis.
    access_size:
        Per-thread access width; accesses that straddle a block boundary
        touch two blocks (rare for naturally aligned data).

    Returns
    -------
    list of int
        Sorted distinct block base addresses, one per memory request.
    """
    blocks = set()
    for _lane, addr in addresses:
        first = addr // line_size
        last = (addr + access_size - 1) // line_size
        blocks.add(first * line_size)
        if last != first:
            blocks.add(last * line_size)
    return sorted(blocks)


def coalescing_degree(addresses, line_size=128, access_size=4):
    """(num_requests, num_active_lanes) for one warp access — the two
    quantities Figure 2 reports per load class."""
    lanes = 0
    blocks = set()
    for _lane, addr in addresses:
        lanes += 1
        first = addr // line_size
        last = (addr + access_size - 1) // line_size
        blocks.add(first)
        if last != first:
            blocks.add(last)
    return len(blocks), lanes


@dataclass
class CoalescingSummary:
    """Per-class coalescing aggregates computed directly from a trace.

    The timing simulator accumulates the same quantities into
    :class:`~repro.sim.stats.ClassStats` while replaying; this summary
    needs no timing model, so the metrics bridge and the golden-stats
    fixtures can report coalescing behaviour from emulation alone.
    """

    warp_loads: Dict[str, int] = field(
        default_factory=lambda: {"D": 0, "N": 0, "other": 0})
    requests: Dict[str, int] = field(
        default_factory=lambda: {"D": 0, "N": 0, "other": 0})
    active_threads: Dict[str, int] = field(
        default_factory=lambda: {"D": 0, "N": 0, "other": 0})
    #: warp loads that produced more than one memory request.
    uncoalesced: Dict[str, int] = field(
        default_factory=lambda: {"D": 0, "N": 0, "other": 0})

    def record(self, load_class, n_requests, n_lanes):
        label = load_class if load_class in ("D", "N") else "other"
        self.warp_loads[label] += 1
        self.requests[label] += n_requests
        self.active_threads[label] += n_lanes
        if n_requests > 1:
            self.uncoalesced[label] += 1

    def requests_per_warp(self, label):
        loads = self.warp_loads[label]
        return self.requests[label] / loads if loads else 0.0

    def uncoalesced_fraction(self, label):
        loads = self.warp_loads[label]
        return self.uncoalesced[label] / loads if loads else 0.0


def summarize_trace(app_trace, classifications=None, line_size=128):
    """Coalesce every global-load warp instruction of an application
    trace, bucketed by load class.

    ``classifications`` maps kernel name to a
    :class:`~repro.core.classifier.ClassificationResult` (or a plain
    ``{pc: class}`` dict); loads without one land in ``"other"``.  The
    per-thread access width comes from each instruction
    (``inst.access_bytes``), matching the timing simulator's coalescer
    invocation exactly.
    """
    from ..ptx.isa import Space

    summary = CoalescingSummary()
    for launch in app_trace:
        pc_classes = {}
        if classifications is not None:
            result = classifications.get(launch.kernel_name)
            if result is not None:
                if isinstance(result, dict):
                    pc_classes = dict(result)
                else:
                    pc_classes = {ld.pc: str(ld.load_class) for ld in result}
        for _warp, op in launch.iter_memory_ops(space=Space.GLOBAL,
                                                loads_only=True):
            if not op.addresses:
                continue
            n_requests, n_lanes = coalescing_degree(
                op.addresses, line_size=line_size,
                access_size=op.inst.access_bytes)
            summary.record(pc_classes.get(op.pc), n_requests, n_lanes)
    return summary
