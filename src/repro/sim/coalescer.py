"""The memory-access coalescer.

"GPUs coalesce data accesses from multiple threads in a warp if they all
access consecutive memory locations.  The coalescer sits before the L1
cache and hence each coalesced request generates one memory access request
to the L1 cache." (Section VI.)

Following Fermi's global-memory transaction rules, lane addresses are
reduced to the set of distinct 128 B-aligned blocks they touch; each block
becomes one :class:`~repro.sim.request.MemRequest`.  A perfectly coalesced
warp (32 consecutive 4 B words) yields a single request; a fully scattered
warp yields up to 32.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def coalesce_addresses(addresses, line_size=128, access_size=4):
    """Reduce per-lane byte addresses to distinct block base addresses.

    Parameters
    ----------
    addresses:
        Iterable of ``(lane, byte_address)`` pairs (the trace format).
    line_size:
        Coalescing granularity; 128 B on Fermi and in the paper's analysis.
    access_size:
        Per-thread access width; accesses that straddle a block boundary
        touch two blocks (rare for naturally aligned data).

    Returns
    -------
    list of int
        Sorted distinct block base addresses, one per memory request.
    """
    blocks = set()
    for _lane, addr in addresses:
        first = addr // line_size
        last = (addr + access_size - 1) // line_size
        blocks.add(first * line_size)
        if last != first:
            blocks.add(last * line_size)
    return sorted(blocks)


def coalescing_degree(addresses, line_size=128, access_size=4):
    """(num_requests, num_active_lanes) for one warp access — the two
    quantities Figure 2 reports per load class."""
    lanes = 0
    blocks = set()
    for _lane, addr in addresses:
        lanes += 1
        first = addr // line_size
        last = (addr + access_size - 1) // line_size
        blocks.add(first)
        if last != first:
            blocks.add(last)
    return len(blocks), lanes
