"""The memory-access coalescer.

"GPUs coalesce data accesses from multiple threads in a warp if they all
access consecutive memory locations.  The coalescer sits before the L1
cache and hence each coalesced request generates one memory access request
to the L1 cache." (Section VI.)

Following Fermi's global-memory transaction rules, lane addresses are
reduced to the set of distinct 128 B-aligned blocks they touch; each block
becomes one :class:`~repro.sim.request.MemRequest`.  A perfectly coalesced
warp (32 consecutive 4 B words) yields a single request; a fully scattered
warp yields up to 32.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .config import LINE_BYTES


def coalesce_addresses(addresses, line_size=LINE_BYTES, access_size=4):
    """Reduce per-lane byte addresses to distinct block base addresses.

    Parameters
    ----------
    addresses:
        Iterable of ``(lane, byte_address)`` pairs (the trace format).
    line_size:
        Coalescing granularity; 128 B on Fermi and in the paper's analysis.
    access_size:
        Per-thread access width; accesses that straddle a block boundary
        touch two blocks (rare for naturally aligned data).

    Returns
    -------
    list of int
        Sorted distinct block base addresses, one per memory request.
    """
    blocks = set()
    for _lane, addr in addresses:
        first = addr // line_size
        last = (addr + access_size - 1) // line_size
        blocks.add(first * line_size)
        if last != first:
            blocks.add(last * line_size)
    return sorted(blocks)


def coalescing_degree(addresses, line_size=LINE_BYTES, access_size=4):
    """(num_requests, num_active_lanes) for one warp access — the two
    quantities Figure 2 reports per load class."""
    lanes = 0
    blocks = set()
    for _lane, addr in addresses:
        lanes += 1
        first = addr // line_size
        last = (addr + access_size - 1) // line_size
        blocks.add(first)
        if last != first:
            blocks.add(last)
    return len(blocks), lanes


def table_degrees(table, access_sizes, line_size=LINE_BYTES):
    """Vectorized :func:`coalescing_degree` over a columnar launch's
    :meth:`~repro.emulator.columnar.ColumnarLaunchTrace.memory_table`.

    ``access_sizes`` is a per-row access-width array (or a scalar).
    Returns ``(n_requests, n_lanes)`` int64 arrays, one entry per table
    row; rows with no recorded accesses get 0 requests.
    """
    acount = table["acount"].astype(np.int64)
    nrows = len(acount)
    addrs = table["addrs"].astype(np.int64)
    row = np.repeat(np.arange(nrows, dtype=np.int64), acount)
    acc = np.asarray(access_sizes, dtype=np.int64)
    if acc.ndim:
        acc = np.repeat(acc, acount)
    first = addrs // line_size
    last = (addrs + acc - 1) // line_size
    # distinct (row, block) pairs, counting boundary-straddling accesses
    # toward both blocks — identical to coalesce_addresses' set logic
    rows2 = np.concatenate([row, row])
    blocks2 = np.concatenate([first, last])
    if not len(rows2):
        return np.zeros(nrows, dtype=np.int64), acount
    order = np.lexsort((blocks2, rows2))
    r = rows2[order]
    b = blocks2[order]
    fresh = np.empty(len(r), dtype=bool)
    fresh[0] = True
    fresh[1:] = (r[1:] != r[:-1]) | (b[1:] != b[:-1])
    n_req = np.bincount(r[fresh], minlength=nrows)
    return n_req, acount


def class_codes(launch, pc_classes):
    """Per-instruction D/N/other codes (0/1/2) for vectorized bucketing
    of a launch's memory table by load class."""
    from ..emulator.columnar import _PC_SHIFT

    codes = np.full(len(launch.instructions), 2, dtype=np.int8)
    for pc, cls in pc_classes.items():
        idx = pc >> _PC_SHIFT
        if 0 <= idx < len(codes):
            codes[idx] = 0 if cls == "D" else 1 if cls == "N" else 2
    return codes


_CLASS_LABELS = ((0, "D"), (1, "N"), (2, "other"))


@dataclass
class CoalescingSummary:
    """Per-class coalescing aggregates computed directly from a trace.

    The timing simulator accumulates the same quantities into
    :class:`~repro.sim.stats.ClassStats` while replaying; this summary
    needs no timing model, so the metrics bridge and the golden-stats
    fixtures can report coalescing behaviour from emulation alone.
    """

    warp_loads: Dict[str, int] = field(
        default_factory=lambda: {"D": 0, "N": 0, "other": 0})
    requests: Dict[str, int] = field(
        default_factory=lambda: {"D": 0, "N": 0, "other": 0})
    active_threads: Dict[str, int] = field(
        default_factory=lambda: {"D": 0, "N": 0, "other": 0})
    #: warp loads that produced more than one memory request.
    uncoalesced: Dict[str, int] = field(
        default_factory=lambda: {"D": 0, "N": 0, "other": 0})

    def record(self, load_class, n_requests, n_lanes):
        label = load_class if load_class in ("D", "N") else "other"
        self.warp_loads[label] += 1
        self.requests[label] += n_requests
        self.active_threads[label] += n_lanes
        if n_requests > 1:
            self.uncoalesced[label] += 1

    def requests_per_warp(self, label):
        loads = self.warp_loads[label]
        return self.requests[label] / loads if loads else 0.0

    def uncoalesced_fraction(self, label):
        loads = self.warp_loads[label]
        return self.uncoalesced[label] / loads if loads else 0.0


def summarize_trace(app_trace, classifications=None, line_size=LINE_BYTES):
    """Coalesce every global-load warp instruction of an application
    trace, bucketed by load class.

    ``classifications`` maps kernel name to a
    :class:`~repro.core.classifier.ClassificationResult` (or a plain
    ``{pc: class}`` dict); loads without one land in ``"other"``.  The
    per-thread access width comes from each instruction
    (``inst.access_bytes``), matching the timing simulator's coalescer
    invocation exactly.
    """
    from ..emulator.columnar import _PC_SHIFT
    from ..ptx.isa import Space

    summary = CoalescingSummary()
    for launch in app_trace:
        pc_classes = {}
        if classifications is not None:
            result = classifications.get(launch.kernel_name)
            if result is not None:
                if isinstance(result, dict):
                    pc_classes = dict(result)
                else:
                    pc_classes = {ld.pc: str(ld.load_class) for ld in result}
        if not hasattr(launch, "memory_table"):
            # legacy record-trace path
            for _warp, op in launch.iter_memory_ops(space=Space.GLOBAL,
                                                    loads_only=True):
                if not op.addresses:
                    continue
                n_requests, n_lanes = coalescing_degree(
                    op.addresses, line_size=line_size,
                    access_size=op.inst.access_bytes)
                summary.record(pc_classes.get(op.pc), n_requests, n_lanes)
            continue
        table = launch.memory_table(space=Space.GLOBAL, loads_only=True)
        if table is None:
            continue
        idx = table["pc"] >> _PC_SHIFT
        access = np.asarray([inst.access_bytes
                             for inst in launch.instructions],
                            dtype=np.int64)[idx]
        n_req, n_lanes = table_degrees(table, access, line_size=line_size)
        labels = class_codes(launch, pc_classes)[idx]
        sel = n_lanes > 0  # the record path skips empty-address ops
        for code, name in _CLASS_LABELS:
            m = sel & (labels == code)
            count = int(m.sum())
            if not count:
                continue
            summary.warp_loads[name] += count
            summary.requests[name] += int(n_req[m].sum())
            summary.active_threads[name] += int(n_lanes[m].sum())
            summary.uncoalesced[name] += int((n_req[m] > 1).sum())
    return summary
