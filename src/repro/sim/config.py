"""Simulator configuration (the reproduction's Table II).

The defaults mirror the paper's GPGPU-Sim v3.2.2 / Tesla C2050 setup where a
parameter is reported (Table II): 14 SMs, 32-wide SIMT, 16 KB / 128 B-line /
4-way L1D with 64 MSHR entries, a unified 768 KB / 128 B-line / 8-way L2,
ROP latency 120 cycles, DRAM latency 100 cycles.  Parameters the paper does
not report (queue depths, interconnect latency, unit latencies) use values
taken from GPGPU-Sim's Fermi configuration files and are documented inline.

All latencies are in SM core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

#: The memory-line granularity (bytes) shared by every layer that reasons
#: about spatial locality: the coalescer's transaction size, the L1/L2
#: line-size defaults below, the trace-level locality and heat-map
#: analyses, and the trace transforms in :mod:`repro.optim`.  128 B is
#: Fermi's global-memory transaction size and the paper's block size
#: (Sections VI, VIII); this constant is the single source of truth —
#: per-run overrides flow through :attr:`GPUConfig.l1_line_size` or the
#: explicit ``line_bytes``/``line_size``/``block_size`` parameters of the
#: consumers.
LINE_BYTES = 128


@dataclass(frozen=True)
class GPUConfig:
    """Every tunable of the timing model, with Tesla C2050-like defaults."""

    # -- SM organization (Table II / Section III) ---------------------------
    num_sms: int = 14
    warp_size: int = 32
    max_threads_per_sm: int = 1536
    max_ctas_per_sm: int = 8
    shared_mem_per_sm: int = 48 * 1024
    #: instructions the SM may issue per cycle (Fermi dual-issue).
    issue_width: int = 2
    #: warp scheduling policy: "lrr" (loose round-robin, the paper's
    #: baseline) or "gto" (greedy-then-oldest).
    warp_scheduler: str = "lrr"

    # -- functional-unit timing -----------------------------------------------
    #: SP initiation interval / result latency (GPGPU-Sim int/fp default).
    sp_initiation_interval: int = 1
    sp_latency: int = 8
    #: SFU executes transcendental ops at quarter throughput.
    sfu_initiation_interval: int = 4
    sfu_latency: int = 20
    #: control instructions (bra/bar/exit) occupy only the issue stage.
    ctrl_latency: int = 1

    # -- L1 data cache (Table II: 16KB, 128B line, 4-way, 64 MSHR) ----------
    l1_size: int = 16 * 1024
    l1_line_size: int = LINE_BYTES
    l1_assoc: int = 4
    l1_mshr_entries: int = 64
    #: max requests merged into one MSHR entry (GPGPU-Sim default 8).
    l1_mshr_merge: int = 8
    #: L1 hit latency (pipelined; GPGPU-Sim Fermi L1 ~ a few 10s of cycles).
    l1_hit_latency: int = 28
    #: shared-memory access latency (conflict-free).
    shared_latency: int = 24
    #: shared-memory banks (Fermi: 32 banks, 4-byte wide); an n-way bank
    #: conflict serializes into n port cycles.
    shared_banks: int = 32
    shared_bank_width: int = 4
    #: constant/parameter cache latency.
    const_latency: int = 8
    #: memory instructions the LD/ST unit can have queued.
    ldst_queue_size: int = 8
    #: L1 prefetcher: "none", "stride" (per-PC stride prediction, helps
    #: deterministic loads) or "indirect_oracle" (Section X.A: prefetches
    #: the upcoming non-deterministic load's blocks with a perfect
    #: indirect-address predictor — an upper bound on schemes like
    #: Lakshminarayana & Kim's spare-register-aware prefetching [16]).
    prefetcher: str = "none"
    #: trace ops to look ahead for the indirect-oracle prefetcher.
    prefetch_lookahead: int = 8
    #: pending-prefetch queue capacity per SM (oldest dropped).
    prefetch_queue_size: int = 16

    # -- interconnect -------------------------------------------------------------
    #: one-way zero-load latency of the SM <-> partition crossbar.
    icnt_latency: int = 12
    #: per-SM in-flight request budget; exhaustion is the paper's
    #: "reservation fail by interconnection".
    icnt_credits_per_sm: int = 16
    #: per-partition in-flight response budget.
    icnt_credits_per_partition: int = 16

    # -- L2 cache (Table II: unified 768KB, 128B line, 8-way, 32 MSHR) -------
    num_partitions: int = 6
    l2_size: int = 768 * 1024
    l2_line_size: int = LINE_BYTES
    l2_assoc: int = 8
    l2_mshr_entries: int = 32
    l2_mshr_merge: int = 8
    l2_hit_latency: int = 20
    #: raster-operations pipeline depth: minimum icnt->L2 latency (Table II).
    rop_latency: int = 120

    # -- DRAM (Table II: GDDR5, latency 100) -------------------------------------
    dram_latency: int = 100
    #: cycles of channel occupancy per 128 B burst (bandwidth model).
    dram_burst_interval: int = 4

    # ------------------------------------------------------------------ derived

    @property
    def l1_num_sets(self):
        return self.l1_size // (self.l1_line_size * self.l1_assoc)

    @property
    def l2_slice_size(self):
        return self.l2_size // self.num_partitions

    @property
    def l2_num_sets(self):
        return self.l2_slice_size // (self.l2_line_size * self.l2_assoc)

    @property
    def unloaded_miss_latency(self):
        """Zero-contention turnaround of an L1-missing load (one request).

        This is the "un-loaded memory system latency" bar of Figure 5:
        request crosses the interconnect, traverses the ROP pipe, misses in
        L2, pays DRAM latency + one burst, and the data returns.
        """
        return (self.icnt_latency + self.rop_latency + self.l2_hit_latency
                + self.dram_latency + self.dram_burst_interval
                + self.icnt_latency)

    @property
    def unloaded_l2_hit_latency(self):
        """Zero-contention turnaround of an L1 miss that hits in L2."""
        return (self.icnt_latency + self.rop_latency + self.l2_hit_latency
                + self.icnt_latency)

    def scaled(self, **overrides):
        """A copy with overrides — convenience for tests and ablations."""
        return replace(self, **overrides)

    def validate(self):
        if self.l1_size % (self.l1_line_size * self.l1_assoc):
            raise ValueError("L1 size must be a multiple of line*assoc")
        if self.l2_slice_size % (self.l2_line_size * self.l2_assoc):
            raise ValueError("L2 slice size must be a multiple of line*assoc")
        if self.num_sms < 1 or self.num_partitions < 1:
            raise ValueError("need at least one SM and one partition")
        if self.warp_scheduler not in ("lrr", "gto"):
            raise ValueError("warp_scheduler must be 'lrr' or 'gto'")
        if self.prefetcher not in ("none", "stride", "indirect_oracle"):
            raise ValueError(
                "prefetcher must be 'none', 'stride' or 'indirect_oracle'")
        return self


def knob_names():
    """Every sweepable :class:`GPUConfig` field name, declaration order.

    This is the authoritative knob enumeration consumed by the sweep
    engine (:mod:`repro.sweep`): a sweep axis or fixed override must
    name one of these fields (or one of the engine's structural knobs,
    which are not config fields — see ``repro.sweep.spec``).
    """
    return tuple(f.name for f in fields(GPUConfig))


def check_knobs(overrides):
    """Validate sweep/ablation overrides against :class:`GPUConfig`.

    Checks that every name is a real config field and that every value
    has the field's type (bools are rejected for int fields — JSON
    ``true`` silently coercing to ``1`` would be a confusing sweep
    axis).  Returns the overrides as a plain dict; raises
    :class:`ValueError` with the offending name otherwise.  Structural
    consistency (set counts, divisibility) is still checked by
    :meth:`GPUConfig.validate` once a full config is assembled.
    """
    defaults = GPUConfig()
    valid = set(knob_names())
    checked = {}
    for name in sorted(overrides):
        value = overrides[name]
        if name not in valid:
            raise ValueError(
                "unknown sim-config knob %r (valid knobs: %s)"
                % (name, ", ".join(knob_names())))
        expected = type(getattr(defaults, name))
        if isinstance(value, bool) or not isinstance(value, expected):
            raise ValueError(
                "knob %r expects %s, got %r"
                % (name, expected.__name__, value))
        checked[name] = value
    return checked


#: The paper's simulated configuration (Tesla C2050).
TESLA_C2050 = GPUConfig().validate()

#: A small configuration for fast unit tests.
TINY = GPUConfig(
    num_sms=2,
    max_threads_per_sm=512,
    max_ctas_per_sm=4,
    l1_size=2 * 1024,
    l1_mshr_entries=8,
    num_partitions=2,
    l2_size=32 * 1024,
    l2_mshr_entries=8,
    icnt_credits_per_sm=8,
).validate()
