"""Statistics collected by the timing simulator.

Everything the paper's figures report is accumulated here:

* per-load-class (D/N) request counts → Figure 2,
* L1 cache-cycle outcome counters → Figure 3,
* functional-unit busy cycles → Figure 4,
* turnaround-time component sums per class → Figure 5,
* per-(PC, request-count) turnaround records → Figures 6 and 7,
* per-class L1/L2 hit-miss counts → Figure 8.

Classes are keyed by the strings ``"D"``, ``"N"`` and ``"other"`` (stores,
atomics or loads with no classification available).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .cache import Outcome

CLASS_LABELS = ("D", "N", "other")


def class_label(load_class):
    """Normalize a load-class value to one of :data:`CLASS_LABELS`."""
    if load_class in ("D", "N"):
        return load_class
    return "other"


@dataclass
class ClassStats:
    """Aggregates for one load class (Figures 2, 5 and 8)."""

    # Figure 2: coalescing behaviour
    warp_insts: int = 0
    requests: int = 0
    active_threads: int = 0

    # Figure 8: cache behaviour (accepted accesses only)
    l1_hit: int = 0
    l1_hit_reserved: int = 0
    l1_miss: int = 0
    l2_hit: int = 0
    l2_miss: int = 0

    # Figure 5: turnaround components (sums over completed load warps)
    completed: int = 0
    turnaround_sum: int = 0
    wait_prev_sum: int = 0      # issue -> first request accepted
    wait_cur_sum: int = 0       # first -> last request accepted

    # -- derived -----------------------------------------------------------

    def requests_per_warp(self):
        return self.requests / self.warp_insts if self.warp_insts else 0.0

    def requests_per_active_thread(self):
        return self.requests / self.active_threads if self.active_threads else 0.0

    def l1_accesses(self):
        return self.l1_hit + self.l1_hit_reserved + self.l1_miss

    def l1_miss_ratio(self):
        total = self.l1_accesses()
        return self.l1_miss / total if total else 0.0

    def l2_miss_ratio(self):
        total = self.l2_hit + self.l2_miss
        return self.l2_miss / total if total else 0.0

    def mean_turnaround(self):
        return self.turnaround_sum / self.completed if self.completed else 0.0

    def mean_wait_prev(self):
        return self.wait_prev_sum / self.completed if self.completed else 0.0

    def mean_wait_cur(self):
        return self.wait_cur_sum / self.completed if self.completed else 0.0

    def merge(self, other):
        for name in ("warp_insts", "requests", "active_threads", "l1_hit",
                     "l1_hit_reserved", "l1_miss", "l2_hit", "l2_miss",
                     "completed", "turnaround_sum", "wait_prev_sum",
                     "wait_cur_sum"):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class PCBucket:
    """Turnaround records for one (kernel, pc) at one request count —
    the raw material for Figures 6 and 7."""

    count: int = 0
    turnaround_sum: int = 0
    wait_first_sum: int = 0     # issue -> first acceptance
    gap_l1d_sum: int = 0        # first -> last acceptance spread
    gap_icnt_l2_sum: int = 0    # extra spread accumulated SM -> L2
    gap_l2_icnt_sum: int = 0    # extra spread accumulated L2 -> SM

    def mean(self, attr):
        return getattr(self, attr) / self.count if self.count else 0.0


@dataclass
class SimStats:
    """Top-level statistics container, accumulated across launches."""

    classes: Dict[str, ClassStats] = field(
        default_factory=lambda: {label: ClassStats()
                                 for label in CLASS_LABELS})
    #: L1 cache-cycle outcomes: {outcome: cycles}; every cycle the L1 port
    #: processed (or retried) a request counts once (Figure 3).
    l1_cycles: Dict[Outcome, int] = field(
        default_factory=lambda: {o: 0 for o in Outcome})
    #: the same broken down per load class.
    l1_cycles_by_class: Dict[str, Dict[Outcome, int]] = field(
        default_factory=lambda: {label: {o: 0 for o in Outcome}
                                 for label in CLASS_LABELS})
    #: functional-unit busy cycles (Figure 4).
    unit_busy: Dict[str, int] = field(
        default_factory=lambda: {"sp": 0, "sfu": 0, "ldst": 0})
    #: cycles during which at least one warp was resident, summed over SMs.
    active_sm_cycles: int = 0
    #: total simulated cycles.
    cycles: int = 0
    #: per-(kernel, pc, n_requests) turnaround buckets (Figures 6-7).
    pc_buckets: Dict[Tuple[str, int, int], PCBucket] = field(
        default_factory=dict)
    #: dynamic instruction counters
    issued_warp_insts: int = 0
    shared_load_insts: int = 0
    global_load_insts: int = 0
    global_store_insts: int = 0
    #: interconnect congestion telemetry
    icnt_injected: int = 0
    icnt_queue_delay: int = 0
    #: L2 head-of-line stall cycles (reservation retries at the slices).
    l2_stall_cycles: int = 0
    #: DRAM requests served
    dram_reads: int = 0
    dram_writes: int = 0
    #: prefetcher activity (Section X.A extension)
    prefetch_issued: int = 0
    prefetch_dropped: int = 0
    #: extra LD/ST port cycles lost to shared-memory bank conflicts
    shared_bank_conflict_cycles: int = 0
    #: SM-active cycles in which *no* instruction issued, by reason:
    #: "scoreboard" (data dependencies / memory wait), "unit_busy"
    #: (ready warp but its unit or the LD/ST queue was occupied),
    #: "barrier" (every live warp at a bar.sync), "drained" (all traces
    #: finished, waiting on outstanding memory).
    issue_stall: Dict[str, int] = field(
        default_factory=lambda: {"scoreboard": 0, "unit_busy": 0,
                                 "barrier": 0, "drained": 0})

    # -- recording helpers ----------------------------------------------------

    def record_l1_cycle(self, outcome, load_class):
        self.l1_cycles[outcome] += 1
        self.l1_cycles_by_class[class_label(load_class)][outcome] += 1

    def record_coalescing(self, load_class, n_requests, n_active):
        cls = self.classes[class_label(load_class)]
        cls.warp_insts += 1
        cls.requests += n_requests
        cls.active_threads += n_active

    def record_l1_result(self, outcome, load_class):
        cls = self.classes[class_label(load_class)]
        if outcome is Outcome.HIT:
            cls.l1_hit += 1
        elif outcome is Outcome.HIT_RESERVED:
            cls.l1_hit_reserved += 1
        elif outcome is Outcome.MISS:
            cls.l1_miss += 1

    def record_l2_result(self, hit, load_class):
        cls = self.classes[class_label(load_class)]
        if hit:
            cls.l2_hit += 1
        else:
            cls.l2_miss += 1

    def record_load_completion(self, kernel_name, pc, load_class, n_requests,
                               turnaround, wait_first, gap_l1d, gap_icnt_l2,
                               gap_l2_icnt):
        cls = self.classes[class_label(load_class)]
        cls.completed += 1
        cls.turnaround_sum += turnaround
        cls.wait_prev_sum += wait_first
        cls.wait_cur_sum += gap_l1d
        key = (kernel_name, pc, n_requests)
        bucket = self.pc_buckets.get(key)
        if bucket is None:
            bucket = self.pc_buckets[key] = PCBucket()
        bucket.count += 1
        bucket.turnaround_sum += turnaround
        bucket.wait_first_sum += wait_first
        bucket.gap_l1d_sum += gap_l1d
        bucket.gap_icnt_l2_sum += gap_icnt_l2
        bucket.gap_l2_icnt_sum += gap_l2_icnt

    # -- derived views -----------------------------------------------------------

    def l1_cycle_fractions(self):
        """{outcome: fraction of L1 cache cycles} — Figure 3's bars."""
        total = sum(self.l1_cycles.values())
        if not total:
            return {o: 0.0 for o in Outcome}
        return {o: c / total for o, c in self.l1_cycles.items()}

    def reservation_fail_fraction(self):
        fr = self.l1_cycle_fractions()
        return (fr[Outcome.RSRV_FAIL_TAGS] + fr[Outcome.RSRV_FAIL_MSHR]
                + fr[Outcome.RSRV_FAIL_ICNT])

    def unit_idle_fractions(self):
        """{unit: idle fraction} over SM-active cycles — Figure 4."""
        denom = self.active_sm_cycles
        if not denom:
            return {u: 1.0 for u in self.unit_busy}
        return {u: max(0.0, 1.0 - busy / denom)
                for u, busy in self.unit_busy.items()}

    def pc_series(self, kernel_name, pc):
        """Sorted ``[(n_requests, PCBucket)]`` for one load instruction —
        one line of Figure 6 / the bars of Figure 7."""
        out = [(key[2], bucket) for key, bucket in self.pc_buckets.items()
               if key[0] == kernel_name and key[1] == pc]
        return sorted(out, key=lambda item: item[0])

    def merge(self, other):
        """Accumulate another stats object into this one (per-app runs)."""
        for label in CLASS_LABELS:
            self.classes[label].merge(other.classes[label])
        for o in Outcome:
            self.l1_cycles[o] += other.l1_cycles[o]
            for label in CLASS_LABELS:
                self.l1_cycles_by_class[label][o] += \
                    other.l1_cycles_by_class[label][o]
        for u in self.unit_busy:
            self.unit_busy[u] += other.unit_busy[u]
        self.active_sm_cycles += other.active_sm_cycles
        self.cycles += other.cycles
        for key, bucket in other.pc_buckets.items():
            mine = self.pc_buckets.get(key)
            if mine is None:
                mine = self.pc_buckets[key] = PCBucket()
            for attr in ("count", "turnaround_sum", "wait_first_sum",
                         "gap_l1d_sum", "gap_icnt_l2_sum", "gap_l2_icnt_sum"):
                setattr(mine, attr, getattr(mine, attr) + getattr(bucket, attr))
        for attr in ("issued_warp_insts", "shared_load_insts",
                     "global_load_insts", "global_store_insts",
                     "icnt_injected", "icnt_queue_delay", "l2_stall_cycles",
                     "dram_reads", "dram_writes", "prefetch_issued",
                     "prefetch_dropped", "shared_bank_conflict_cycles"):
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))
        for reason in self.issue_stall:
            self.issue_stall[reason] += other.issue_stall.get(reason, 0)

    def publish(self, app, registry=None):
        """Publish this stats object into a metrics registry.

        Compatibility shim: :class:`SimStats` remains the simulator's
        hot-path accumulator (attribute increments, no registry calls
        per cycle); this method exports the same data as labelled
        registry series at application granularity via
        :func:`repro.obs.bridge.publish_sim`.
        """
        from ..obs.bridge import publish_sim

        return publish_sim(app, self, registry)

    def issue_stall_fractions(self):
        """{reason: fraction of SM-active cycles stalled for it}, plus
        "issued" for the remainder."""
        denom = self.active_sm_cycles
        if not denom:
            return {}
        out = {reason: cycles / denom
               for reason, cycles in self.issue_stall.items()}
        out["issued"] = max(0.0, 1.0 - sum(out.values()))
        return out
