"""CTA-to-SM assignment policies.

The paper (Section X.B) observes that GPUs assign CTAs to SMs in
round-robin order, which scatters neighbouring CTAs — exactly the CTAs
that share data blocks (Figure 12) — across different SMs and private L1
caches.  It suggests assigning *neighbouring* CTAs to the *same* SM
instead.  Both policies are implemented here; the ablation benchmark
compares them.
"""

from __future__ import annotations

from collections import deque
from typing import List


class RoundRobinScheduler:
    """The baseline hardware policy: CTAs issued in id order, each to the
    next SM with a free slot (CTA0->SM0, CTA1->SM1, ...)."""

    name = "round_robin"

    def __init__(self, cta_ids, num_sms):
        self._queue = deque(cta_ids)
        self.num_sms = num_sms

    def next_for(self, sm_id):
        """Pop the CTA to run next on ``sm_id`` (or None when drained)."""
        if not self._queue:
            return None
        return self._queue.popleft()

    @property
    def remaining(self):
        return len(self._queue)


class ClusteredScheduler:
    """Section X.B's suggestion: neighbouring CTAs go to the same SM.

    CTA ids are dealt to per-SM queues in contiguous chunks of
    ``cluster`` (CTA0,1 -> SM0; CTA2,3 -> SM1; ...), so CTAs that share
    data blocks at small CTA distances hit the same private L1.  When an
    SM drains its own queue it steals from the longest remaining queue to
    avoid load imbalance.
    """

    name = "clustered"

    def __init__(self, cta_ids, num_sms, cluster=2):
        self.num_sms = num_sms
        self.cluster = cluster
        self._queues: List[deque] = [deque() for _ in range(num_sms)]
        sm = 0
        for i, cta in enumerate(cta_ids):
            self._queues[sm].append(cta)
            if (i + 1) % cluster == 0:
                sm = (sm + 1) % num_sms

    def next_for(self, sm_id):
        if self._queues[sm_id]:
            return self._queues[sm_id].popleft()
        victim = max(self._queues, key=len)
        if victim:
            return victim.popleft()
        return None

    @property
    def remaining(self):
        return sum(len(q) for q in self._queues)


SCHEDULERS = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    ClusteredScheduler.name: ClusteredScheduler,
}


def make_scheduler(name, cta_ids, num_sms, **kwargs):
    """Instantiate a scheduler policy by name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError("unknown CTA scheduler %r (choices: %s)"
                         % (name, ", ".join(sorted(SCHEDULERS)))) from None
    return cls(cta_ids, num_sms, **kwargs)
