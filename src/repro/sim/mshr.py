"""Miss-status holding registers.

An MSHR entry tracks one in-flight cache-line fill; requests to the same
block while the fill is outstanding merge into the entry (the paper's
*hit reserved* outcome).  Exhaustion of entries — or of merge slots —
produces the paper's *reservation fail by MSHRs*.
"""

from __future__ import annotations

from typing import Dict, List


class MSHRTable:
    """Fixed-capacity table of in-flight misses keyed by block address."""

    def __init__(self, num_entries, max_merge):
        self.num_entries = num_entries
        self.max_merge = max_merge
        self._entries: Dict[int, List[object]] = {}
        # telemetry: lifetime allocation/merge counts and the occupancy
        # high-water mark, published into the metrics registry per run
        self.total_allocations = 0
        self.total_merges = 0
        self.max_occupancy = 0

    # -- probes -----------------------------------------------------------

    def has_entry(self, block_addr):
        return block_addr in self._entries

    def can_merge(self, block_addr):
        """True when a request to an in-flight block can attach."""
        entry = self._entries.get(block_addr)
        return entry is not None and len(entry) < self.max_merge

    def can_allocate(self):
        return len(self._entries) < self.num_entries

    @property
    def occupancy(self):
        return len(self._entries)

    # -- updates ------------------------------------------------------------

    def allocate(self, block_addr, request):
        """Start tracking a new miss; the request becomes the entry's first
        waiter."""
        if block_addr in self._entries:
            raise ValueError("MSHR entry for %#x already exists" % block_addr)
        if not self.can_allocate():
            raise ValueError("MSHR table full")
        self._entries[block_addr] = [request]
        self.total_allocations += 1
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)

    def merge(self, block_addr, request):
        """Attach a request to an existing in-flight miss."""
        entry = self._entries[block_addr]
        if len(entry) >= self.max_merge:
            raise ValueError("MSHR merge capacity exceeded for %#x"
                             % block_addr)
        entry.append(request)
        self.total_merges += 1

    def fill(self, block_addr):
        """The fill returned: pop and return every waiting request."""
        return self._entries.pop(block_addr, [])

    def waiting(self, block_addr):
        return list(self._entries.get(block_addr, ()))

    def reset(self):
        """Drop all in-flight entries, keeping lifetime telemetry.

        Callers (``Cache.reset``) must reset *in place*: obs
        instrumentation publishes per-instance gauges, so rebinding to a
        fresh table would leave those holders reading a dead object.
        """
        self._entries.clear()

    # -- observability ------------------------------------------------------

    def publish_metrics(self, registry, **labels):
        """Publish lifetime telemetry into a metrics registry.

        ``labels`` typically carry ``app`` plus the owning unit
        (``sm=3`` or ``partition=1``) and ``level`` (``l1``/``l2``).
        """
        registry.counter(
            "sim.mshr.allocations",
            "MSHR entries allocated (one per tracked miss)").inc(
            self.total_allocations, **labels)
        registry.counter(
            "sim.mshr.merges",
            "requests merged into an in-flight MSHR entry "
            "(the paper's hit-reserved path)").inc(
            self.total_merges, **labels)
        registry.gauge(
            "sim.mshr.max_occupancy",
            "high-water mark of simultaneously tracked misses").set(
            self.max_occupancy, **labels)

    # -- diagnostics --------------------------------------------------------

    def debug_state(self, max_entries=8):
        """In-flight misses for deadlock reports: occupancy plus the first
        few ``block_addr: waiter_count`` pairs."""
        entries = {"%#x" % addr: len(waiters)
                   for addr, waiters in list(self._entries.items())
                   [:max_entries]}
        return {"occupancy": len(self._entries),
                "capacity": self.num_entries,
                "entries": entries}
