"""Reference numbers from the paper, used for paper-vs-measured reports.

Values quoted in the paper's text are exact; values only shown in figures
are approximate visual readings and are marked as such in EXPERIMENTS.md.
"""

#: Table I: application order and categories.
PAPER_APPS = {
    "2mm": "linear", "gaus": "linear", "grm": "linear", "lu": "linear",
    "spmv": "linear",
    "htw": "image", "mriq": "image", "dwt": "image", "bpr": "image",
    "srad": "image",
    "bfs": "graph", "sssp": "graph", "ccl": "graph", "mst": "graph",
    "mis": "graph",
}

#: Table I: fraction of executed instructions that are global loads.
PAPER_GLOBAL_LOAD_FRACTION = {
    "2mm": 0.1810, "gaus": 0.0304, "grm": 0.2475, "lu": 0.0665,
    "spmv": 0.1173,
    "htw": 0.0856, "mriq": 0.0003, "dwt": 0.0241, "bpr": 0.0371,
    "srad": 0.0357,
    "bfs": 0.0117, "sssp": 0.0566, "ccl": 0.0578, "mst": 0.0119,
    "mis": 0.0019,
}

#: Section IV: average global-load fraction overall and per category.
PAPER_AVG_GLOBAL_LOAD_FRACTION = 0.0643
PAPER_CATEGORY_GLOBAL_LOAD_FRACTION = {
    "linear": 0.1285, "image": 0.0366, "graph": 0.0280}

#: Figure 1 (visual reading): fraction of dynamic global loads that are
#: deterministic.  Linear/image apps are ~1.0 except spmv; graph apps mix.
PAPER_DETERMINISTIC_FRACTION = {
    "2mm": 1.00, "gaus": 1.00, "grm": 1.00, "lu": 1.00, "spmv": 0.70,
    "htw": 1.00, "mriq": 1.00, "dwt": 1.00, "bpr": 1.00, "srad": 1.00,
    "bfs": 0.55, "sssp": 0.55, "ccl": 0.45, "mst": 0.60, "mis": 0.55,
}

#: Section VI (text): bfs generates ~0.8 requests per active thread per
#: non-deterministic load; spmv ~6 requests per warp for N loads.
PAPER_BFS_N_REQS_PER_ACTIVE_THREAD = 0.8
PAPER_SPMV_N_REQS_PER_WARP = 6.0

#: Figure 3 (text): ~70% of L1 cache cycles wasted on reservation fails,
#: mostly by tags.
PAPER_L1_RESERVATION_FAIL_FRACTION = 0.70

#: Figure 4 (text): mean busy fractions of the unit first pipeline stages.
PAPER_UNIT_BUSY = {"sp": 0.093, "sfu": 0.115, "ldst": 0.544}

#: Figure 8 (text): miss ratios of both classes exceed 50% in most cases.
PAPER_MISS_RATIO_FLOOR = 0.50

#: Figure 9 (text): image apps issue ~2.5 shared loads per global load.
PAPER_IMAGE_SHARED_PER_GLOBAL = 2.5

#: Figure 10 (text): cold-miss ratio 16% on average, 38.8% for image apps;
#: graph apps average 18.1 accesses per 128 B block.
PAPER_COLD_MISS_AVG = 0.16
PAPER_COLD_MISS_IMAGE = 0.388
PAPER_GRAPH_ACCESSES_PER_BLOCK = 18.1

#: Figure 11 (text): 28.7% of blocks touched by multiple CTAs; 50.9% of
#: accesses go to such blocks.
PAPER_SHARED_BLOCK_RATIO = 0.287
PAPER_SHARED_ACCESS_RATIO = 0.509

#: Figure 12 (text): sharing concentrates at small CTA distances
#: (distance 1 most likely; 2mm at 1 and 32; lu at 1 and 64).
PAPER_TOP_CTA_DISTANCE = 1
