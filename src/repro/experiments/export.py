"""JSON export of every experiment's data.

``export_results`` converts a set of :class:`AppResult` objects into one
JSON-serializable dictionary holding the data behind every table and
figure, so downstream tooling (plotting scripts, regression trackers)
can consume the reproduction without importing the library.
"""

from __future__ import annotations

import json

from ..profiling.irregularity import measure_irregularity
from . import figures
from .tables import table1_rows, table3_rows


def _breakdown_dict(breakdown):
    return {
        "completed": breakdown.completed,
        "unloaded": breakdown.unloaded,
        "rsrv_prev_warps": breakdown.rsrv_prev_warps,
        "rsrv_current_warp": breakdown.rsrv_current_warp,
        "wasted_memory": breakdown.wasted_memory,
        "total": breakdown.total,
    }


def export_results(results):
    """Build the full data dictionary for a list of :class:`AppResult`."""
    fig5 = figures.fig5_data(results)
    out = {
        "apps": [r.name for r in results],
        "table1": table1_rows(results),
        "table3": table3_rows(results),
        "fig1_class_split": {
            name: {"deterministic": d, "nondeterministic": n}
            for name, (d, n) in figures.fig1_data(results).items()},
        "fig2_requests": figures.fig2_data(results),
        "fig3_l1_cycles": figures.fig3_data(results),
        "fig4_unit_idle": figures.fig4_data(results),
        "fig5_turnaround": {
            name: {label: _breakdown_dict(b)
                   for label, b in per_class.items()}
            for name, per_class in fig5.items()},
        "fig8_miss_ratios": figures.fig8_data(results),
        "fig9_shared_per_global": figures.fig9_data(results),
        "fig10_cold_miss": {
            name: {"cold_miss_ratio": cold, "accesses_per_block": acc}
            for name, (cold, acc) in figures.fig10_data(results).items()},
        "fig11_sharing": {
            name: {"shared_block_ratio": b, "shared_access_ratio": a,
                   "mean_ctas": c}
            for name, (b, a, c) in figures.fig11_data(results).items()},
        "fig12_cta_distance": {
            name: {str(d): f for d, f in fractions.items()}
            for name, fractions in figures.fig12_data(results).items()},
        "irregularity": {},
        "simulation": {},
    }
    for result in results:
        irr = measure_irregularity(result.trace)
        out["irregularity"][result.name] = {
            "control_flow": irr.control_flow_irregularity,
            "memory_access": irr.memory_access_irregularity,
            "mean_active_lanes": irr.mean_active_lanes,
        }
        if result.stats is not None:
            out["simulation"][result.name] = {
                "cycles": result.stats.cycles,
                "issued_warp_insts": result.stats.issued_warp_insts,
                "reservation_fail_fraction":
                    result.stats.reservation_fail_fraction(),
                "dram_reads": result.stats.dram_reads,
                "dram_writes": result.stats.dram_writes,
            }
    return out


def export_json(results, path=None, indent=2):
    """Serialize :func:`export_results` to a JSON string (and optionally
    write it to ``path``)."""
    data = export_results(results)
    text = json.dumps(data, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text + "\n")
    return text
