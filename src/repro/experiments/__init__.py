"""Experiment harness: regenerates every table and figure of the paper."""

from .figures import (
    fig1_data,
    fig2_data,
    fig3_data,
    fig4_data,
    fig5_data,
    fig6_data,
    fig7_data,
    fig8_data,
    fig9_data,
    fig10_data,
    fig11_data,
    fig12_data,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
)
from .export import export_json, export_results
from .render import format_bar, format_stacked, format_table
from .runner import (
    BENCH_CONFIG,
    BENCH_SCALE,
    AppFailure,
    AppResult,
    ExperimentRunner,
    default_runner,
)
from .tables import render_table1, render_table3, table1_rows, table3_rows

__all__ = [
    "fig1_data", "fig2_data", "fig3_data", "fig4_data", "fig5_data",
    "fig6_data", "fig7_data", "fig8_data", "fig9_data", "fig10_data",
    "fig11_data", "fig12_data",
    "render_fig1", "render_fig2", "render_fig3", "render_fig4",
    "render_fig5", "render_fig6", "render_fig7", "render_fig8",
    "render_fig9", "render_fig10", "render_fig11", "render_fig12",
    "export_json", "export_results",
    "format_bar", "format_stacked", "format_table",
    "BENCH_CONFIG", "BENCH_SCALE", "AppFailure", "AppResult",
    "ExperimentRunner", "default_runner",
    "render_table1", "render_table3", "table1_rows", "table3_rows",
]
