"""Table I and Table III reproduction."""

from __future__ import annotations


from ..profiling.counters import collect_counters
from .render import format_table


def table1_rows(results):
    """Table I: application characteristics, one dict per app."""
    rows = []
    for result in results:
        trace = result.trace
        launches = list(trace)
        num_ctas = sum(launch.config.num_ctas for launch in launches)
        threads_per_cta = launches[0].config.threads_per_cta if launches else 0
        total = trace.total_warp_instructions()
        gld = trace.global_load_warp_count()
        rows.append({
            "name": result.name,
            "category": result.category,
            "data_set": result.run.workload.data_set,
            "description": result.run.workload.description,
            "num_ctas": num_ctas,
            "threads_per_cta": threads_per_cta,
            "total_insts": total,
            "global_loads": gld,
            "global_load_fraction": gld / total if total else 0.0,
        })
    return rows


def render_table1(results):
    rows = table1_rows(results)
    return format_table(
        ["app", "cat", "data set", "#CTAs", "thr/CTA", "warp insts",
         "global lds", "fraction"],
        [[r["name"], r["category"], r["data_set"][:28], r["num_ctas"],
          r["threads_per_cta"], r["total_insts"], r["global_loads"],
          "%.2f%%" % (100 * r["global_load_fraction"])] for r in rows],
        title="Table I: application characteristics")


def table3_rows(results):
    """Table III-style profiler counters per application."""
    rows = []
    for result in results:
        counters = collect_counters(result.run, result.stats)
        counters["name"] = result.name
        rows.append(counters)
    return rows


def render_table3(results):
    rows = table3_rows(results)
    names = ["gld_request", "shared_load", "l1_global_load_hit",
             "l1_global_load_miss", "l2_subp0_read_hit_sectors",
             "l2_subp1_read_hit_sectors", "l2_subp0_read_sector_queries",
             "l2_subp1_read_sector_queries"]
    return format_table(
        ["app"] + [n.replace("_read_", "_rd_") for n in names],
        [[r["name"]] + [("-" if r[n] is None else r[n]) for n in names]
         for r in rows],
        title="Table III: CUDA-profiler-style counters")
