"""Per-figure computations for the paper's evaluation (Figures 1-12).

Each ``figN_data`` function turns :class:`AppResult` objects into plain
dicts/lists that benchmarks print and tests assert on; each
``render_figN`` formats them as an ASCII table shaped like the paper's
plot.
"""

from __future__ import annotations


from ..profiling.counters import shared_per_global_ratio
from ..profiling.turnaround import (
    busiest_load_pcs,
    class_breakdown,
    pc_turnaround_series,
)
from ..sim.cache import Outcome
from .render import format_table

# ---------------------------------------------------------------------------
# Figure 1: deterministic / non-deterministic load distribution
# ---------------------------------------------------------------------------


def fig1_data(results):
    """{app: (det_fraction, nondet_fraction)} over dynamic global loads."""
    out = {}
    for result in results:
        det, nondet = result.run.dynamic_class_split()
        total = det + nondet
        if total == 0:
            out[result.name] = (1.0, 0.0)
        else:
            out[result.name] = (det / total, nondet / total)
    return out


def render_fig1(results):
    data = fig1_data(results)
    return format_table(
        ["app", "deterministic", "non-deterministic"],
        [[r.name, data[r.name][0], data[r.name][1]] for r in results],
        title="Figure 1: dynamic global-load class distribution")


# ---------------------------------------------------------------------------
# Figure 2: memory requests per warp / per active thread
# ---------------------------------------------------------------------------


def fig2_data(results):
    """{app: {class: (reqs_per_warp, reqs_per_active_thread)}}."""
    out = {}
    for result in results:
        per_class = {}
        for label in ("N", "D"):
            cls = result.stats.classes[label]
            per_class[label] = (cls.requests_per_warp(),
                                cls.requests_per_active_thread())
        out[result.name] = per_class
    return out


def render_fig2(results):
    data = fig2_data(results)
    rows = []
    for r in results:
        n = data[r.name]["N"]
        d = data[r.name]["D"]
        rows.append([r.name, n[0], n[1], d[0], d[1]])
    return format_table(
        ["app", "N req/warp", "N req/thread", "D req/warp", "D req/thread"],
        rows, title="Figure 2: memory requests per warp and active thread")


# ---------------------------------------------------------------------------
# Figure 3: L1 cache-cycle breakdown
# ---------------------------------------------------------------------------

_FIG3_ORDER = [Outcome.HIT, Outcome.HIT_RESERVED, Outcome.MISS,
               Outcome.RSRV_FAIL_TAGS, Outcome.RSRV_FAIL_MSHR,
               Outcome.RSRV_FAIL_ICNT]


def fig3_data(results):
    """{app: {outcome_name: fraction of L1 cache cycles}}."""
    out = {}
    for result in results:
        fractions = result.stats.l1_cycle_fractions()
        out[result.name] = {o.value: fractions[o] for o in _FIG3_ORDER}
    return out


def render_fig3(results):
    data = fig3_data(results)
    rows = [[r.name] + [data[r.name][o.value] for o in _FIG3_ORDER]
            for r in results]
    return format_table(["app"] + [o.value for o in _FIG3_ORDER], rows,
                        title="Figure 3: breakdown of L1 data-cache cycles")


# ---------------------------------------------------------------------------
# Figure 4: functional-unit idle fractions
# ---------------------------------------------------------------------------


def fig4_data(results):
    """{app: {unit: idle fraction}}."""
    return {r.name: r.stats.unit_idle_fractions() for r in results}


def render_fig4(results):
    data = fig4_data(results)
    rows = [[r.name, data[r.name]["sp"], data[r.name]["sfu"],
             data[r.name]["ldst"]] for r in results]
    return format_table(["app", "SP idle", "SFU idle", "LD/ST idle"], rows,
                        title="Figure 4: fraction of idle unit cycles")


# ---------------------------------------------------------------------------
# Figure 5: turnaround-time breakdown per class
# ---------------------------------------------------------------------------


def fig5_data(results):
    """{app: {class: TurnaroundBreakdown}}."""
    out = {}
    for result in results:
        out[result.name] = {
            label: class_breakdown(result.stats, result.config, label)
            for label in ("N", "D")}
    return out


def render_fig5(results):
    data = fig5_data(results)
    rows = []
    for r in results:
        for label in ("N", "D"):
            b = data[r.name][label]
            rows.append([r.name, label, b.completed, b.unloaded,
                         b.rsrv_prev_warps, b.rsrv_current_warp,
                         b.wasted_memory, b.total])
    return format_table(
        ["app", "cls", "warps", "unloaded", "rsrv prev", "rsrv cur",
         "wasted mem", "total"],
        rows, title="Figure 5: mean global-load turnaround breakdown "
                    "(cycles)", floatfmt="%.1f")


# ---------------------------------------------------------------------------
# Figures 6 & 7: per-PC turnaround vs. request count
# ---------------------------------------------------------------------------


def classified_pcs(result, kernel_name, load_class):
    """Load PCs of one kernel belonging to one class."""
    classification = result.run.classifications.get(kernel_name)
    if classification is None:
        return []
    return [ld.pc for ld in classification
            if str(ld.load_class) == load_class]


def fig6_data(result, max_pcs=2):
    """Per-PC turnaround series for one app: ``{(kernel, pc, class):
    [RequestCountPoint]}`` for its busiest D and N loads."""
    out = {}
    for kernel_name in result.run.trace.kernel_names():
        busy = busiest_load_pcs(result.stats, kernel_name, limit=16)
        for label in ("N", "D"):
            pcs = [pc for pc in busy
                   if pc in classified_pcs(result, kernel_name, label)]
            for pc in pcs[:max_pcs]:
                series = pc_turnaround_series(
                    result.stats, kernel_name, pc, result.config)
                if series:
                    out[(kernel_name, pc, label)] = series
    return out


def render_fig6(results):
    rows = []
    for result in results:
        for (kernel, pc, label), series in sorted(fig6_data(result).items()):
            for point in series:
                rows.append(["%s(%#x:%s)" % (result.name, pc, label),
                             point.n_requests, point.count,
                             point.mean_turnaround])
    return format_table(
        ["load", "#requests", "samples", "mean turnaround"],
        rows, title="Figure 6: turnaround time vs. generated requests",
        floatfmt="%.1f")


def fig7_data(result, kernel_name=None, pc=None):
    """Gap breakdown vs. request count for one non-deterministic load
    (defaults to the app's busiest N load)."""
    if kernel_name is None or pc is None:
        candidates = fig6_data(result)
        n_loads = {k: v for k, v in candidates.items() if k[2] == "N"}
        if not n_loads:
            return None, []
        key = max(n_loads,
                  key=lambda k: sum(p.count for p in n_loads[k]))
        kernel_name, pc, _label = key
    series = pc_turnaround_series(result.stats, kernel_name, pc,
                                  result.config)
    return (kernel_name, pc), series


def render_fig7(result):
    key, series = fig7_data(result)
    if not series:
        return "Figure 7: no non-deterministic loads in %s" % result.name
    rows = [[p.n_requests, p.count, p.common_latency, p.gap_l1d,
             p.gap_icnt_l2, p.gap_l2_icnt] for p in series]
    return format_table(
        ["#requests", "samples", "common", "gap L1D", "gap icnt-L2",
         "gap L2-icnt"],
        rows,
        title="Figure 7: turnaround breakdown for %s load PC %#x"
              % (key[0], key[1]),
        floatfmt="%.1f")


# ---------------------------------------------------------------------------
# Figure 8: L1 / L2 miss ratios per class
# ---------------------------------------------------------------------------


def fig8_data(results):
    """{app: {class: (l1_miss_ratio, l2_miss_ratio)}}."""
    out = {}
    for result in results:
        out[result.name] = {
            label: (result.stats.classes[label].l1_miss_ratio(),
                    result.stats.classes[label].l2_miss_ratio())
            for label in ("N", "D")}
    return out


#: Figure 8 table shape, shared with the sweep-report rendering below.
_FIG8_HEADERS = ["app", "N L1 miss", "N L2 miss", "D L1 miss", "D L2 miss"]
_FIG8_TITLE = "Figure 8: cache miss ratios per load class"


def render_fig8(results):
    data = fig8_data(results)
    rows = []
    for r in results:
        n, d = data[r.name]["N"], data[r.name]["D"]
        rows.append([r.name, n[0], n[1], d[0], d[1]])
    return format_table(_FIG8_HEADERS, rows, title=_FIG8_TITLE)


def render_fig8_from_sweep(rows):
    """Figure 8 rendered from sweep-report rows (``repro sweep report``
    over the committed ``sweeps/fig8.json`` spec) instead of live
    :class:`AppResult` objects.

    The sweep metrics ``n_l1_miss_ratio``/... are defined to be exactly
    the :func:`fig8_data` series, so for identical apps/scale/config
    this renders byte-identically to :func:`render_fig8` — asserted in
    ``tests/sweep/test_figures_integration.py``.
    """
    table_rows = []
    for row in rows:
        m = row["metrics"]
        table_rows.append(
            [row["app"], m["n_l1_miss_ratio"], m["n_l2_miss_ratio"],
             m["d_l1_miss_ratio"], m["d_l2_miss_ratio"]])
    return format_table(_FIG8_HEADERS, table_rows, title=_FIG8_TITLE)


# ---------------------------------------------------------------------------
# Figure 9: shared loads per global load
# ---------------------------------------------------------------------------


def fig9_data(results):
    return {r.name: shared_per_global_ratio(r.run) for r in results}


def render_fig9(results):
    data = fig9_data(results)
    return format_table(
        ["app", "shared loads / global load"],
        [[r.name, data[r.name]] for r in results],
        title="Figure 9: shared-memory load intensity")


# ---------------------------------------------------------------------------
# Figures 10-12: locality
# ---------------------------------------------------------------------------


def fig10_data(results):
    """{app: (cold_miss_ratio, mean_accesses_per_block)}."""
    return {r.name: (r.locality.cold_miss_ratio,
                     r.locality.mean_accesses_per_block) for r in results}


def render_fig10(results):
    data = fig10_data(results)
    return format_table(
        ["app", "cold miss ratio", "accesses / 128B block"],
        [[r.name, data[r.name][0], data[r.name][1]] for r in results],
        title="Figure 10: cold misses and block reuse")


def fig11_data(results):
    """{app: (shared_block_ratio, shared_access_ratio, mean_ctas)}."""
    return {r.name: (r.locality.shared_block_ratio,
                     r.locality.shared_access_ratio,
                     r.locality.mean_ctas_per_shared_block)
            for r in results}


def render_fig11(results):
    data = fig11_data(results)
    return format_table(
        ["app", "multi-CTA blocks", "multi-CTA accesses", "mean #CTAs"],
        [[r.name, data[r.name][0], data[r.name][1], data[r.name][2]]
         for r in results],
        title="Figure 11: data blocks shared across CTAs")


def fig12_data(results, max_distance=64):
    """{app: {cta_distance: fraction of shared accesses}}."""
    return {r.name: r.locality.distance_fractions(max_distance=max_distance)
            for r in results}


def render_fig12(results, top=6):
    rows = []
    for r in results:
        fractions = r.locality.distance_fractions()
        ranked = sorted(fractions.items(), key=lambda kv: -kv[1])[:top]
        cells = ", ".join("d=%d:%.2f" % (d, f) for d, f in ranked)
        rows.append([r.name, r.category, cells or "-"])
    return format_table(
        ["app", "cat", "top CTA distances (fraction of shared accesses)"],
        rows, title="Figure 12: CTA-distance distribution of shared blocks")
