"""Shared experiment runner: classify -> emulate -> simulate -> analyze.

Every table/figure module consumes :class:`AppResult` objects produced
here.  Results are cached per (workload, scale, config, policy) so that
the many per-figure benchmarks that share an application run do not
re-simulate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..profiling.locality import LocalityAnalyzer, LocalityReport
from ..sim.config import GPUConfig, TESLA_C2050
from ..sim.gpu import GPU
from ..sim.stats import SimStats
from ..workloads.base import WorkloadRun
from ..workloads.registry import get_workload, workload_names

#: Configuration used by the benchmark harness: the paper's Tesla C2050
#: model with SM count *and cache capacities* scaled down in proportion to
#: the scaled workload inputs, so that working sets exceed the caches just
#: as the paper's full-size inputs exceed the real 16 KB L1 / 768 KB L2
#: (DESIGN.md section 6).  Line size, associativity and all latencies stay
#: at their Table II values.
BENCH_CONFIG = TESLA_C2050.scaled(
    num_sms=4,
    num_partitions=2,
    l1_size=2 * 1024,
    l1_mshr_entries=32,
    l2_size=64 * 1024,
    l2_mshr_entries=16,
    icnt_credits_per_sm=24,
)

#: default input scale for the benchmark harness.
BENCH_SCALE = 0.5


@dataclass
class AppResult:
    """Everything measured for one application."""

    name: str
    category: str
    run: WorkloadRun
    stats: Optional[SimStats]
    locality: LocalityReport
    config: GPUConfig

    @property
    def trace(self):
        return self.run.trace


class ExperimentRunner:
    """Runs applications once and caches their results."""

    def __init__(self, scale=BENCH_SCALE, config=BENCH_CONFIG,
                 cta_policy="round_robin", simulate=True, verify=True):
        self.scale = scale
        self.config = config
        self.cta_policy = cta_policy
        self.simulate = simulate
        self.verify = verify
        self._cache: Dict[str, AppResult] = {}

    def result(self, name):
        """Run (or fetch the cached run of) one application."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        workload = get_workload(name, scale=self.scale)
        run = workload.run(verify=self.verify)
        stats = None
        if self.simulate:
            gpu = GPU(self.config, cta_policy=self.cta_policy)
            for launch in run.trace:
                gpu.run_launch(
                    launch, run.classifications.get(launch.kernel_name))
            stats = gpu.stats
        analyzer = LocalityAnalyzer()
        locality = analyzer.analyze_application(run.trace,
                                                run.classifications)
        result = AppResult(
            name=name,
            category=workload.category,
            run=run,
            stats=stats,
            locality=locality,
            config=self.config,
        )
        self._cache[name] = result
        return result

    def results(self, names=None):
        """Results for several applications (default: all 15, Table I
        order)."""
        if names is None:
            names = workload_names()
        return [self.result(name) for name in names]

    def clear(self):
        self._cache.clear()


#: process-wide default runner shared by the benchmark suite.
_default_runner: Optional[ExperimentRunner] = None


def default_runner():
    """The module-level shared runner (created on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner
