"""Shared experiment runner: classify -> emulate -> simulate -> analyze.

Every table/figure module consumes :class:`AppResult` objects produced
here.  Three layers of reuse keep the many per-figure benchmarks cheap:

* an in-process cache per (workload, scale, config, policy), so figures
  sharing an application run do not re-simulate it;
* the content-addressed on-disk trace cache
  (:mod:`repro.emulator.trace_cache`), so a *process* restart does not
  re-emulate unchanged workloads — by far the most expensive step; and
* an optional process pool (``jobs > 1``) that runs independent
  applications in parallel with deterministic result ordering.

Fault isolation: with ``strict=False`` a failing application degrades to
an :class:`AppFailure` (which records the pipeline stage and any
structured context the exception carried — kernel, pc, warp, lane, ...)
instead of aborting the whole experiment; :meth:`ExperimentRunner.results`
then returns a mix of :class:`AppResult` and :class:`AppFailure` and the
figure harness renders whatever completed.  ``strict=True`` (the
default) re-raises, so programmatic users keep fail-fast semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..emulator import MemoryImage, trace_cache
from ..emulator.machine import DEFAULT_ENGINE
from ..obs import bridge, tracing
from ..obs.metrics import get_registry
from ..profiling.locality import LocalityAnalyzer, LocalityReport
from ..ptx import parse_module, print_module
from ..sim.config import GPUConfig, TESLA_C2050
from ..sim.gpu import GPU
from ..resilience.guards import check_memory_budget
from ..sim.stats import SimStats
from ..testing.faults import check_fault
from ..workloads.base import WorkloadRun
from ..workloads.registry import get_workload, workload_names

#: Configuration used by the benchmark harness: the paper's Tesla C2050
#: model with SM count *and cache capacities* scaled down in proportion to
#: the scaled workload inputs, so that working sets exceed the caches just
#: as the paper's full-size inputs exceed the real 16 KB L1 / 768 KB L2
#: (DESIGN.md section 6).  Line size, associativity and all latencies stay
#: at their Table II values.
BENCH_CONFIG = TESLA_C2050.scaled(
    num_sms=4,
    num_partitions=2,
    l1_size=2 * 1024,
    l1_mshr_entries=32,
    l2_size=64 * 1024,
    l2_mshr_entries=16,
    icnt_credits_per_sm=24,
)

#: default input scale for the benchmark harness.
BENCH_SCALE = 0.5

#: exception attributes copied into :attr:`AppFailure.context` when
#: present (the structured fields of MemoryFaultError, WatchdogError,
#: BarrierDeadlockError, SimulationError and MemoryBudgetError).
_CONTEXT_FIELDS = ("kernel", "pc", "cta", "warp", "lane", "address",
                   "space", "budget", "warp_status", "rss_mb", "budget_mb")


@dataclass
class AppResult:
    """Everything measured for one application."""

    name: str
    category: str
    run: WorkloadRun
    stats: Optional[SimStats]
    locality: LocalityReport
    config: GPUConfig
    #: provenance riding along with the result — wall_seconds,
    #: trace_cache ("hit"/"miss"), engine, seed.  Picklable, so the
    #: parallel runner's parent process can republish it into the
    #: metrics registry and stamp it into run manifests even though the
    #: worker's registry died with the worker.
    meta: Dict[str, object] = field(default_factory=dict)

    #: discriminator shared with :class:`AppFailure`.
    ok = True

    @property
    def trace(self):
        return self.run.trace


@dataclass
class AppFailure:
    """A degraded result: the application failed at ``stage``.

    ``context`` holds whatever structured fields the exception carried
    (kernel, pc, cta, warp, lane, address, ...), so failure manifests
    can say *where* a workload faulted, not just that it did.
    """

    name: str
    stage: str                      # "emulate" | "simulate" | "analyze"
    error: str                      # exception class name
    message: str
    context: Dict[str, object] = field(default_factory=dict)

    ok = False

    def to_json(self):
        return {"name": self.name, "stage": self.stage,
                "error": self.error, "message": self.message,
                "context": self.context}

    def format(self):
        where = ", ".join("%s=%s" % kv for kv in sorted(self.context.items())
                          if kv[0] != "warp_status")
        base = "%s: %s at stage %r: %s" % (self.name, self.error,
                                           self.stage, self.message)
        return base if not where else "%s [%s]" % (base, where)


def _failure_from(name, stage, exc):
    context = {}
    for attr in _CONTEXT_FIELDS:
        value = getattr(exc, attr, None)
        if value is not None:
            context[attr] = value
    return AppFailure(name=name, stage=stage,
                      error=type(exc).__name__,
                      message=str(exc), context=context)


class ExperimentRunner:
    """Runs applications once and caches their results.

    ``use_trace_cache`` consults/populates the on-disk trace cache (a
    hit skips emulation *and* functional verification — the trace was
    verified when it was first produced and is content-addressed, so a
    stale hit is impossible).  ``engine`` selects the emulator engine
    for cold runs; ``jobs`` parallelizes :meth:`results` across a
    process pool.

    ``strict=False`` isolates per-application failures: :meth:`result`
    returns an :class:`AppFailure` instead of raising, and sibling
    applications are unaffected.  ``timeout`` (seconds, parallel runs
    only) bounds how long :meth:`results` waits for any one
    application's worker.
    """

    def __init__(self, scale=BENCH_SCALE, config=BENCH_CONFIG,
                 cta_policy="round_robin", simulate=True, verify=True,
                 jobs=1, use_trace_cache=False, engine=None, strict=True,
                 timeout=None, seed=None):
        self.scale = scale
        self.seed = seed
        self.config = config
        self.cta_policy = cta_policy
        self.simulate = simulate
        self.verify = verify
        self.jobs = max(1, int(jobs))
        self.use_trace_cache = use_trace_cache
        self.engine = engine
        self.strict = strict
        self.timeout = timeout
        self._cache: Dict[str, AppResult] = {}
        self._failures: Dict[str, AppFailure] = {}
        self._stage = "emulate"

    # -- emulation (with optional on-disk memoization) --------------------

    def _emulate(self, name):
        """Produce the :class:`WorkloadRun` for ``name`` — from the
        trace cache when possible, by running the emulator otherwise."""
        # the same hook Workload.run fires, so injection also covers the
        # cache-hit path (which skips Workload.run entirely)
        check_fault(name, "emulate")
        if self.seed is not None:
            workload = get_workload(name, scale=self.scale, seed=self.seed)
        else:
            workload = get_workload(name, scale=self.scale)
        key = None
        cache_status = None
        if self.use_trace_cache and trace_cache.cache_enabled():
            ptx = print_module(parse_module(workload.ptx()))
            key = trace_cache.trace_key(
                name, ptx, workload.seed, workload.scale)
            loaded = trace_cache.lookup(key)
            if loaded is not None:
                # Re-run input generation only: some Table I metadata
                # (data-set descriptions) is computed in setup().  The
                # final memory image is not reconstructed — downstream
                # consumers only read the trace and classifications.
                workload.setup(MemoryImage())
                return workload, WorkloadRun(
                    workload=workload,
                    module=loaded.module,
                    memory=None,
                    trace=loaded.trace,
                    classifications=loaded.classifications,
                ), "hit"
            cache_status = "miss"
        run = workload.run(verify=self.verify, engine=self.engine)
        if key is not None:
            trace_cache.store(key, run)
        return workload, run, cache_status

    def workload_run(self, name):
        """Emulate one application (trace cache permitting) without
        simulating or profiling it.

        This is the sweep engine's entry point: a parameter sweep
        re-simulates one trace under many configurations, so it wants
        the :class:`WorkloadRun` alone — classification, trace and
        kernels — and performs the timing runs itself.  Shares the
        trace-cache/fault-injection path of the full pipeline.
        """
        with tracing.span("emulate", app=name, scale=self.scale):
            _workload, run, _cache_status = self._emulate(name)
        return run

    def _compute(self, name):
        """The fail-fast pipeline for one application.  ``self._stage``
        tracks progress so non-strict callers can attribute a failure."""
        started = time.perf_counter()
        with tracing.span("app", app=name, scale=self.scale) as app_span:
            self._stage = "emulate"
            workload, run, cache_status = self._emulate(name)
            stats = None
            if self.simulate:
                self._stage = "simulate"
                check_fault(name, "simulate")
                check_memory_budget("simulation of %s" % name)
                with tracing.span("simulate", app=name) as sp:
                    gpu = GPU(self.config, cta_policy=self.cta_policy)
                    for launch in run.trace:
                        gpu.run_launch(
                            launch,
                            run.classifications.get(launch.kernel_name))
                    stats = gpu.stats
                    sp.set(cycles=stats.cycles)
                    # per-component series (partitions, icnt, MSHRs) are
                    # published where the GPU object lives; the aggregate
                    # SimStats is published by _record in the parent
                    gpu.publish_metrics(get_registry(),
                                        include_stats=False, app=name)
            self._stage = "analyze"
            check_fault(name, "analyze")
            check_memory_budget("analysis of %s" % name)
            with tracing.span("profile", app=name):
                analyzer = LocalityAnalyzer()
                locality = analyzer.analyze_application(run.trace,
                                                        run.classifications)
            if cache_status is not None:
                app_span.set(trace_cache=cache_status)
        meta = {
            "wall_seconds": time.perf_counter() - started,
            # the engine that actually produced the trace (post
            # fallback) when the run records it; the configured engine
            # otherwise (cache hits skip emulation entirely)
            "engine": run.engine or (self.engine if self.engine is not None
                                     else DEFAULT_ENGINE),
            "seed": workload.seed,
        }
        if run.fallbacks:
            meta["fallbacks"] = list(run.fallbacks)
        if cache_status is not None:
            meta["trace_cache"] = cache_status
        return AppResult(
            name=name,
            category=workload.category,
            run=run,
            stats=stats,
            locality=locality,
            config=self.config,
            meta=meta,
        )

    # -- registry publication ---------------------------------------------

    def _record(self, result, from_worker=False):
        """Publish one fresh :class:`AppResult` into the metrics
        registry: the full figure-input series plus runner bookkeeping.

        Called exactly once per computed result — in-process cache hits
        do not republish, and the parallel path calls it from the
        *parent* (the worker's registry dies with the worker).
        ``from_worker`` additionally replays the worker's fallback
        events into the parent registry; in-process runs already
        counted them at the point of downgrade.
        """
        registry = get_registry()
        bridge.publish_result(result, registry)
        registry.counter(
            "runner.apps", "applications run, by outcome").inc(
            1, status="ok")
        cache_status = result.meta.get("trace_cache")
        if cache_status is not None:
            registry.counter(
                "runner.trace_cache",
                "per-application trace-cache outcomes").inc(
                1, result=cache_status)
        if from_worker:
            for event in result.meta.get("fallbacks", ()):
                labels = {k: event[k] for k in ("from", "to", "reason",
                                                "app") if k in event}
                registry.counter(
                    "engine.fallbacks",
                    "engine downgrades after an infrastructure "
                    "failure").inc(1, **labels)

    def _record_failure(self, failure):
        """Publish one :class:`AppFailure` into the metrics registry —
        the same records that reach ``failures.json`` and the manifest,
        so the three can never disagree."""
        registry = get_registry()
        registry.counter(
            "runner.apps", "applications run, by outcome").inc(
            1, status="failed")
        registry.counter(
            "runner.failures",
            "per-application failures by stage and error class").inc(
            1, app=failure.name, stage=failure.stage, error=failure.error)

    def result(self, name):
        """Run (or fetch the cached run of) one application.

        With ``strict=False`` a failure is captured as (and subsequently
        returned from the cache as) an :class:`AppFailure`.
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        failed = self._failures.get(name)
        if failed is not None:
            if self.strict:
                raise RuntimeError(failed.format())
            return failed
        if self.strict:
            result = self._compute(name)
        else:
            try:
                result = self._compute(name)
            except Exception as exc:            # noqa: BLE001 — isolation
                failure = _failure_from(name, self._stage, exc)
                self._failures[name] = failure
                self._record_failure(failure)
                return failure
        self._cache[name] = result
        self._record(result)
        return result

    def results(self, names=None):
        """Results for several applications (default: all 15, Table I
        order).  With ``jobs > 1`` the uncached applications run in a
        process pool; result order always matches ``names`` order.

        Under ``strict=False`` the returned list may contain
        :class:`AppFailure` entries; filter with ``r.ok``.
        """
        if names is None:
            names = workload_names()
        names = list(names)
        if self.jobs > 1:
            self._fill_parallel(names)
        return [self.result(name) for name in names]

    def _spec(self, strict=True):
        """Constructor kwargs reproducing this runner in a worker.

        Workers always run strict so the original exception propagates
        through the future; the parent decides whether to isolate it.
        """
        return {
            "scale": self.scale,
            "seed": self.seed,
            "config": self.config,
            "cta_policy": self.cta_policy,
            "simulate": self.simulate,
            "verify": self.verify,
            "jobs": 1,
            "use_trace_cache": self.use_trace_cache,
            "engine": self.engine,
            "strict": strict,
        }

    def _fill_parallel(self, names):
        """Compute missing results for ``names`` in a process pool.

        Failure isolation: a worker exception, a crashed worker
        (:class:`BrokenProcessPool`) or a per-job ``timeout`` affects
        only the applications involved — completed siblings are kept,
        and failed names fall back to a serial retry in-process (where
        ``strict`` decides between raising and recording the failure).
        """
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        missing = [n for n in names
                   if n not in self._cache and n not in self._failures]
        if len(missing) < 2:
            return
        spec = self._spec()
        workers = min(self.jobs, len(missing))
        retry_serial: List[str] = []
        timed_out = False
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [(name, pool.submit(_run_single, (name, spec)))
                       for name in missing]
            for name, future in futures:
                try:
                    result = future.result(timeout=self.timeout)
                    self._cache[name] = result
                    # republish in the parent: the worker's registry
                    # (and spans) died with the worker process
                    self._record(result, from_worker=True)
                except concurrent.futures.TimeoutError:
                    future.cancel()
                    timed_out = True
                    failure = AppFailure(
                        name=name, stage="emulate", error="TimeoutError",
                        message="job exceeded the %ss per-application "
                                "timeout" % self.timeout)
                    if self.strict:
                        raise RuntimeError(failure.format()) from None
                    self._failures[name] = failure
                    self._record_failure(failure)
                except BrokenProcessPool:
                    # the pool is dead; everything not yet collected must
                    # be redone serially (completed results are kept)
                    retry_serial.extend(
                        n for n, _f in futures
                        if n not in self._cache and n not in retry_serial
                        and n not in self._failures)
                    break
                except Exception:               # noqa: BLE001 — isolation
                    # worker raised: retry serially so strict mode raises
                    # from a clean in-process traceback and non-strict
                    # mode captures structured context off the live
                    # exception object
                    retry_serial.append(name)
        finally:
            # a timed-out worker may be stuck for a while: don't block
            # shutdown on it, just cancel whatever has not started
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        for name in retry_serial:
            self.result(name)

    def failures(self):
        """Failures recorded so far (non-strict mode), in no particular
        order."""
        return list(self._failures.values())

    def clear(self):
        self._cache.clear()
        self._failures.clear()


def _run_single(job):
    """Worker entry point: compute one :class:`AppResult` in a child
    process (module-level so it pickles under the spawn start method)."""
    name, spec = job
    return ExperimentRunner(**spec).result(name)


#: process-wide default runner shared by the benchmark suite.
_default_runner: Optional[ExperimentRunner] = None


def default_runner():
    """The module-level shared runner (created on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner
