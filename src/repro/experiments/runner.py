"""Shared experiment runner: classify -> emulate -> simulate -> analyze.

Every table/figure module consumes :class:`AppResult` objects produced
here.  Three layers of reuse keep the many per-figure benchmarks cheap:

* an in-process cache per (workload, scale, config, policy), so figures
  sharing an application run do not re-simulate it;
* the content-addressed on-disk trace cache
  (:mod:`repro.emulator.trace_cache`), so a *process* restart does not
  re-emulate unchanged workloads — by far the most expensive step; and
* an optional process pool (``jobs > 1``) that runs independent
  applications in parallel with deterministic result ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..emulator import MemoryImage, trace_cache
from ..profiling.locality import LocalityAnalyzer, LocalityReport
from ..ptx import parse_module, print_module
from ..sim.config import GPUConfig, TESLA_C2050
from ..sim.gpu import GPU
from ..sim.stats import SimStats
from ..workloads.base import WorkloadRun
from ..workloads.registry import get_workload, workload_names

#: Configuration used by the benchmark harness: the paper's Tesla C2050
#: model with SM count *and cache capacities* scaled down in proportion to
#: the scaled workload inputs, so that working sets exceed the caches just
#: as the paper's full-size inputs exceed the real 16 KB L1 / 768 KB L2
#: (DESIGN.md section 6).  Line size, associativity and all latencies stay
#: at their Table II values.
BENCH_CONFIG = TESLA_C2050.scaled(
    num_sms=4,
    num_partitions=2,
    l1_size=2 * 1024,
    l1_mshr_entries=32,
    l2_size=64 * 1024,
    l2_mshr_entries=16,
    icnt_credits_per_sm=24,
)

#: default input scale for the benchmark harness.
BENCH_SCALE = 0.5


@dataclass
class AppResult:
    """Everything measured for one application."""

    name: str
    category: str
    run: WorkloadRun
    stats: Optional[SimStats]
    locality: LocalityReport
    config: GPUConfig

    @property
    def trace(self):
        return self.run.trace


class ExperimentRunner:
    """Runs applications once and caches their results.

    ``use_trace_cache`` consults/populates the on-disk trace cache (a
    hit skips emulation *and* functional verification — the trace was
    verified when it was first produced and is content-addressed, so a
    stale hit is impossible).  ``engine`` selects the emulator engine
    for cold runs; ``jobs`` parallelizes :meth:`results` across a
    process pool.
    """

    def __init__(self, scale=BENCH_SCALE, config=BENCH_CONFIG,
                 cta_policy="round_robin", simulate=True, verify=True,
                 jobs=1, use_trace_cache=False, engine=None):
        self.scale = scale
        self.config = config
        self.cta_policy = cta_policy
        self.simulate = simulate
        self.verify = verify
        self.jobs = max(1, int(jobs))
        self.use_trace_cache = use_trace_cache
        self.engine = engine
        self._cache: Dict[str, AppResult] = {}

    # -- emulation (with optional on-disk memoization) --------------------

    def _emulate(self, name):
        """Produce the :class:`WorkloadRun` for ``name`` — from the
        trace cache when possible, by running the emulator otherwise."""
        workload = get_workload(name, scale=self.scale)
        key = None
        if self.use_trace_cache and trace_cache.cache_enabled():
            ptx = print_module(parse_module(workload.ptx()))
            key = trace_cache.trace_key(
                name, ptx, workload.seed, workload.scale)
            loaded = trace_cache.lookup(key)
            if loaded is not None:
                # Re-run input generation only: some Table I metadata
                # (data-set descriptions) is computed in setup().  The
                # final memory image is not reconstructed — downstream
                # consumers only read the trace and classifications.
                workload.setup(MemoryImage())
                return workload, WorkloadRun(
                    workload=workload,
                    module=loaded.module,
                    memory=None,
                    trace=loaded.trace,
                    classifications=loaded.classifications,
                )
        run = workload.run(verify=self.verify, engine=self.engine)
        if key is not None:
            trace_cache.store(key, run)
        return workload, run

    def result(self, name):
        """Run (or fetch the cached run of) one application."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        workload, run = self._emulate(name)
        stats = None
        if self.simulate:
            gpu = GPU(self.config, cta_policy=self.cta_policy)
            for launch in run.trace:
                gpu.run_launch(
                    launch, run.classifications.get(launch.kernel_name))
            stats = gpu.stats
        analyzer = LocalityAnalyzer()
        locality = analyzer.analyze_application(run.trace,
                                                run.classifications)
        result = AppResult(
            name=name,
            category=workload.category,
            run=run,
            stats=stats,
            locality=locality,
            config=self.config,
        )
        self._cache[name] = result
        return result

    def results(self, names=None):
        """Results for several applications (default: all 15, Table I
        order).  With ``jobs > 1`` the uncached applications run in a
        process pool; result order always matches ``names`` order."""
        if names is None:
            names = workload_names()
        names = list(names)
        if self.jobs > 1:
            self._fill_parallel(names)
        return [self.result(name) for name in names]

    def _spec(self):
        """Constructor kwargs reproducing this runner in a worker."""
        return {
            "scale": self.scale,
            "config": self.config,
            "cta_policy": self.cta_policy,
            "simulate": self.simulate,
            "verify": self.verify,
            "jobs": 1,
            "use_trace_cache": self.use_trace_cache,
            "engine": self.engine,
        }

    def _fill_parallel(self, names):
        """Compute missing results for ``names`` in a process pool."""
        import concurrent.futures

        missing = [n for n in names if n not in self._cache]
        if len(missing) < 2:
            return
        spec = self._spec()
        workers = min(self.jobs, len(missing))
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            # executor.map preserves input order -> determinism.
            for name, result in zip(
                    missing,
                    pool.map(_run_single, [(name, spec) for name in missing])):
                self._cache[name] = result

    def clear(self):
        self._cache.clear()


def _run_single(job):
    """Worker entry point: compute one :class:`AppResult` in a child
    process (module-level so it pickles under the spawn start method)."""
    name, spec = job
    return ExperimentRunner(**spec).result(name)


#: process-wide default runner shared by the benchmark suite.
_default_runner: Optional[ExperimentRunner] = None


def default_runner():
    """The module-level shared runner (created on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner
