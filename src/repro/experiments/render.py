"""Plain-text rendering of experiment outputs.

The paper's figures are bar charts and line plots; the harness prints
the same data as aligned ASCII tables (one row per application or per
x-position) so the shape is inspectable from a terminal and diffable in
EXPERIMENTS.md.
"""

from __future__ import annotations



def format_table(headers, rows, title=None, floatfmt="%.3f"):
    """Render an aligned ASCII table.

    ``rows`` holds sequences whose items are strings or numbers; floats
    are formatted with ``floatfmt``.
    """
    def fmt(value):
        if isinstance(value, float):
            return floatfmt % value
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_bar(fraction, width=40, fill="#"):
    """A one-line horizontal bar for a [0, 1] fraction."""
    fraction = max(0.0, min(1.0, fraction))
    n = int(round(fraction * width))
    return fill * n + "." * (width - n)


def format_stacked(parts, total=None, width=40, symbols="#=+~o*"):
    """A stacked horizontal bar: ``parts`` is ``[(label, value), ...]``.

    Returns ``(bar, legend)``; each part gets its own fill symbol.
    """
    values = [max(0.0, float(v)) for _l, v in parts]
    total = total if total else sum(values)
    if total <= 0:
        return "." * width, ""
    bar = []
    for i, value in enumerate(values):
        n = int(round(width * value / total))
        bar.append(symbols[i % len(symbols)] * n)
    text = "".join(bar)[:width].ljust(width, ".")
    legend = "  ".join("%s=%s" % (symbols[i % len(symbols)], label)
                       for i, (label, _v) in enumerate(parts))
    return text, legend
