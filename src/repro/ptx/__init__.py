"""PTX-subset toolchain: ISA, parser, builder, kernels and CFGs.

This package provides the virtual-ISA layer the rest of the reproduction is
built on.  Workload kernels are written in PTX-subset text, parsed with
:func:`parse_kernel`/:func:`parse_module`, and handed to the classifier
(:mod:`repro.core`) and the emulator (:mod:`repro.emulator`).
"""

from .builder import KernelBuilder
from .cfg import CFG, BasicBlock, EXIT_BLOCK
from .errors import (
    PTXError,
    PTXSyntaxError,
    PTXValidationError,
    PTXVerificationError,
    UnknownOpcodeError,
)
from .isa import (
    PC_STRIDE,
    SPECIAL_REGISTERS,
    DType,
    Imm,
    Instruction,
    MemRef,
    Reg,
    Space,
    SReg,
    Sym,
    Unit,
    dtype_from_name,
    space_from_name,
    unit_for,
)
from .module import Kernel, Module, Param
from .parser import Parser, parse_kernel, parse_module
from .printer import print_kernel, print_module
from .verify import (
    Diagnostic,
    Severity,
    VerificationReport,
    check_module,
    verify_kernel,
    verify_module,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "EXIT_BLOCK",
    "KernelBuilder",
    "PTXError",
    "PTXSyntaxError",
    "PTXValidationError",
    "PTXVerificationError",
    "UnknownOpcodeError",
    "Diagnostic",
    "Severity",
    "VerificationReport",
    "check_module",
    "verify_kernel",
    "verify_module",
    "PC_STRIDE",
    "SPECIAL_REGISTERS",
    "DType",
    "Imm",
    "Instruction",
    "MemRef",
    "Reg",
    "Space",
    "SReg",
    "Sym",
    "Unit",
    "dtype_from_name",
    "space_from_name",
    "unit_for",
    "Kernel",
    "Module",
    "Param",
    "Parser",
    "parse_kernel",
    "parse_module",
    "print_kernel",
    "print_module",
]
