"""Kernel and module containers for the PTX subset.

A :class:`Kernel` is a finalized, flat instruction list with labels resolved
to instruction indices and byte PCs assigned.  It is the unit both the
dataflow classifier (:mod:`repro.core`) and the functional emulator
(:mod:`repro.emulator`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .errors import PTXValidationError
from .isa import PC_STRIDE, DType, Instruction, Sym


@dataclass(frozen=True)
class Param:
    """A kernel parameter as declared in the ``.entry`` signature.

    ``offset`` is the parameter's byte offset in the kernel parameter
    space; ``ld.param`` memrefs address parameters by symbol + offset.
    """

    name: str
    dtype: DType
    offset: int
    is_pointer: bool = False


class Kernel:
    """A finalized PTX-subset kernel.

    Parameters
    ----------
    name:
        Kernel (entry) name.
    params:
        Declared parameters, in order.
    instructions:
        Flat instruction list.  PCs are assigned here.
    labels:
        Mapping from label name to the index of the instruction the label
        precedes.
    shared_size:
        Bytes of statically declared ``.shared`` memory per CTA.
    """

    def __init__(self, name, params, instructions, labels, shared_size=0):
        self.name = name
        self.params: List[Param] = list(params)
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels)
        self.shared_size = shared_size
        self._param_by_name = {p.name: p for p in self.params}
        self._assign_pcs()
        self._validate()
        self._pc_index = {inst.pc: i for i, inst in enumerate(self.instructions)}

    # -- construction helpers ----------------------------------------------

    def _assign_pcs(self):
        for i, inst in enumerate(self.instructions):
            inst.pc = i * PC_STRIDE

    def _validate(self):
        if not self.instructions:
            raise PTXValidationError("kernel %r has no instructions" % self.name)
        for label, idx in self.labels.items():
            if not 0 <= idx < len(self.instructions):
                raise PTXValidationError(
                    "label %r points outside kernel %r" % (label, self.name))
        for inst in self.instructions:
            if inst.is_branch:
                if inst.target is None:
                    raise PTXValidationError("bra without target at pc=%#x" % inst.pc)
                if inst.target not in self.labels:
                    raise PTXValidationError(
                        "undefined label %r in kernel %r" % (inst.target, self.name))
            if inst.is_param_load:
                ref = inst.memref
                if ref is None or not isinstance(ref.base, Sym):
                    raise PTXValidationError(
                        "ld.param must address a named parameter (pc=%#x)" % inst.pc)
                if ref.base.name not in self._param_by_name:
                    raise PTXValidationError(
                        "unknown parameter %r in kernel %r" % (ref.base.name, self.name))
        if not self.instructions[-1].is_exit:
            raise PTXValidationError(
                "kernel %r must end with exit/ret" % self.name)

    # -- queries -------------------------------------------------------------

    def param(self, name):
        """Look up a declared parameter by name."""
        try:
            return self._param_by_name[name]
        except KeyError:
            raise PTXValidationError(
                "kernel %r has no parameter %r" % (self.name, name)) from None

    def index_of_pc(self, pc):
        """Instruction index for a byte PC."""
        try:
            return self._pc_index[pc]
        except KeyError:
            raise PTXValidationError("no instruction at pc=%#x" % pc) from None

    def instruction_at(self, pc):
        return self.instructions[self.index_of_pc(pc)]

    def target_index(self, inst):
        """Instruction index a branch jumps to."""
        return self.labels[inst.target]

    def global_loads(self):
        """All ``ld.global`` instructions, in program order."""
        return [i for i in self.instructions if i.is_global_load]

    def loads(self, space=None):
        """All loads, optionally restricted to one state space."""
        result = [i for i in self.instructions if i.is_load]
        if space is not None:
            result = [i for i in result if i.space is space]
        return result

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __repr__(self):
        return "Kernel(%r, %d params, %d insts)" % (
            self.name, len(self.params), len(self.instructions))

    def dump(self):
        """Pretty-print the kernel with PCs and labels (for debugging)."""
        index_labels = {}
        for label, idx in self.labels.items():
            index_labels.setdefault(idx, []).append(label)
        lines = [".entry %s(%s)" % (
            self.name,
            ", ".join(".param .%s %s" % (p.dtype.value, p.name) for p in self.params))]
        for i, inst in enumerate(self.instructions):
            for label in sorted(index_labels.get(i, ())):
                lines.append("%s:" % label)
            lines.append("  /*%04x*/ %s" % (inst.pc, inst))
        return "\n".join(lines)


@dataclass
class Module:
    """A collection of kernels, mirroring a PTX translation unit."""

    kernels: Dict[str, Kernel] = field(default_factory=dict)

    def add(self, kernel):
        if kernel.name in self.kernels:
            raise PTXValidationError("duplicate kernel %r" % kernel.name)
        self.kernels[kernel.name] = kernel
        return kernel

    def __getitem__(self, name):
        return self.kernels[name]

    def __iter__(self):
        return iter(self.kernels.values())

    def __len__(self):
        return len(self.kernels)
