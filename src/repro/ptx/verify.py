"""Static verification of parsed PTX-subset kernels.

The parser and :class:`~repro.ptx.module.Kernel` catch *structural*
problems (unknown opcodes, malformed operand lists, dangling labels).
This module is the semantic layer on top: a CFG-driven pass that checks
the properties the emulator and the classifier silently assume, and
reports violations as structured :class:`Diagnostic` records instead of
mid-run exceptions:

* operand shape and dtype consistency per opcode (operand counts,
  writable destinations, missing or impossible data types, atomic
  op/dtype combinations, ``mul``/``mad`` width modes);
* defined-before-use registers via reaching definitions (definitely
  undefined reads are errors; reads that are undefined only on *some*
  path — e.g. guarded by the matching predicate — are warnings);
* branch-target and parameter-reference validity, including
  ``ld.param`` accesses wider than the declared parameter;
* barrier well-formedness: a ``bar.sync`` that is guarded by a
  predicate, or that sits in the divergent region of a branch whose
  condition depends on ``%tid``/``%laneid`` or loaded data, can
  deadlock a warp and is flagged;
* unreachable blocks and blocks with no path to ``exit``.

Entry points: :func:`verify_kernel`, :func:`verify_module`, and
``parse_module(text, strict=True)`` which raises
:class:`~repro.ptx.errors.PTXVerificationError` when any error-severity
diagnostic is found.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Set

from .cfg import CFG, EXIT_BLOCK
from .errors import PTXVerificationError
from .isa import (
    ATOM_OPS,
    RED_OPS,
    DType,
    Imm,
    MemRef,
    Reg,
    Space,
    SReg,
    Sym,
)


class Severity(enum.Enum):
    """Diagnostic severity: errors fail ``strict`` parsing, warnings don't."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, attributable to a kernel and a PC.

    ``pc`` is the byte PC of the offending instruction, or ``-1`` for
    kernel-level findings (e.g. an unreachable block is attributed to
    its first instruction, so those do carry a PC).
    """

    kernel: str
    pc: int
    severity: Severity
    code: str
    message: str

    def format(self):
        where = ("%s+%#x" % (self.kernel, self.pc)) if self.pc >= 0 \
            else self.kernel
        return "%s: %s: [%s] %s" % (where, self.severity, self.code,
                                    self.message)

    def __str__(self):
        return self.format()


class VerificationReport:
    """All diagnostics produced for a module (or a single kernel)."""

    def __init__(self, diagnostics):
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    def errors(self):
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self):
        """True when no error-severity diagnostic was found."""
        return not self.errors()

    def for_kernel(self, name):
        return [d for d in self.diagnostics if d.kernel == name]

    def format(self):
        if not self.diagnostics:
            return "verification OK: no diagnostics"
        return "\n".join(d.format() for d in self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self):
        return len(self.diagnostics)


# ---------------------------------------------------------------------------
# opcode shape tables
# ---------------------------------------------------------------------------

#: exact source-operand counts the emulator's evaluators consume.
_SRC_COUNTS = {
    "mov": (1,), "cvt": (1,), "cvta": (1,),
    "add": (2,), "sub": (2,), "mul": (2,), "div": (2,), "rem": (2,),
    "min": (2,), "max": (2,), "and": (2,), "or": (2,), "xor": (2,),
    "shl": (2,), "shr": (2,),
    "mad": (3,), "fma": (3,),
    "abs": (1,), "neg": (1,), "not": (1,),
    "rcp": (1,), "sqrt": (1,), "rsqrt": (1,),
    "sin": (1,), "cos": (1,), "ex2": (1,), "lg2": (1,),
    "setp": (2,), "selp": (3,),
    "bar": (0, 1), "membar": (0,), "exit": (0,), "ret": (0,),
}

#: opcodes whose missing dtype the emulator tolerates by assuming 32 bits.
_DTYPE_OPTIONAL = frozenset(("mov", "cvta", "bar", "membar", "exit", "ret",
                             "bra"))

#: atomics with integer-only semantics.
_INT_ONLY_ATOMICS = frozenset(("and", "or", "xor", "inc", "dec", "cas"))

#: special registers whose value differs between the lanes of a warp.
_LANE_VARIANT_SREGS = frozenset(("%tid.x", "%tid.y", "%tid.z", "%laneid"))


# ---------------------------------------------------------------------------
# the verifier
# ---------------------------------------------------------------------------


class _KernelVerifier:
    """Runs every check over one finalized kernel."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.cfg = CFG(kernel)
        self.diags: List[Diagnostic] = []

    def run(self):
        self._check_instructions()
        self._check_defined_before_use()
        self._check_barriers()
        self._check_cfg()
        return self.diags

    # -- helpers -----------------------------------------------------------

    def _emit(self, inst_or_pc, severity, code, message):
        pc = inst_or_pc if isinstance(inst_or_pc, int) else inst_or_pc.pc
        self.diags.append(Diagnostic(
            kernel=self.kernel.name, pc=pc, severity=severity, code=code,
            message=message))

    def _error(self, inst, code, message):
        self._emit(inst, Severity.ERROR, code, message)

    def _warn(self, inst, code, message):
        self._emit(inst, Severity.WARNING, code, message)

    # -- per-instruction shape and type checks ------------------------------

    def _check_instructions(self):
        for inst in self.kernel.instructions:
            if inst.is_memory:
                self._check_memory(inst)
            elif inst.is_branch:
                self._check_branch(inst)
            else:
                self._check_alu(inst)

    def _check_operand_count(self, inst):
        allowed = _SRC_COUNTS.get(inst.opcode)
        if allowed is None or len(inst.srcs) in allowed:
            return True
        self._error(inst, "operand-count",
                    "%s expects %s source operand(s), got %d"
                    % (inst.opcode, " or ".join(map(str, allowed)),
                       len(inst.srcs)))
        return False

    def _check_dest(self, inst):
        for dest in inst.dests:
            if not isinstance(dest, Reg):
                self._error(inst, "bad-dest",
                            "destination of %s must be a register, got %s"
                            % (inst.opcode, type(dest).__name__.lower()))

    def _check_srcs_are_values(self, inst):
        for op in inst.srcs:
            if isinstance(op, (MemRef, Sym)):
                self._error(inst, "bad-operand",
                            "%s cannot read operand %s directly"
                            % (inst.opcode, op))
            elif isinstance(op, tuple):
                self._error(inst, "bad-operand",
                            "vector operand group is only valid on "
                            "ld/st, not %s" % inst.opcode)

    def _check_alu(self, inst):
        self._check_operand_count(inst)
        self._check_dest(inst)
        self._check_srcs_are_values(inst)
        if inst.opcode in ("exit", "ret", "membar"):
            return
        if inst.dtype is None:
            if inst.opcode not in _DTYPE_OPTIONAL:
                self._error(inst, "missing-dtype",
                            "%s requires a data-type suffix" % inst.opcode)
        elif inst.dtype is DType.PRED:
            if inst.opcode not in ("mov", "not", "and", "or", "xor", "setp",
                                   "selp"):
                self._error(inst, "bad-dtype",
                            "%s cannot operate on .pred values"
                            % inst.opcode)
        if inst.opcode == "setp" and inst.dtype is DType.PRED:
            self._error(inst, "bad-dtype",
                        "setp compares values, not predicates")
        if inst.mul_mode in ("wide", "hi") and inst.dtype is not None \
                and inst.dtype.is_float:
            self._error(inst, "bad-mul-mode",
                        "mul/mad .%s is integer-only, got .%s"
                        % (inst.mul_mode, inst.dtype.value))
        if inst.opcode in ("div", "rem"):
            divisor = inst.srcs[1] if len(inst.srcs) > 1 else None
            if isinstance(divisor, Imm) and divisor.value == 0:
                self._error(inst, "div-by-zero",
                            "%s with a constant zero divisor" % inst.opcode)

    def _check_branch(self, inst):
        # Kernel finalization already rejects missing/unknown targets;
        # re-check so hand-built or mutated kernels get a diagnostic
        # instead of a KeyError at emulation time.
        if inst.target is None:
            self._error(inst, "bad-branch", "bra without a target label")
        elif inst.target not in self.kernel.labels:
            self._error(inst, "bad-branch",
                        "bra to undefined label %r" % inst.target)

    def _check_memory(self, inst):
        if inst.dtype is None:
            self._error(inst, "missing-dtype",
                        "%s.%s requires a data-type suffix"
                        % (inst.opcode, inst.space.value if inst.space
                           else "?"))
        elif inst.dtype is DType.PRED:
            self._error(inst, "bad-dtype",
                        "memory operations cannot move .pred values")
        memref = inst.memref
        if memref is None:
            self._error(inst, "bad-address",
                        "%s without a [address] operand" % inst.opcode)
            return
        if inst.space is Space.PARAM:
            self._check_param_ref(inst, memref)
        elif isinstance(memref.base, Sym):
            self._error(inst, "bad-address-base",
                        "cannot address %s space through symbol %r"
                        % (inst.space.value, memref.base.name))
        if inst.is_atomic:
            self._check_atomic(inst)
        self._check_dest(inst)

    def _check_param_ref(self, inst, memref):
        if not inst.is_load:
            self._error(inst, "bad-space",
                        "%s cannot target the param space" % inst.opcode)
            return
        if not isinstance(memref.base, Sym):
            # Kernel._validate also rejects this; keep a diagnostic path.
            self._error(inst, "bad-address-base",
                        "ld.param must address a named parameter")
            return
        try:
            param = self.kernel.param(memref.base.name)
        except Exception:
            self._error(inst, "bad-param",
                        "unknown parameter %r" % memref.base.name)
            return
        if inst.dtype is None:
            return
        width = inst.dtype.nbytes * inst.vector
        if memref.offset + width > param.dtype.nbytes:
            self._error(inst, "param-width",
                        "ld.param.%s reads %d byte(s) at offset %d of "
                        "%d-byte parameter %r"
                        % (inst.dtype.value, width, memref.offset,
                           param.dtype.nbytes, param.name))

    def _check_atomic(self, inst):
        allowed = RED_OPS if inst.opcode == "red" else ATOM_OPS
        if inst.atom_op not in allowed:
            self._error(inst, "bad-atomic",
                        "unsupported %s operation %r"
                        % (inst.opcode, inst.atom_op))
            return
        if inst.dtype is not None and inst.dtype.is_float \
                and inst.atom_op in _INT_ONLY_ATOMICS:
            self._error(inst, "atomic-dtype",
                        "%s.%s is integer-only, got .%s"
                        % (inst.opcode, inst.atom_op, inst.dtype.value))
        needed = 3 if inst.atom_op == "cas" else 2
        if len(inst.srcs) < needed:
            self._error(inst, "operand-count",
                        "%s.%s expects %d operand(s) after the address"
                        % (inst.opcode, inst.atom_op, needed - 1))
        if inst.opcode == "red" and inst.dests:
            self._error(inst, "bad-dest",
                        "red returns no value but has a destination")

    # -- dataflow: defined before use ---------------------------------------

    def _check_defined_before_use(self):
        # local import: repro.core depends on repro.ptx, so pulling the
        # reaching-definitions machinery in at module import time would
        # create a cycle with the package __init__.
        from ..core.defuse import ENTRY, ReachingDefs

        defs = ReachingDefs(self.kernel, cfg=self.cfg)
        reachable = self._reachable_blocks()
        for index, inst in enumerate(self.kernel.instructions):
            if self.cfg.block_of(index).index not in reachable:
                continue  # unreachable code gets its own diagnostic
            for reg in inst.reads():
                if not isinstance(reg, Reg):
                    continue
                sites = defs.reaching(index, reg)
                if ENTRY not in sites:
                    continue
                if sites == frozenset((ENTRY,)):
                    self._error(inst, "undefined-register",
                                "register %s is read but never defined"
                                % reg.name)
                else:
                    self._warn(inst, "maybe-undefined-register",
                               "register %s may be read before definition "
                               "on some path" % reg.name)

    # -- barriers ------------------------------------------------------------

    def _uniform_registers(self):
        """Registers whose value is provably identical across the lanes
        of a warp: derived only from CTA-uniform special registers,
        immediates and kernel parameters.  Conservative fixpoint — any
        loaded or lane-variant input makes the result non-uniform."""
        # Optimistic start (every written register uniform), then a
        # removal-only fixpoint: a register becomes non-uniform when any
        # of its definitions has a non-uniform input.  Monotone, so the
        # loop terminates in O(defs * registers).
        uniform: Set[str] = set()
        for inst in self.kernel.instructions:
            for dest in inst.dests:
                if isinstance(dest, Reg):
                    uniform.add(dest.name)
        changed = True
        while changed:
            changed = False
            for inst in self.kernel.instructions:
                if not inst.dests:
                    continue
                if inst.is_memory:
                    src_ok = inst.is_param_load
                elif inst.is_branch or inst.is_exit:
                    continue
                else:
                    src_ok = all(self._operand_uniform(op, uniform)
                                 for op in inst.srcs)
                if inst.pred is not None and inst.pred[0].name not in uniform:
                    src_ok = False
                if src_ok:
                    continue
                for dest in inst.dests:
                    if isinstance(dest, Reg) and dest.name in uniform:
                        uniform.discard(dest.name)
                        changed = True
        return uniform

    @staticmethod
    def _operand_uniform(op, uniform):
        if isinstance(op, Imm):
            return True
        if isinstance(op, SReg):
            return op.name not in _LANE_VARIANT_SREGS
        if isinstance(op, Reg):
            return op.name in uniform
        return False

    def _divergent_region(self):
        """Block indices that may execute with a partially-active warp:
        every block strictly between a potentially-divergent branch and
        its reconvergence point."""
        uniform = self._uniform_registers()
        region: Set[int] = set()
        insts = self.kernel.instructions
        for index, inst in enumerate(insts):
            divergent = False
            if inst.is_branch and inst.pred is not None \
                    and inst.pred[0].name not in uniform:
                divergent = True
            if not divergent:
                continue
            reconv = self.cfg.reconvergence_index(index)
            stop = self.cfg.block_of(reconv).index if reconv is not None \
                else EXIT_BLOCK
            branch_block = self.cfg.block_of(index)
            frontier = list(branch_block.successors)
            seen = set()
            while frontier:
                b = frontier.pop()
                if b in seen or b == stop:
                    continue
                seen.add(b)
                region.add(b)
                frontier.extend(self.cfg.blocks[b].successors)
        return region

    def _check_barriers(self):
        barriers = [(i, inst) for i, inst in enumerate(self.kernel.instructions)
                    if inst.is_barrier]
        if not barriers:
            return
        divergent = self._divergent_region()
        for index, inst in enumerate(self.kernel.instructions):
            if not inst.is_barrier:
                continue
            if inst.pred is not None:
                self._warn(inst, "predicated-barrier",
                           "bar.sync under predicate %s%s may not be "
                           "reached by all threads"
                           % ("!" if inst.pred[1] else "", inst.pred[0]))
            if self.cfg.block_of(index).index in divergent:
                self._warn(inst, "divergent-barrier",
                           "bar.sync inside a potentially thread-divergent "
                           "region (branch condition depends on %tid or "
                           "loaded data)")

    # -- CFG-level checks -----------------------------------------------------

    def _reachable_blocks(self):
        seen = {0}
        frontier = [0]
        while frontier:
            b = frontier.pop()
            for s in self.cfg.blocks[b].successors:
                if s not in seen:
                    seen.add(s)
                    frontier.append(s)
        return seen

    def _check_cfg(self):
        reachable = self._reachable_blocks()
        exit_capable = self._blocks_reaching_exit()
        for block in self.cfg.blocks:
            first = self.kernel.instructions[block.start]
            if block.index not in reachable:
                self._warn(first, "unreachable",
                           "block starting at pc=%#x is unreachable"
                           % first.pc)
            elif block.index not in exit_capable:
                self._warn(first, "no-exit-path",
                           "block starting at pc=%#x cannot reach "
                           "exit (infinite loop?)" % first.pc)

    def _blocks_reaching_exit(self):
        exits = {b.index for b in self.cfg.exit_blocks()}
        preds = {b.index: list(b.predecessors) for b in self.cfg.blocks}
        seen = set(exits)
        frontier = list(exits)
        while frontier:
            b = frontier.pop()
            for p in preds[b]:
                if p not in seen:
                    seen.add(p)
                    frontier.append(p)
        return seen


def verify_kernel(kernel):
    """Verify one kernel; returns a list of :class:`Diagnostic`."""
    return _KernelVerifier(kernel).run()


def verify_module(module):
    """Verify every kernel of a module; returns a
    :class:`VerificationReport`."""
    diags: List[Diagnostic] = []
    for kernel in module:
        diags.extend(verify_kernel(kernel))
    return VerificationReport(diags)


def check_module(module):
    """Verify and raise :class:`PTXVerificationError` on any error."""
    report = verify_module(module)
    if not report.ok:
        raise PTXVerificationError(report)
    return report
