"""Instruction-set definition for the PTX subset used throughout the repo.

The paper's load classifier operates on NVIDIA PTX, the virtual ISA that
CUDA kernels are compiled to.  This module defines the portion of PTX that
the parser, the dataflow classifier and the functional emulator understand:

* scalar data types (``.u32``, ``.f32``, ...),
* state spaces (``.global``, ``.shared``, ``.param``, ...),
* operand kinds (registers, special registers, immediates, memory
  references, symbols),
* the :class:`Instruction` container, and
* opcode metadata: which functional unit executes an opcode and how its
  operands are laid out.

The subset is deliberately small but complete enough to express every
address-generation idiom the paper's analysis distinguishes: linear
``tid``/``ctaid`` arithmetic, parameter loads (``ld.param``), data-dependent
indexing through ``ld.global``/``ld.shared`` results, and atomics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from .errors import PTXValidationError, UnknownOpcodeError

# ---------------------------------------------------------------------------
# Data types
# ---------------------------------------------------------------------------


class DType(enum.Enum):
    """Scalar PTX data types supported by the subset."""

    U8 = "u8"
    S8 = "s8"
    U16 = "u16"
    S16 = "s16"
    U32 = "u32"
    S32 = "s32"
    U64 = "u64"
    S64 = "s64"
    B32 = "b32"
    B64 = "b64"
    F32 = "f32"
    F64 = "f64"
    PRED = "pred"

    @property
    def nbytes(self):
        """Size of a value of this type in bytes (predicates count as 1)."""
        return _DTYPE_SIZES[self]

    @property
    def is_float(self):
        return self in (DType.F32, DType.F64)

    @property
    def is_signed(self):
        return self in (DType.S8, DType.S16, DType.S32, DType.S64)

    @property
    def is_integer(self):
        return not self.is_float and self is not DType.PRED

    @property
    def bits(self):
        return self.nbytes * 8


_DTYPE_SIZES = {
    DType.U8: 1,
    DType.S8: 1,
    DType.U16: 2,
    DType.S16: 2,
    DType.U32: 4,
    DType.S32: 4,
    DType.U64: 8,
    DType.S64: 8,
    DType.B32: 4,
    DType.B64: 8,
    DType.F32: 4,
    DType.F64: 8,
    DType.PRED: 1,
}

_DTYPE_BY_NAME = {t.value: t for t in DType}


def dtype_from_name(name):
    """Look up a :class:`DType` from its PTX suffix (without the dot)."""
    try:
        return _DTYPE_BY_NAME[name]
    except KeyError:
        raise PTXValidationError("unknown data type: .%s" % name) from None


# ---------------------------------------------------------------------------
# State spaces
# ---------------------------------------------------------------------------


class Space(enum.Enum):
    """PTX state spaces relevant to load/store classification."""

    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"
    PARAM = "param"
    CONST = "const"
    TEX = "tex"

    @property
    def is_data_load_space(self):
        """Spaces whose loads make a dependent address *non-deterministic*.

        Per the paper (Section V): a load whose source register is defined
        from prior ``ld.global``, ``ld.local``, ``ld.shared`` or ``ld.tex``
        instructions is non-deterministic.  ``ld.param`` and ``ld.const``
        read launch-time parameters, which the paper treats as deterministic
        roots.
        """
        return self in (Space.GLOBAL, Space.SHARED, Space.LOCAL, Space.TEX)


_SPACE_BY_NAME = {s.value: s for s in Space}


def space_from_name(name):
    try:
        return _SPACE_BY_NAME[name]
    except KeyError:
        raise PTXValidationError("unknown state space: .%s" % name) from None


# ---------------------------------------------------------------------------
# Operands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reg:
    """A virtual general-purpose or predicate register, e.g. ``%r4``."""

    name: str

    def __str__(self):
        return self.name


# Special registers exposing launch-time parameterized values.  These are
# exactly the deterministic roots of the paper's backward dataflow:
# thread ids, CTA ids and grid/CTA dimensions.
SPECIAL_REGISTERS = frozenset(
    "%" + base + "." + axis
    for base in ("tid", "ntid", "ctaid", "nctaid")
    for axis in ("x", "y", "z")
) | frozenset(("%laneid", "%warpid", "%smid", "%gridid"))


@dataclass(frozen=True)
class SReg:
    """A special (read-only, launch-parameterized) register, e.g. ``%tid.x``."""

    name: str

    def __post_init__(self):
        if self.name not in SPECIAL_REGISTERS:
            raise PTXValidationError("unknown special register: %s" % self.name)

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate (literal) operand."""

    value: Union[int, float]

    def __str__(self):
        return repr(self.value)


@dataclass(frozen=True)
class Sym:
    """A symbol operand: a kernel parameter name or a branch label."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class MemRef:
    """A memory reference ``[base+offset]``.

    ``base`` is a :class:`Reg` holding the address, or a :class:`Sym` naming
    a kernel parameter (for ``ld.param``) / shared variable, or an
    :class:`Imm` absolute address.
    """

    base: Union[Reg, Sym, Imm]
    offset: int = 0

    def __str__(self):
        if self.offset:
            return "[%s+%d]" % (self.base, self.offset)
        return "[%s]" % (self.base,)


Operand = Union[Reg, SReg, Imm, Sym, MemRef]


# ---------------------------------------------------------------------------
# Functional units (for the timing model)
# ---------------------------------------------------------------------------


class Unit(enum.Enum):
    """The SM functional unit an opcode issues to (Section III of the paper)."""

    SP = "sp"        # stream processors: int / simple fp arithmetic
    SFU = "sfu"      # special function units: transcendental / division
    LDST = "ldst"    # load/store units
    CTRL = "ctrl"    # branches & barriers (handled by the issue stage)


# ---------------------------------------------------------------------------
# Opcode table
# ---------------------------------------------------------------------------

#: opcode -> default functional unit.
OPCODES = {
    # data movement
    "mov": Unit.SP,
    "cvt": Unit.SP,
    "cvta": Unit.SP,
    "ld": Unit.LDST,
    "st": Unit.LDST,
    "atom": Unit.LDST,
    "red": Unit.LDST,
    # integer / simple float arithmetic
    "add": Unit.SP,
    "sub": Unit.SP,
    "mul": Unit.SP,
    "mad": Unit.SP,
    "fma": Unit.SP,
    "div": Unit.SFU,
    "rem": Unit.SFU,
    "min": Unit.SP,
    "max": Unit.SP,
    "abs": Unit.SP,
    "neg": Unit.SP,
    "and": Unit.SP,
    "or": Unit.SP,
    "xor": Unit.SP,
    "not": Unit.SP,
    "shl": Unit.SP,
    "shr": Unit.SP,
    # transcendental (always SFU)
    "rcp": Unit.SFU,
    "sqrt": Unit.SFU,
    "rsqrt": Unit.SFU,
    "sin": Unit.SFU,
    "cos": Unit.SFU,
    "ex2": Unit.SFU,
    "lg2": Unit.SFU,
    # comparison / select
    "setp": Unit.SP,
    "selp": Unit.SP,
    # control
    "bra": Unit.CTRL,
    "bar": Unit.CTRL,
    "membar": Unit.CTRL,
    "exit": Unit.CTRL,
    "ret": Unit.CTRL,
}

#: comparison operators accepted by ``setp``.
CMP_OPS = frozenset(
    ("eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu")
)

#: atomic operations accepted by ``atom``.
ATOM_OPS = frozenset(("add", "min", "max", "exch", "cas", "and", "or", "xor", "inc", "dec"))

#: operations accepted by ``red`` (reductions return no value, so the
#: read-modify-write ops that only make sense with a result — ``exch``
#: and ``cas`` — are excluded, matching the PTX ISA).
RED_OPS = frozenset(("add", "min", "max", "and", "or", "xor", "inc", "dec"))

#: ``mul``/``mad`` width modifiers.
MUL_MODES = frozenset(("lo", "hi", "wide"))

#: rounding / approximation modifiers we accept and ignore semantically.
IGNORED_MODIFIERS = frozenset(
    ("approx", "full", "rn", "rz", "rm", "rp", "rni", "rzi", "sat", "ftz",
     "uni", "sync", "to", "cta", "gl", "sys", "volatile", "nc")
)


def unit_for(opcode):
    """Return the functional unit for ``opcode``.

    Raises :class:`UnknownOpcodeError` for opcodes outside the subset.
    """
    try:
        return OPCODES[opcode]
    except KeyError:
        raise UnknownOpcodeError(opcode) from None


# ---------------------------------------------------------------------------
# Instruction container
# ---------------------------------------------------------------------------

#: Byte distance between consecutive instruction PCs.  Real Fermi SASS uses
#: 8-byte instructions; using the same stride makes our reported PCs look
#: like the paper's (e.g. ``PC: 0x110`` in Figure 7).
PC_STRIDE = 8


@dataclass
class Instruction:
    """One decoded PTX-subset instruction.

    Attributes
    ----------
    opcode:
        Base opcode (``"ld"``, ``"add"``, ...).
    dtype:
        Operating data type, or ``None`` for typeless opcodes (``bra``).
    space:
        State space for memory opcodes, else ``None``.
    dests / srcs:
        Destination and source operand tuples.  ``st`` has no dests; its
        :class:`MemRef` lives in ``srcs[0]`` and the stored value in
        ``srcs[1]``.
    pred:
        Optional guard: ``(Reg, negated)`` — the instruction executes in a
        thread only when the predicate register is true (false if negated).
    cmp_op:
        Comparison operator for ``setp``.
    atom_op:
        Operation for ``atom``.
    mul_mode:
        ``lo``/``hi``/``wide`` for ``mul``/``mad``.
    vector:
        Vector width for ``ld``/``st`` (1, 2 or 4): ``ld.global.v4.f32``
        moves four consecutive elements per lane.
    target:
        Branch-target label for ``bra``.
    pc:
        Byte address assigned when the kernel is finalized.
    """

    opcode: str
    dtype: Optional[DType] = None
    space: Optional[Space] = None
    dests: Tuple[Operand, ...] = ()
    srcs: Tuple[Operand, ...] = ()
    pred: Optional[Tuple[Reg, bool]] = None
    cmp_op: Optional[str] = None
    atom_op: Optional[str] = None
    mul_mode: Optional[str] = None
    vector: int = 1
    target: Optional[str] = None
    pc: int = -1
    modifiers: Tuple[str, ...] = field(default_factory=tuple)
    #: 1-based source line in the PTX text the parser read this
    #: instruction from (0 for hand-built instructions).  Excluded from
    #: equality/repr so parse∘print round trips stay fixed points.
    line: int = field(default=0, repr=False, compare=False)
    # lazily computed register-name caches (hot path in the timing model)
    _read_names: Optional[Tuple[str, ...]] = field(
        default=None, repr=False, compare=False)
    _write_names: Optional[Tuple[str, ...]] = field(
        default=None, repr=False, compare=False)

    # -- classification helpers -------------------------------------------

    @property
    def unit(self):
        return unit_for(self.opcode)

    @property
    def is_load(self):
        return self.opcode == "ld"

    @property
    def is_store(self):
        return self.opcode == "st"

    @property
    def is_atomic(self):
        """``atom`` and ``red`` (a reduction is an atomic read-modify-
        write whose old value is discarded)."""
        return self.opcode in ("atom", "red")

    @property
    def is_memory(self):
        return self.opcode in ("ld", "st", "atom", "red")

    @property
    def is_global_load(self):
        return self.is_load and self.space is Space.GLOBAL

    @property
    def is_shared_load(self):
        return self.is_load and self.space is Space.SHARED

    @property
    def is_param_load(self):
        return self.is_load and self.space is Space.PARAM

    @property
    def is_branch(self):
        return self.opcode == "bra"

    @property
    def is_barrier(self):
        return self.opcode == "bar"

    @property
    def is_exit(self):
        return self.opcode in ("exit", "ret")

    @property
    def memref(self):
        """The :class:`MemRef` operand of a memory instruction, else ``None``."""
        if self.is_load or self.is_atomic:
            return self.srcs[0] if self.srcs and isinstance(self.srcs[0], MemRef) else None
        if self.is_store:
            return self.srcs[0] if self.srcs and isinstance(self.srcs[0], MemRef) else None
        return None

    def reads(self):
        """All register operands this instruction reads (incl. address bases
        and the guard predicate)."""
        regs = []
        if self.pred is not None:
            regs.append(self.pred[0])
        for op in self.srcs:
            if isinstance(op, (Reg, SReg)):
                regs.append(op)
            elif isinstance(op, MemRef) and isinstance(op.base, (Reg, SReg)):
                regs.append(op.base)
        return regs

    def writes(self):
        """All register operands this instruction defines."""
        return [op for op in self.dests if isinstance(op, Reg)]

    @property
    def read_reg_names(self):
        """Names of general-purpose registers this instruction reads
        (cached; excludes special registers, which are never hazards)."""
        if self._read_names is None:
            self._read_names = tuple(
                r.name for r in self.reads() if isinstance(r, Reg))
        return self._read_names

    @property
    def write_reg_names(self):
        """Names of registers this instruction defines (cached)."""
        if self._write_names is None:
            self._write_names = tuple(r.name for r in self.writes())
        return self._write_names

    # -- printing ----------------------------------------------------------

    def mnemonic(self):
        """The dotted opcode string, e.g. ``ld.global.u32``."""
        parts = [self.opcode]
        if self.atom_op:
            parts.append(self.atom_op)
        if self.cmp_op:
            parts.append(self.cmp_op)
        if self.space is not None:
            parts.append(self.space.value)
        if self.mul_mode:
            parts.append(self.mul_mode)
        if self.vector > 1:
            parts.append("v%d" % self.vector)
        parts.extend(self.modifiers)
        if self.dtype is not None:
            parts.append(self.dtype.value)
        return ".".join(parts)

    @property
    def access_bytes(self):
        """Bytes each lane moves for a memory instruction."""
        width = self.dtype.nbytes if self.dtype is not None else 4
        return width * self.vector

    def __str__(self):
        guard = ""
        if self.pred is not None:
            reg, negated = self.pred
            guard = "@%s%s " % ("!" if negated else "", reg)
        ops = list(self.dests) + list(self.srcs)
        if self.is_branch:
            body = "%s %s" % (self.mnemonic(), self.target)
        elif ops:
            body = "%s %s" % (self.mnemonic(), ", ".join(str(o) for o in ops))
        else:
            body = self.mnemonic()
        return "%s%s;" % (guard, body)
