"""Exception hierarchy for the PTX subset toolchain."""


class PTXError(Exception):
    """Base class for all errors raised by the :mod:`repro.ptx` package."""


class PTXSyntaxError(PTXError):
    """Raised when PTX text cannot be parsed.

    Carries the offending line number and the raw line so callers can
    produce a useful diagnostic.
    """

    def __init__(self, message, line_no=None, line=None):
        self.line_no = line_no
        self.line = line
        if line_no is not None:
            message = "line %d: %s" % (line_no, message)
        if line is not None:
            message = "%s\n    %s" % (message, line.strip())
        super().__init__(message)


class PTXValidationError(PTXError):
    """Raised when a structurally valid kernel violates a semantic rule
    (unknown label, duplicate label, ill-typed operand, ...)."""


class PTXVerificationError(PTXValidationError):
    """Raised by ``parse_module(strict=True)`` / ``check_module`` when the
    static verifier finds error-severity diagnostics.

    ``report`` is the full :class:`repro.ptx.verify.VerificationReport`,
    so callers can inspect every structured diagnostic rather than just
    the formatted message.
    """

    def __init__(self, report):
        self.report = report
        errors = report.errors()
        summary = "%d verification error(s)" % len(errors)
        super().__init__("%s\n%s" % (
            summary, "\n".join(d.format() for d in errors)))


class UnknownOpcodeError(PTXValidationError):
    """Raised when an instruction uses an opcode outside the supported subset."""

    def __init__(self, opcode):
        self.opcode = opcode
        super().__init__("unsupported opcode: %r" % (opcode,))
