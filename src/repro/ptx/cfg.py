"""Control-flow graph over a finalized kernel.

Two consumers need the CFG:

* the functional emulator uses **immediate post-dominators** as SIMT
  reconvergence points after divergent branches (the standard PDOM
  reconvergence scheme GPGPU-Sim implements), and
* the dataflow classifier iterates reaching definitions over blocks.

Blocks are half-open instruction-index ranges ``[start, end)`` of the
kernel's flat instruction list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


#: Virtual exit node id used in post-dominator computation.
EXIT_BLOCK = -1


@dataclass
class BasicBlock:
    """A maximal straight-line instruction range."""

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def __contains__(self, inst_index):
        return self.start <= inst_index < self.end

    def __repr__(self):
        return "BB%d[%d:%d]->%s" % (self.index, self.start, self.end,
                                    self.successors)


class CFG:
    """Control-flow graph of a :class:`repro.ptx.module.Kernel`."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.blocks: List[BasicBlock] = []
        self._block_of_inst: List[int] = []
        self._build()
        self._ipostdom: Optional[Dict[int, int]] = None

    # -- construction --------------------------------------------------------

    def _leaders(self):
        insts = self.kernel.instructions
        leaders = {0}
        for i, inst in enumerate(insts):
            if inst.is_branch:
                leaders.add(self.kernel.target_index(inst))
                if i + 1 < len(insts):
                    leaders.add(i + 1)
            elif inst.is_exit and i + 1 < len(insts):
                leaders.add(i + 1)
        # labels are also leaders: a label may be a join point reached only
        # by fallthrough today but it keeps block boundaries stable
        for idx in self.kernel.labels.values():
            if idx < len(insts):
                leaders.add(idx)
        return sorted(leaders)

    def _build(self):
        insts = self.kernel.instructions
        leaders = self._leaders()
        bounds = leaders + [len(insts)]
        start_to_block = {}
        for bi in range(len(leaders)):
            block = BasicBlock(index=bi, start=bounds[bi], end=bounds[bi + 1])
            self.blocks.append(block)
            start_to_block[block.start] = bi
        self._block_of_inst = [0] * len(insts)
        for block in self.blocks:
            for i in range(block.start, block.end):
                self._block_of_inst[i] = block.index

        for block in self.blocks:
            last = insts[block.end - 1]
            succs = []
            if last.is_branch:
                succs.append(start_to_block[self.kernel.target_index(last)])
                if last.pred is not None and block.end < len(insts):
                    succs.append(start_to_block[block.end])
            elif last.is_exit:
                if last.pred is not None and block.end < len(insts):
                    succs.append(start_to_block[block.end])
                # unpredicated exit: no successors (flows to virtual exit)
            elif block.end < len(insts):
                succs.append(start_to_block[block.end])
            block.successors = sorted(set(succs))
        for block in self.blocks:
            for s in block.successors:
                self.blocks[s].predecessors.append(block.index)

    # -- queries ---------------------------------------------------------------

    def block_of(self, inst_index):
        """The :class:`BasicBlock` containing instruction index ``inst_index``."""
        return self.blocks[self._block_of_inst[inst_index]]

    def exit_blocks(self):
        """Blocks that can leave the kernel (end in an ``exit``/``ret``)."""
        return [b for b in self.blocks
                if self.kernel.instructions[b.end - 1].is_exit]

    # -- post-dominators ---------------------------------------------------------

    def immediate_post_dominators(self):
        """``{block_index: ipdom_block_index}`` with :data:`EXIT_BLOCK` as the
        virtual sink.  Computed with the classic iterative algorithm on the
        reverse CFG (kernels are tiny, so O(n^2) iteration is fine)."""
        if self._ipostdom is not None:
            return self._ipostdom
        nodes = [b.index for b in self.blocks] + [EXIT_BLOCK]
        full = set(nodes)
        # reverse-graph successors: for post-dominance we walk predecessors
        rsucc = {b.index: list(b.successors) for b in self.blocks}
        for b in self.exit_blocks():
            rsucc[b.index] = rsucc[b.index] + [EXIT_BLOCK]
        rsucc[EXIT_BLOCK] = []

        pdom: Dict[int, Set[int]] = {n: set(full) for n in nodes}
        pdom[EXIT_BLOCK] = {EXIT_BLOCK}
        changed = True
        while changed:
            changed = False
            for n in nodes:
                if n == EXIT_BLOCK:
                    continue
                succs = rsucc[n]
                if succs:
                    new = set.intersection(*(pdom[s] for s in succs))
                else:
                    # unreachable-to-exit block (e.g. infinite loop): only
                    # itself post-dominates it
                    new = set()
                new = new | {n}
                if new != pdom[n]:
                    pdom[n] = new
                    changed = True

        ipdom: Dict[int, int] = {}
        for n in nodes:
            if n == EXIT_BLOCK:
                continue
            candidates = pdom[n] - {n}
            # the immediate post-dominator is the closest strict
            # post-dominator: the candidate that every other candidate
            # post-dominates
            best = None
            for c in candidates:
                if all(o == c or o in pdom[c] for o in candidates):
                    best = c
                    break
            ipdom[n] = best if best is not None else EXIT_BLOCK
        self._ipostdom = ipdom
        return ipdom

    def reconvergence_index(self, branch_inst_index):
        """Instruction index where threads diverged at ``branch_inst_index``
        reconverge, or ``None`` if they only rejoin at kernel exit."""
        block = self.block_of(branch_inst_index)
        ipdom = self.immediate_post_dominators()[block.index]
        if ipdom == EXIT_BLOCK:
            return None
        return self.blocks[ipdom].start

    def __len__(self):
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)
