"""Programmatic construction of PTX-subset kernels.

Writing PTX text is the primary authoring path for workloads, but tests and
generated kernels benefit from a small builder API::

    b = KernelBuilder("saxpy")
    x = b.param("x", "u64")
    n = b.param("n", "u32")
    tid = b.emit("mov.u32", b.reg("r", 1), b.sreg("%tid.x"))
    ...
    b.label("EXIT")
    b.emit("exit")
    kernel = b.build()

The builder performs the same finalization (PC assignment, label resolution,
validation) as the parser because both funnel into
:class:`repro.ptx.module.Kernel`.
"""

from __future__ import annotations

from typing import Dict, List

from .errors import PTXValidationError
from .isa import (
    ATOM_OPS,
    CMP_OPS,
    MUL_MODES,
    DType,
    Imm,
    Instruction,
    MemRef,
    Reg,
    SReg,
    Sym,
    dtype_from_name,
    space_from_name,
)
from .module import Kernel, Param


class KernelBuilder:
    """Incrementally assembles a :class:`Kernel`."""

    def __init__(self, name):
        self.name = name
        self._params: List[Param] = []
        self._param_offset = 0
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._shared_size = 0
        self._reg_counters: Dict[str, int] = {}

    # -- declarations ---------------------------------------------------------

    def param(self, name, dtype):
        """Declare a kernel parameter; returns its :class:`Sym`."""
        if isinstance(dtype, str):
            dtype = dtype_from_name(dtype)
        align = dtype.nbytes
        self._param_offset = (self._param_offset + align - 1) // align * align
        self._params.append(Param(
            name=name, dtype=dtype, offset=self._param_offset,
            is_pointer=dtype in (DType.U64, DType.B64)))
        self._param_offset += dtype.nbytes
        return Sym(name)

    def shared(self, nbytes):
        """Reserve ``nbytes`` of shared memory; returns the byte offset
        (as an :class:`Imm` usable as a shared-space base address)."""
        offset = (self._shared_size + 15) // 16 * 16
        self._shared_size = offset + nbytes
        return Imm(offset)

    # -- operand helpers --------------------------------------------------------

    def reg(self, prefix="r", number=None):
        """A register operand; auto-numbers per prefix when ``number`` is None."""
        if number is None:
            number = self._reg_counters.get(prefix, 0) + 1
            self._reg_counters[prefix] = number
        return Reg("%%%s%d" % (prefix, number))

    @staticmethod
    def sreg(name):
        return SReg(name)

    @staticmethod
    def imm(value):
        return Imm(value)

    @staticmethod
    def mem(base, offset=0):
        return MemRef(base=base, offset=offset)

    # -- emission ----------------------------------------------------------------

    def label(self, name):
        """Place a label before the next emitted instruction."""
        if name in self._labels:
            raise PTXValidationError("duplicate label %r" % name)
        self._labels[name] = len(self._instructions)
        return name

    def emit(self, mnemonic, *operands, pred=None, target=None):
        """Emit one instruction.

        ``mnemonic`` is the dotted opcode string (``"ld.global.u32"``).
        ``operands`` follow the same layout as parsed PTX (dest first).
        ``pred`` is ``(Reg, negated)`` or a :class:`Reg` (non-negated).
        Returns the destination operand for chaining convenience (or None).
        """
        tokens = mnemonic.split(".")
        inst = Instruction(opcode=tokens[0])
        modifiers = []
        for tok in tokens[1:]:
            if tok in ("param", "global", "shared", "local", "const", "tex") \
                    and inst.space is None and inst.is_memory:
                inst.space = space_from_name(tok)
            elif inst.opcode == "setp" and tok in CMP_OPS and inst.cmp_op is None:
                inst.cmp_op = tok
            elif inst.opcode in ("atom", "red") and tok in ATOM_OPS \
                    and inst.atom_op is None:
                inst.atom_op = tok
            elif inst.opcode in ("mul", "mad") and tok in MUL_MODES:
                inst.mul_mode = tok
            else:
                try:
                    dtype = dtype_from_name(tok)
                except PTXValidationError:
                    modifiers.append(tok)
                    continue
                if inst.dtype is None:
                    inst.dtype = dtype
                else:
                    modifiers.append(tok)
        inst.modifiers = tuple(modifiers)
        if pred is not None:
            inst.pred = pred if isinstance(pred, tuple) else (pred, False)
        if inst.is_branch:
            if target is None:
                raise PTXValidationError("bra needs target=")
            inst.target = target
        elif inst.is_store or inst.opcode == "red":
            inst.srcs = tuple(operands)
        elif inst.is_load or inst.is_atomic:
            inst.dests = (operands[0],)
            inst.srcs = tuple(operands[1:])
        elif operands:
            inst.dests = (operands[0],)
            inst.srcs = tuple(operands[1:])
        self._instructions.append(inst)
        return inst.dests[0] if inst.dests else None

    # -- finalization ----------------------------------------------------------------

    def build(self):
        """Finalize into an immutable-ish :class:`Kernel` (validates)."""
        return Kernel(self.name, self._params, self._instructions,
                      self._labels, shared_size=self._shared_size)
