"""Emit PTX-subset text from a :class:`Kernel` — parseable back.

The printer closes the loop ``text -> Kernel -> text``: the emitted
source re-parses to an equivalent kernel (same instruction stream, same
labels, same classification).  Shared-memory buffers lose their original
names during parsing (symbols are resolved to byte offsets), so the
printer declares one anonymous ``__smem`` buffer covering the kernel's
shared size; offset-valued immediates address into it exactly as the
resolved originals did.
"""

from __future__ import annotations


from .isa import DType, Imm, MemRef


def _format_operand(op):
    if isinstance(op, MemRef):
        if op.offset:
            return "[%s+%d]" % (_format_operand(op.base), op.offset)
        return "[%s]" % _format_operand(op.base)
    if isinstance(op, Imm):
        if isinstance(op.value, float):
            return repr(float(op.value))
        return str(int(op.value))
    return str(op)


def _mnemonic(inst):
    """Dotted opcode with suffixes in parser-canonical order: the
    operating dtype must precede any secondary dtype modifiers so the
    parser re-assigns them identically."""
    parts = [inst.opcode]
    if inst.cmp_op:
        parts.append(inst.cmp_op)
    if inst.atom_op:
        parts.append(inst.atom_op)
    if inst.space is not None:
        parts.append(inst.space.value)
    if inst.mul_mode:
        parts.append(inst.mul_mode)
    # non-dtype modifiers (e.g. "sync") go before the dtype; dtype-valued
    # modifiers (cvt's source type) after it
    if inst.vector > 1:
        parts.append("v%d" % inst.vector)
    dtype_mods = []
    for mod in inst.modifiers:
        try:
            DType(mod)
            dtype_mods.append(mod)
        except ValueError:
            parts.append(mod)
    if inst.dtype is not None:
        parts.append(inst.dtype.value)
    parts.extend(dtype_mods)
    return ".".join(parts)


def _format_instruction(inst):
    guard = ""
    if inst.pred is not None:
        reg, negated = inst.pred
        guard = "@%s%s " % ("!" if negated else "", reg.name)
    if inst.is_branch:
        return "%s%s %s;" % (guard, _mnemonic(inst), inst.target)
    if inst.vector > 1 and inst.is_load:
        group = "{%s}" % ", ".join(_format_operand(d) for d in inst.dests)
        return "%s%s %s, %s;" % (guard, _mnemonic(inst), group,
                                 _format_operand(inst.srcs[0]))
    if inst.vector > 1 and inst.is_store:
        group = "{%s}" % ", ".join(_format_operand(s)
                                   for s in inst.srcs[1:])
        return "%s%s %s, %s;" % (guard, _mnemonic(inst),
                                 _format_operand(inst.srcs[0]), group)
    operands = [_format_operand(op)
                for op in list(inst.dests) + list(inst.srcs)]
    if operands:
        return "%s%s %s;" % (guard, _mnemonic(inst), ", ".join(operands))
    return "%s%s;" % (guard, _mnemonic(inst))


def print_kernel(kernel):
    """Render one kernel as parseable PTX-subset text."""
    params = ", ".join(".param .%s %s" % (p.dtype.value, p.name)
                       for p in kernel.params)
    lines = [".entry %s ( %s )" % (kernel.name, params), "{"]
    if kernel.shared_size > 0:
        lines.append("    .shared .u8 __smem[%d];" % kernel.shared_size)
    labels_at = {}
    for label, index in kernel.labels.items():
        labels_at.setdefault(index, []).append(label)
    for index, inst in enumerate(kernel.instructions):
        for label in sorted(labels_at.get(index, ())):
            lines.append("%s:" % label)
        lines.append("    %s" % _format_instruction(inst))
    for label in sorted(labels_at.get(len(kernel.instructions), ())):
        lines.append("%s:" % label)
    lines.append("}")
    return "\n".join(lines)


def print_module(module):
    """Render every kernel of a module."""
    return "\n\n".join(print_kernel(k) for k in module)
