"""Text parser for the PTX subset.

The workloads in :mod:`repro.workloads` are written as PTX-subset text and
parsed here into :class:`repro.ptx.module.Kernel` objects.  The accepted
grammar mirrors real PTX closely enough that snippets lifted from actual
``nvcc`` output (modulo unsupported opcodes) parse unchanged::

    .entry bfs_kernel (
        .param .u64 g_graph_mask,
        .param .u32 no_of_nodes
    )
    {
        .reg .u32 %r<16>;
        .shared .b8 sdata[512];
        mov.u32        %r1, %ctaid.x;
        mad.lo.u32     %r3, %r1, 256, %r2;
        ld.param.u64   %rd1, [g_graph_mask];
        setp.ge.u32    %p1, %r3, %r4;
    @%p1 bra           EXIT;
        ld.global.u32  %r5, [%rd4+4];
    EXIT:
        exit;
    }

Supported directives: ``.entry``, ``.param`` (in the signature), ``.reg``
(ignored), ``.shared`` (named buffers; symbol references are resolved to
byte offsets in the CTA's shared space).
"""

from __future__ import annotations

import re
from typing import Dict, List

from .errors import PTXSyntaxError, PTXValidationError
from .isa import (
    ATOM_OPS,
    CMP_OPS,
    IGNORED_MODIFIERS,
    MUL_MODES,
    OPCODES,
    SPECIAL_REGISTERS,
    DType,
    Imm,
    Instruction,
    MemRef,
    Reg,
    SReg,
    Sym,
    dtype_from_name,
    space_from_name,
)
from .module import Kernel, Module, Param

_COMMENT_BLOCK = re.compile(r"/\*.*?\*/", re.S)
_COMMENT_LINE = re.compile(r"//[^\n]*")

_ENTRY_RE = re.compile(r"\.entry\s+([A-Za-z_][\w$]*)\s*\(")
_PARAM_RE = re.compile(r"\.param\s+\.(\w+)\s+([A-Za-z_][\w$]*)")
_SHARED_RE = re.compile(
    r"\.shared\s+\.align\s+\d+\s+\.(\w+)\s+([A-Za-z_][\w$]*)\s*\[(\d+)\]\s*;"
    r"|\.shared\s+\.(\w+)\s+([A-Za-z_][\w$]*)\s*\[(\d+)\]\s*;")
_REG_DECL_RE = re.compile(r"\.reg\s+[^;]*;")
_LABEL_RE = re.compile(r"^([A-Za-z_$][\w$]*)\s*:\s*(.*)$")
_GUARD_RE = re.compile(r"^@(!?)(%p\w+)\s+(.*)$")
_MEMREF_RE = re.compile(r"^\[\s*([^\]\s+]+)\s*(?:\+\s*(-?(?:0x[0-9a-fA-F]+|\d+)))?\s*\]$")
_INT_RE = re.compile(r"^-?(?:0x[0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^-?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?$")


def _strip_comments(text):
    text = _COMMENT_BLOCK.sub(" ", text)
    return _COMMENT_LINE.sub("", text)


def _split_operands(text):
    """Split an operand list on commas that are not inside brackets or
    vector braces."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


class _KernelText:
    """The raw text of one kernel body plus its signature."""

    def __init__(self, name, param_text, body, line_no):
        self.name = name
        self.param_text = param_text
        self.body = body
        self.line_no = line_no


def _split_kernels(text):
    """Find every ``.entry name ( ... ) { ... }`` region in the module text."""
    kernels = []
    pos = 0
    while True:
        m = _ENTRY_RE.search(text, pos)
        if not m:
            break
        name = m.group(1)
        # signature: up to the matching close paren
        depth, i = 1, m.end()
        while i < len(text) and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        if depth:
            raise PTXSyntaxError("unterminated parameter list for %r" % name)
        param_text = text[m.end():i - 1]
        # body: next '{' to its matching '}'
        open_idx = text.find("{", i)
        if open_idx < 0:
            raise PTXSyntaxError("missing body for kernel %r" % name)
        depth, j = 1, open_idx + 1
        while j < len(text) and depth:
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
            j += 1
        if depth:
            raise PTXSyntaxError("unterminated body for kernel %r" % name)
        body = text[open_idx + 1:j - 1]
        line_no = text.count("\n", 0, m.start()) + 1
        kernels.append(_KernelText(name, param_text, body, line_no))
        pos = j
    return kernels


class Parser:
    """Parses PTX-subset text into :class:`Kernel`/:class:`Module` objects."""

    def parse_module(self, text, strict=False):
        """Parse a translation unit; returns a :class:`Module`.

        With ``strict=True`` the static verifier
        (:mod:`repro.ptx.verify`) runs over the parsed module and any
        error-severity diagnostic raises
        :class:`~repro.ptx.errors.PTXVerificationError`.
        """
        clean = _strip_comments(text)
        module = Module()
        regions = _split_kernels(clean)
        if not regions:
            raise PTXSyntaxError("no .entry kernel found")
        for region in regions:
            module.add(self._parse_kernel(region))
        if strict:
            from .verify import check_module
            check_module(module)
        return module

    def parse_kernel(self, text, strict=False):
        """Parse text containing exactly one kernel; returns the :class:`Kernel`."""
        module = self.parse_module(text, strict=strict)
        kernels = list(module)
        if len(kernels) != 1:
            raise PTXSyntaxError(
                "expected exactly one kernel, found %d" % len(kernels))
        return kernels[0]

    # -- kernel-level parsing ------------------------------------------------

    def _parse_kernel(self, region):
        params = self._parse_params(region.param_text)
        body = _REG_DECL_RE.sub("", region.body)
        shared_vars, shared_size, body = self._collect_shared(body)

        instructions: List[Instruction] = []
        labels: Dict[str, int] = {}
        pending_labels: List[str] = []

        for line_no, raw in enumerate(body.split("\n"), region.line_no):
            line = raw.strip()
            while line:
                m = _LABEL_RE.match(line)
                if m and m.group(1) not in OPCODES:
                    label = m.group(1)
                    if label in labels or label in pending_labels:
                        raise PTXSyntaxError("duplicate label %r" % label,
                                             line_no, raw)
                    pending_labels.append(label)
                    line = m.group(2).strip()
                    continue
                break
            if not line:
                continue
            for stmt in line.split(";"):
                stmt = stmt.strip()
                if not stmt:
                    continue
                inst = self._parse_instruction(stmt, shared_vars, line_no, raw)
                for label in pending_labels:
                    labels[label] = len(instructions)
                pending_labels = []
                instructions.append(inst)
        if pending_labels:
            # trailing labels point past the end; anchor them on an implicit
            # exit if the author forgot one — otherwise validation will fail.
            for label in pending_labels:
                labels[label] = len(instructions)
            instructions.append(Instruction(opcode="exit"))
        return Kernel(region.name, params, instructions, labels,
                      shared_size=shared_size)

    def _parse_params(self, text):
        params = []
        offset = 0
        for m in _PARAM_RE.finditer(text):
            dtype = dtype_from_name(m.group(1))
            # parameters are aligned to their own size, like real PTX
            align = dtype.nbytes
            offset = (offset + align - 1) // align * align
            params.append(Param(name=m.group(2), dtype=dtype, offset=offset,
                                is_pointer=dtype in (DType.U64, DType.B64)))
            offset += dtype.nbytes
        return params

    def _collect_shared(self, body):
        """Extract ``.shared`` buffer declarations; returns (vars, size, body)."""
        shared_vars: Dict[str, int] = {}
        offset = 0

        def _replace(m):
            nonlocal offset
            dtype_name = m.group(1) or m.group(4)
            name = m.group(2) or m.group(5)
            count = int(m.group(3) or m.group(6))
            dtype = dtype_from_name(dtype_name)
            offset = (offset + 15) // 16 * 16  # 16-byte align each buffer
            shared_vars[name] = offset
            offset += count * dtype.nbytes
            return ""

        body = _SHARED_RE.sub(_replace, body)
        return shared_vars, offset, body

    # -- instruction-level parsing --------------------------------------------

    def _parse_instruction(self, stmt, shared_vars, line_no, raw):
        pred = None
        m = _GUARD_RE.match(stmt)
        if m:
            pred = (Reg(m.group(2)), m.group(1) == "!")
            stmt = m.group(3).strip()

        parts = stmt.split(None, 1)
        mnemonic = parts[0]
        operand_text = parts[1] if len(parts) > 1 else ""

        tokens = mnemonic.split(".")
        opcode = tokens[0]
        if opcode not in OPCODES:
            raise PTXSyntaxError("unsupported opcode %r" % opcode, line_no, raw)
        inst = Instruction(opcode=opcode, pred=pred, line=line_no)
        self._apply_suffixes(inst, tokens[1:], line_no, raw)

        operands = [self._parse_operand(t, inst, shared_vars, line_no, raw)
                    for t in _split_operands(operand_text)]
        self._assign_operands(inst, operands, line_no, raw)
        return inst

    def _apply_suffixes(self, inst, suffixes, line_no, raw):
        modifiers = []
        for tok in suffixes:
            if tok in ("param", "global", "shared", "local", "const", "tex") \
                    and inst.space is None and inst.is_memory:
                inst.space = space_from_name(tok)
            elif inst.opcode == "setp" and tok in CMP_OPS and inst.cmp_op is None:
                inst.cmp_op = tok
            elif inst.opcode in ("atom", "red") and tok in ATOM_OPS \
                    and inst.atom_op is None:
                inst.atom_op = tok
            elif inst.opcode in ("mul", "mad") and tok in MUL_MODES:
                inst.mul_mode = tok
            elif tok in ("v2", "v4") and inst.opcode in ("ld", "st"):
                inst.vector = int(tok[1])
            elif tok in IGNORED_MODIFIERS:
                modifiers.append(tok)
            else:
                try:
                    dtype = dtype_from_name(tok)
                except PTXValidationError:
                    raise PTXSyntaxError(
                        "unknown suffix .%s on %s" % (tok, inst.opcode),
                        line_no, raw) from None
                if inst.dtype is None:
                    inst.dtype = dtype
                else:
                    # second type suffix (e.g. cvt.u64.u32): keep as modifier
                    modifiers.append(tok)
        inst.modifiers = tuple(modifiers)
        if inst.opcode == "setp" and inst.cmp_op is None:
            raise PTXSyntaxError("setp requires a comparison op", line_no, raw)
        if inst.opcode in ("atom", "red") and inst.atom_op is None:
            raise PTXSyntaxError("%s requires an operation" % inst.opcode,
                                 line_no, raw)
        if inst.is_memory and inst.space is None:
            raise PTXSyntaxError(
                "%s requires a state space" % inst.opcode, line_no, raw)

    def _parse_operand(self, text, inst, shared_vars, line_no, raw):
        if text.startswith("{") and text.endswith("}"):
            # vector register group: {%f1, %f2, ...}
            inner = [t.strip() for t in text[1:-1].split(",") if t.strip()]
            return tuple(self._parse_scalar(t, shared_vars, line_no, raw)
                         for t in inner)
        m = _MEMREF_RE.match(text)
        if m:
            base = self._parse_scalar(m.group(1), shared_vars, line_no, raw,
                                      memref_of=inst)
            offset = int(m.group(2), 0) if m.group(2) else 0
            return MemRef(base=base, offset=offset)
        return self._parse_scalar(text, shared_vars, line_no, raw)

    def _parse_scalar(self, text, shared_vars, line_no, raw, memref_of=None):
        if text.startswith("%"):
            if text in SPECIAL_REGISTERS:
                return SReg(text)
            return Reg(text)
        if _INT_RE.match(text):
            return Imm(int(text, 0))
        if _FLOAT_RE.match(text):
            return Imm(float(text))
        if text in shared_vars:
            # shared-buffer symbol: resolves to its byte offset in the CTA's
            # shared space (both as an address operand and as a mov source)
            return Imm(shared_vars[text])
        if re.match(r"^[A-Za-z_$][\w$]*$", text):
            return Sym(text)
        raise PTXSyntaxError("cannot parse operand %r" % text, line_no, raw)

    def _assign_operands(self, inst, operands, line_no, raw):
        if inst.is_store:
            if len(operands) != 2 or not isinstance(operands[0], MemRef):
                raise PTXSyntaxError("st expects [addr], value", line_no, raw)
            values = operands[1]
            if inst.vector > 1:
                if not isinstance(values, tuple) \
                        or len(values) != inst.vector:
                    raise PTXSyntaxError(
                        "st.v%d expects a {...} group of %d registers"
                        % (inst.vector, inst.vector), line_no, raw)
                inst.srcs = (operands[0],) + values
            else:
                inst.srcs = tuple(operands)
        elif inst.is_load:
            if len(operands) != 2 or not isinstance(operands[1], MemRef):
                raise PTXSyntaxError("ld expects dest, [addr]", line_no, raw)
            dests = operands[0]
            if inst.vector > 1:
                if not isinstance(dests, tuple) \
                        or len(dests) != inst.vector:
                    raise PTXSyntaxError(
                        "ld.v%d expects a {...} group of %d registers"
                        % (inst.vector, inst.vector), line_no, raw)
                inst.dests = dests
            else:
                inst.dests = (dests,)
            inst.srcs = (operands[1],)
        elif inst.opcode == "red":
            # a reduction returns no value: red.op [addr], operand
            if len(operands) < 2 or not isinstance(operands[0], MemRef):
                raise PTXSyntaxError("red expects [addr], value", line_no,
                                     raw)
            inst.srcs = tuple(operands)
        elif inst.is_atomic:
            if len(operands) < 2 or not isinstance(operands[1], MemRef):
                raise PTXSyntaxError("atom expects dest, [addr], ...", line_no, raw)
            inst.dests = (operands[0],)
            inst.srcs = tuple(operands[1:])
        elif inst.is_branch:
            if len(operands) != 1 or not isinstance(operands[0], Sym):
                raise PTXSyntaxError("bra expects a label", line_no, raw)
            inst.target = operands[0].name
        elif inst.opcode in ("bar", "membar", "exit", "ret"):
            inst.srcs = tuple(operands)
        else:
            if not operands:
                raise PTXSyntaxError(
                    "%s expects operands" % inst.opcode, line_no, raw)
            inst.dests = (operands[0],)
            inst.srcs = tuple(operands[1:])


def parse_module(text, strict=False):
    """Convenience wrapper: parse a multi-kernel translation unit.

    ``strict=True`` additionally runs the static verifier and raises
    :class:`~repro.ptx.errors.PTXVerificationError` on any error.
    """
    return Parser().parse_module(text, strict=strict)


def parse_kernel(text, strict=False):
    """Convenience wrapper: parse text containing exactly one kernel."""
    return Parser().parse_kernel(text, strict=strict)
