"""Trace-based correctness analyses.

The paper's load classification and locality statistics are only as
trustworthy as the emulator traces beneath them; this package checks
those traces for the synchronization bugs GPU kernels actually harbor —
shared-memory data races, inter-CTA write conflicts and barrier misuse
— using the barrier-interval happens-before model (DESIGN.md §10).
"""

from .races import (
    RaceFinding,
    RaceKind,
    RaceReport,
    analyze_launch,
    analyze_trace,
    analyze_workload,
)

__all__ = [
    "RaceFinding",
    "RaceKind",
    "RaceReport",
    "analyze_launch",
    "analyze_trace",
    "analyze_workload",
]
