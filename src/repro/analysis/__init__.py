"""Trace-based correctness analyses.

The paper's load classification and locality statistics are only as
trustworthy as the emulator traces beneath them; this package checks
those traces for the synchronization bugs GPU kernels actually harbor —
shared-memory data races, inter-CTA write conflicts and barrier misuse
— using two detectors: the barrier-interval baseline (DESIGN.md §10)
and the predictive happens-before mode (DESIGN.md §14), which models
atomics and memory fences as synchronization and predicts races the
observed schedule serialized.
"""

from .predictive import analyze_trace_predictive
from .races import (
    RaceFinding,
    RaceKind,
    RaceReport,
    analyze_launch,
    analyze_trace,
    analyze_workload,
)

__all__ = [
    "RaceFinding",
    "RaceKind",
    "RaceReport",
    "analyze_launch",
    "analyze_trace",
    "analyze_trace_predictive",
    "analyze_workload",
]
