"""Barrier-interval happens-before race detection over emulator traces.

The detector replays each kernel launch's memory events from the
schema-v2 trace (per-lane addresses for every space, stored values for
stores) and reports:

* **shared-race** — two accesses to the same shared-memory element in
  the same barrier interval of the same CTA, from different threads, at
  least one a plain (non-``atom``) store.  The barrier interval of an
  access is the number of ``bar.sync`` ops its warp has executed; two
  accesses in the same interval have no happens-before edge, so their
  order — and the result — is schedule-dependent.
* **global-write-conflict** — two plain global stores to the same
  element from *different CTAs* writing *different values*.  CTAs share
  no synchronization primitive, so differing-value overlap is always a
  conflict; same-value overlap (convergence flags, same-level frontier
  writes) is the benign idiom the paper's workloads rely on and is not
  flagged — which is why the trace schema carries store values.
* **divergent-barrier** — a ``bar.sync`` executed with an active mask
  smaller than the warp's live (non-exited) lanes: some live threads
  took a path around the barrier their siblings are waiting at.
* **barrier-mismatch** — two warps of one CTA that both synchronize but
  execute different numbers of barriers (a warp that exits without ever
  synchronizing is the benign guard-then-exit idiom and does not
  count).
* **uninit-shared-read** — a shared-memory read with no
  happens-before-ordered prior write: no write to the element in an
  earlier barrier interval by any thread, and none earlier in the
  reading warp's own program order.

Soundness limits are documented in DESIGN.md §10: the analysis is per
dynamic trace (one input, one schedule), element-granular (mixed-width
aliasing of overlapping accesses at different base addresses is not
correlated), and deliberately silent on inter-CTA read/write sharing —
that is the paper's §VII inter-CTA read locality, not a bug.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._bits import lanes_of
from ..emulator.columnar import (
    _PC_SHIFT,
    KIND_NONE,
    SPACE_CODES,
    decode_value,
)
from ..obs import tracing
from ..obs.metrics import get_registry
from ..ptx.isa import Space


class RaceKind:
    """Finding categories (string constants so reports stay JSON-plain).

    The first five are produced by both detector modes; the last two
    only by the predictive happens-before mode
    (:mod:`repro.analysis.predictive`), which sees conflicts the
    barrier-interval baseline is structurally blind to.
    """

    SHARED_RACE = "shared-race"
    GLOBAL_WRITE_CONFLICT = "global-write-conflict"
    DIVERGENT_BARRIER = "divergent-barrier"
    BARRIER_MISMATCH = "barrier-mismatch"
    UNINIT_SHARED_READ = "uninit-shared-read"
    # predictive-mode-only kinds
    ATOMIC_PLAIN_RACE = "atomic-plain-race"
    PREDICTED_GLOBAL_RACE = "predicted-global-race"

    ALL = (SHARED_RACE, GLOBAL_WRITE_CONFLICT, DIVERGENT_BARRIER,
           BARRIER_MISMATCH, UNINIT_SHARED_READ, ATOMIC_PLAIN_RACE,
           PREDICTED_GLOBAL_RACE)


@dataclass
class RaceFinding:
    """One deduplicated detector finding.

    Findings are aggregated by ``(kind, kernel, pc, other_pc)``;
    ``count`` tallies the dynamic occurrences and the positional fields
    (launch/cta/address/lanes/interval) describe the *first* occurrence.
    ``lanes`` holds the involved threads as ``(warp, lane)`` pairs.
    """

    kind: str
    kernel: str
    pc: Optional[int]
    other_pc: Optional[int]
    launch: int
    cta: int
    address: Optional[int]
    lanes: Tuple[Tuple[int, int], ...]
    interval: Optional[int]
    detail: str
    dn_class: Optional[str] = None
    count: int = 1

    def key(self):
        return (self.kind, self.kernel, self.pc, self.other_pc)

    def to_json(self):
        return {
            "kind": self.kind, "kernel": self.kernel,
            "pc": self.pc, "other_pc": self.other_pc,
            "launch": self.launch, "cta": self.cta,
            "address": self.address,
            "lanes": [list(pair) for pair in self.lanes],
            "interval": self.interval, "detail": self.detail,
            "class": self.dn_class, "count": self.count,
        }

    def format(self):
        def hx(v):
            return "-" if v is None else "%#x" % v
        lanes = "/".join("w%d.l%d" % pair for pair in self.lanes) or "-"
        extra = "" if self.interval is None else " interval=%d" % self.interval
        cls = "" if self.dn_class is None else " class=%s" % self.dn_class
        return ("[%s] kernel=%s pc=%s other=%s launch=%d cta=%d addr=%s "
                "lanes=%s%s%s count=%d — %s"
                % (self.kind, self.kernel, hx(self.pc), hx(self.other_pc),
                   self.launch, self.cta, hx(self.address), lanes, extra,
                   cls, self.count, self.detail))


@dataclass
class RaceReport:
    """All findings for one application trace."""

    app: str
    findings: List[RaceFinding] = field(default_factory=list)
    launches: int = 0
    ops_checked: int = 0

    @property
    def clean(self):
        return not self.findings

    def by_kind(self, kind):
        return [f for f in self.findings if f.kind == kind]

    def counts_by_kind(self):
        counts = {}
        for f in self.findings:
            counts[f.kind] = counts.get(f.kind, 0) + f.count
        return counts

    def to_json(self):
        return {
            "app": self.app,
            "launches": self.launches,
            "ops_checked": self.ops_checked,
            "clean": self.clean,
            "findings": [f.to_json() for f in self.findings],
        }

    def format(self):
        head = ("%s: analyzed %d launch(es), %d memory op(s)"
                % (self.app, self.launches, self.ops_checked))
        if self.clean:
            return head + " — clean"
        lines = [head + " — %d finding(s)" % len(self.findings)]
        lines.extend(f.format() for f in self.findings)
        return "\n".join(lines)

    def write_json(self, path):
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


# ---------------------------------------------------------------------------
# trace replay helpers
# ---------------------------------------------------------------------------

_FLOAT_FMT = {2: "<e", 4: "<f", 8: "<d"}


def _value_key(value, dtype):
    """A hashable byte-exact identity for one stored element.

    Two stores agree iff they put the same bytes in memory; comparing
    the packed representation sidesteps ``0.0 == -0.0`` and
    signed/unsigned pattern questions.
    """
    if dtype.is_float:
        return struct.pack(_FLOAT_FMT[dtype.nbytes], value)
    return int(value).to_bytes(dtype.nbytes, "little",
                               signed=dtype.is_signed)


def _elements_per_lane(inst):
    """How many consecutive elements one lane moves (``.v2``/``.v4``)."""
    if inst.is_load:
        return max(1, len(inst.dests))
    if inst.is_store:
        return max(1, len(inst.srcs) - 1)
    return 1


def _dn_class(classifications, kernel_name, pc):
    if not classifications or pc is None:
        return None
    result = classifications.get(kernel_name)
    if result is None:
        return None
    load = result.get(pc)
    return str(load.load_class) if load is not None else None


class _FindingSink:
    """Deduplicates findings by (kind, kernel, pc, other_pc)."""

    def __init__(self, classifications):
        self._by_key: Dict[tuple, RaceFinding] = {}
        self._classifications = classifications

    def add(self, kind, kernel, pc, other_pc, launch, cta, address, lanes,
            interval, detail):
        key = (kind, kernel, pc, other_pc)
        existing = self._by_key.get(key)
        if existing is not None:
            existing.count += 1
            return
        self._by_key[key] = RaceFinding(
            kind=kind, kernel=kernel, pc=pc, other_pc=other_pc,
            launch=launch, cta=cta, address=address, lanes=tuple(lanes),
            interval=interval, detail=detail,
            dn_class=_dn_class(self._classifications, kernel, pc))

    def findings(self):
        order = {kind: i for i, kind in enumerate(RaceKind.ALL)}
        return sorted(self._by_key.values(),
                      key=lambda f: (order[f.kind], f.kernel,
                                     f.pc if f.pc is not None else -1,
                                     f.other_pc if f.other_pc is not None
                                     else -1))


@dataclass
class _Access:
    """One element access inside a CTA, in replay order."""

    __slots__ = ("address", "interval", "warp", "lane", "pc", "kind",
                 "order", "value_key")

    address: int
    interval: int
    warp: int
    lane: int
    pc: int
    kind: str        # "ld" | "st" | "at"
    order: int       # position in the owning warp's op stream
    value_key: object


def _replay_warp(warp, sink, kernel_name, launch_index, shared_accesses,
                 global_stores):
    """Walk one warp's ops: barrier intervals, live mask, accesses.

    Appends shared-space element accesses to ``shared_accesses`` and
    plain global stores to ``global_stores``; reports divergent
    barriers directly.  Returns the warp's barrier count and the pc of
    its last barrier (for mismatch attribution).
    """
    live = 0
    for op in warp.ops:
        live |= op.active_mask
    interval = 0
    last_bar_pc = None
    mem_ops = 0
    for order, op in enumerate(warp.ops):
        inst = op.inst
        if inst.is_exit:
            live &= ~op.active_mask
            continue
        if inst.is_barrier:
            last_bar_pc = op.pc
            if op.active_mask != live:
                sink.add(
                    RaceKind.DIVERGENT_BARRIER, kernel_name, op.pc, None,
                    launch_index, warp.cta_id,
                    None, _mask_lanes(warp.warp_id, live & ~op.active_mask),
                    interval,
                    "bar.sync mask %#010x but %d live lane(s) (%#010x) "
                    "bypassed it" % (op.active_mask,
                                     bin(live & ~op.active_mask).count("1"),
                                     live))
            interval += 1
            continue
        if op.addresses is None:
            continue
        mem_ops += 1
        space = inst.space
        if space is Space.SHARED:
            kind = ("st" if inst.is_store
                    else "at" if inst.is_atomic else "ld")
            width = inst.dtype.nbytes
            elems = _elements_per_lane(inst)
            for lane, addr in op.addresses:
                for k in range(elems):
                    shared_accesses.append(_Access(
                        addr + k * width, interval, warp.warp_id, lane,
                        op.pc, kind, order, None))
        elif space is Space.GLOBAL and inst.is_store:
            width = inst.dtype.nbytes
            elems = _elements_per_lane(inst)
            values = op.values if op.values is not None else ()
            for i, (lane, addr) in enumerate(op.addresses):
                for k in range(elems):
                    idx = i * elems + k
                    vkey = (_value_key(values[idx], inst.dtype)
                            if idx < len(values) else None)
                    global_stores.append(_Access(
                        addr + k * width, interval, warp.warp_id, lane,
                        op.pc, "st", order, vkey))
    return interval, last_bar_pc, mem_ops


def _mask_lanes(warp_id, mask, limit=4):
    return tuple((warp_id, lane) for lane in lanes_of(mask)[:limit])


_SHARED_CODE = SPACE_CODES["shared"]
_GLOBAL_CODE = SPACE_CODES["global"]
_KIND_ST = 1


def _replay_warp_columns(warp, sink, kernel_name, launch_index,
                         shared_accesses, global_stores, insts):
    """Column-based :func:`_replay_warp`: identical findings and access
    streams, computed from the warp's arrays.  Barrier intervals, the
    live mask, and the interesting-row selections are vectorized; Python
    touches only shared accesses, global stores, and flagged barriers —
    never the (dominant) compute ops.
    """
    warp.seal()
    masks = warp.mask
    n = len(masks)
    if not n:
        return 0, None, 0
    idx = warp.pc >> _PC_SHIFT
    is_exit = np.asarray([i.is_exit for i in insts], dtype=np.bool_)[idx]
    is_bar = np.asarray([i.is_barrier for i in insts], dtype=np.bool_)[idx]
    live0 = np.bitwise_or.reduce(masks)
    # lanes exited strictly before each row; live-at-row follows
    exited = np.where(is_exit, masks, np.uint32(0))
    np.bitwise_or.accumulate(exited, out=exited)
    exited_before = np.empty_like(exited)
    exited_before[0] = 0
    exited_before[1:] = exited[:-1]
    live_at = live0 & ~exited_before
    # interval = number of barriers strictly before the row
    interval_of = np.cumsum(is_bar) - is_bar
    bar_rows = np.flatnonzero(is_bar)
    bars = len(bar_rows)
    last_bar_pc = int(warp.pc[bar_rows[-1]]) if bars else None
    for i in np.flatnonzero(is_bar & (masks != live_at)).tolist():
        live = int(live_at[i])
        mask = int(masks[i])
        sink.add(
            RaceKind.DIVERGENT_BARRIER, kernel_name, int(warp.pc[i]), None,
            launch_index, warp.cta_id,
            None, _mask_lanes(warp.warp_id, live & ~mask),
            int(interval_of[i]),
            "bar.sync mask %#010x but %d live lane(s) (%#010x) "
            "bypassed it" % (mask, bin(live & ~mask).count("1"), live))

    kinds = warp.kind
    mem_ops = int((kinds != KIND_NONE).sum())
    space_of = kinds >> 2  # KIND_NONE lands at 0x3f, outside every code
    astart = warp.astart
    warp_id = warp.warp_id
    for i in np.flatnonzero(space_of == _SHARED_CODE).tolist():
        inst = insts[int(idx[i])]
        kind = ("st" if inst.is_store
                else "at" if inst.is_atomic else "ld")
        width = inst.dtype.nbytes
        elems = _elements_per_lane(inst)
        interval = int(interval_of[i])
        pc = int(warp.pc[i])
        lo, hi = int(astart[i]), int(astart[i + 1])
        lanes = warp.lanes[lo:hi].tolist()
        addrs = warp.addrs[lo:hi].tolist()
        for lane, addr in zip(lanes, addrs):
            for k in range(elems):
                shared_accesses.append(_Access(
                    addr + k * width, interval, warp_id, lane,
                    pc, kind, i, None))
    store_rows = np.flatnonzero((space_of == _GLOBAL_CODE)
                                & ((kinds & 3) == _KIND_ST))
    vstart = warp.vstart
    for i in store_rows.tolist():
        inst = insts[int(idx[i])]
        dtype = inst.dtype
        width = dtype.nbytes
        elems = _elements_per_lane(inst)
        interval = int(interval_of[i])
        pc = int(warp.pc[i])
        lo, hi = int(astart[i]), int(astart[i + 1])
        lanes = warp.lanes[lo:hi].tolist()
        addrs = warp.addrs[lo:hi].tolist()
        bits = warp.vals[int(vstart[i]):int(vstart[i + 1])].tolist()
        for j, (lane, addr) in enumerate(zip(lanes, addrs)):
            for k in range(elems):
                vidx = j * elems + k
                vkey = (_value_key(decode_value(bits[vidx], dtype), dtype)
                        if vidx < len(bits) else None)
                global_stores.append(_Access(
                    addr + k * width, interval, warp_id, lane,
                    pc, "st", i, vkey))
    return bars, last_bar_pc, mem_ops


def _check_shared_races(kernel_name, launch_index, cta_id, accesses, sink):
    """Same element + same interval + different threads + >=1 plain
    store, with atomics excluded from conflicting pairs."""
    buckets: Dict[tuple, List[_Access]] = {}
    for acc in accesses:
        buckets.setdefault((acc.address, acc.interval), []).append(acc)
    for (address, interval), accs in buckets.items():
        writers = [a for a in accs if a.kind == "st"]
        if not writers:
            continue
        writer_threads = {(a.warp, a.lane) for a in writers}
        if len(writer_threads) > 1:
            first = writers[0]
            other = next(a for a in writers
                         if (a.warp, a.lane) != (first.warp, first.lane))
            a, b = ((first, other) if (first.order, first.warp)
                    <= (other.order, other.warp) else (other, first))
            sink.add(RaceKind.SHARED_RACE, kernel_name, b.pc, a.pc,
                     launch_index, cta_id, address,
                     ((a.warp, a.lane), (b.warp, b.lane)), interval,
                     "write/write on shared element with no intervening "
                     "barrier")
            continue
        writer = writers[0]
        wt = (writer.warp, writer.lane)
        reader = next((a for a in accs
                       if a.kind == "ld" and (a.warp, a.lane) != wt), None)
        if reader is not None:
            sink.add(RaceKind.SHARED_RACE, kernel_name, reader.pc, writer.pc,
                     launch_index, cta_id, address,
                     (wt, (reader.warp, reader.lane)), interval,
                     "read/write on shared element with no intervening "
                     "barrier")


def _check_uninit_reads(kernel_name, launch_index, cta_id, accesses, sink):
    """A read with no happens-before-ordered prior write: none in an
    earlier interval by any thread, none earlier in program order by
    the reading warp itself.  Atomics count as initializing writes."""
    first_write_interval: Dict[int, int] = {}
    own_write_order: Dict[tuple, int] = {}
    for acc in accesses:
        if acc.kind == "ld":
            continue
        prev = first_write_interval.get(acc.address)
        if prev is None or acc.interval < prev:
            first_write_interval[acc.address] = acc.interval
        key = (acc.warp, acc.address)
        prev_own = own_write_order.get(key)
        if prev_own is None or acc.order < prev_own:
            own_write_order[key] = acc.order
    for acc in accesses:
        if acc.kind != "ld":
            continue
        cross = first_write_interval.get(acc.address)
        if cross is not None and cross < acc.interval:
            continue
        own = own_write_order.get((acc.warp, acc.address))
        if own is not None and own < acc.order:
            continue
        sink.add(RaceKind.UNINIT_SHARED_READ, kernel_name, acc.pc, None,
                 launch_index, cta_id, acc.address,
                 ((acc.warp, acc.lane),), acc.interval,
                 "shared element read before any happens-before-ordered "
                 "write")


def _check_barrier_mismatch(kernel_name, launch_index, cta_id, bar_counts,
                            sink):
    """Warps that both synchronize must synchronize the same number of
    times; a warp with zero barriers (guard-then-exit) is exempt."""
    nonzero = {w: (n, pc) for w, (n, pc) in bar_counts.items() if n > 0}
    if len({n for n, _pc in nonzero.values()}) <= 1:
        return
    items = sorted(nonzero.items(), key=lambda kv: (-kv[1][0], kv[0]))
    (w_hi, (n_hi, pc_hi)), (w_lo, (n_lo, _)) = items[0], items[-1]
    sink.add(RaceKind.BARRIER_MISMATCH, kernel_name, pc_hi, None,
             launch_index, cta_id, None, ((w_hi, 0), (w_lo, 0)), None,
             "warp %d executed %d barrier(s) but warp %d executed %d"
             % (w_hi, n_hi, w_lo, n_lo))


def _check_global_conflicts(kernel_name, launch_index, stores, sink):
    """Differing-value plain stores to one element from different CTAs.

    ``stores`` is ``[(cta_id, _Access), ...]`` across the whole launch;
    CTAs never synchronize, so interval numbers are irrelevant here.
    """
    # per element: the first store seen for each distinct value; a new
    # store conflicts with any prior *different-value* store from a
    # *different* CTA (distinct values per element are few in practice)
    by_value: Dict[int, Dict[object, tuple]] = {}
    for cta_id, acc in stores:
        values = by_value.setdefault(acc.address, {})
        for vkey, (seen_cta, seen_acc) in values.items():
            if vkey == acc.value_key or seen_cta == cta_id:
                continue
            sink.add(RaceKind.GLOBAL_WRITE_CONFLICT, kernel_name, acc.pc,
                     seen_acc.pc, launch_index,
                     cta_id, acc.address,
                     ((seen_acc.warp, seen_acc.lane), (acc.warp, acc.lane)),
                     None,
                     "CTAs %d and %d store different values (%s vs %s) to "
                     "one global element"
                     % (seen_cta, cta_id, _fmt_value(seen_acc.value_key),
                        _fmt_value(acc.value_key)))
            break
        if acc.value_key not in values:
            values[acc.value_key] = (cta_id, acc)


def _fmt_value(value_key):
    if value_key is None:
        return "?"
    return "0x" + bytes(reversed(value_key)).hex()


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def analyze_launch(launch, launch_index, sink):
    """Analyze one :class:`KernelLaunchTrace`; returns ops examined."""
    kernel_name = launch.kernel_name
    by_cta: Dict[int, list] = {}
    for warp in launch.warps:
        by_cta.setdefault(warp.cta_id, []).append(warp)
    ops_checked = 0
    launch_stores: List[tuple] = []
    for cta_id, warps in sorted(by_cta.items()):
        shared_accesses: List[_Access] = []
        bar_counts: Dict[int, tuple] = {}
        for warp in sorted(warps, key=lambda w: w.warp_id):
            global_stores: List[_Access] = []
            if hasattr(warp, "iter_chunks"):
                bars, last_bar_pc, mem_ops = _replay_warp_columns(
                    warp, sink, kernel_name, launch_index, shared_accesses,
                    global_stores, launch.instructions)
            else:
                bars, last_bar_pc, mem_ops = _replay_warp(
                    warp, sink, kernel_name, launch_index, shared_accesses,
                    global_stores)
            bar_counts[warp.warp_id] = (bars, last_bar_pc)
            ops_checked += mem_ops
            launch_stores.extend((cta_id, acc) for acc in global_stores)
        _check_barrier_mismatch(kernel_name, launch_index, cta_id,
                                bar_counts, sink)
        _check_shared_races(kernel_name, launch_index, cta_id,
                            shared_accesses, sink)
        _check_uninit_reads(kernel_name, launch_index, cta_id,
                            shared_accesses, sink)
    _check_global_conflicts(kernel_name, launch_index, launch_stores, sink)
    return ops_checked


def analyze_trace(trace, classifications=None, app=None, mode="interval"):
    """Run every check over an :class:`ApplicationTrace`.

    ``classifications`` is the per-kernel
    :class:`~repro.core.classifier.ClassificationResult` map from a
    :class:`WorkloadRun`; when given, findings at classified global-load
    PCs carry the paper's D/N class.

    ``mode`` selects the detector: ``"interval"`` is the barrier-interval
    baseline implemented here; ``"predictive"`` dispatches to the
    streaming happens-before detector
    (:func:`repro.analysis.predictive.analyze_trace_predictive`), which
    models atomics and memory fences as synchronization and predicts
    races the observed schedule serialized.
    """
    if mode == "predictive":
        from .predictive import analyze_trace_predictive

        return analyze_trace_predictive(trace, classifications, app=app)
    if mode != "interval":
        raise ValueError("unknown race-detector mode %r "
                         "(choices: interval, predictive)" % (mode,))
    name = app or getattr(trace, "name", "?")
    sink = _FindingSink(classifications)
    ops_checked = 0
    with tracing.span("races", app=name, launches=len(trace)):
        for index, launch in enumerate(trace):
            with tracing.span("races.launch", kernel=launch.kernel_name):
                ops_checked += analyze_launch(launch, index, sink)
    report = RaceReport(app=name, findings=sink.findings(),
                        launches=len(trace), ops_checked=ops_checked)
    registry = get_registry()
    registry.counter(
        "analysis.races.ops_checked",
        "memory trace ops examined by the race detector").inc(
        ops_checked, app=name)
    registry.counter(
        "analysis.races.launches",
        "kernel launches analyzed by the race detector").inc(
        report.launches, app=name)
    for kind, count in sorted(report.counts_by_kind().items()):
        registry.counter(
            "analysis.races.findings",
            "dynamic race-detector findings by kind").inc(
            count, app=name, kind=kind)
    return report


def analyze_workload(name, scale=0.25, seed=7, engine=None,
                     mode="interval"):
    """Emulate one registered workload and analyze its trace."""
    from ..workloads import get_workload

    run = get_workload(name, scale=scale, seed=seed).run(
        verify=False, engine=engine)
    return analyze_trace(run.trace, run.classifications, app=name,
                         mode=mode)
