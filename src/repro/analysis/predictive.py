"""Predictive happens-before race detection over columnar traces.

The barrier-interval detector (:mod:`repro.analysis.races`) treats a
barrier interval as one unordered bag of accesses: it cannot tell an
atomics-protected counter from an unprotected one, and it never looks
at conflicts the observed schedule happened to serialize.  This module
implements the *predictive* mode: a streaming happens-before detector
that models the synchronization the PTX subset actually provides and
asks whether a conflicting pair is ordered under **any** schedule the
trace permits, not just the one the deterministic emulator replayed.

Ordering model (DESIGN.md §14):

* A *thread* is a ``(warp, lane)`` pair.  Program order within one
  thread is happens-before.
* ``bar.sync`` is a total barrier over the CTA: everything before
  barrier *k* happens-before everything after it.  This reproduces the
  interval baseline's structure, so every interval-mode finding has a
  predictive counterpart.
* ``atom.*``/``red.*`` operations on one location never race with each
  other — the hardware serializes them.
* ``membar`` + atomics build release/acquire edges: a warp's fence
  publishes its pre-fence accesses; a subsequent atomic to location *L*
  releases that prefix into *L*'s clock; another warp's atomic to *L*
  acquires it; that warp's next ``membar`` makes the acquired prefix
  order its later accesses.  Flag-based producer/consumer handoff
  (``st data; membar; atom flag`` → ``atom flag; membar; ld data``)
  therefore stops being a false positive.

The detector consumes each warp's trace chunk-by-chunk via
``iter_chunks`` — it never materializes the legacy record view — and
keeps per-element state bounded by (element × interval × warp), so it
runs inside the ``REPRO_MAX_RSS_MB`` budget on traces whose record
form would not fit.

Soundness limits: warps are replayed in warp-id order (the emulator's
deterministic CTA schedule), so release/acquire edges only flow from
lower to higher warp ids — the only direction a completed trace can
witness; lane-to-lane ordering inside one warp below barrier
granularity is not modeled (a warp-internal ``membar`` does not order
its own lanes); and like the baseline the analysis is per dynamic
trace and element-granular (DESIGN.md §10).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .._bits import lanes_of
from ..emulator.columnar import (
    _PC_SHIFT,
    KIND_NONE,
    SPACE_CODES,
    decode_value,
    to_columnar,
)
from ..obs import tracing
from ..obs.metrics import get_registry
from ..resilience.guards import check_memory_budget
from .races import (
    RaceKind,
    RaceReport,
    _check_barrier_mismatch,
    _elements_per_lane,
    _FindingSink,
    _fmt_value,
    _value_key,
)

_SHARED = SPACE_CODES["shared"]
_GLOBAL = SPACE_CODES["global"]
_KIND_LD, _KIND_ST, _KIND_AT = 0, 1, 2


class _Elem:
    """Per-(space, element, interval) access state for one CTA.

    For each category (plain writes, plain reads, atomics) the dicts
    map ``warp -> (order, pc, lane, raw_bits)`` for the *latest* access;
    the ``*_alt`` dicts keep the latest access by a *different lane*
    than the main entry, so a same-warp cross-lane conflict survives a
    same-lane overwrite.  One representative per warp is enough: the
    latest entry has the largest order, and suppression bounds are
    exclusive upper bounds on order.
    """

    __slots__ = ("writes", "w_alt", "reads", "r_alt", "atoms", "a_alt")

    def __init__(self):
        self.writes: Dict[int, tuple] = {}
        self.w_alt: Dict[int, tuple] = {}
        self.reads: Dict[int, tuple] = {}
        self.r_alt: Dict[int, tuple] = {}
        self.atoms: Dict[int, tuple] = {}
        self.a_alt: Dict[int, tuple] = {}


def _update(latest, alt, warp, entry):
    prev = latest.get(warp)
    if prev is not None and prev[2] != entry[2]:
        alt[warp] = prev
    latest[warp] = entry


class _CtaState:
    """Accumulated per-CTA detector state (cleared between CTAs)."""

    __slots__ = ("cta_id", "elems", "locks", "first_write", "own_write",
                 "uninit", "bar_counts")

    def __init__(self, cta_id):
        self.cta_id = cta_id
        # (space, addr, interval) -> _Elem
        self.elems: Dict[tuple, _Elem] = {}
        # (space, addr, interval) -> {warp: exclusive released order bound}
        self.locks: Dict[tuple, Dict[int, int]] = {}
        self.first_write: Dict[int, int] = {}     # shared addr -> interval
        self.own_write: Dict[tuple, int] = {}     # (warp, addr) -> order
        self.uninit: List[tuple] = []             # read candidates
        self.bar_counts: Dict[int, tuple] = {}    # warp -> (bars, last pc)

    def note_write(self, addr, interval, warp, order):
        """A shared store/atomic initializes its element."""
        prev = self.first_write.get(addr)
        if prev is None or interval < prev:
            self.first_write[addr] = interval
        key = (warp, addr)
        if key not in self.own_write:
            self.own_write[key] = order


class _LaunchScan:
    """Streams one launch through the predictive detector."""

    def __init__(self, launch, launch_index, sink):
        self.launch = launch
        self.launch_index = launch_index
        self.sink = sink
        self.kernel = launch.kernel_name
        insts = launch.instructions
        self.insts = insts
        self.is_exit = np.asarray(
            [i.is_exit for i in insts] or [False], dtype=np.bool_)
        self.is_bar = np.asarray(
            [i.is_barrier for i in insts] or [False], dtype=np.bool_)
        self.is_fence = np.asarray(
            [i.opcode == "membar" for i in insts] or [False], dtype=np.bool_)
        self.vec = np.asarray(
            [max(i.vector, 1) for i in insts] or [1], dtype=np.int64)
        # global element -> {value_key: (cta, (warp, lane, vkey, pc))}
        self.gvalues: Dict[int, dict] = {}
        self.mem_ops = 0
        self.sync_edges = 0
        self.suppressed = 0

    # -- conflict enumeration ---------------------------------------------

    def _unordered(self, latest, alt, warp, lane, eff):
        """Prior accesses with no happens-before edge to ``(warp, lane)``.

        Cross-warp entries are ordered iff their order is below the
        acquiring warp's effective clock for that producer; same-warp
        entries are ordered iff they are by the same lane (program
        order) — a warp's own fences do not order its lanes against
        each other, matching the interval baseline.
        """
        out = []
        for w, e in latest.items():
            if w == warp:
                continue
            if e[0] < eff.get(w, 0):
                self.suppressed += 1
                continue
            out.append((w, e))
        own = latest.get(warp)
        if own is not None and own[2] == lane:
            own = alt.get(warp)
        if own is not None and own[2] != lane:
            out.append((warp, own))
        return out

    # -- finding emitters --------------------------------------------------

    def _report_ww(self, cta, prev_warp, prev, warp, cur, space, addr,
                   interval, dtype):
        # primary = the later access under the interval detector's
        # (order, warp) pair ordering, so shared WW attribution agrees
        if (cur[0], warp) >= (prev[0], prev_warp):
            first, fw, second, sw = prev, prev_warp, cur, warp
        else:
            first, fw, second, sw = cur, warp, prev, prev_warp
        if space == _SHARED:
            kind = RaceKind.SHARED_RACE
            detail = ("write/write on shared element with no intervening "
                      "barrier")
        else:
            kind = RaceKind.PREDICTED_GLOBAL_RACE
            detail = ("predicted write/write race on a global element in "
                      "one barrier interval (values %s vs %s); the "
                      "deterministic replay serialized it"
                      % (_fmt_bits(first[3], dtype),
                         _fmt_bits(second[3], dtype)))
        self.sink.add(kind, self.kernel, second[1], first[1],
                      self.launch_index, cta.cta_id, addr,
                      ((fw, first[2]), (sw, second[2])), interval, detail)

    def _report_rw(self, cta, reader_warp, reader, writer_warp, writer,
                   space, addr, interval):
        if space == _SHARED:
            kind = RaceKind.SHARED_RACE
            detail = ("read/write on shared element with no intervening "
                      "barrier")
        else:
            kind = RaceKind.PREDICTED_GLOBAL_RACE
            detail = ("predicted read/write race on a global element in "
                      "one barrier interval; the deterministic replay "
                      "serialized it")
        self.sink.add(kind, self.kernel, reader[1], writer[1],
                      self.launch_index, cta.cta_id, addr,
                      ((writer_warp, writer[2]), (reader_warp, reader[2])),
                      interval, detail)

    def _report_mixed(self, cta, plain_warp, plain, atom_warp, atom,
                      space, addr, interval):
        space_name = "shared" if space == _SHARED else "global"
        self.sink.add(RaceKind.ATOMIC_PLAIN_RACE, self.kernel,
                      plain[1], atom[1], self.launch_index, cta.cta_id,
                      addr, ((plain_warp, plain[2]), (atom_warp, atom[2])),
                      interval,
                      "plain access races an atomic update to one %s "
                      "element (atomics only order against other atomics)"
                      % space_name)

    def _intercta_store(self, cta_id, addr, raw, dtype, pc, warp, lane):
        """The interval detector's differing-value inter-CTA check, fed
        store-by-store in the same replay order."""
        vkey = (_value_key(decode_value(raw, dtype), dtype)
                if raw is not None else None)
        values = self.gvalues.setdefault(addr, {})
        for seen_vkey, (seen_cta, seen) in values.items():
            if seen_vkey == vkey or seen_cta == cta_id:
                continue
            self.sink.add(
                RaceKind.GLOBAL_WRITE_CONFLICT, self.kernel, pc, seen[3],
                self.launch_index, cta_id, addr,
                ((seen[0], seen[1]), (warp, lane)), None,
                "CTAs %d and %d store different values (%s vs %s) to "
                "one global element"
                % (seen_cta, cta_id, _fmt_value(seen_vkey),
                   _fmt_value(vkey)))
            break
        if vkey not in values:
            values[vkey] = (cta_id, (warp, lane, vkey, pc))

    # -- per-warp streaming ------------------------------------------------

    def _scan_warp(self, warp, cta):
        u = warp.warp_id
        live0 = 0
        for chunk in warp.iter_chunks():
            if len(chunk[1]):
                live0 |= int(np.bitwise_or.reduce(chunk[1]))
        live0 = np.uint32(live0)
        # vector clocks: producer warp -> exclusive released order bound
        pending: Dict[int, int] = {}   # acquired, not yet fenced
        eff: Dict[int, int] = {}       # fenced — usable for suppression
        own_release = 0                # orders < this publish at release
        order_base = 0
        interval_base = 0
        carry_exited = np.uint32(0)
        bars = 0
        last_bar_pc = None
        sink = self.sink
        for pcs, masks, kinds, acounts, lanes, addrs, vals in \
                warp.iter_chunks():
            check_memory_budget("predictive race analysis")
            n = len(pcs)
            if not n:
                continue
            idx = pcs >> _PC_SHIFT
            row_exit = self.is_exit[idx]
            row_bar = self.is_bar[idx]
            row_fence = self.is_fence[idx]
            exited = np.where(row_exit, masks, np.uint32(0))
            np.bitwise_or.accumulate(exited, out=exited)
            exited_before = np.empty_like(exited)
            exited_before[0] = carry_exited
            exited_before[1:] = exited[:-1] | carry_exited
            carry_exited = carry_exited | exited[-1]
            live_at = live0 & ~exited_before
            interval_of = interval_base + np.cumsum(row_bar) - row_bar
            mem = kinds != KIND_NONE
            self.mem_ops += int(mem.sum())
            space_of = kinds >> 2
            track = mem & ((space_of == _SHARED) | (space_of == _GLOBAL))
            rows = np.flatnonzero(row_bar | row_fence | track)
            if len(rows):
                astart = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(acounts, out=astart[1:])
                vcounts = np.where((kinds & 3) == _KIND_ST,
                                   acounts.astype(np.int64)
                                   * self.vec[idx], 0)
                vstart = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(vcounts, out=vstart[1:])
            for i in rows.tolist():
                o = order_base + i
                if row_bar[i]:
                    bars += 1
                    pc = int(pcs[i])
                    last_bar_pc = pc
                    mask = int(masks[i])
                    live = int(live_at[i])
                    if mask != live:
                        sink.add(
                            RaceKind.DIVERGENT_BARRIER, self.kernel, pc,
                            None, self.launch_index, cta.cta_id, None,
                            _mask_lanes(u, live & ~mask),
                            int(interval_of[i]),
                            "bar.sync mask %#010x but %d live lane(s) "
                            "(%#010x) bypassed it"
                            % (mask, bin(live & ~mask).count("1"), live))
                    # the barrier orders everything before it for every
                    # thread; conflicts never span intervals, so the
                    # fine-grained clocks reset
                    pending.clear()
                    eff.clear()
                    own_release = 0
                    continue
                if row_fence[i]:
                    for w, b in pending.items():
                        if eff.get(w, 0) < b:
                            eff[w] = b
                    own_release = o
                    continue
                k = int(kinds[i])
                kc = k & 3
                sp = k >> 2
                inst = self.insts[int(idx[i])]
                dtype = inst.dtype
                width = dtype.nbytes
                epl = _elements_per_lane(inst)
                interval = int(interval_of[i])
                pc = int(pcs[i])
                lo, hi = int(astart[i]), int(astart[i + 1])
                row_lanes = lanes[lo:hi].tolist()
                row_addrs = addrs[lo:hi].tolist()
                if kc == _KIND_AT:
                    self._atomic_row(cta, u, o, pc, sp, interval,
                                     row_lanes, row_addrs, pending, eff,
                                     own_release)
                elif kc == _KIND_ST:
                    bits = vals[int(vstart[i]):int(vstart[i + 1])].tolist()
                    self._store_row(cta, u, o, pc, sp, interval, width,
                                    epl, row_lanes, row_addrs, bits,
                                    dtype, eff)
                else:
                    self._load_row(cta, u, o, pc, sp, interval, width,
                                   epl, row_lanes, row_addrs, eff)
            order_base += n
            interval_base += int(row_bar.sum())
        cta.bar_counts[u] = (bars, last_bar_pc)

    # -- row handlers -------------------------------------------------------

    def _atomic_row(self, cta, u, o, pc, sp, interval, row_lanes,
                    row_addrs, pending, eff, own_release):
        for lane, addr in zip(row_lanes, row_addrs):
            ekey = (sp, addr, interval)
            lock = cta.locks.get(ekey)
            if lock:  # acquire the location's release clock
                for w, b in lock.items():
                    if w != u and pending.get(w, 0) < b:
                        pending[w] = b
                        self.sync_edges += 1
            elem = cta.elems.get(ekey)
            if elem is None:
                elem = cta.elems[ekey] = _Elem()
            else:  # an atomic races any unordered plain access
                cur = (o, pc, lane, None)
                for w, e in self._unordered(elem.writes, elem.w_alt, u,
                                            lane, eff):
                    self._report_mixed(cta, w, e, u, cur, sp, addr,
                                       interval)
                for w, e in self._unordered(elem.reads, elem.r_alt, u,
                                            lane, eff):
                    self._report_mixed(cta, w, e, u, cur, sp, addr,
                                       interval)
            # release: publish acquired clocks plus the own pre-fence
            # prefix into the location
            lock = cta.locks.setdefault(ekey, {})
            if own_release and lock.get(u, 0) < own_release:
                lock[u] = own_release
            for w, b in pending.items():
                if lock.get(w, 0) < b:
                    lock[w] = b
            _update(elem.atoms, elem.a_alt, u, (o, pc, lane, None))
            if sp == _SHARED:
                cta.note_write(addr, interval, u, o)

    def _store_row(self, cta, u, o, pc, sp, interval, width, epl,
                   row_lanes, row_addrs, bits, dtype, eff):
        nbits = len(bits)
        for j, (lane, addr) in enumerate(zip(row_lanes, row_addrs)):
            for k in range(epl):
                ea = addr + k * width
                vidx = j * epl + k
                raw = bits[vidx] if vidx < nbits else None
                cur = (o, pc, lane, raw)
                ekey = (sp, ea, interval)
                elem = cta.elems.get(ekey)
                if elem is None:
                    elem = cta.elems[ekey] = _Elem()
                else:
                    for w, e in self._unordered(elem.writes, elem.w_alt,
                                                u, lane, eff):
                        if sp == _GLOBAL and e[3] == raw:
                            continue  # benign same-value idiom
                        self._report_ww(cta, w, e, u, cur, sp, ea,
                                        interval, dtype)
                    for w, e in self._unordered(elem.reads, elem.r_alt,
                                                u, lane, eff):
                        self._report_rw(cta, w, e, u, cur, sp, ea,
                                        interval)
                    for w, e in self._unordered(elem.atoms, elem.a_alt,
                                                u, lane, eff):
                        self._report_mixed(cta, u, cur, w, e, sp, ea,
                                           interval)
                _update(elem.writes, elem.w_alt, u, cur)
                if sp == _SHARED:
                    cta.note_write(ea, interval, u, o)
                else:
                    self._intercta_store(cta.cta_id, ea, raw, dtype, pc,
                                         u, lane)

    def _load_row(self, cta, u, o, pc, sp, interval, width, epl,
                  row_lanes, row_addrs, eff):
        for lane, addr in zip(row_lanes, row_addrs):
            for k in range(epl):
                ea = addr + k * width
                cur = (o, pc, lane, None)
                ekey = (sp, ea, interval)
                elem = cta.elems.get(ekey)
                if elem is None:
                    elem = cta.elems[ekey] = _Elem()
                else:
                    for w, e in self._unordered(elem.writes, elem.w_alt,
                                                u, lane, eff):
                        self._report_rw(cta, u, cur, w, e, sp, ea,
                                        interval)
                    for w, e in self._unordered(elem.atoms, elem.a_alt,
                                                u, lane, eff):
                        self._report_mixed(cta, u, cur, w, e, sp, ea,
                                           interval)
                _update(elem.reads, elem.r_alt, u, cur)
                if sp == _SHARED:
                    cross = cta.first_write.get(ea)
                    if cross is not None and cross < interval:
                        continue
                    own = cta.own_write.get((u, ea))
                    if own is not None and own < o:
                        continue
                    if self._hb_initialized(elem, u, eff):
                        continue
                    cta.uninit.append((ea, interval, u, o, pc, lane))

    @staticmethod
    def _hb_initialized(elem, warp, eff):
        """A same-interval write by another warp initializes the element
        when a release/acquire chain orders it before the reader."""
        for writes in (elem.writes, elem.atoms):
            for w, e in writes.items():
                if w != warp and e[0] < eff.get(w, 0):
                    return True
        return False

    # -- launch driver -------------------------------------------------------

    def run(self):
        by_cta: Dict[int, list] = {}
        for warp in self.launch.warps:
            by_cta.setdefault(warp.cta_id, []).append(warp)
        for cta_id, warps in sorted(by_cta.items()):
            cta = _CtaState(cta_id)
            for warp in sorted(warps, key=lambda w: w.warp_id):
                self._scan_warp(warp, cta)
            _check_barrier_mismatch(self.kernel, self.launch_index,
                                    cta_id, cta.bar_counts, self.sink)
            # confirm uninit-read candidates against the CTA-complete
            # first-write map (a later warp can initialize earlier
            # intervals than the reader saw mid-stream)
            for ea, interval, w, o, pc, lane in cta.uninit:
                cross = cta.first_write.get(ea)
                if cross is not None and cross < interval:
                    continue
                self.sink.add(
                    RaceKind.UNINIT_SHARED_READ, self.kernel, pc, None,
                    self.launch_index, cta_id, ea, ((w, lane),), interval,
                    "shared element read before any happens-before-"
                    "ordered write")


def _mask_lanes(warp_id, mask, limit=4):
    return tuple((warp_id, lane) for lane in lanes_of(mask)[:limit])


def _fmt_bits(raw, dtype):
    if raw is None:
        return "?"
    return _fmt_value(_value_key(decode_value(raw, dtype), dtype))


def analyze_trace_predictive(trace, classifications=None, app=None):
    """Predictive-mode counterpart of
    :func:`repro.analysis.races.analyze_trace`.

    Returns the same :class:`RaceReport` shape; publishes its telemetry
    under ``races.predictive.*``.
    """
    name = app or getattr(trace, "name", "?")
    sink = _FindingSink(classifications)
    ops_checked = 0
    sync_edges = 0
    suppressed = 0
    with tracing.span("races.predictive", app=name, launches=len(trace)):
        for index, launch in enumerate(trace):
            launch = to_columnar(launch)
            with tracing.span("races.predictive.launch",
                              kernel=launch.kernel_name):
                scan = _LaunchScan(launch, index, sink)
                scan.run()
                ops_checked += scan.mem_ops
                sync_edges += scan.sync_edges
                suppressed += scan.suppressed
    report = RaceReport(app=name, findings=sink.findings(),
                        launches=len(trace), ops_checked=ops_checked)
    registry = get_registry()
    registry.counter(
        "races.predictive.ops_checked",
        "memory trace ops examined by the predictive race detector").inc(
        ops_checked, app=name)
    registry.counter(
        "races.predictive.launches",
        "kernel launches analyzed by the predictive race detector").inc(
        report.launches, app=name)
    registry.counter(
        "races.predictive.sync_edges",
        "release/acquire edges built from atomics and fences").inc(
        sync_edges, app=name)
    registry.counter(
        "races.predictive.suppressed",
        "conflicting pairs ordered away by synchronization edges").inc(
        suppressed, app=name)
    for kind, count in sorted(report.counts_by_kind().items()):
        registry.counter(
            "races.predictive.findings",
            "predictive race-detector findings by kind").inc(
            count, app=name, kind=kind)
    return report
