"""sssp — single-source shortest paths (LonestarGPU ``sssp``).

Frontier-based Bellman-Ford: each frontier node relaxes its outgoing
edges with ``atom.min`` on the neighbour's distance; a second kernel
folds the updating mask and raises the stop flag.  Edge, weight and
distance loads are all indexed through loaded values — the dominant
non-deterministic traffic the paper attributes to graph applications.
"""

from __future__ import annotations

import numpy as np

from ..ptx.isa import DType
from .base import Workload
from .graph_common import (
    INF,
    alloc_graph,
    default_graph,
    reference_shortest_paths,
)

_U32 = DType.U32

_PTX = """
.entry sssp_relax (
    .param .u64 row_ptr,
    .param .u64 col_idx,
    .param .u64 weights,
    .param .u64 dist,
    .param .u64 mask,
    .param .u64 updating,
    .param .u32 num_nodes
)
{
    .reg .u32 %r<20>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [mask];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // mask[v]        (deterministic)
    setp.eq.u32    %p2, %r6, 0;
    @%p2 bra       EXIT;
    st.global.u32  [%rd4], 0;
    ld.param.u64   %rd5, [dist];
    add.u64        %rd6, %rd5, %rd3;
    ld.global.s32  %r7, [%rd6];            // dist[v]        (deterministic)
    ld.param.u64   %rd7, [row_ptr];
    add.u64        %rd8, %rd7, %rd3;
    ld.global.u32  %r8, [%rd8];            // start          (deterministic)
    ld.global.u32  %r9, [%rd8+4];          // end            (deterministic)
    ld.param.u64   %rd9, [col_idx];
    ld.param.u64   %rd10, [weights];
    ld.param.u64   %rd11, [updating];
    mov.u32        %r10, %r8;              // i = start (loaded!)
LOOP:
    setp.ge.u32    %p3, %r10, %r9;
    @%p3 bra       EXIT;
    cvt.u64.u32    %rd12, %r10;
    shl.b64        %rd13, %rd12, 2;
    add.u64        %rd14, %rd9, %rd13;
    ld.global.u32  %r11, [%rd14];          // u = edges[i]  (NON-deterministic)
    add.u64        %rd15, %rd10, %rd13;
    ld.global.s32  %r12, [%rd15];          // w[i]          (NON-deterministic)
    add.s32        %r13, %r7, %r12;        // alt = dist[v] + w
    cvt.u64.u32    %rd16, %r11;
    shl.b64        %rd17, %rd16, 2;
    add.u64        %rd18, %rd5, %rd17;
    atom.min.global.s32 %r14, [%rd18], %r13;   // old = atomicMin(dist[u])
    setp.le.s32    %p4, %r14, %r13;
    @%p4 bra       NEXT;
    add.u64        %rd19, %rd11, %rd17;
    st.global.u32  [%rd19], 1;             // updating[u] = true
NEXT:
    add.u32        %r10, %r10, 1;
    bra            LOOP;
EXIT:
    exit;
}

.entry sssp_update (
    .param .u64 mask,
    .param .u64 updating,
    .param .u64 stop,
    .param .u32 num_nodes
)
{
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [updating];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // updating[v]  (deterministic)
    setp.eq.u32    %p2, %r6, 0;
    @%p2 bra       EXIT;
    st.global.u32  [%rd4], 0;
    ld.param.u64   %rd5, [mask];
    add.u64        %rd6, %rd5, %rd3;
    st.global.u32  [%rd6], 1;              // back on the frontier
    ld.param.u64   %rd7, [stop];
    st.global.u32  [%rd7], 1;
EXIT:
    exit;
}
"""


class SSSP(Workload):
    """Frontier Bellman-Ford single-source shortest paths."""

    name = "sssp"
    category = "graph"
    description = "single source shortest path"

    BLOCK = 128
    SOURCE = 0

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.graph = None

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.graph = default_graph(self)
        n = self.graph.num_nodes
        self.data_set = "R-MAT graph, %d nodes / %d edges, int weights" % (
            n, self.graph.num_edges)
        self.ptrs = alloc_graph(mem, self.graph, with_weights=True)
        dist = np.full(n, INF, dtype=np.int32)
        mask = np.zeros(n, dtype=np.uint32)
        dist[self.SOURCE] = 0
        mask[self.SOURCE] = 1
        self.ptrs["dist"] = mem.alloc_array("dist", dist)
        self.ptrs["mask"] = mem.alloc_array("mask", mask)
        self.ptrs["updating"] = mem.alloc_array(
            "updating", np.zeros(n, dtype=np.uint32))
        self.ptrs["stop"] = mem.alloc("stop", 4)

    def host(self, emu, module):
        relax, update = module["sssp_relax"], module["sssp_update"]
        n = self.graph.num_nodes
        grid = (max(1, -(-n // self.BLOCK)),)
        while True:
            emu.memory.store(self.ptrs["stop"], _U32, 0)
            yield emu.launch(relax, grid, (self.BLOCK,), params={
                "row_ptr": self.ptrs["row_ptr"],
                "col_idx": self.ptrs["col_idx"],
                "weights": self.ptrs["weights"],
                "dist": self.ptrs["dist"],
                "mask": self.ptrs["mask"],
                "updating": self.ptrs["updating"],
                "num_nodes": n})
            yield emu.launch(update, grid, (self.BLOCK,), params={
                "mask": self.ptrs["mask"],
                "updating": self.ptrs["updating"],
                "stop": self.ptrs["stop"],
                "num_nodes": n})
            if emu.memory.load(self.ptrs["stop"], _U32) == 0:
                break

    def verify(self, mem):
        n = self.graph.num_nodes
        dist = mem.read_array("dist", np.int32, n).astype(np.int64)
        expected = reference_shortest_paths(self.graph, self.SOURCE)
        if not np.array_equal(dist, expected):
            bad = int(np.sum(dist != expected))
            raise AssertionError("sssp: %d/%d distances wrong" % (bad, n))
