"""Workload framework: how an application is defined, run and verified.

A workload is the reproduction's equivalent of one paper benchmark.  It
bundles:

* PTX-subset source for its kernels,
* host-side orchestration (input generation, launches, readback — the
  part a CUDA application runs on the CPU),
* a functional verifier against a numpy/networkx reference, and
* Table I metadata (category, data-set description).

``Workload.run()`` produces a :class:`WorkloadRun`: the parsed module,
per-kernel load classifications, the application trace and the final
memory image — everything the profiling and simulation layers consume.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List

from ..core import ClassificationResult, classify_kernel
from ..emulator import ApplicationTrace, Emulator, MemoryImage
from ..emulator import machine as _machine
from ..obs import tracing
from ..ptx import Module, parse_module
from ..resilience.fallback import run_with_fallback
from ..testing.faults import check_engine_fault, check_fault


@dataclass
class WorkloadRun:
    """Everything produced by one complete application run."""

    workload: "Workload"
    module: Module
    memory: MemoryImage
    trace: ApplicationTrace
    classifications: Dict[str, ClassificationResult]
    #: wall seconds per pipeline phase (``parse``, ``classify``,
    #: ``setup``, ``emulate``, ``verify``) — lets benchmarks separate
    #: engine time from input generation.
    timings: Dict[str, float] = field(default_factory=dict)
    #: the engine that actually produced the trace (after any
    #: fallbacks; ``""`` only on hand-built runs).
    engine: str = ""
    #: engine downgrades recorded on the way (JSON dicts with
    #: ``from``/``to``/``reason`` — see
    #: :class:`~repro.resilience.fallback.FallbackEvent`).
    fallbacks: List[dict] = field(default_factory=list)

    # -- aggregate views --------------------------------------------------

    def dynamic_class_split(self):
        """Dynamic (execution-weighted) ``(deterministic, nondet)`` global
        load counts across all kernels — the per-app bar of Figure 1."""
        det = 0
        nondet = 0
        for name, result in self.classifications.items():
            counts = self.trace.dynamic_counts_by_pc(name)
            for load in result:
                n = counts.get(load.pc, 0)
                if load.is_deterministic:
                    det += n
                else:
                    nondet += n
        return det, nondet

    def pc_class_map(self, kernel_name):
        result = self.classifications.get(kernel_name)
        if result is None:
            return {}
        return {load.pc: str(load.load_class) for load in result}


class Workload(abc.ABC):
    """Base class for the 15 benchmark applications.

    Subclasses set the class attributes and implement the four hooks:
    :meth:`ptx` (kernel source), :meth:`setup` (input generation +
    device allocation), :meth:`host` (the launch sequence) and
    :meth:`verify` (functional check against a reference).
    """

    #: short name, matching the paper's Table I (e.g. ``"bfs"``).
    name: str = ""
    #: ``"linear"``, ``"image"`` or ``"graph"``.
    category: str = ""
    #: one-line description (Table I's Description column).
    description: str = ""
    #: description of the generated input (Table I's Data set column).
    data_set: str = ""
    #: True for extended-suite applications beyond the paper's Table I.
    extended: bool = False

    def __init__(self, scale=1.0, seed=7):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed

    # -- hooks ------------------------------------------------------------

    @abc.abstractmethod
    def ptx(self):
        """PTX-subset source text for every kernel of the app."""

    @abc.abstractmethod
    def setup(self, mem):
        """Generate inputs and allocate device buffers.

        Implementations stash whatever handles :meth:`host` and
        :meth:`verify` need on ``self``.
        """

    @abc.abstractmethod
    def host(self, emu, module):
        """The host program: performs kernel launches via ``emu.launch``
        and yields each :class:`KernelLaunchTrace` in order."""

    @abc.abstractmethod
    def verify(self, mem):
        """Assert functional correctness of the final memory state
        against a numpy / networkx reference implementation."""

    # -- driver --------------------------------------------------------------

    def run(self, verify=True, max_warp_insts=None, engine=None):
        """Execute the full application; returns a :class:`WorkloadRun`.

        ``engine`` selects the emulator's warp-execution engine
        (``"vectorized"``, ``"scalar"`` or ``"compiled"``; ``None`` =
        the emulator default).  ``max_warp_insts=None`` resolves to the
        ``REPRO_EMULATOR_MAX_WARP_INSTS`` environment variable, else the
        emulator's built-in watchdog budget.

        Engine *infrastructure* failures (codegen errors, trace
        integrity violations) transparently retry down the fallback
        chain (``compiled -> vectorized -> scalar``); each attempt
        restarts from a fresh memory image, because a failed engine may
        already have executed stores.  Downgrades land in
        :attr:`WorkloadRun.fallbacks` and the ``engine.fallbacks``
        counter.  Semantic failures (memory faults, watchdog, barrier
        deadlock) reproduce on every engine and propagate unchanged.
        """
        check_fault(self.name, "emulate")
        timings = {}
        clock = time.perf_counter
        t0 = clock()
        with tracing.span("parse", app=self.name):
            module = parse_module(self.ptx())
        timings["parse"] = clock() - t0
        t0 = clock()
        with tracing.span("classify", app=self.name,
                          kernels=len(list(module))):
            classifications = {k.name: classify_kernel(k) for k in module}
        timings["classify"] = clock() - t0

        def attempt(engine_name):
            check_engine_fault(self.name, engine_name)
            mem = MemoryImage()
            t0 = clock()
            with tracing.span("setup", app=self.name, scale=self.scale,
                              seed=self.seed):
                self.setup(mem)
            timings["setup"] = clock() - t0
            emu = Emulator(mem, max_warp_insts=max_warp_insts,
                           engine=engine_name)
            app = ApplicationTrace(name=self.name)
            t0 = clock()
            with tracing.span("emulate", app=self.name,
                              engine=emu.engine) as sp:
                for launch_trace in self.host(emu, module):
                    app.add(launch_trace)
                sp.set(launches=len(app.launches))
            timings["emulate"] = clock() - t0
            return mem, app

        requested = engine if engine is not None else _machine.DEFAULT_ENGINE
        (mem, app), engine_used, events = run_with_fallback(
            attempt, requested, app=self.name)
        if verify:
            t0 = clock()
            with tracing.span("verify", app=self.name):
                self.verify(mem)
            timings["verify"] = clock() - t0
        return WorkloadRun(
            workload=self,
            module=module,
            memory=mem,
            trace=app,
            classifications=classifications,
            timings=timings,
            engine=engine_used,
            fallbacks=[e.to_json() for e in events],
        )

    # -- helpers for subclasses ------------------------------------------------

    def dim(self, base, minimum=1, multiple=1):
        """Scale a base size by ``self.scale``, clamped and rounded to a
        multiple (keeps matrix tiles and CTA shapes aligned)."""
        value = max(minimum, int(round(base * self.scale)))
        if multiple > 1:
            value = max(multiple, (value // multiple) * multiple)
        return value

    def __repr__(self):
        return "%s(scale=%s)" % (type(self).__name__, self.scale)
