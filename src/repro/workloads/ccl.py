"""ccl — connected-component labelling via label propagation.

Every node starts with its own id as label; each iteration a node takes
the minimum label among itself and its neighbours (double-buffered), and
the host iterates until no label changed.  Neighbour-label loads are
indexed through the edge array — non-deterministic — while each node's
own label load is deterministic.  At convergence each node's label is the
smallest node id in its component.
"""

from __future__ import annotations

import numpy as np

from ..ptx.isa import DType
from .base import Workload
from .graph_common import alloc_graph, default_graph, reference_components

_U32 = DType.U32

_PTX = """
.entry ccl_propagate (
    .param .u64 row_ptr,
    .param .u64 col_idx,
    .param .u64 labels_in,
    .param .u64 labels_out,
    .param .u64 changed,
    .param .u32 num_nodes
)
{
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [labels_in];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // own label     (deterministic)
    ld.param.u64   %rd5, [row_ptr];
    add.u64        %rd6, %rd5, %rd3;
    ld.global.u32  %r7, [%rd6];            // start         (deterministic)
    ld.global.u32  %r8, [%rd6+4];          // end           (deterministic)
    ld.param.u64   %rd7, [col_idx];
    mov.u32        %r9, %r7;               // i = start (loaded!)
    mov.u32        %r10, %r6;              // best = own label
LOOP:
    setp.ge.u32    %p2, %r9, %r8;
    @%p2 bra       DONE;
    cvt.u64.u32    %rd8, %r9;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd7, %rd9;
    ld.global.u32  %r11, [%rd10];          // u = edges[i] (NON-deterministic)
    cvt.u64.u32    %rd11, %r11;
    shl.b64        %rd12, %rd11, 2;
    add.u64        %rd13, %rd1, %rd12;
    ld.global.u32  %r12, [%rd13];          // labels[u]    (NON-deterministic)
    min.u32        %r10, %r10, %r12;
    add.u32        %r9, %r9, 1;
    bra            LOOP;
DONE:
    ld.param.u64   %rd14, [labels_out];
    add.u64        %rd15, %rd14, %rd3;
    st.global.u32  [%rd15], %r10;
    setp.ge.u32    %p3, %r10, %r6;
    @%p3 bra       EXIT;
    ld.param.u64   %rd16, [changed];
    st.global.u32  [%rd16], 1;
EXIT:
    exit;
}
"""


class CCL(Workload):
    """Iterative min-label propagation for connected components."""

    name = "ccl"
    category = "graph"
    description = "connected component labeling"

    BLOCK = 128

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.graph = None

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.graph = default_graph(self)
        n = self.graph.num_nodes
        self.data_set = "R-MAT graph, %d nodes / %d edges" % (
            n, self.graph.num_edges)
        self.ptrs = alloc_graph(mem, self.graph)
        labels = np.arange(n, dtype=np.uint32)
        self.ptrs["labels_a"] = mem.alloc_array("labels_a", labels)
        self.ptrs["labels_b"] = mem.alloc_array("labels_b", labels)
        self.ptrs["changed"] = mem.alloc("changed", 4)
        self.final_buffer = "labels_a"

    def host(self, emu, module):
        kernel = module["ccl_propagate"]
        n = self.graph.num_nodes
        grid = (max(1, -(-n // self.BLOCK)),)
        src, dst = "labels_a", "labels_b"
        while True:
            emu.memory.store(self.ptrs["changed"], _U32, 0)
            yield emu.launch(kernel, grid, (self.BLOCK,), params={
                "row_ptr": self.ptrs["row_ptr"],
                "col_idx": self.ptrs["col_idx"],
                "labels_in": self.ptrs[src],
                "labels_out": self.ptrs[dst],
                "changed": self.ptrs["changed"],
                "num_nodes": n})
            src, dst = dst, src
            if emu.memory.load(self.ptrs["changed"], _U32) == 0:
                break
        self.final_buffer = src

    def verify(self, mem):
        n = self.graph.num_nodes
        labels = mem.read_array(self.final_buffer, np.uint32, n).astype(
            np.int64)
        expected = reference_components(self.graph)
        if not np.array_equal(labels, expected):
            bad = int(np.sum(labels != expected))
            raise AssertionError("ccl: %d/%d labels wrong" % (bad, n))
