"""htw — heart-wall motion tracking (Rodinia ``heartwall``, simplified).

Keeps the benchmark's memory idiom: per video frame, one CTA per
tracking point stages that point's template tile into shared memory
(cooperatively, with a barrier), then every thread computes the sum of
absolute differences between the staged template and an image window at
its own candidate displacement, writing a score matrix.  The host then
moves each tracking point to its best displacement and processes the
next frame (one launch per frame, like heartwall's frame loop).

All global loads index by thread/CTA ids and parameters — deterministic —
and shared memory carries most of the traffic (Figure 9).
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import synthetic_image

#: template edge (TPL x TPL pixels); also the shared staging tile.
TPL = 8
#: search window edge: displacements in [-3, +4) per axis => 64 candidates.
SEARCH = 8

_PTX = """
.entry track_point (
    .param .u64 frame,
    .param .u64 templates,
    .param .u64 points,
    .param .u64 scores,
    .param .u32 frame_cols
)
{
    // CTA = one tracking point, 64 threads = 8x8 candidate displacements
    .reg .u32 %r<24>;
    .shared .f32 s_tpl[64];
    mov.u32        %r1, %tid.x;            // candidate index (0..63)
    mov.u32        %r2, %ctaid.x;          // point index
    ld.param.u32   %r3, [frame_cols];
    // stage this point's 8x8 template into shared memory (one element
    // per thread)
    ld.param.u64   %rd1, [templates];
    mad.lo.u32     %r4, %r2, 64, %r1;      // point*64 + tid
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // template px  (deterministic)
    mov.u32        %r5, s_tpl;
    shl.b32        %r6, %r1, 2;
    add.u32        %r7, %r5, %r6;
    st.shared.f32  [%r7], %f1;
    bar.sync       0;
    // the point's current (row, col): two u32s in *constant* memory —
    // heartwall keeps its point lists in __constant__ structures, and
    // constant data is parameterized for the classifier (Section V)
    ld.param.u64   %rd5, [points];
    shl.b32        %r8, %r2, 3;            // point*8 bytes
    cvt.u64.u32    %rd6, %r8;
    add.u64        %rd7, %rd5, %rd6;
    ld.const.u32   %r9, [%rd7];            // row    (constant cache)
    ld.const.u32   %r10, [%rd7+4];         // col    (constant cache)
    // candidate displacement (dr, dc) in [-3, 4): tid = dr8*8 + dc8
    shr.u32        %r11, %r1, 3;
    and.b32        %r12, %r1, 7;
    add.u32        %r13, %r9, %r11;
    sub.u32        %r13, %r13, 3;          // win_row = row + dr
    add.u32        %r14, %r10, %r12;
    sub.u32        %r14, %r14, 3;          // win_col = col + dc
    // SAD between the staged template and the frame window
    ld.param.u64   %rd8, [frame];
    mov.f32        %f2, 0.0;               // SAD accumulator
    mov.u32        %r15, 0;                // ty
ROWLOOP:
    setp.ge.u32    %p1, %r15, 8;
    @%p1 bra       DONE;
    add.u32        %r16, %r13, %r15;       // frame row
    mov.u32        %r17, 0;                // tx
COLLOOP:
    setp.ge.u32    %p2, %r17, 8;
    @%p2 bra       ROWNEXT;
    add.u32        %r18, %r14, %r17;       // frame col
    mad.lo.u32     %r19, %r16, %r3, %r18;
    cvt.u64.u32    %rd9, %r19;
    shl.b64        %rd10, %rd9, 2;
    add.u64        %rd11, %rd8, %rd10;
    ld.global.f32  %f3, [%rd11];           // frame px  (deterministic)
    mad.lo.u32     %r20, %r15, 8, %r17;
    shl.b32        %r21, %r20, 2;
    add.u32        %r22, %r5, %r21;
    ld.shared.f32  %f4, [%r22];            // template px (shared)
    sub.f32        %f5, %f3, %f4;
    abs.f32        %f6, %f5;
    add.f32        %f2, %f2, %f6;
    add.u32        %r17, %r17, 1;
    bra            COLLOOP;
ROWNEXT:
    add.u32        %r15, %r15, 1;
    bra            ROWLOOP;
DONE:
    ld.param.u64   %rd12, [scores];
    mad.lo.u32     %r23, %r2, 64, %r1;     // point*64 + candidate
    cvt.u64.u32    %rd13, %r23;
    shl.b64        %rd14, %rd13, 2;
    add.u64        %rd15, %rd12, %rd14;
    st.global.f32  [%rd15], %f2;
    exit;
}
"""


class HeartWall(Workload):
    """Template tracking of points across synthetic frames."""

    name = "htw"
    category = "image"
    description = "heart wall motion tracking"

    FRAMES = 2
    POINTS = 12

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.rows = self.dim(64, minimum=32, multiple=16)
        self.cols = self.dim(64, minimum=32, multiple=16)
        self.frames = max(1, int(round(self.FRAMES * min(self.scale, 2.0))))
        self.data_set = "%d %dx%d frames, %d points" % (
            self.frames, self.rows, self.cols, self.POINTS)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        r = np.random.default_rng(self.seed)
        self.frames_host = [
            synthetic_image(self.rows, self.cols, seed=self.seed + f)
            for f in range(self.frames)]
        margin = TPL + 4
        self.points_host = np.stack([
            r.integers(margin, self.rows - margin, size=self.POINTS),
            r.integers(margin, self.cols - margin, size=self.POINTS),
        ], axis=1).astype(np.uint32)
        # each point's template: the 8x8 patch around it in frame 0
        self.templates_host = np.zeros((self.POINTS, TPL * TPL),
                                       dtype=np.float32)
        for p, (row, col) in enumerate(self.points_host):
            patch = self.frames_host[0][row:row + TPL, col:col + TPL]
            self.templates_host[p] = patch.reshape(-1)
        self.ptr_frame = mem.alloc_array("frame", self.frames_host[0])
        self.ptr_templates = mem.alloc_array("templates",
                                             self.templates_host)
        self.ptr_points = mem.alloc_array("points", self.points_host)
        self.ptr_scores = mem.alloc("scores", self.POINTS * 64 * 4)
        self.trajectory = [self.points_host.copy()]

    def host(self, emu, module):
        kernel = module["track_point"]
        for f in range(self.frames):
            emu.memory.write_array("frame", self.frames_host[f])
            yield emu.launch(kernel, (self.POINTS,), (64,), params={
                "frame": self.ptr_frame, "templates": self.ptr_templates,
                "points": self.ptr_points, "scores": self.ptr_scores,
                "frame_cols": self.cols})
            # host step: move every point to its best-scoring displacement
            scores = emu.memory.read_array(
                "scores", np.float32, self.POINTS * 64).reshape(
                    self.POINTS, 64)
            points = emu.memory.read_array(
                "points", np.uint32, self.POINTS * 2).reshape(
                    self.POINTS, 2).astype(np.int64)
            best = scores.argmin(axis=1)
            points[:, 0] += best // 8 - 3
            points[:, 1] += best % 8 - 3
            margin = TPL + 4
            points[:, 0] = np.clip(points[:, 0], margin,
                                   self.rows - margin)
            points[:, 1] = np.clip(points[:, 1], margin,
                                   self.cols - margin)
            emu.memory.write_array("points", points.astype(np.uint32))
            self.trajectory.append(points.astype(np.uint32))

    def verify(self, mem):
        # replay the final frame's SAD scores on the host
        frame = self.frames_host[-1].astype(np.float64)
        points = self.trajectory[-2].astype(np.int64)
        scores = mem.read_array("scores", np.float32,
                                self.POINTS * 64).reshape(self.POINTS, 64)
        for p in range(self.POINTS):
            row, col = points[p]
            tpl = self.templates_host[p].reshape(TPL, TPL).astype(np.float64)
            for cand in range(64):
                wr = row + cand // 8 - 3
                wc = col + cand % 8 - 3
                window = frame[wr:wr + TPL, wc:wc + TPL]
                expected = np.abs(window - tpl).sum()
                if not np.isclose(scores[p, cand], expected,
                                  rtol=1e-3, atol=1e-3):
                    raise AssertionError(
                        "htw: SAD mismatch point %d cand %d" % (p, cand))
