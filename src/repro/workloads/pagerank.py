"""pagerank — pull-based PageRank over a CSR graph.

Part of the *extended* suite: the archetypal iterative graph-analytics
kernel the paper's introduction motivates.  Each vertex pulls
``rank[u] / degree[u]`` from its in-neighbours — both indexed through
the loaded edge array, so like bfs the hot loads are non-deterministic.
The host iterates a fixed number of power-method steps with ping-pong
rank buffers and verifies against networkx.
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .graph_common import alloc_graph, default_graph

#: damping factor (the standard 0.85)
DAMPING = 0.85

_PTX = """
.entry pagerank_pull (
    .param .u64 row_ptr,
    .param .u64 col_idx,
    .param .u64 rank_in,
    .param .u64 rank_out,
    .param .u64 inv_degree,
    .param .f32 base_rank,
    .param .u32 num_nodes
)
{
    .reg .u32 %r<14>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [row_ptr];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // start         (deterministic)
    ld.global.u32  %r7, [%rd4+4];          // end           (deterministic)
    ld.param.u64   %rd5, [col_idx];
    ld.param.u64   %rd6, [rank_in];
    ld.param.u64   %rd7, [inv_degree];
    mov.f32        %f1, 0.0;               // pulled mass
    mov.u32        %r8, %r6;               // i = start (loaded!)
LOOP:
    setp.ge.u32    %p2, %r8, %r7;
    @%p2 bra       DONE;
    cvt.u64.u32    %rd8, %r8;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd5, %rd9;
    ld.global.u32  %r9, [%rd10];           // u = edges[i] (NON-deterministic)
    cvt.u64.u32    %rd11, %r9;
    shl.b64        %rd12, %rd11, 2;
    add.u64        %rd13, %rd6, %rd12;
    ld.global.f32  %f2, [%rd13];           // rank[u]      (NON-deterministic)
    add.u64        %rd14, %rd7, %rd12;
    ld.global.f32  %f3, [%rd14];           // 1/deg[u]     (NON-deterministic)
    mad.f32        %f1, %f2, %f3, %f1;
    add.u32        %r8, %r8, 1;
    bra            LOOP;
DONE:
    // rank'[v] = (1 - d)/n + d * pulled
    ld.param.f32   %f4, [base_rank];
    mad.f32        %f5, %f1, 0.85, %f4;
    ld.param.u64   %rd15, [rank_out];
    add.u64        %rd16, %rd15, %rd3;
    st.global.f32  [%rd16], %f5;
EXIT:
    exit;
}
"""


def pagerank_reference(graph, iterations):
    """Power-method reference with the same dangling-node handling
    (dangling mass is dropped, matching the device kernel)."""
    n = graph.num_nodes
    degree = np.diff(graph.row_ptr).astype(np.float64)
    rank = np.full(n, 1.0 / n)
    base = (1.0 - DAMPING) / n
    inv_degree = np.where(degree > 0, 1.0 / np.maximum(degree, 1), 0.0)
    for _ in range(iterations):
        contribution = rank * inv_degree
        pulled = np.zeros(n)
        for v in range(n):
            lo, hi = graph.row_ptr[v], graph.row_ptr[v + 1]
            pulled[v] = contribution[graph.col_idx[lo:hi]].sum()
        rank = base + DAMPING * pulled
    return rank


class PageRank(Workload):
    """Pull-based PageRank power iterations."""

    name = "pagerank"
    category = "graph"
    extended = True

    description = "PageRank power iterations (extended suite)"

    BLOCK = 128
    ITERS = 3

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.graph = None

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.graph = default_graph(self, base_nodes=1024)
        n = self.graph.num_nodes
        self.data_set = "R-MAT graph, %d nodes / %d edges, %d iters" % (
            n, self.graph.num_edges, self.ITERS)
        self.ptrs = alloc_graph(mem, self.graph)
        degree = np.diff(self.graph.row_ptr).astype(np.float64)
        inv_degree = np.where(degree > 0, 1.0 / np.maximum(degree, 1),
                              0.0).astype(np.float32)
        rank0 = np.full(n, 1.0 / n, dtype=np.float32)
        self.ptrs["rank_a"] = mem.alloc_array("rank_a", rank0)
        self.ptrs["rank_b"] = mem.alloc("rank_b", n * 4)
        self.ptrs["inv_degree"] = mem.alloc_array("inv_degree", inv_degree)
        self.final_buffer = "rank_a"

    def host(self, emu, module):
        kernel = module["pagerank_pull"]
        n = self.graph.num_nodes
        grid = (max(1, -(-n // self.BLOCK)),)
        src, dst = self.ptrs["rank_a"], self.ptrs["rank_b"]
        names = {self.ptrs["rank_a"]: "rank_a",
                 self.ptrs["rank_b"]: "rank_b"}
        for _ in range(self.ITERS):
            yield emu.launch(kernel, grid, (self.BLOCK,), params={
                "row_ptr": self.ptrs["row_ptr"],
                "col_idx": self.ptrs["col_idx"],
                "rank_in": src, "rank_out": dst,
                "inv_degree": self.ptrs["inv_degree"],
                "base_rank": (1.0 - DAMPING) / n,
                "num_nodes": n})
            src, dst = dst, src
        self.final_buffer = names[src]

    def verify(self, mem):
        n = self.graph.num_nodes
        rank = mem.read_array(self.final_buffer, np.float32, n)
        expected = pagerank_reference(self.graph, self.ITERS)
        if not np.allclose(rank, expected, rtol=1e-3, atol=1e-6):
            raise AssertionError("pagerank: rank vector mismatch")
