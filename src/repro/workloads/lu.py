"""lu — LU decomposition (PolyBench ``lu``).

In-place Doolittle factorization without pivoting (the input is
diagonally dominant, so pivoting is unnecessary).  Per pivot ``k`` the
host launches a column-scaling kernel and a rank-1 submatrix update —
all loads are linear in thread/CTA ids, hence deterministic.
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import diagonally_dominant_matrix

_PTX = """
.entry lu_scale (
    .param .u64 a,
    .param .u32 n,
    .param .u32 k
)
{
    // a[i][k] /= a[k][k]  for i > k
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;
    ld.param.u32   %r5, [n];
    ld.param.u32   %r6, [k];
    sub.u32        %r7, %r5, %r6;
    sub.u32        %r8, %r7, 1;
    setp.ge.u32    %p1, %r4, %r8;
    @%p1 bra       EXIT;
    add.u32        %r9, %r4, %r6;
    add.u32        %r10, %r9, 1;           // i = k + 1 + tid
    ld.param.u64   %rd1, [a];
    mad.lo.u32     %r11, %r10, %r5, %r6;   // i*n + k
    cvt.u64.u32    %rd2, %r11;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // a[i][k]  (deterministic)
    mad.lo.u32     %r12, %r6, %r5, %r6;    // k*n + k
    cvt.u64.u32    %rd5, %r12;
    shl.b64        %rd6, %rd5, 2;
    add.u64        %rd7, %rd1, %rd6;
    ld.global.f32  %f2, [%rd7];            // a[k][k]  (deterministic)
    div.f32        %f3, %f1, %f2;
    st.global.f32  [%rd4], %f3;
EXIT:
    exit;
}

.entry lu_update (
    .param .u64 a,
    .param .u32 n,
    .param .u32 k
)
{
    // a[i][j] -= a[i][k] * a[k][j]  for i, j > k
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // j offset
    mov.u32        %r5, %ctaid.y;
    mov.u32        %r6, %ntid.y;
    mov.u32        %r7, %tid.y;
    mad.lo.u32     %r8, %r5, %r6, %r7;     // i offset
    ld.param.u32   %r9, [n];
    ld.param.u32   %r10, [k];
    sub.u32        %r11, %r9, %r10;
    sub.u32        %r12, %r11, 1;
    setp.ge.u32    %p1, %r4, %r12;
    @%p1 bra       EXIT;
    setp.ge.u32    %p2, %r8, %r12;
    @%p2 bra       EXIT;
    add.u32        %r13, %r4, %r10;
    add.u32        %r14, %r13, 1;          // j = k + 1 + joff
    add.u32        %r15, %r8, %r10;
    add.u32        %r16, %r15, 1;          // i = k + 1 + ioff
    ld.param.u64   %rd1, [a];
    mad.lo.u32     %r17, %r16, %r9, %r10;  // i*n + k
    cvt.u64.u32    %rd2, %r17;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // a[i][k]  (deterministic)
    mad.lo.u32     %r18, %r10, %r9, %r14;  // k*n + j
    cvt.u64.u32    %rd5, %r18;
    shl.b64        %rd6, %rd5, 2;
    add.u64        %rd7, %rd1, %rd6;
    ld.global.f32  %f2, [%rd7];            // a[k][j]  (deterministic)
    mad.lo.u32     %r19, %r16, %r9, %r14;  // i*n + j
    cvt.u64.u32    %rd8, %r19;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd1, %rd9;
    ld.global.f32  %f3, [%rd10];           // a[i][j]  (deterministic)
    mul.f32        %f4, %f1, %f2;
    sub.f32        %f5, %f3, %f4;
    st.global.f32  [%rd10], %f5;
EXIT:
    exit;
}
"""


class LUDecomposition(Workload):
    """In-place LU factorization, one kernel pair per pivot."""

    name = "lu"
    category = "linear"
    description = "LU decomposition"

    BLOCK_1D = 64
    BLOCK_2D = 16

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.n = self.dim(48, minimum=8, multiple=8)
        self.data_set = "%dx%d matrix" % (self.n, self.n)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.a_host = diagonally_dominant_matrix(self.n, seed=self.seed)
        self.ptr_a = mem.alloc_array("a", self.a_host)

    def host(self, emu, module):
        scale_k, update_k = module["lu_scale"], module["lu_update"]
        n = self.n
        for k in range(n - 1):
            rows = n - k - 1
            grid1 = (max(1, -(-rows // self.BLOCK_1D)),)
            yield emu.launch(scale_k, grid1, (self.BLOCK_1D,), params={
                "a": self.ptr_a, "n": n, "k": k})
            g2 = max(1, -(-rows // self.BLOCK_2D))
            yield emu.launch(update_k, (g2, g2),
                             (self.BLOCK_2D, self.BLOCK_2D),
                             params={"a": self.ptr_a, "n": n, "k": k})

    def verify(self, mem):
        n = self.n
        lu = mem.read_array("a", np.float32, n * n).reshape(n, n)
        lower = np.tril(lu, -1).astype(np.float64) + np.eye(n)
        upper = np.triu(lu).astype(np.float64)
        reconstructed = lower @ upper
        if not np.allclose(reconstructed, self.a_host.astype(np.float64),
                           rtol=1e-3, atol=1e-2):
            raise AssertionError("lu: L*U does not reconstruct A")
