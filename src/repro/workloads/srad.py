"""srad — speckle-reducing anisotropic diffusion (Rodinia ``srad_v2``).

Two kernels per iteration: ``srad1`` computes the per-pixel diffusion
coefficient from the four clamped-neighbour derivatives; ``srad2``
applies the divergence update.  The host computes ``q0sqr`` (the speckle
statistic) from a readback each iteration, exactly like Rodinia's host
loop.  Neighbour indices are clamped arithmetically (min/max of
thread-id expressions), so every load is deterministic.
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import synthetic_image

_PTX = """
.entry srad1 (
    .param .u64 J,
    .param .u64 C,
    .param .u64 DN,
    .param .u64 DS,
    .param .u64 DW,
    .param .u64 DE,
    .param .u32 rows,
    .param .u32 cols,
    .param .f32 q0sqr
)
{
    .reg .u32 %r<24>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // col
    mov.u32        %r5, %ctaid.y;
    mov.u32        %r6, %ntid.y;
    mov.u32        %r7, %tid.y;
    mad.lo.u32     %r8, %r5, %r6, %r7;     // row
    ld.param.u32   %r9, [rows];
    ld.param.u32   %r10, [cols];
    setp.ge.u32    %p1, %r4, %r10;
    @%p1 bra       EXIT;
    setp.ge.u32    %p2, %r8, %r9;
    @%p2 bra       EXIT;
    // clamped neighbour rows/cols (deterministic arithmetic)
    sub.u32        %r11, %r9, 1;
    sub.u32        %r12, %r10, 1;
    mov.u32        %r13, 0;
    setp.eq.u32    %p3, %r8, 0;
    selp.u32       %r14, 0, %r8, %p3;
    @!%p3 sub.u32  %r14, %r8, 1;           // rN = max(row-1, 0)
    add.u32        %r15, %r8, 1;
    min.u32        %r15, %r15, %r11;       // rS = min(row+1, rows-1)
    setp.eq.u32    %p4, %r4, 0;
    selp.u32       %r16, 0, %r4, %p4;
    @!%p4 sub.u32  %r16, %r4, 1;           // cW = max(col-1, 0)
    add.u32        %r17, %r4, 1;
    min.u32        %r17, %r17, %r12;       // cE = min(col+1, cols-1)
    ld.param.u64   %rd1, [J];
    mad.lo.u32     %r18, %r8, %r10, %r4;   // row*cols + col
    cvt.u64.u32    %rd2, %r18;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // Jc          (deterministic)
    mad.lo.u32     %r19, %r14, %r10, %r4;
    cvt.u64.u32    %rd5, %r19;
    shl.b64        %rd6, %rd5, 2;
    add.u64        %rd7, %rd1, %rd6;
    ld.global.f32  %f2, [%rd7];            // J north     (deterministic)
    mad.lo.u32     %r20, %r15, %r10, %r4;
    cvt.u64.u32    %rd8, %r20;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd1, %rd9;
    ld.global.f32  %f3, [%rd10];           // J south     (deterministic)
    mad.lo.u32     %r21, %r8, %r10, %r16;
    cvt.u64.u32    %rd11, %r21;
    shl.b64        %rd12, %rd11, 2;
    add.u64        %rd13, %rd1, %rd12;
    ld.global.f32  %f4, [%rd13];           // J west      (deterministic)
    mad.lo.u32     %r22, %r8, %r10, %r17;
    cvt.u64.u32    %rd14, %r22;
    shl.b64        %rd15, %rd14, 2;
    add.u64        %rd16, %rd1, %rd15;
    ld.global.f32  %f5, [%rd16];           // J east      (deterministic)
    sub.f32        %f6, %f2, %f1;          // dN
    sub.f32        %f7, %f3, %f1;          // dS
    sub.f32        %f8, %f4, %f1;          // dW
    sub.f32        %f9, %f5, %f1;          // dE
    // G2 = (dN^2 + dS^2 + dW^2 + dE^2) / Jc^2
    mul.f32        %f10, %f6, %f6;
    mad.f32        %f10, %f7, %f7, %f10;
    mad.f32        %f10, %f8, %f8, %f10;
    mad.f32        %f10, %f9, %f9, %f10;
    mul.f32        %f11, %f1, %f1;
    div.f32        %f12, %f10, %f11;
    // L = (dN + dS + dW + dE) / Jc
    add.f32        %f13, %f6, %f7;
    add.f32        %f14, %f8, %f9;
    add.f32        %f15, %f13, %f14;
    div.f32        %f16, %f15, %f1;
    // num = 0.5*G2 - (1/16)*L^2 ; den = (1 + 0.25*L)^2
    mul.f32        %f17, %f12, 0.5;
    mul.f32        %f18, %f16, %f16;
    mad.f32        %f17, %f18, -0.0625, %f17;
    mad.f32        %f19, %f16, 0.25, 1.0;
    mul.f32        %f20, %f19, %f19;
    div.f32        %f21, %f17, %f20;       // qsqr
    // c = 1 / (1 + (qsqr - q0sqr) / (q0sqr * (1 + q0sqr)))
    ld.param.f32   %f22, [q0sqr];
    sub.f32        %f23, %f21, %f22;
    add.f32        %f24, %f22, 1.0;
    mul.f32        %f25, %f22, %f24;
    div.f32        %f26, %f23, %f25;
    add.f32        %f27, %f26, 1.0;
    rcp.f32        %f28, %f27;
    // clamp c to [0, 1]
    max.f32        %f28, %f28, 0.0;
    min.f32        %f28, %f28, 1.0;
    ld.param.u64   %rd17, [C];
    add.u64        %rd18, %rd17, %rd3;
    st.global.f32  [%rd18], %f28;
    ld.param.u64   %rd19, [DN];
    add.u64        %rd20, %rd19, %rd3;
    st.global.f32  [%rd20], %f6;
    ld.param.u64   %rd21, [DS];
    add.u64        %rd22, %rd21, %rd3;
    st.global.f32  [%rd22], %f7;
    ld.param.u64   %rd23, [DW];
    add.u64        %rd24, %rd23, %rd3;
    st.global.f32  [%rd24], %f8;
    ld.param.u64   %rd25, [DE];
    add.u64        %rd26, %rd25, %rd3;
    st.global.f32  [%rd26], %f9;
EXIT:
    exit;
}

.entry srad2 (
    .param .u64 J,
    .param .u64 C,
    .param .u64 DN,
    .param .u64 DS,
    .param .u64 DW,
    .param .u64 DE,
    .param .u32 rows,
    .param .u32 cols,
    .param .f32 lambda
)
{
    .reg .u32 %r<20>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // col
    mov.u32        %r5, %ctaid.y;
    mov.u32        %r6, %ntid.y;
    mov.u32        %r7, %tid.y;
    mad.lo.u32     %r8, %r5, %r6, %r7;     // row
    ld.param.u32   %r9, [rows];
    ld.param.u32   %r10, [cols];
    setp.ge.u32    %p1, %r4, %r10;
    @%p1 bra       EXIT;
    setp.ge.u32    %p2, %r8, %r9;
    @%p2 bra       EXIT;
    sub.u32        %r11, %r9, 1;
    sub.u32        %r12, %r10, 1;
    add.u32        %r13, %r8, 1;
    min.u32        %r13, %r13, %r11;       // rS
    add.u32        %r14, %r4, 1;
    min.u32        %r14, %r14, %r12;       // cE
    mad.lo.u32     %r15, %r8, %r10, %r4;   // center
    cvt.u64.u32    %rd1, %r15;
    shl.b64        %rd2, %rd1, 2;
    ld.param.u64   %rd3, [C];
    add.u64        %rd4, %rd3, %rd2;
    ld.global.f32  %f1, [%rd4];            // cN = cW = c[center]
    mad.lo.u32     %r16, %r13, %r10, %r4;  // south neighbour
    cvt.u64.u32    %rd5, %r16;
    shl.b64        %rd6, %rd5, 2;
    add.u64        %rd7, %rd3, %rd6;
    ld.global.f32  %f2, [%rd7];            // cS  (deterministic)
    mad.lo.u32     %r17, %r8, %r10, %r14;  // east neighbour
    cvt.u64.u32    %rd8, %r17;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd3, %rd9;
    ld.global.f32  %f3, [%rd10];           // cE  (deterministic)
    ld.param.u64   %rd11, [DN];
    add.u64        %rd12, %rd11, %rd2;
    ld.global.f32  %f4, [%rd12];           // dN
    ld.param.u64   %rd13, [DS];
    add.u64        %rd14, %rd13, %rd2;
    ld.global.f32  %f5, [%rd14];           // dS
    ld.param.u64   %rd15, [DW];
    add.u64        %rd16, %rd15, %rd2;
    ld.global.f32  %f6, [%rd16];           // dW
    ld.param.u64   %rd17, [DE];
    add.u64        %rd18, %rd17, %rd2;
    ld.global.f32  %f7, [%rd18];           // dE
    // div = cN*dN + cS*dS + cW*dW + cE*dE  (Rodinia's c-offset scheme)
    mul.f32        %f8, %f1, %f4;
    mad.f32        %f8, %f2, %f5, %f8;
    mad.f32        %f8, %f1, %f6, %f8;
    mad.f32        %f8, %f3, %f7, %f8;
    ld.param.u64   %rd19, [J];
    add.u64        %rd20, %rd19, %rd2;
    ld.global.f32  %f9, [%rd20];           // J[center]  (deterministic)
    ld.param.f32   %f10, [lambda];
    mul.f32        %f11, %f10, 0.25;
    mad.f32        %f12, %f11, %f8, %f9;
    st.global.f32  [%rd20], %f12;
EXIT:
    exit;
}
"""


def srad_reference(img, num_iters, lam):
    """Host reference of the same SRAD discretization (float64)."""
    j = img.astype(np.float64).copy()
    rows, cols = j.shape
    for _ in range(num_iters):
        sample = j
        q0sqr = sample.var() / (sample.mean() ** 2)
        rn = np.maximum(np.arange(rows) - 1, 0)
        rs = np.minimum(np.arange(rows) + 1, rows - 1)
        cw = np.maximum(np.arange(cols) - 1, 0)
        ce = np.minimum(np.arange(cols) + 1, cols - 1)
        dn = j[rn, :] - j
        ds = j[rs, :] - j
        dw = j[:, cw] - j
        de = j[:, ce] - j
        g2 = (dn**2 + ds**2 + dw**2 + de**2) / (j * j)
        lap = (dn + ds + dw + de) / j
        num = 0.5 * g2 - 0.0625 * (lap * lap)
        den = (1 + 0.25 * lap) ** 2
        qsqr = num / den
        c = 1.0 / (1.0 + (qsqr - q0sqr) / (q0sqr * (1 + q0sqr)))
        c = np.clip(c, 0.0, 1.0)
        c_s = c[rs, :]
        c_e = c[:, ce]
        div = c * dn + c_s * ds + c * dw + c_e * de
        j = j + 0.25 * lam * div
    return j


class SRAD(Workload):
    """Speckle-reducing anisotropic diffusion."""

    name = "srad"
    category = "image"
    description = "speckle reducing anisotropic diffusion"

    BLOCK = 16
    LAMBDA = 0.5
    ITERS = 2

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.rows = self.dim(64, minimum=16, multiple=16)
        self.cols = self.dim(64, minimum=16, multiple=16)
        self.data_set = "%dx%d image" % (self.rows, self.cols)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        # SRAD operates on the exponentiated image in Rodinia; a strictly
        # positive synthetic image (+0.1) avoids division by zero directly
        self.img_host = synthetic_image(self.rows, self.cols,
                                        seed=self.seed) + np.float32(0.1)
        npix = self.rows * self.cols
        self.ptr_j = mem.alloc_array("J", self.img_host)
        self.ptr_c = mem.alloc("C", npix * 4)
        self.ptr_dn = mem.alloc("DN", npix * 4)
        self.ptr_ds = mem.alloc("DS", npix * 4)
        self.ptr_dw = mem.alloc("DW", npix * 4)
        self.ptr_de = mem.alloc("DE", npix * 4)

    def host(self, emu, module):
        srad1, srad2 = module["srad1"], module["srad2"]
        gx = self.cols // self.BLOCK
        gy = self.rows // self.BLOCK
        npix = self.rows * self.cols
        common = {"J": self.ptr_j, "C": self.ptr_c, "DN": self.ptr_dn,
                  "DS": self.ptr_ds, "DW": self.ptr_dw, "DE": self.ptr_de,
                  "rows": self.rows, "cols": self.cols}
        for _ in range(self.ITERS):
            # host-side speckle statistic from a readback (as Rodinia does)
            j = emu.memory.read_array("J", np.float32, npix).astype(np.float64)
            q0sqr = float(j.var() / (j.mean() ** 2))
            yield emu.launch(srad1, (gx, gy), (self.BLOCK, self.BLOCK),
                             params=dict(common, q0sqr=q0sqr))
            yield emu.launch(srad2, (gx, gy), (self.BLOCK, self.BLOCK),
                             params=dict(common, **{"lambda": self.LAMBDA}))

    def verify(self, mem):
        npix = self.rows * self.cols
        result = mem.read_array("J", np.float32, npix).reshape(
            self.rows, self.cols)
        expected = srad_reference(self.img_host, self.ITERS, self.LAMBDA)
        if not np.allclose(result, expected, rtol=1e-3, atol=1e-4):
            raise AssertionError("srad: diffused image mismatch")
