"""mriq — MRI Q-matrix calibration (Parboil ``mri-q``).

Each thread owns one voxel: it loads the voxel coordinates once from
global memory (deterministic) and then loops over the k-space samples,
which live in *constant* memory — exactly how Parboil streams ``kVals``
through ``__constant__`` chunks.  The inner loop is dominated by SFU work
(sin/cos), so mriq has the paper's smallest global-load fraction
(Table I: 0.03%) and exercises the SFU-occupancy column of Figure 4.
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import mri_trajectory

_PTX = """
.entry compute_q (
    .param .u64 kx,
    .param .u64 ky,
    .param .u64 kz,
    .param .u64 phi_mag,
    .param .u64 x,
    .param .u64 y,
    .param .u64 z,
    .param .u64 qr,
    .param .u64 qi,
    .param .u32 num_k,
    .param .u32 num_x
)
{
    .reg .u32 %r<12>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // voxel index
    ld.param.u32   %r5, [num_x];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    cvt.u64.u32    %rd1, %r4;
    shl.b64        %rd2, %rd1, 2;
    ld.param.u64   %rd3, [x];
    add.u64        %rd4, %rd3, %rd2;
    ld.global.f32  %f1, [%rd4];            // x[i]  (deterministic)
    ld.param.u64   %rd5, [y];
    add.u64        %rd6, %rd5, %rd2;
    ld.global.f32  %f2, [%rd6];            // y[i]  (deterministic)
    ld.param.u64   %rd7, [z];
    add.u64        %rd8, %rd7, %rd2;
    ld.global.f32  %f3, [%rd8];            // z[i]  (deterministic)
    ld.param.u64   %rd9, [kx];
    ld.param.u64   %rd10, [ky];
    ld.param.u64   %rd11, [kz];
    ld.param.u64   %rd12, [phi_mag];
    ld.param.u32   %r6, [num_k];
    mov.f32        %f4, 0.0;               // Qr accumulator
    mov.f32        %f5, 0.0;               // Qi accumulator
    mov.u32        %r7, 0;                 // k
LOOP:
    setp.ge.u32    %p2, %r7, %r6;
    @%p2 bra       DONE;
    cvt.u64.u32    %rd13, %r7;
    shl.b64        %rd14, %rd13, 2;
    add.u64        %rd15, %rd9, %rd14;
    ld.const.f32   %f6, [%rd15];           // kx[k]   (constant cache)
    add.u64        %rd16, %rd10, %rd14;
    ld.const.f32   %f7, [%rd16];           // ky[k]
    add.u64        %rd17, %rd11, %rd14;
    ld.const.f32   %f8, [%rd17];           // kz[k]
    add.u64        %rd18, %rd12, %rd14;
    ld.const.f32   %f9, [%rd18];           // |phi|[k]
    mul.f32        %f10, %f6, %f1;
    mad.f32        %f10, %f7, %f2, %f10;
    mad.f32        %f10, %f8, %f3, %f10;   // kx*x + ky*y + kz*z
    mul.f32        %f11, %f10, 6.2831855;  // expArg = 2*pi*dot
    cos.f32        %f12, %f11;             // SFU
    sin.f32        %f13, %f11;             // SFU
    mad.f32        %f4, %f9, %f12, %f4;
    mad.f32        %f5, %f9, %f13, %f5;
    add.u32        %r7, %r7, 1;
    bra            LOOP;
DONE:
    ld.param.u64   %rd19, [qr];
    add.u64        %rd20, %rd19, %rd2;
    st.global.f32  [%rd20], %f4;
    ld.param.u64   %rd21, [qi];
    add.u64        %rd22, %rd21, %rd2;
    st.global.f32  [%rd22], %f5;
EXIT:
    exit;
}
"""


class MRIQ(Workload):
    """MRI reconstruction Q-matrix computation."""

    name = "mriq"
    category = "image"
    description = "MRI calibration (Q matrix)"

    BLOCK = 256

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.num_x = self.dim(1024, minimum=self.BLOCK, multiple=self.BLOCK)
        self.num_k = self.dim(48, minimum=8, multiple=8)
        self.data_set = "%d voxels, %d k-space samples" % (
            self.num_x, self.num_k)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        (kx, ky, kz, phi_r, phi_i, x, y, z) = mri_trajectory(
            self.num_k, self.num_x, seed=self.seed)
        self.kx, self.ky, self.kz = kx, ky, kz
        self.phi_mag = (phi_r * phi_r + phi_i * phi_i).astype(np.float32)
        self.x, self.y, self.z = x, y, z
        self.ptrs = {
            "kx": mem.alloc_array("kx", kx),
            "ky": mem.alloc_array("ky", ky),
            "kz": mem.alloc_array("kz", kz),
            "phi_mag": mem.alloc_array("phi_mag", self.phi_mag),
            "x": mem.alloc_array("x", x),
            "y": mem.alloc_array("y", y),
            "z": mem.alloc_array("z", z),
            "qr": mem.alloc("qr", self.num_x * 4),
            "qi": mem.alloc("qi", self.num_x * 4),
        }

    def host(self, emu, module):
        kernel = module["compute_q"]
        grid = (self.num_x // self.BLOCK,)
        params = dict(self.ptrs)
        params["num_k"] = self.num_k
        params["num_x"] = self.num_x
        yield emu.launch(kernel, grid, (self.BLOCK,), params=params)

    def verify(self, mem):
        qr = mem.read_array("qr", np.float32, self.num_x)
        qi = mem.read_array("qi", np.float32, self.num_x)
        dot = (np.outer(self.x, self.kx) + np.outer(self.y, self.ky)
               + np.outer(self.z, self.kz)).astype(np.float64)
        arg = 2.0 * np.pi * dot
        expected_r = (np.cos(arg) * self.phi_mag).sum(axis=1)
        expected_i = (np.sin(arg) * self.phi_mag).sum(axis=1)
        if not np.allclose(qr, expected_r, rtol=1e-3, atol=1e-3):
            raise AssertionError("mriq: Qr mismatch")
        if not np.allclose(qi, expected_i, rtol=1e-3, atol=1e-3):
            raise AssertionError("mriq: Qi mismatch")
