"""dwt — 2-D discrete wavelet transform (Rodinia ``dwt2d``).

A two-level Haar decomposition: each thread computes the four subband
coefficients (LL/LH/HL/HH) of one 2x2 pixel block; the host launches the
kernel once per level, feeding the previous level's LL quadrant back in
(the pipelined sub-task structure Section IV describes for image
applications).  Blocks on the image boundary take a separate replicated-
padding code path, producing the control-flow divergence the paper notes
for wavelet kernels near frame boundaries.  All loads are deterministic.
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import synthetic_image

_PTX = """
.entry haar2d (
    .param .u64 src,
    .param .u64 dst,
    .param .u32 rows,
    .param .u32 cols
)
{
    .reg .u32 %r<24>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // out col
    mov.u32        %r5, %ctaid.y;
    mov.u32        %r6, %ntid.y;
    mov.u32        %r7, %tid.y;
    mad.lo.u32     %r8, %r5, %r6, %r7;     // out row
    ld.param.u32   %r9, [rows];
    ld.param.u32   %r10, [cols];
    shr.u32        %r11, %r9, 1;           // half rows
    shr.u32        %r12, %r10, 1;          // half cols
    setp.ge.u32    %p1, %r4, %r12;
    @%p1 bra       EXIT;
    setp.ge.u32    %p2, %r8, %r11;
    @%p2 bra       EXIT;
    shl.b32        %r13, %r8, 1;           // 2*row
    shl.b32        %r14, %r4, 1;           // 2*col
    ld.param.u64   %rd1, [src];
    // boundary blocks take the replicated-padding path (divergent)
    sub.u32        %r15, %r11, 1;
    setp.eq.u32    %p3, %r8, %r15;
    @%p3 bra       BORDER;
    sub.u32        %r16, %r12, 1;
    setp.eq.u32    %p4, %r4, %r16;
    @%p4 bra       BORDER;
    // interior: load the 2x2 block directly
    mad.lo.u32     %r17, %r13, %r10, %r14;
    cvt.u64.u32    %rd2, %r17;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // a = src[2r][2c]
    ld.global.f32  %f2, [%rd4+4];          // b = src[2r][2c+1]
    add.u32        %r18, %r17, %r10;
    cvt.u64.u32    %rd5, %r18;
    shl.b64        %rd6, %rd5, 2;
    add.u64        %rd7, %rd1, %rd6;
    ld.global.f32  %f3, [%rd7];            // c = src[2r+1][2c]
    ld.global.f32  %f4, [%rd7+4];          // d = src[2r+1][2c+1]
    bra            COMPUTE;
BORDER:
    // replicate-clamp each of the four taps individually
    add.u32        %r19, %r13, 1;
    min.u32        %r20, %r19, %r9;
    sub.u32        %r21, %r9, 1;
    min.u32        %r20, %r19, %r21;       // rlo = min(2r+1, rows-1)
    add.u32        %r22, %r14, 1;
    sub.u32        %r23, %r10, 1;
    min.u32        %r15, %r22, %r23;       // clo = min(2c+1, cols-1)
    mad.lo.u32     %r16, %r13, %r10, %r14;
    cvt.u64.u32    %rd8, %r16;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd1, %rd9;
    ld.global.f32  %f1, [%rd10];           // a
    mad.lo.u32     %r16, %r13, %r10, %r15;
    cvt.u64.u32    %rd11, %r16;
    shl.b64        %rd12, %rd11, 2;
    add.u64        %rd13, %rd1, %rd12;
    ld.global.f32  %f2, [%rd13];           // b (clamped col)
    mad.lo.u32     %r16, %r20, %r10, %r14;
    cvt.u64.u32    %rd14, %r16;
    shl.b64        %rd15, %rd14, 2;
    add.u64        %rd16, %rd1, %rd15;
    ld.global.f32  %f3, [%rd16];           // c (clamped row)
    mad.lo.u32     %r16, %r20, %r10, %r15;
    cvt.u64.u32    %rd17, %r16;
    shl.b64        %rd18, %rd17, 2;
    add.u64        %rd19, %rd1, %rd18;
    ld.global.f32  %f4, [%rd19];           // d (clamped both)
COMPUTE:
    add.f32        %f5, %f1, %f2;
    add.f32        %f6, %f3, %f4;
    add.f32        %f7, %f5, %f6;          // a+b+c+d
    mul.f32        %f8, %f7, 0.25;         // LL
    sub.f32        %f9, %f1, %f2;
    sub.f32        %f10, %f3, %f4;
    add.f32        %f11, %f9, %f10;        // a-b+c-d
    mul.f32        %f12, %f11, 0.25;       // LH
    sub.f32        %f13, %f5, %f6;         // a+b-c-d
    mul.f32        %f14, %f13, 0.25;       // HL
    sub.f32        %f15, %f9, %f10;        // a-b-c+d
    mul.f32        %f16, %f15, 0.25;       // HH
    ld.param.u64   %rd20, [dst];
    mad.lo.u32     %r17, %r8, %r10, %r4;   // row*cols + col  (LL)
    cvt.u64.u32    %rd21, %r17;
    shl.b64        %rd22, %rd21, 2;
    add.u64        %rd23, %rd20, %rd22;
    st.global.f32  [%rd23], %f8;
    add.u32        %r18, %r17, %r12;       // LH: col + cols/2
    cvt.u64.u32    %rd24, %r18;
    shl.b64        %rd25, %rd24, 2;
    add.u64        %rd26, %rd20, %rd25;
    st.global.f32  [%rd26], %f12;
    mad.lo.u32     %r19, %r11, %r10, %r17; // HL: row + rows/2
    cvt.u64.u32    %rd27, %r19;
    shl.b64        %rd28, %rd27, 2;
    add.u64        %rd29, %rd20, %rd28;
    st.global.f32  [%rd29], %f14;
    add.u32        %r20, %r19, %r12;       // HH
    cvt.u64.u32    %rd30, %r20;
    shl.b64        %rd31, %rd30, 2;
    add.u64        %rd32, %rd20, %rd31;
    st.global.f32  [%rd32], %f16;
EXIT:
    exit;
}

.entry copy_ll (
    .param .u64 src,
    .param .u64 dst,
    .param .u32 half_rows,
    .param .u32 half_cols,
    .param .u32 src_cols
)
{
    // gather the LL quadrant into a dense (half x half) buffer
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // col
    mov.u32        %r5, %ctaid.y;
    mov.u32        %r6, %ntid.y;
    mov.u32        %r7, %tid.y;
    mad.lo.u32     %r8, %r5, %r6, %r7;     // row
    ld.param.u32   %r9, [half_rows];
    ld.param.u32   %r10, [half_cols];
    setp.ge.u32    %p1, %r4, %r10;
    @%p1 bra       EXIT;
    setp.ge.u32    %p2, %r8, %r9;
    @%p2 bra       EXIT;
    ld.param.u32   %r11, [src_cols];
    ld.param.u64   %rd1, [src];
    mad.lo.u32     %r12, %r8, %r11, %r4;
    cvt.u64.u32    %rd2, %r12;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // deterministic
    ld.param.u64   %rd5, [dst];
    mad.lo.u32     %r13, %r8, %r10, %r4;
    cvt.u64.u32    %rd6, %r13;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd5, %rd7;
    st.global.f32  [%rd8], %f1;
EXIT:
    exit;
}
"""


def haar_level(img):
    """Reference single-level Haar decomposition (numpy)."""
    rows, cols = img.shape
    a = img[0::2, 0::2].astype(np.float64)
    b = img[0::2, 1::2].astype(np.float64)
    c = img[1::2, 0::2].astype(np.float64)
    d = img[1::2, 1::2].astype(np.float64)
    out = np.zeros_like(img, dtype=np.float64)
    h, w = rows // 2, cols // 2
    out[:h, :w] = (a + b + c + d) / 4
    out[:h, w:] = (a - b + c - d) / 4
    out[h:, :w] = (a + b - c - d) / 4
    out[h:, w:] = (a - b - c + d) / 4
    return out


class DWT2D(Workload):
    """Two-level 2-D Haar wavelet transform."""

    name = "dwt"
    category = "image"
    description = "2D discrete wavelet transform"

    BLOCK = 16
    LEVELS = 2

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.rows = self.dim(96, minimum=16, multiple=16)
        self.cols = self.dim(96, minimum=16, multiple=16)
        self.data_set = "%dx%d image" % (self.rows, self.cols)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.img_host = synthetic_image(self.rows, self.cols, seed=self.seed)
        self.ptr_src = mem.alloc_array("src", self.img_host)
        self.ptr_dst = mem.alloc("dst", self.rows * self.cols * 4)
        self.ptr_ll = mem.alloc("ll", (self.rows // 2) * (self.cols // 2) * 4)
        self.ptr_ll2 = mem.alloc("ll2",
                                 (self.rows // 2) * (self.cols // 2) * 4)

    def host(self, emu, module):
        haar, gather = module["haar2d"], module["copy_ll"]
        rows, cols = self.rows, self.cols
        src, dst = self.ptr_src, self.ptr_dst
        for level in range(self.LEVELS):
            gx = max(1, -(-(cols // 2) // self.BLOCK))
            gy = max(1, -(-(rows // 2) // self.BLOCK))
            yield emu.launch(haar, (gx, gy), (self.BLOCK, self.BLOCK),
                             params={"src": src, "dst": dst,
                                     "rows": rows, "cols": cols})
            if level + 1 < self.LEVELS:
                # extract LL into a dense buffer for the next level
                yield emu.launch(gather, (gx, gy), (self.BLOCK, self.BLOCK),
                                 params={"src": dst, "dst": self.ptr_ll,
                                         "half_rows": rows // 2,
                                         "half_cols": cols // 2,
                                         "src_cols": cols})
                src, dst = self.ptr_ll, self.ptr_ll2
                rows, cols = rows // 2, cols // 2
        self.final_rows, self.final_cols = rows, cols

    def verify(self, mem):
        level1 = haar_level(self.img_host)
        result1 = mem.read_array("dst", np.float32,
                                 self.rows * self.cols).reshape(
                                     self.rows, self.cols)
        if not np.allclose(result1, level1, rtol=1e-4, atol=1e-5):
            raise AssertionError("dwt: level-1 subbands mismatch")
        h, w = self.rows // 2, self.cols // 2
        level2 = haar_level(level1[:h, :w].astype(np.float32))
        result2 = mem.read_array("ll2", np.float32, h * w).reshape(h, w)
        if not np.allclose(result2, level2, rtol=1e-4, atol=1e-5):
            raise AssertionError("dwt: level-2 subbands mismatch")
