"""hotspot — thermal simulation stencil (Rodinia ``hotspot``).

Part of the *extended* suite (not in the paper's Table I): an iterative
5-point stencil with ping-pong temperature buffers, the canonical
regular-memory GPU kernel.  Every load indexes by thread/CTA ids with
clamped neighbours — fully deterministic, fully coalesced rows — making
hotspot a useful regular baseline against the graph applications.
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import synthetic_image

_PTX = """
.entry hotspot_step (
    .param .u64 temp_in,
    .param .u64 temp_out,
    .param .u64 power,
    .param .u32 rows,
    .param .u32 cols,
    .param .f32 cap,
    .param .f32 cond
)
{
    .reg .u32 %r<20>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // col
    mov.u32        %r5, %ctaid.y;
    mov.u32        %r6, %ntid.y;
    mov.u32        %r7, %tid.y;
    mad.lo.u32     %r8, %r5, %r6, %r7;     // row
    ld.param.u32   %r9, [rows];
    ld.param.u32   %r10, [cols];
    setp.ge.u32    %p1, %r4, %r10;
    @%p1 bra       EXIT;
    setp.ge.u32    %p2, %r8, %r9;
    @%p2 bra       EXIT;
    // clamped neighbour indices (deterministic arithmetic)
    sub.u32        %r11, %r9, 1;
    sub.u32        %r12, %r10, 1;
    setp.eq.u32    %p3, %r8, 0;
    selp.u32       %r13, 0, %r8, %p3;
    @!%p3 sub.u32  %r13, %r8, 1;           // north row
    add.u32        %r14, %r8, 1;
    min.u32        %r14, %r14, %r11;       // south row
    setp.eq.u32    %p4, %r4, 0;
    selp.u32       %r15, 0, %r4, %p4;
    @!%p4 sub.u32  %r15, %r4, 1;           // west col
    add.u32        %r16, %r4, 1;
    min.u32        %r16, %r16, %r12;       // east col
    ld.param.u64   %rd1, [temp_in];
    mad.lo.u32     %r17, %r8, %r10, %r4;   // center index
    cvt.u64.u32    %rd2, %r17;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // T center  (deterministic)
    mad.lo.u32     %r18, %r13, %r10, %r4;
    cvt.u64.u32    %rd5, %r18;
    shl.b64        %rd6, %rd5, 2;
    add.u64        %rd7, %rd1, %rd6;
    ld.global.f32  %f2, [%rd7];            // T north   (deterministic)
    mad.lo.u32     %r18, %r14, %r10, %r4;
    cvt.u64.u32    %rd8, %r18;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd1, %rd9;
    ld.global.f32  %f3, [%rd10];           // T south   (deterministic)
    mad.lo.u32     %r18, %r8, %r10, %r15;
    cvt.u64.u32    %rd11, %r18;
    shl.b64        %rd12, %rd11, 2;
    add.u64        %rd13, %rd1, %rd12;
    ld.global.f32  %f4, [%rd13];           // T west    (deterministic)
    mad.lo.u32     %r18, %r8, %r10, %r16;
    cvt.u64.u32    %rd14, %r18;
    shl.b64        %rd15, %rd14, 2;
    add.u64        %rd16, %rd1, %rd15;
    ld.global.f32  %f5, [%rd16];           // T east    (deterministic)
    ld.param.u64   %rd17, [power];
    add.u64        %rd18, %rd17, %rd3;
    ld.global.f32  %f6, [%rd18];           // power     (deterministic)
    // T' = T + cap * (power + cond*(N + S + E + W - 4*T))
    add.f32        %f7, %f2, %f3;
    add.f32        %f8, %f4, %f5;
    add.f32        %f9, %f7, %f8;
    mul.f32        %f10, %f1, 4.0;
    sub.f32        %f11, %f9, %f10;
    ld.param.f32   %f12, [cond];
    mul.f32        %f13, %f11, %f12;
    add.f32        %f14, %f13, %f6;
    ld.param.f32   %f15, [cap];
    mad.f32        %f16, %f14, %f15, %f1;
    ld.param.u64   %rd19, [temp_out];
    add.u64        %rd20, %rd19, %rd3;
    st.global.f32  [%rd20], %f16;
EXIT:
    exit;
}
"""


def hotspot_reference(temp, power, iterations, cap, cond):
    t = temp.astype(np.float64).copy()
    rows, cols = t.shape
    rn = np.maximum(np.arange(rows) - 1, 0)
    rs = np.minimum(np.arange(rows) + 1, rows - 1)
    cw = np.maximum(np.arange(cols) - 1, 0)
    ce = np.minimum(np.arange(cols) + 1, cols - 1)
    for _ in range(iterations):
        lap = (t[rn, :] + t[rs, :] + t[:, cw] + t[:, ce] - 4.0 * t)
        t = t + cap * (power + cond * lap)
    return t


class HotSpot(Workload):
    """Iterative thermal stencil with ping-pong buffers."""

    name = "hotspot"
    category = "image"
    extended = True

    description = "thermal simulation stencil (extended suite)"

    BLOCK = 16
    ITERS = 4
    CAP = 0.05
    COND = 0.2

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.rows = self.dim(64, minimum=16, multiple=16)
        self.cols = self.dim(64, minimum=16, multiple=16)
        self.data_set = "%dx%d grid, %d steps" % (self.rows, self.cols,
                                                  self.ITERS)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.temp_host = synthetic_image(self.rows, self.cols,
                                         seed=self.seed) + np.float32(0.5)
        self.power_host = synthetic_image(self.rows, self.cols,
                                          seed=self.seed + 1) * \
            np.float32(0.1)
        self.ptr_a = mem.alloc_array("temp_a", self.temp_host)
        self.ptr_b = mem.alloc("temp_b", self.rows * self.cols * 4)
        self.ptr_power = mem.alloc_array("power", self.power_host)
        self.final_buffer = "temp_a"

    def host(self, emu, module):
        kernel = module["hotspot_step"]
        gx = self.cols // self.BLOCK
        gy = self.rows // self.BLOCK
        src, dst = self.ptr_a, self.ptr_b
        names = {self.ptr_a: "temp_a", self.ptr_b: "temp_b"}
        for _ in range(self.ITERS):
            yield emu.launch(kernel, (gx, gy), (self.BLOCK, self.BLOCK),
                             params={"temp_in": src, "temp_out": dst,
                                     "power": self.ptr_power,
                                     "rows": self.rows, "cols": self.cols,
                                     "cap": self.CAP, "cond": self.COND})
            src, dst = dst, src
        self.final_buffer = names[src]

    def verify(self, mem):
        result = mem.read_array(self.final_buffer, np.float32,
                                self.rows * self.cols).reshape(
                                    self.rows, self.cols)
        expected = hotspot_reference(self.temp_host, self.power_host,
                                     self.ITERS, self.CAP, self.COND)
        if not np.allclose(result, expected, rtol=1e-4, atol=1e-5):
            raise AssertionError("hotspot: temperature grid mismatch")
