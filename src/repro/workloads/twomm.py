"""2mm — two consecutive dense matrix multiplications (PolyBench).

``tmp = A x B`` then ``D = tmp x C``: the same tiled matmul kernel is
launched twice with different operands.  Every global load indexes the
matrices with linear functions of thread/CTA ids, so the classifier must
find 100% deterministic loads (Figure 1's leftmost bar).
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import random_matrix

_PTX = """
.entry mm_kernel (
    .param .u64 A,
    .param .u64 B,
    .param .u64 C,
    .param .u32 n
)
{
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %tid.x;
    mad.lo.u32     %r3, %r1, 16, %r2;      // col
    mov.u32        %r4, %ctaid.y;
    mov.u32        %r5, %tid.y;
    mad.lo.u32     %r6, %r4, 16, %r5;      // row
    ld.param.u32   %r7, [n];
    setp.ge.u32    %p1, %r3, %r7;
    @%p1 bra       EXIT;
    setp.ge.u32    %p2, %r6, %r7;
    @%p2 bra       EXIT;
    ld.param.u64   %rd1, [A];
    ld.param.u64   %rd2, [B];
    mov.f32        %f1, 0.0;
    mov.u32        %r8, 0;                 // k
    mul.lo.u32     %r9, %r6, %r7;          // row * n
LOOP:
    setp.ge.u32    %p3, %r8, %r7;
    @%p3 bra       DONE;
    add.u32        %r10, %r9, %r8;         // row*n + k
    cvt.u64.u32    %rd3, %r10;
    shl.b64        %rd4, %rd3, 2;
    add.u64        %rd5, %rd1, %rd4;
    ld.global.f32  %f2, [%rd5];            // A[row][k]   (deterministic)
    mad.lo.u32     %r11, %r8, %r7, %r3;    // k*n + col
    cvt.u64.u32    %rd6, %r11;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd2, %rd7;
    ld.global.f32  %f3, [%rd8];            // B[k][col]   (deterministic)
    mad.f32        %f1, %f2, %f3, %f1;
    add.u32        %r8, %r8, 1;
    bra            LOOP;
DONE:
    ld.param.u64   %rd9, [C];
    mad.lo.u32     %r12, %r9, 1, %r3;      // row*n + col
    cvt.u64.u32    %rd10, %r12;
    shl.b64        %rd11, %rd10, 2;
    add.u64        %rd12, %rd9, %rd11;
    st.global.f32  [%rd12], %f1;
EXIT:
    exit;
}
"""


class TwoMM(Workload):
    """Two chained matrix multiplications."""

    name = "2mm"
    category = "linear"
    description = "matrix multiplication (D = (A x B) x C)"

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.n = self.dim(64, minimum=16, multiple=16)
        self.data_set = "%dx%d matrices" % (self.n, self.n)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        n = self.n
        self.a_host = random_matrix(n, seed=self.seed)
        self.b_host = random_matrix(n, seed=self.seed + 1)
        self.c_host = random_matrix(n, seed=self.seed + 2)
        self.ptr_a = mem.alloc_array("A", self.a_host)
        self.ptr_b = mem.alloc_array("B", self.b_host)
        self.ptr_c = mem.alloc_array("C", self.c_host)
        self.ptr_tmp = mem.alloc("tmp", n * n * 4)
        self.ptr_d = mem.alloc("D", n * n * 4)

    def host(self, emu, module):
        kernel = module["mm_kernel"]
        n = self.n
        grid = (n // 16, n // 16)
        block = (16, 16)
        # tmp = A x B
        yield emu.launch(kernel, grid, block, params={
            "A": self.ptr_a, "B": self.ptr_b, "C": self.ptr_tmp, "n": n})
        # D = tmp x C
        yield emu.launch(kernel, grid, block, params={
            "A": self.ptr_tmp, "B": self.ptr_c, "C": self.ptr_d, "n": n})

    def verify(self, mem):
        n = self.n
        result = mem.read_array("D", np.float32, n * n).reshape(n, n)
        expected = (self.a_host.astype(np.float64)
                    @ self.b_host.astype(np.float64)
                    @ self.c_host.astype(np.float64))
        if not np.allclose(result, expected, rtol=1e-3, atol=1e-3):
            raise AssertionError("2mm: result does not match A x B x C")
