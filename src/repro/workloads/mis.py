"""mis — maximal independent set (Luby's algorithm).

Each vertex carries a fixed random priority.  Per round, kernel 1 adds
every undecided vertex whose priority beats all undecided neighbours to
the set (neighbour state/priority loads are non-deterministic); kernel 2
excludes vertices adjacent to a new member and raises the continue flag.
The host iterates until every vertex is decided.
"""

from __future__ import annotations

import numpy as np

from ..ptx.isa import DType
from .base import Workload
from .graph_common import alloc_graph, default_graph

_U32 = DType.U32

#: vertex states
UNDECIDED, IN_SET, EXCLUDED = 0, 1, 2

_PTX = """
.entry mis_select (
    .param .u64 row_ptr,
    .param .u64 col_idx,
    .param .u64 prio,
    .param .u64 state,
    .param .u32 num_nodes
)
{
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [state];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // state[v]      (deterministic)
    setp.ne.u32    %p2, %r6, 0;
    @%p2 bra       EXIT;                   // already decided
    ld.param.u64   %rd5, [prio];
    add.u64        %rd6, %rd5, %rd3;
    ld.global.u32  %r7, [%rd6];            // p[v]          (deterministic)
    ld.param.u64   %rd7, [row_ptr];
    add.u64        %rd8, %rd7, %rd3;
    ld.global.u32  %r8, [%rd8];            // start         (deterministic)
    ld.global.u32  %r9, [%rd8+4];          // end           (deterministic)
    ld.param.u64   %rd9, [col_idx];
    mov.u32        %r10, %r8;              // i
LOOP:
    setp.ge.u32    %p3, %r10, %r9;
    @%p3 bra       WIN;
    cvt.u64.u32    %rd10, %r10;
    shl.b64        %rd11, %rd10, 2;
    add.u64        %rd12, %rd9, %rd11;
    ld.global.u32  %r11, [%rd12];          // u = edges[i] (NON-deterministic)
    cvt.u64.u32    %rd13, %r11;
    shl.b64        %rd14, %rd13, 2;
    add.u64        %rd15, %rd1, %rd14;
    ld.global.u32  %r12, [%rd15];          // state[u]     (NON-deterministic)
    setp.eq.u32    %p4, %r12, 2;
    @%p4 bra       NEXT;                   // excluded: ignore
    add.u64        %rd16, %rd5, %rd14;
    ld.global.u32  %r13, [%rd16];          // p[u]         (NON-deterministic)
    // lose to any undecided/in-set neighbour with (p, id) >= ours
    setp.gt.u32    %p5, %r13, %r7;
    @%p5 bra       EXIT;
    setp.ne.u32    %p6, %r13, %r7;
    @%p6 bra       NEXT;
    setp.gt.u32    %p7, %r11, %r4;
    @%p7 bra       EXIT;                   // tie broken by larger id
NEXT:
    add.u32        %r10, %r10, 1;
    bra            LOOP;
WIN:
    st.global.u32  [%rd4], 1;              // state[v] = IN_SET
EXIT:
    exit;
}

.entry mis_exclude (
    .param .u64 row_ptr,
    .param .u64 col_idx,
    .param .u64 state,
    .param .u64 cont,
    .param .u32 num_nodes
)
{
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [state];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // state[v]      (deterministic)
    setp.ne.u32    %p2, %r6, 0;
    @%p2 bra       EXIT;                   // only undecided vertices
    ld.param.u64   %rd5, [row_ptr];
    add.u64        %rd6, %rd5, %rd3;
    ld.global.u32  %r7, [%rd6];            // start         (deterministic)
    ld.global.u32  %r8, [%rd6+4];          // end           (deterministic)
    ld.param.u64   %rd7, [col_idx];
    mov.u32        %r9, %r7;
LOOP:
    setp.ge.u32    %p3, %r9, %r8;
    @%p3 bra       STILL;
    cvt.u64.u32    %rd8, %r9;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd7, %rd9;
    ld.global.u32  %r10, [%rd10];          // u = edges[i] (NON-deterministic)
    cvt.u64.u32    %rd11, %r10;
    shl.b64        %rd12, %rd11, 2;
    add.u64        %rd13, %rd1, %rd12;
    ld.global.u32  %r11, [%rd13];          // state[u]     (NON-deterministic)
    setp.ne.u32    %p4, %r11, 1;
    @%p4 bra       NEXT;
    st.global.u32  [%rd4], 2;              // neighbour won: EXCLUDED
    bra            EXIT;
NEXT:
    add.u32        %r9, %r9, 1;
    bra            LOOP;
STILL:
    // still undecided: another round is needed
    ld.param.u64   %rd14, [cont];
    st.global.u32  [%rd14], 1;
EXIT:
    exit;
}
"""


class MIS(Workload):
    """Luby's randomized maximal independent set."""

    name = "mis"
    category = "graph"
    description = "maximal independent set"

    BLOCK = 128

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.graph = None

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.graph = default_graph(self, base_nodes=1024)
        n = self.graph.num_nodes
        self.data_set = "R-MAT graph, %d nodes / %d edges" % (
            n, self.graph.num_edges)
        self.ptrs = alloc_graph(mem, self.graph)
        r = np.random.default_rng(self.seed + 3)
        self.prio_host = r.integers(0, 1 << 30, size=n).astype(np.uint32)
        self.ptrs["prio"] = mem.alloc_array("prio", self.prio_host)
        self.ptrs["state"] = mem.alloc_array(
            "state", np.zeros(n, dtype=np.uint32))
        self.ptrs["cont"] = mem.alloc("cont", 4)

    def host(self, emu, module):
        select, exclude = module["mis_select"], module["mis_exclude"]
        n = self.graph.num_nodes
        grid = (max(1, -(-n // self.BLOCK)),)
        while True:
            emu.memory.store(self.ptrs["cont"], _U32, 0)
            yield emu.launch(select, grid, (self.BLOCK,), params={
                "row_ptr": self.ptrs["row_ptr"],
                "col_idx": self.ptrs["col_idx"],
                "prio": self.ptrs["prio"],
                "state": self.ptrs["state"],
                "num_nodes": n})
            yield emu.launch(exclude, grid, (self.BLOCK,), params={
                "row_ptr": self.ptrs["row_ptr"],
                "col_idx": self.ptrs["col_idx"],
                "state": self.ptrs["state"],
                "cont": self.ptrs["cont"],
                "num_nodes": n})
            if emu.memory.load(self.ptrs["cont"], _U32) == 0:
                break

    def verify(self, mem):
        n = self.graph.num_nodes
        state = mem.read_array("state", np.uint32, n)
        if np.any(state == UNDECIDED):
            raise AssertionError("mis: undecided vertices remain")
        in_set = state == IN_SET
        for v in range(n):
            nbrs = self.graph.neighbors(v)
            if in_set[v] and np.any(in_set[nbrs]):
                raise AssertionError("mis: set is not independent at %d" % v)
            if not in_set[v] and len(nbrs) and not np.any(in_set[nbrs]):
                raise AssertionError("mis: not maximal at %d" % v)
            if not in_set[v] and not len(nbrs):
                raise AssertionError("mis: isolated %d should be in set" % v)
