"""grm — Gram-Schmidt orthogonalization (PolyBench ``gramschmidt``).

Modified Gram-Schmidt QR in the PolyBench-GPU kernel structure: per
column ``k`` the host launches three kernels — (1) a single thread
serially accumulates the column norm, (2) the column is normalized in
parallel over rows, (3) one thread per trailing column serially computes
the projection and updates its column.  The serial per-thread loops make
grm extremely load-dense (the paper's Table I reports 24.75% global
loads, the highest of the suite); every load indexes through thread ids
and parameters, hence deterministic.
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import random_matrix

_PTX = """
.entry grm_norm (
    .param .u64 A,
    .param .u64 R,
    .param .u32 n,
    .param .u32 k
)
{
    // PolyBench gramschmidt_kernel1: a single thread reduces the column
    .reg .u32 %r<12>;
    mov.u32        %r1, %tid.x;
    setp.ne.u32    %p1, %r1, 0;
    @%p1 bra       EXIT;
    ld.param.u32   %r2, [n];
    ld.param.u32   %r3, [k];
    ld.param.u64   %rd1, [A];
    mov.f32        %f1, 0.0;
    mov.u32        %r4, 0;                 // i
LOOP:
    setp.ge.u32    %p2, %r4, %r2;
    @%p2 bra       WRITE;
    mad.lo.u32     %r5, %r4, %r2, %r3;     // i*n + k
    cvt.u64.u32    %rd2, %r5;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f2, [%rd4];            // A[i][k]  (deterministic)
    mad.f32        %f1, %f2, %f2, %f1;
    add.u32        %r4, %r4, 1;
    bra            LOOP;
WRITE:
    sqrt.f32       %f3, %f1;
    ld.param.u64   %rd5, [R];
    mad.lo.u32     %r6, %r3, %r2, %r3;     // k*n + k
    cvt.u64.u32    %rd6, %r6;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd5, %rd7;
    st.global.f32  [%rd8], %f3;
EXIT:
    exit;
}

.entry grm_normalize (
    .param .u64 A,
    .param .u64 Q,
    .param .u64 R,
    .param .u32 n,
    .param .u32 k
)
{
    // PolyBench gramschmidt_kernel2: Q[i][k] = A[i][k] / R[k][k]
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // i
    ld.param.u32   %r5, [n];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u32   %r6, [k];
    ld.param.u64   %rd1, [R];
    mad.lo.u32     %r7, %r6, %r5, %r6;
    cvt.u64.u32    %rd2, %r7;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // R[k][k]  (deterministic)
    ld.param.u64   %rd5, [A];
    mad.lo.u32     %r8, %r4, %r5, %r6;     // i*n + k
    cvt.u64.u32    %rd6, %r8;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd5, %rd7;
    ld.global.f32  %f2, [%rd8];            // A[i][k]  (deterministic)
    div.f32        %f3, %f2, %f1;
    ld.param.u64   %rd9, [Q];
    add.u64        %rd10, %rd9, %rd7;
    st.global.f32  [%rd10], %f3;
EXIT:
    exit;
}

.entry grm_update (
    .param .u64 A,
    .param .u64 Q,
    .param .u64 R,
    .param .u32 n,
    .param .u32 k
)
{
    // PolyBench gramschmidt_kernel3: one thread per trailing column j;
    // serial dot product followed by a serial column update
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // column offset
    ld.param.u32   %r5, [n];
    ld.param.u32   %r6, [k];
    sub.u32        %r7, %r5, %r6;
    sub.u32        %r8, %r7, 1;            // trailing columns
    setp.ge.u32    %p1, %r4, %r8;
    @%p1 bra       EXIT;
    add.u32        %r9, %r6, %r4;
    add.u32        %r10, %r9, 1;           // j = k + 1 + offset
    ld.param.u64   %rd1, [Q];
    ld.param.u64   %rd2, [A];
    mov.f32        %f1, 0.0;               // dot accumulator
    mov.u32        %r11, 0;                // i
DOT:
    setp.ge.u32    %p2, %r11, %r5;
    @%p2 bra       STORE_R;
    mad.lo.u32     %r12, %r11, %r5, %r6;   // i*n + k
    cvt.u64.u32    %rd3, %r12;
    shl.b64        %rd4, %rd3, 2;
    add.u64        %rd5, %rd1, %rd4;
    ld.global.f32  %f2, [%rd5];            // Q[i][k]  (deterministic)
    mad.lo.u32     %r13, %r11, %r5, %r10;  // i*n + j
    cvt.u64.u32    %rd6, %r13;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd2, %rd7;
    ld.global.f32  %f3, [%rd8];            // A[i][j]  (deterministic)
    mad.f32        %f1, %f2, %f3, %f1;
    add.u32        %r11, %r11, 1;
    bra            DOT;
STORE_R:
    ld.param.u64   %rd9, [R];
    mad.lo.u32     %r14, %r6, %r5, %r10;   // k*n + j
    cvt.u64.u32    %rd10, %r14;
    shl.b64        %rd11, %rd10, 2;
    add.u64        %rd12, %rd9, %rd11;
    st.global.f32  [%rd12], %f1;
    mov.u32        %r11, 0;                // i
UPDATE:
    setp.ge.u32    %p3, %r11, %r5;
    @%p3 bra       EXIT;
    mad.lo.u32     %r12, %r11, %r5, %r6;   // i*n + k
    cvt.u64.u32    %rd13, %r12;
    shl.b64        %rd14, %rd13, 2;
    add.u64        %rd15, %rd1, %rd14;
    ld.global.f32  %f4, [%rd15];           // Q[i][k]  (deterministic)
    mad.lo.u32     %r13, %r11, %r5, %r10;  // i*n + j
    cvt.u64.u32    %rd16, %r13;
    shl.b64        %rd17, %rd16, 2;
    add.u64        %rd18, %rd2, %rd17;
    ld.global.f32  %f5, [%rd18];           // A[i][j]  (deterministic)
    mul.f32        %f6, %f4, %f1;
    sub.f32        %f7, %f5, %f6;
    st.global.f32  [%rd18], %f7;
    add.u32        %r11, %r11, 1;
    bra            UPDATE;
EXIT:
    exit;
}
"""


class GramSchmidt(Workload):
    """Classical Gram-Schmidt QR factorization (PolyBench kernels)."""

    name = "grm"
    category = "linear"
    description = "Gram-Schmidt decomposition"

    BLOCK = 64

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.n = self.dim(48, minimum=8, multiple=8)
        self.data_set = "%dx%d matrix" % (self.n, self.n)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        n = self.n
        self.a_host = random_matrix(n, seed=self.seed)
        self.ptr_a = mem.alloc_array("A", self.a_host)
        self.ptr_q = mem.alloc("Q", n * n * 4)
        self.ptr_r = mem.alloc("R", n * n * 4)

    def host(self, emu, module):
        norm_k = module["grm_norm"]
        normalize_k = module["grm_normalize"]
        update_k = module["grm_update"]
        n = self.n
        params = {"A": self.ptr_a, "Q": self.ptr_q, "R": self.ptr_r, "n": n}
        for k in range(n):
            yield emu.launch(norm_k, (1,), (self.BLOCK,),
                             params=dict(params, k=k))
            grid = (max(1, -(-n // self.BLOCK)),)
            yield emu.launch(normalize_k, grid, (self.BLOCK,),
                             params=dict(params, k=k))
            if k + 1 < n:
                cols = n - k - 1
                grid_u = (max(1, -(-cols // self.BLOCK)),)
                yield emu.launch(update_k, grid_u, (self.BLOCK,),
                                 params=dict(params, k=k))

    def verify(self, mem):
        n = self.n
        q = mem.read_array("Q", np.float32, n * n).reshape(n, n)
        r = mem.read_array("R", np.float32, n * n).reshape(n, n)
        qtq = q.T.astype(np.float64) @ q.astype(np.float64)
        if not np.allclose(qtq, np.eye(n), atol=1e-2):
            raise AssertionError("grm: Q columns are not orthonormal")
        upper = np.triu(r).astype(np.float64)
        if not np.allclose(q.astype(np.float64) @ upper,
                           self.a_host.astype(np.float64),
                           rtol=1e-2, atol=1e-2):
            raise AssertionError("grm: Q*R does not reconstruct A")
