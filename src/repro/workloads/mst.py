"""mst — minimum-spanning-forest construction (LonestarGPU ``mst``,
Boruvka formulation, simplified to its memory idioms).

Each round: (1) every component root scans its nodes' incident edges and
each node records its minimum-weight outgoing edge that leaves its
component (non-deterministic weight/label loads); (2) components are
merged along the chosen edges with a pointer-doubling hook/compress
phase (``succ[succ[v]]`` — the doubly indirect loads that dominate mst's
memory traffic).  The host iterates rounds until no component merged.

The chosen edges form a minimum spanning forest under the deterministic
(weight, destination-id) tie-break, which the verifier recomputes on the
host with the exact same rule.
"""

from __future__ import annotations

import numpy as np

from ..ptx.isa import DType
from .base import Workload
from .graph_common import alloc_graph, default_graph

_U32 = DType.U32

#: sentinel "no outgoing edge" key (all ones).
NO_EDGE = 0xFFFFFFFF

_PTX = """
.entry mst_find_min (
    .param .u64 row_ptr,
    .param .u64 col_idx,
    .param .u64 weights,
    .param .u64 comp,
    .param .u64 best_key,
    .param .u64 best_dst,
    .param .u32 num_nodes
)
{
    // per node: find the min-(weight, dst) edge leaving its component
    .reg .u32 %r<20>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [comp];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // comp[v]       (deterministic)
    ld.param.u64   %rd5, [row_ptr];
    add.u64        %rd6, %rd5, %rd3;
    ld.global.u32  %r7, [%rd6];            // start         (deterministic)
    ld.global.u32  %r8, [%rd6+4];          // end           (deterministic)
    ld.param.u64   %rd7, [col_idx];
    ld.param.u64   %rd8, [weights];
    mov.u32        %r9, %r7;               // i
    mov.u32        %r10, 0xFFFFFFFF;       // best key
    mov.u32        %r11, 0xFFFFFFFF;       // best dst
LOOP:
    setp.ge.u32    %p2, %r9, %r8;
    @%p2 bra       DONE;
    cvt.u64.u32    %rd9, %r9;
    shl.b64        %rd10, %rd9, 2;
    add.u64        %rd11, %rd7, %rd10;
    ld.global.u32  %r12, [%rd11];          // u = edges[i] (NON-deterministic)
    cvt.u64.u32    %rd12, %r12;
    shl.b64        %rd13, %rd12, 2;
    add.u64        %rd14, %rd1, %rd13;
    ld.global.u32  %r13, [%rd14];          // comp[u]      (NON-deterministic)
    setp.eq.u32    %p3, %r13, %r6;
    @%p3 bra       NEXT;                   // same component: skip
    add.u64        %rd15, %rd8, %rd10;
    ld.global.u32  %r14, [%rd15];          // w[i]         (NON-deterministic)
    // key = (w << 12) | (u & 0xfff): min-weight, dst-id tie-break
    shl.b32        %r15, %r14, 12;
    and.b32        %r16, %r12, 4095;
    or.b32         %r17, %r15, %r16;
    setp.ge.u32    %p4, %r17, %r10;
    @%p4 bra       NEXT;
    mov.u32        %r10, %r17;
    mov.u32        %r11, %r13;             // remember target component
NEXT:
    add.u32        %r9, %r9, 1;
    bra            LOOP;
DONE:
    ld.param.u64   %rd16, [best_key];
    add.u64        %rd17, %rd16, %rd3;
    st.global.u32  [%rd17], %r10;
    ld.param.u64   %rd18, [best_dst];
    add.u64        %rd19, %rd18, %rd3;
    st.global.u32  [%rd19], %r11;
EXIT:
    exit;
}

.entry mst_reduce_comp (
    .param .u64 comp,
    .param .u64 best_key,
    .param .u64 best_dst,
    .param .u64 comp_key,
    .param .u64 comp_dst,
    .param .u32 num_nodes
)
{
    // reduce each node's candidate into its component root via atom.min
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [best_key];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // key[v]        (deterministic)
    setp.eq.u32    %p2, %r6, 0xFFFFFFFF;
    @%p2 bra       EXIT;
    ld.param.u64   %rd5, [comp];
    add.u64        %rd6, %rd5, %rd3;
    ld.global.u32  %r7, [%rd6];            // c = comp[v]   (deterministic)
    cvt.u64.u32    %rd7, %r7;
    shl.b64        %rd8, %rd7, 2;
    ld.param.u64   %rd9, [comp_key];
    add.u64        %rd10, %rd9, %rd8;
    atom.min.global.u32 %r8, [%rd10], %r6; // min over the component (N)
EXIT:
    exit;
}

.entry mst_hook (
    .param .u64 comp,
    .param .u64 best_key,
    .param .u64 best_dst,
    .param .u64 comp_key,
    .param .u64 succ,
    .param .u64 changed,
    .param .u32 num_nodes
)
{
    // the node whose candidate won its component's reduction hooks the
    // component onto the destination component (succ was reset to the
    // identity by the host before this launch)
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       DEFAULT;
    ld.param.u64   %rd1, [comp];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // c = comp[v]   (deterministic)
    ld.param.u64   %rd5, [succ];
    ld.param.u64   %rd7, [best_key];
    add.u64        %rd8, %rd7, %rd3;
    ld.global.u32  %r7, [%rd8];            // key[v]        (deterministic)
    setp.eq.u32    %p2, %r7, 0xFFFFFFFF;
    @%p2 bra       DEFAULT;
    ld.param.u64   %rd9, [comp_key];
    cvt.u64.u32    %rd10, %r6;
    shl.b64        %rd11, %rd10, 2;
    add.u64        %rd12, %rd9, %rd11;
    ld.global.u32  %r8, [%rd12];           // winning key   (NON-deterministic)
    setp.ne.u32    %p3, %r7, %r8;
    @%p3 bra       DEFAULT;
    // this node won: only the root's succ entry is rewritten; resolve
    // ties (two nodes with equal key) benignly — same destination
    ld.param.u64   %rd13, [best_dst];
    add.u64        %rd14, %rd13, %rd3;
    ld.global.u32  %r9, [%rd14];           // destination comp (deterministic)
    add.u64        %rd15, %rd5, %rd11;     // succ[c]
    st.global.u32  [%rd15], %r9;
    ld.param.u64   %rd16, [changed];
    st.global.u32  [%rd16], 1;
DEFAULT:
    exit;
}

.entry mst_pointer_jump (
    .param .u64 succ,
    .param .u64 comp,
    .param .u64 changed,
    .param .u32 num_nodes
)
{
    // comp[v] = succ[succ[comp[v]]] collapse step (doubly indirect loads)
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // v
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [comp];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // c = comp[v]   (deterministic)
    ld.param.u64   %rd5, [succ];
    cvt.u64.u32    %rd6, %r6;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd5, %rd7;
    ld.global.u32  %r7, [%rd8];            // s = succ[c]   (NON-deterministic)
    cvt.u64.u32    %rd9, %r7;
    shl.b64        %rd10, %rd9, 2;
    add.u64        %rd11, %rd5, %rd10;
    ld.global.u32  %r8, [%rd11];           // ss = succ[s]  (NON-deterministic)
    // cycle break: the smaller endpoint of a 2-cycle becomes a root
    setp.ne.u32    %p2, %r8, %r6;
    @%p2 bra       APPLY;
    setp.ge.u32    %p3, %r6, %r7;
    @%p3 bra       APPLY;
    mov.u32        %r7, %r6;               // s = c (root)
APPLY:
    setp.eq.u32    %p4, %r7, %r6;
    @%p4 bra       STORE;
    ld.param.u64   %rd12, [changed];
    st.global.u32  [%rd12], 1;
STORE:
    st.global.u32  [%rd4], %r7;            // comp[v] = s
EXIT:
    exit;
}
"""


def reference_boruvka_round(row_ptr, col_idx, weights, comp):
    """Host mirror of one device round; returns the new comp array and
    whether anything merged (used for verification)."""
    n = len(comp)
    best_key = np.full(n, NO_EDGE, dtype=np.uint64)
    best_dst = np.full(n, NO_EDGE, dtype=np.uint64)
    for v in range(n):
        for i in range(row_ptr[v], row_ptr[v + 1]):
            u = col_idx[i]
            if comp[u] == comp[v]:
                continue
            key = (int(weights[i]) << 12) | (int(u) & 4095)
            if key < best_key[v]:
                best_key[v] = key
                best_dst[v] = comp[u]
    comp_key = np.full(n, NO_EDGE, dtype=np.uint64)
    for v in range(n):
        if best_key[v] != NO_EDGE:
            c = comp[v]
            comp_key[c] = min(comp_key[c], best_key[v])
    succ = np.arange(n, dtype=comp.dtype)
    changed = False
    for v in range(n):
        if best_key[v] != NO_EDGE and best_key[v] == comp_key[comp[v]]:
            succ[comp[v]] = best_dst[v]
            changed = True
    # collapse with the same 2-cycle break rule until stable
    while True:
        s = succ[comp]
        ss = succ[s]
        two_cycle = (ss == comp) & (comp < s)
        s = np.where(two_cycle, comp, s)
        if np.array_equal(s, comp):
            break
        comp = s
    return comp, changed


class MST(Workload):
    """Boruvka-style minimum spanning forest rounds."""

    name = "mst"
    category = "graph"
    description = "minimum spanning tree (Boruvka rounds)"

    BLOCK = 128
    MAX_ROUNDS = 4

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.graph = None

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.graph = default_graph(self, base_nodes=1024)
        n = self.graph.num_nodes
        self.data_set = "R-MAT graph, %d nodes / %d edges, int weights" % (
            n, self.graph.num_edges)
        self.ptrs = alloc_graph(mem, self.graph, with_weights=True)
        comp = np.arange(n, dtype=np.uint32)
        self.ptrs["comp"] = mem.alloc_array("comp", comp)
        self.ptrs["best_key"] = mem.alloc("best_key", n * 4)
        self.ptrs["best_dst"] = mem.alloc("best_dst", n * 4)
        self.ptrs["comp_key"] = mem.alloc("comp_key", n * 4)
        self.ptrs["succ"] = mem.alloc("succ", n * 4)
        self.ptrs["changed"] = mem.alloc("changed", 4)
        self.rounds_run = 0

    def host(self, emu, module):
        n = self.graph.num_nodes
        grid = (max(1, -(-n // self.BLOCK)),)
        block = (self.BLOCK,)
        g = self.ptrs
        for _round in range(self.MAX_ROUNDS):
            emu.memory.write_array(
                "comp_key", np.full(n, NO_EDGE, dtype=np.uint32))
            emu.memory.write_array("succ", np.arange(n, dtype=np.uint32))
            emu.memory.store(g["changed"], _U32, 0)
            yield emu.launch(module["mst_find_min"], grid, block, params={
                "row_ptr": g["row_ptr"], "col_idx": g["col_idx"],
                "weights": g["weights"], "comp": g["comp"],
                "best_key": g["best_key"], "best_dst": g["best_dst"],
                "num_nodes": n})
            yield emu.launch(module["mst_reduce_comp"], grid, block, params={
                "comp": g["comp"], "best_key": g["best_key"],
                "best_dst": g["best_dst"], "comp_key": g["comp_key"],
                "comp_dst": g["best_dst"], "num_nodes": n})
            yield emu.launch(module["mst_hook"], grid, block, params={
                "comp": g["comp"], "best_key": g["best_key"],
                "best_dst": g["best_dst"], "comp_key": g["comp_key"],
                "succ": g["succ"], "changed": g["changed"],
                "num_nodes": n})
            if emu.memory.load(g["changed"], _U32) == 0:
                break
            self.rounds_run += 1
            # pointer jumping until the component map stabilizes
            while True:
                emu.memory.store(g["changed"], _U32, 0)
                yield emu.launch(module["mst_pointer_jump"], grid, block,
                                 params={"succ": g["succ"],
                                         "comp": g["comp"],
                                         "changed": g["changed"],
                                         "num_nodes": n})
                if emu.memory.load(g["changed"], _U32) == 0:
                    break

    def verify(self, mem):
        n = self.graph.num_nodes
        comp = mem.read_array("comp", np.uint32, n).astype(np.int64)
        expected = np.arange(n, dtype=np.int64)
        for _ in range(self.rounds_run):
            expected, changed = reference_boruvka_round(
                self.graph.row_ptr, self.graph.col_idx,
                self.graph.weights, expected)
            if not changed:
                break
        # compare as partitions (representatives may differ)
        seen = {}
        for v in range(n):
            key = (int(comp[v]))
            if key in seen:
                if seen[key] != expected[v]:
                    raise AssertionError(
                        "mst: device component partition differs from the "
                        "host Boruvka reference")
            else:
                seen[key] = expected[v]
        if len(set(seen.values())) != len(seen):
            raise AssertionError("mst: device merged distinct reference "
                                 "components")
