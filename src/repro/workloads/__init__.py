"""The 15 benchmark applications of the paper's Table I, re-implemented
in the PTX subset over synthetic inputs.

Categories (Section IV): linear algebra (2mm, gaus, grm, lu, spmv),
image processing (htw, mriq, dwt, bpr, srad), graph (bfs, sssp, ccl,
mst, mis).  Use :func:`get_workload` to instantiate by name and
``Workload.run()`` to classify, execute and verify an application.
"""

from .base import Workload, WorkloadRun
from .data import (
    CSRGraph,
    CSRMatrix,
    diagonally_dominant_matrix,
    mri_trajectory,
    random_csr,
    random_matrix,
    random_vector,
    rmat_edges,
    rmat_graph,
    synthetic_image,
)
from .registry import (
    CATEGORIES,
    EXTENDED_CLASSES,
    WORKLOAD_CLASSES,
    WORKLOADS,
    get_workload,
    workload_names,
)

__all__ = [
    "Workload",
    "WorkloadRun",
    "CSRGraph",
    "CSRMatrix",
    "diagonally_dominant_matrix",
    "mri_trajectory",
    "random_csr",
    "random_matrix",
    "random_vector",
    "rmat_edges",
    "rmat_graph",
    "synthetic_image",
    "CATEGORIES",
    "EXTENDED_CLASSES",
    "WORKLOAD_CLASSES",
    "WORKLOADS",
    "get_workload",
    "workload_names",
]
