"""Shared host-side helpers for the graph workloads.

All five graph applications (bfs, sssp, ccl, mst, mis) consume the same
CSR adjacency layout produced by :func:`repro.workloads.data.rmat_graph`;
this module centralizes device allocation and common verification
utilities.
"""

from __future__ import annotations

import numpy as np

from .data import rmat_graph

#: "infinite" distance marker for sssp (fits comfortably in i32).
INF = 1 << 30


def alloc_graph(mem, graph, with_weights=False):
    """Allocate the CSR arrays on the device; returns a pointer dict."""
    ptrs = {
        "row_ptr": mem.alloc_array("row_ptr", graph.row_ptr),
        "col_idx": mem.alloc_array("col_idx", graph.col_idx),
    }
    if with_weights:
        ptrs["weights"] = mem.alloc_array("weights", graph.weights)
    return ptrs


def default_graph(workload, base_nodes=2048, avg_degree=8):
    """Build the workload's input graph at its configured scale."""
    num_nodes = workload.dim(base_nodes, minimum=128, multiple=128)
    return rmat_graph(num_nodes, avg_degree=avg_degree,
                      seed=workload.seed, symmetric=True)


def reference_components(graph):
    """Per-node component label = smallest node id in the component."""
    import networkx as nx
    g = graph.to_networkx().to_undirected()
    labels = np.arange(graph.num_nodes, dtype=np.int64)
    for comp in nx.connected_components(g):
        rep = min(comp)
        for v in comp:
            labels[v] = rep
    return labels


def reference_hop_distance(graph, source):
    """BFS hop counts from ``source``; unreachable nodes get -1."""
    import networkx as nx
    g = graph.to_networkx()
    dist = nx.single_source_shortest_path_length(g, source)
    out = np.full(graph.num_nodes, -1, dtype=np.int64)
    for v, d in dist.items():
        out[v] = d
    return out


def reference_shortest_paths(graph, source):
    """Weighted shortest-path distances; unreachable nodes get INF."""
    import networkx as nx
    g = graph.to_networkx()
    dist = nx.single_source_dijkstra_path_length(g, source)
    out = np.full(graph.num_nodes, INF, dtype=np.int64)
    for v, d in dist.items():
        out[v] = d
    return out
