"""bpr — back-propagation layer training (Rodinia ``backprop``).

The input-to-hidden forward pass: each 16x16 CTA stages 16 input
activations into shared memory, multiplies them against a 16x16 weight
tile, and tree-reduces partial sums in shared memory (barriers between
phases) — the heavy shared-memory traffic behind Figure 9's image-app
bars.  A second kernel folds the per-block partials and applies the
sigmoid (SFU), and a third adjusts the weights.  All global loads are
deterministic.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

_PTX = """
.entry layerforward (
    .param .u64 input,
    .param .u64 weights,
    .param .u64 partial,
    .param .u32 in_n,
    .param .u32 hid_n
)
{
    // block (16, 16): ty indexes the input within the block's 16-row
    // stripe, tx the hidden unit.  grid (1, in_n/16).
    .reg .u32 %r<20>;
    .shared .f32 s_input[16];
    .shared .f32 s_prod[256];
    mov.u32        %r1, %tid.x;            // hidden unit
    mov.u32        %r2, %tid.y;            // input row within stripe
    mov.u32        %r3, %ctaid.y;          // stripe index
    ld.param.u32   %r4, [in_n];
    ld.param.u32   %r5, [hid_n];
    mad.lo.u32     %r6, %r3, 16, %r2;      // global input index
    // one column of threads stages the inputs into shared memory
    setp.ne.u32    %p1, %r1, 0;
    @%p1 bra       STAGED;
    ld.param.u64   %rd1, [input];
    cvt.u64.u32    %rd2, %r6;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // input[i]  (deterministic)
    mov.u32        %r7, s_input;
    shl.b32        %r8, %r2, 2;
    add.u32        %r9, %r7, %r8;
    st.shared.f32  [%r9], %f1;
STAGED:
    bar.sync       0;
    // product: s_prod[ty][tx] = s_input[ty] * w[i][tx]
    ld.param.u64   %rd5, [weights];
    mad.lo.u32     %r10, %r6, %r5, %r1;    // i*hid_n + tx
    cvt.u64.u32    %rd6, %r10;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd5, %rd7;
    ld.global.f32  %f2, [%rd8];            // weight   (deterministic)
    mov.u32        %r7, s_input;
    shl.b32        %r8, %r2, 2;
    add.u32        %r9, %r7, %r8;
    ld.shared.f32  %f3, [%r9];
    mul.f32        %f4, %f2, %f3;
    mov.u32        %r11, s_prod;
    mad.lo.u32     %r12, %r2, 16, %r1;     // ty*16 + tx
    shl.b32        %r13, %r12, 2;
    add.u32        %r14, %r11, %r13;
    st.shared.f32  [%r14], %f4;
    bar.sync       0;
    // tree-reduce over ty for each tx
    mov.u32        %r15, 8;
RLOOP:
    setp.eq.u32    %p2, %r15, 0;
    @%p2 bra       WRITE;
    setp.ge.u32    %p3, %r2, %r15;
    @%p3 bra       RSKIP;
    add.u32        %r16, %r2, %r15;
    mad.lo.u32     %r17, %r16, 16, %r1;
    shl.b32        %r18, %r17, 2;
    add.u32        %r19, %r11, %r18;
    ld.shared.f32  %f5, [%r19];
    ld.shared.f32  %f6, [%r14];
    add.f32        %f7, %f5, %f6;
    st.shared.f32  [%r14], %f7;
RSKIP:
    bar.sync       0;
    shr.u32        %r15, %r15, 1;
    bra            RLOOP;
WRITE:
    setp.ne.u32    %p4, %r2, 0;
    @%p4 bra       EXIT;
    // partial[stripe][tx] = reduced sum for this stripe
    ld.shared.f32  %f8, [%r14];            // s_prod[0][tx]
    ld.param.u64   %rd9, [partial];
    mad.lo.u32     %r16, %r3, %r5, %r1;    // stripe*hid_n + tx
    cvt.u64.u32    %rd10, %r16;
    shl.b64        %rd11, %rd10, 2;
    add.u64        %rd12, %rd9, %rd11;
    st.global.f32  [%rd12], %f8;
EXIT:
    exit;
}

.entry fold_sigmoid (
    .param .u64 partial,
    .param .u64 hidden,
    .param .u32 num_stripes,
    .param .u32 hid_n
)
{
    // hidden[j] = sigmoid( sum_s partial[s][j] )
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // hidden unit j
    ld.param.u32   %r5, [hid_n];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u32   %r6, [num_stripes];
    ld.param.u64   %rd1, [partial];
    mov.f32        %f1, 0.0;
    mov.u32        %r7, 0;
LOOP:
    setp.ge.u32    %p2, %r7, %r6;
    @%p2 bra       DONE;
    mad.lo.u32     %r8, %r7, %r5, %r4;
    cvt.u64.u32    %rd2, %r8;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f2, [%rd4];            // partial[s][j]  (deterministic)
    add.f32        %f1, %f1, %f2;
    add.u32        %r7, %r7, 1;
    bra            LOOP;
DONE:
    // sigmoid(x) = 1 / (1 + 2^(-x * log2(e)))
    mul.f32        %f3, %f1, 1.4426950;
    neg.f32        %f4, %f3;
    ex2.f32        %f5, %f4;               // SFU
    add.f32        %f6, %f5, 1.0;
    rcp.f32        %f7, %f6;               // SFU
    ld.param.u64   %rd5, [hidden];
    cvt.u64.u32    %rd6, %r4;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd5, %rd7;
    st.global.f32  [%rd8], %f7;
EXIT:
    exit;
}

.entry adjust_weights (
    .param .u64 weights,
    .param .u64 input,
    .param .u64 delta,
    .param .u32 in_n,
    .param .u32 hid_n
)
{
    // w[i][j] += eta * delta[j] * input[i]
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // j
    mov.u32        %r5, %ctaid.y;
    mov.u32        %r6, %ntid.y;
    mov.u32        %r7, %tid.y;
    mad.lo.u32     %r8, %r5, %r6, %r7;     // i
    ld.param.u32   %r9, [hid_n];
    setp.ge.u32    %p1, %r4, %r9;
    @%p1 bra       EXIT;
    ld.param.u32   %r10, [in_n];
    setp.ge.u32    %p2, %r8, %r10;
    @%p2 bra       EXIT;
    ld.param.u64   %rd1, [delta];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // delta[j]  (deterministic)
    ld.param.u64   %rd5, [input];
    cvt.u64.u32    %rd6, %r8;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd5, %rd7;
    ld.global.f32  %f2, [%rd8];            // input[i]  (deterministic)
    ld.param.u64   %rd9, [weights];
    mad.lo.u32     %r11, %r8, %r9, %r4;
    cvt.u64.u32    %rd10, %r11;
    shl.b64        %rd11, %rd10, 2;
    add.u64        %rd12, %rd9, %rd11;
    ld.global.f32  %f3, [%rd12];           // w[i][j]   (deterministic)
    mul.f32        %f4, %f1, %f2;
    mad.f32        %f5, %f4, 0.3, %f3;     // eta = 0.3
    st.global.f32  [%rd12], %f5;
EXIT:
    exit;
}
"""


class BackProp(Workload):
    """Neural-network layer forward pass + weight adjustment."""

    name = "bpr"
    category = "image"
    description = "back propagation (pattern recognition layer)"

    HID = 16
    ETA = 0.3

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.in_n = self.dim(512, minimum=16, multiple=16)
        self.data_set = "%d-input, %d-hidden layer" % (self.in_n, self.HID)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        r = np.random.default_rng(self.seed)
        self.input_host = r.random(self.in_n, dtype=np.float32)
        self.weights_host = (r.random((self.in_n, self.HID),
                                      dtype=np.float32) - 0.5)
        self.delta_host = (r.random(self.HID, dtype=np.float32) - 0.5)
        self.num_stripes = self.in_n // 16
        self.ptr_input = mem.alloc_array("input", self.input_host)
        self.ptr_weights = mem.alloc_array("weights", self.weights_host)
        self.ptr_partial = mem.alloc(
            "partial", self.num_stripes * self.HID * 4)
        self.ptr_hidden = mem.alloc("hidden", self.HID * 4)
        self.ptr_delta = mem.alloc_array("delta", self.delta_host)

    def host(self, emu, module):
        yield emu.launch(module["layerforward"], (1, self.num_stripes),
                         (16, 16), params={
            "input": self.ptr_input, "weights": self.ptr_weights,
            "partial": self.ptr_partial, "in_n": self.in_n,
            "hid_n": self.HID})
        yield emu.launch(module["fold_sigmoid"], (1,), (self.HID,), params={
            "partial": self.ptr_partial, "hidden": self.ptr_hidden,
            "num_stripes": self.num_stripes, "hid_n": self.HID})
        yield emu.launch(module["adjust_weights"],
                         (1, self.in_n // 16), (16, 16), params={
            "weights": self.ptr_weights, "input": self.ptr_input,
            "delta": self.ptr_delta, "in_n": self.in_n, "hid_n": self.HID})

    def verify(self, mem):
        hidden = mem.read_array("hidden", np.float32, self.HID)
        pre = self.weights_host.astype(np.float64).T @ \
            self.input_host.astype(np.float64)
        expected = 1.0 / (1.0 + np.exp(-pre))
        if not np.allclose(hidden, expected, rtol=1e-3, atol=1e-4):
            raise AssertionError("bpr: hidden activations mismatch")
        weights = mem.read_array(
            "weights", np.float32, self.in_n * self.HID).reshape(
                self.in_n, self.HID)
        expected_w = (self.weights_host.astype(np.float64)
                      + self.ETA * np.outer(self.input_host,
                                            self.delta_host))
        if not np.allclose(weights, expected_w, rtol=1e-3, atol=1e-4):
            raise AssertionError("bpr: adjusted weights mismatch")
