"""spmv — sparse matrix-vector multiplication, CSR scalar kernel (Parboil).

``y[row] = sum_j val[j] * x[col[j]]`` with ``j`` ranging over the row's
CSR segment.  The row-pointer loads index by thread id (deterministic),
but ``val[j]``/``col[j]`` use a loop bound *loaded* from the row-pointer
array, and ``x[col[j]]`` is doubly indirect — the classifier must mark
all three non-deterministic.  This is the paper's example of a linear
algebra application with a significant non-deterministic load fraction
(Figures 1 and 2: ~6 requests/warp for spmv's N loads).
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import random_csr

_PTX = """
.entry spmv_csr (
    .param .u64 row_ptr,
    .param .u64 col_idx,
    .param .u64 values,
    .param .u64 x,
    .param .u64 y,
    .param .u32 num_rows
)
{
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // row
    ld.param.u32   %r5, [num_rows];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [row_ptr];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // row_ptr[row]    (deterministic)
    ld.global.u32  %r7, [%rd4+4];          // row_ptr[row+1]  (deterministic)
    ld.param.u64   %rd5, [values];
    ld.param.u64   %rd6, [col_idx];
    ld.param.u64   %rd7, [x];
    mov.f32        %f1, 0.0;
    mov.u32        %r8, %r6;               // j = row start (loaded!)
LOOP:
    setp.ge.u32    %p2, %r8, %r7;
    @%p2 bra       DONE;
    cvt.u64.u32    %rd8, %r8;
    shl.b64        %rd9, %rd8, 2;
    add.u64        %rd10, %rd5, %rd9;
    ld.global.f32  %f2, [%rd10];           // values[j]   (NON-deterministic)
    add.u64        %rd11, %rd6, %rd9;
    ld.global.u32  %r9, [%rd11];           // col_idx[j]  (NON-deterministic)
    cvt.u64.u32    %rd12, %r9;
    shl.b64        %rd13, %rd12, 2;
    add.u64        %rd14, %rd7, %rd13;
    ld.global.f32  %f3, [%rd14];           // x[col[j]]   (NON-deterministic)
    mad.f32        %f1, %f2, %f3, %f1;
    add.u32        %r8, %r8, 1;
    bra            LOOP;
DONE:
    ld.param.u64   %rd15, [y];
    add.u64        %rd16, %rd15, %rd3;
    st.global.f32  [%rd16], %f1;
EXIT:
    exit;
}
"""


class SpMV(Workload):
    """CSR sparse matrix - dense vector multiplication."""

    name = "spmv"
    category = "linear"
    description = "sparse matrix dense vector multiplication"

    BLOCK = 192  # the paper's spmv runs 192-thread CTAs (Table I)

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.num_rows = self.dim(1152, minimum=self.BLOCK,
                                 multiple=self.BLOCK)
        self.data_set = "random CSR %dx%d, ~8 nnz/row" % (
            self.num_rows, self.num_rows)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.csr = random_csr(self.num_rows, avg_nnz_per_row=8,
                              seed=self.seed)
        self.x_host = np.random.default_rng(self.seed + 5).random(
            self.num_rows).astype(np.float32)
        self.ptr_row = mem.alloc_array("row_ptr", self.csr.row_ptr)
        self.ptr_col = mem.alloc_array("col_idx", self.csr.col_idx)
        self.ptr_val = mem.alloc_array("values", self.csr.values)
        self.ptr_x = mem.alloc_array("x", self.x_host)
        self.ptr_y = mem.alloc("y", self.num_rows * 4)

    def host(self, emu, module):
        kernel = module["spmv_csr"]
        grid = (self.num_rows // self.BLOCK,)
        yield emu.launch(kernel, grid, (self.BLOCK,), params={
            "row_ptr": self.ptr_row, "col_idx": self.ptr_col,
            "values": self.ptr_val, "x": self.ptr_x, "y": self.ptr_y,
            "num_rows": self.num_rows})

    def verify(self, mem):
        y = mem.read_array("y", np.float32, self.num_rows)
        expected = self.csr.multiply(self.x_host.astype(np.float64))
        if not np.allclose(y, expected, rtol=1e-3, atol=1e-4):
            raise AssertionError("spmv: y does not match the CSR reference")
