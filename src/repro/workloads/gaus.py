"""gaus — Gaussian elimination (Rodinia ``gaussian``).

Solves ``A x = b`` by forward elimination: for every pivot ``t`` the host
launches Fan1 (compute the multiplier column) and Fan2 (update the
trailing submatrix and right-hand side) — the paper's gaus runs 65 536
tiny CTAs for exactly this reason: many small launches, one pair per
pivot.  All indexing is linear in thread/CTA ids, so every global load is
deterministic.
"""

from __future__ import annotations

import numpy as np

from .base import Workload
from .data import diagonally_dominant_matrix, random_vector

_PTX = """
.entry fan1 (
    .param .u64 a,
    .param .u64 m,
    .param .u32 n,
    .param .u32 t
)
{
    // one thread per row below the pivot: m[row][t] = a[row][t] / a[t][t]
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // i = global tid
    ld.param.u32   %r5, [n];
    ld.param.u32   %r6, [t];
    sub.u32        %r7, %r5, %r6;
    sub.u32        %r8, %r7, 1;            // rows below pivot
    setp.ge.u32    %p1, %r4, %r8;
    @%p1 bra       EXIT;
    add.u32        %r9, %r4, %r6;
    add.u32        %r10, %r9, 1;           // row = t + 1 + i
    ld.param.u64   %rd1, [a];
    mad.lo.u32     %r11, %r10, %r5, %r6;   // row*n + t
    cvt.u64.u32    %rd2, %r11;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // a[row][t]   (deterministic)
    mad.lo.u32     %r12, %r6, %r5, %r6;    // t*n + t
    cvt.u64.u32    %rd5, %r12;
    shl.b64        %rd6, %rd5, 2;
    add.u64        %rd7, %rd1, %rd6;
    ld.global.f32  %f2, [%rd7];            // a[t][t]      (deterministic)
    div.f32        %f3, %f1, %f2;
    ld.param.u64   %rd8, [m];
    add.u64        %rd9, %rd8, %rd3;
    st.global.f32  [%rd9], %f3;
EXIT:
    exit;
}

.entry fan2 (
    .param .u64 a,
    .param .u64 b,
    .param .u64 m,
    .param .u32 n,
    .param .u32 t
)
{
    // 2-D grid over the trailing submatrix:
    // a[row][col] -= m[row][t] * a[t][col];  col 0 also updates b[row]
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // xidx (row offset)
    mov.u32        %r5, %ctaid.y;
    mov.u32        %r6, %ntid.y;
    mov.u32        %r7, %tid.y;
    mad.lo.u32     %r8, %r5, %r6, %r7;     // yidx (col offset)
    ld.param.u32   %r9, [n];
    ld.param.u32   %r10, [t];
    sub.u32        %r11, %r9, %r10;
    sub.u32        %r12, %r11, 1;
    setp.ge.u32    %p1, %r4, %r12;
    @%p1 bra       EXIT;
    setp.ge.u32    %p2, %r8, %r11;
    @%p2 bra       EXIT;
    add.u32        %r13, %r4, %r10;
    add.u32        %r14, %r13, 1;          // row = t + 1 + xidx
    add.u32        %r15, %r8, %r10;        // col = t + yidx
    ld.param.u64   %rd1, [m];
    mad.lo.u32     %r16, %r14, %r9, %r10;  // row*n + t
    cvt.u64.u32    %rd2, %r16;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.f32  %f1, [%rd4];            // m[row][t]   (deterministic)
    ld.param.u64   %rd5, [a];
    mad.lo.u32     %r17, %r10, %r9, %r15;  // t*n + col
    cvt.u64.u32    %rd6, %r17;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd5, %rd7;
    ld.global.f32  %f2, [%rd8];            // a[t][col]   (deterministic)
    mad.lo.u32     %r18, %r14, %r9, %r15;  // row*n + col
    cvt.u64.u32    %rd9, %r18;
    shl.b64        %rd10, %rd9, 2;
    add.u64        %rd11, %rd5, %rd10;
    ld.global.f32  %f3, [%rd11];           // a[row][col] (deterministic)
    mul.f32        %f4, %f1, %f2;
    sub.f32        %f5, %f3, %f4;
    st.global.f32  [%rd11], %f5;
    setp.ne.u32    %p3, %r8, 0;
    @%p3 bra       EXIT;
    // b[row] -= m[row][t] * b[t]
    ld.param.u64   %rd12, [b];
    cvt.u64.u32    %rd13, %r10;
    shl.b64        %rd14, %rd13, 2;
    add.u64        %rd15, %rd12, %rd14;
    ld.global.f32  %f6, [%rd15];           // b[t]        (deterministic)
    cvt.u64.u32    %rd16, %r14;
    shl.b64        %rd17, %rd16, 2;
    add.u64        %rd18, %rd12, %rd17;
    ld.global.f32  %f7, [%rd18];           // b[row]      (deterministic)
    mul.f32        %f8, %f1, %f6;
    sub.f32        %f9, %f7, %f8;
    st.global.f32  [%rd18], %f9;
EXIT:
    exit;
}
"""


class Gaussian(Workload):
    """Gaussian elimination with per-pivot kernel pairs."""

    name = "gaus"
    category = "linear"
    description = "Gaussian elimination"

    BLOCK_1D = 64
    BLOCK_2D = 8

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.n = self.dim(48, minimum=8, multiple=8)
        self.data_set = "matrix%d" % self.n

    def ptx(self):
        return _PTX

    def setup(self, mem):
        n = self.n
        self.a_host = diagonally_dominant_matrix(n, seed=self.seed)
        self.b_host = random_vector(n, seed=self.seed + 1)
        self.ptr_a = mem.alloc_array("a", self.a_host)
        self.ptr_b = mem.alloc_array("b", self.b_host)
        self.ptr_m = mem.alloc("m", n * n * 4)

    def host(self, emu, module):
        fan1, fan2 = module["fan1"], module["fan2"]
        n = self.n
        for t in range(n - 1):
            grid1 = (max(1, -(-(n - t - 1) // self.BLOCK_1D)),)
            yield emu.launch(fan1, grid1, (self.BLOCK_1D,), params={
                "a": self.ptr_a, "m": self.ptr_m, "n": n, "t": t})
            bx = max(1, -(-(n - t - 1) // self.BLOCK_2D))
            by = max(1, -(-(n - t) // self.BLOCK_2D))
            yield emu.launch(fan2, (bx, by), (self.BLOCK_2D, self.BLOCK_2D),
                             params={"a": self.ptr_a, "b": self.ptr_b,
                                     "m": self.ptr_m, "n": n, "t": t})

    def verify(self, mem):
        n = self.n
        a = mem.read_array("a", np.float32, n * n).reshape(n, n)
        b = mem.read_array("b", np.float32, n)
        # the device leaves an upper-triangular system: back-substitute and
        # compare with a direct solve of the original system
        x = np.zeros(n, dtype=np.float64)
        for i in range(n - 1, -1, -1):
            x[i] = (b[i] - np.dot(a[i, i + 1:], x[i + 1:])) / a[i, i]
        expected = np.linalg.solve(self.a_host.astype(np.float64),
                                   self.b_host.astype(np.float64))
        if not np.allclose(x, expected, rtol=1e-2, atol=1e-3):
            raise AssertionError("gaus: elimination result mismatch")
