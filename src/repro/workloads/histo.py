"""histo — histogramming with data-dependent atomics (Parboil ``histo``).

Part of the *extended* suite: each thread walks a strided slice of the
input and increments ``bins[input[i]]`` with ``atom.add``.  The input
loads are deterministic, but the atomic's *target address* is data-
dependent — the store-side analogue of a non-deterministic load — making
histo the suite's stress test for data-dependent read-modify-write
traffic at the L2.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

_PTX = """
.entry histo_kernel (
    .param .u64 input,
    .param .u64 bins,
    .param .u32 n,
    .param .u32 total_threads
)
{
    .reg .u32 %r<12>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // tid
    ld.param.u32   %r5, [n];
    ld.param.u32   %r6, [total_threads];
    ld.param.u64   %rd1, [input];
    ld.param.u64   %rd2, [bins];
    mov.u32        %r7, %r4;               // i = tid
LOOP:
    setp.ge.u32    %p1, %r7, %r5;
    @%p1 bra       EXIT;
    cvt.u64.u32    %rd3, %r7;
    shl.b64        %rd4, %rd3, 2;
    add.u64        %rd5, %rd1, %rd4;
    ld.global.u32  %r8, [%rd5];            // value = input[i]  (deterministic)
    cvt.u64.u32    %rd6, %r8;
    shl.b64        %rd7, %rd6, 2;
    add.u64        %rd8, %rd2, %rd7;
    atom.add.global.u32 %r9, [%rd8], 1;    // bins[value]++ (data-dependent)
    add.u32        %r7, %r7, %r6;          // grid-stride loop
    bra            LOOP;
EXIT:
    exit;
}

.entry histo_saturate (
    .param .u64 bins,
    .param .u32 num_bins,
    .param .u32 limit
)
{
    // clamp every bin to `limit` (Parboil saturates at 255)
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;
    ld.param.u32   %r5, [num_bins];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [bins];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // bins[tid]  (deterministic)
    ld.param.u32   %r7, [limit];
    min.u32        %r8, %r6, %r7;
    st.global.u32  [%rd4], %r8;
EXIT:
    exit;
}
"""


class Histogram(Workload):
    """Data-dependent atomic histogram with saturation."""

    name = "histo"
    category = "image"
    extended = True

    description = "saturating histogram via atomics (extended suite)"

    BLOCK = 128
    LIMIT = 255

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.n = self.dim(8192, minimum=1024, multiple=256)
        self.num_bins = self.dim(256, minimum=64, multiple=64)
        self.data_set = "%d samples into %d bins" % (self.n, self.num_bins)

    def ptx(self):
        return _PTX

    def setup(self, mem):
        rng = np.random.default_rng(self.seed)
        # skewed values: a few hot bins, like Parboil's silicon-wafer input
        raw = rng.normal(loc=self.num_bins / 2, scale=self.num_bins / 8,
                         size=self.n)
        self.input_host = np.clip(raw, 0, self.num_bins - 1).astype(
            np.uint32)
        self.ptr_input = mem.alloc_array("input", self.input_host)
        self.ptr_bins = mem.alloc_array(
            "bins", np.zeros(self.num_bins, dtype=np.uint32))

    def host(self, emu, module):
        grid = 4
        total_threads = grid * self.BLOCK
        yield emu.launch(module["histo_kernel"], (grid,), (self.BLOCK,),
                         params={"input": self.ptr_input,
                                 "bins": self.ptr_bins,
                                 "n": self.n,
                                 "total_threads": total_threads})
        bins_grid = max(1, -(-self.num_bins // self.BLOCK))
        yield emu.launch(module["histo_saturate"], (bins_grid,),
                         (self.BLOCK,),
                         params={"bins": self.ptr_bins,
                                 "num_bins": self.num_bins,
                                 "limit": self.LIMIT})

    def verify(self, mem):
        bins = mem.read_array("bins", np.uint32, self.num_bins)
        expected = np.bincount(self.input_host, minlength=self.num_bins)
        expected = np.minimum(expected, self.LIMIT)
        if not np.array_equal(bins, expected):
            raise AssertionError("histo: bin counts mismatch")
