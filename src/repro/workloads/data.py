"""Synthetic input generators for the workload suite.

The paper runs its applications on large reference inputs (Table I):
dense matrices, images, and real/synthetic graphs (including R-MAT
graphs, e.g. ``rmat.gr`` for bfs and ``rmat12.syn.gr`` for mst).  Those
files are not redistributable, so we generate inputs with the same
*structure*:

* dense float matrices with well-conditioned values (for the linear
  algebra apps),
* synthetic images: smooth gradients plus noise (for the image apps),
* R-MAT graphs in CSR form — the same recursive-matrix generator the
  Graph500 reference and the paper's inputs use — with skewed degree
  distributions that drive the irregular access patterns the paper
  studies.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def rng(seed):
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# dense matrices / vectors
# ---------------------------------------------------------------------------


def random_matrix(n, m=None, seed=7, scale=1.0):
    """A dense float32 matrix with entries in [0.1, 1.1) — bounded away
    from zero so elimination-style kernels stay numerically stable."""
    m = n if m is None else m
    return (rng(seed).random((n, m), dtype=np.float32) * scale
            + np.float32(0.1))


def diagonally_dominant_matrix(n, seed=7):
    """A strictly diagonally dominant float32 matrix — safe for Gaussian
    elimination and LU decomposition without pivoting."""
    a = rng(seed).random((n, n), dtype=np.float32) + np.float32(0.1)
    a[np.arange(n), np.arange(n)] += np.float32(n)
    return a


def random_vector(n, seed=7):
    return rng(seed).random(n, dtype=np.float32) + np.float32(0.1)


# ---------------------------------------------------------------------------
# sparse matrices (CSR)
# ---------------------------------------------------------------------------


@dataclass
class CSRMatrix:
    """A float32 CSR sparse matrix (the spmv input format)."""

    num_rows: int
    num_cols: int
    row_ptr: np.ndarray   # int32, len num_rows+1
    col_idx: np.ndarray   # int32, len nnz
    values: np.ndarray    # float32, len nnz

    @property
    def nnz(self):
        return len(self.values)

    def to_dense(self):
        dense = np.zeros((self.num_rows, self.num_cols), dtype=np.float64)
        for r in range(self.num_rows):
            for j in range(self.row_ptr[r], self.row_ptr[r + 1]):
                dense[r, self.col_idx[j]] += self.values[j]
        return dense

    def multiply(self, x):
        """Reference SpMV (float64 accumulation)."""
        y = np.zeros(self.num_rows, dtype=np.float64)
        for r in range(self.num_rows):
            lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
            y[r] = np.dot(self.values[lo:hi].astype(np.float64),
                          x[self.col_idx[lo:hi]].astype(np.float64))
        return y


def random_csr(num_rows, num_cols=None, avg_nnz_per_row=8, seed=7,
               skew=0.35):
    """A random CSR matrix with a skewed column distribution.

    ``skew`` biases column picks toward low indices (power-law-ish), which
    produces the partially irregular, partially clustered accesses sparse
    solvers see on real meshes like the paper's ``Dubcova3`` input.
    """
    num_cols = num_rows if num_cols is None else num_cols
    r = rng(seed)
    row_ptr = [0]
    cols = []
    vals = []
    for _row in range(num_rows):
        nnz = max(1, int(r.poisson(avg_nnz_per_row)))
        nnz = min(nnz, num_cols)
        raw = (r.random(nnz) ** (1.0 / max(skew, 1e-6)) * num_cols)
        picked = sorted(set(int(c) % num_cols for c in raw))
        cols.extend(picked)
        vals.extend(r.random(len(picked)) + 0.1)
        row_ptr.append(len(cols))
    return CSRMatrix(
        num_rows=num_rows,
        num_cols=num_cols,
        row_ptr=np.asarray(row_ptr, dtype=np.int32),
        col_idx=np.asarray(cols, dtype=np.int32),
        values=np.asarray(vals, dtype=np.float32),
    )


# ---------------------------------------------------------------------------
# images
# ---------------------------------------------------------------------------


def synthetic_image(rows, cols, seed=7):
    """A float32 image: smooth 2-D gradient + texture noise, range [0, 1).

    Structured enough that window-based kernels (heartwall, srad) compute
    meaningful statistics, noisy enough that nothing degenerates to zero.
    """
    r = rng(seed)
    y = np.linspace(0.0, 1.0, rows, dtype=np.float32)[:, None]
    x = np.linspace(0.0, 1.0, cols, dtype=np.float32)[None, :]
    base = 0.5 + 0.25 * np.sin(6.0 * x) * np.cos(4.0 * y)
    noise = 0.1 * r.random((rows, cols), dtype=np.float32)
    return np.clip(base + noise, 0.0, 0.999).astype(np.float32)


# ---------------------------------------------------------------------------
# graphs (CSR adjacency)
# ---------------------------------------------------------------------------


@dataclass
class CSRGraph:
    """A directed graph in CSR form with int32 edge weights.

    The layout matches the Rodinia / LonestarGPU inputs the paper uses:
    ``row_ptr[v]..row_ptr[v+1]`` index into ``col_idx`` (neighbour ids)
    and ``weights`` (edge weights).
    """

    num_nodes: int
    row_ptr: np.ndarray   # int32, len num_nodes+1
    col_idx: np.ndarray   # int32, len num_edges
    weights: np.ndarray   # int32, len num_edges

    @property
    def num_edges(self):
        return len(self.col_idx)

    def neighbors(self, v):
        lo, hi = self.row_ptr[v], self.row_ptr[v + 1]
        return self.col_idx[lo:hi]

    def edge_weights(self, v):
        lo, hi = self.row_ptr[v], self.row_ptr[v + 1]
        return self.weights[lo:hi]

    def degree(self, v):
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def to_networkx(self):
        """Convert to a networkx DiGraph for reference algorithms."""
        import networkx as nx
        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        for v in range(self.num_nodes):
            lo, hi = self.row_ptr[v], self.row_ptr[v + 1]
            for j in range(lo, hi):
                g.add_edge(v, int(self.col_idx[j]),
                           weight=int(self.weights[j]))
        return g


def rmat_edges(num_nodes, num_edges, seed=7,
               a=0.45, b=0.22, c=0.22):
    """Generate R-MAT edge pairs (the Graph500 recursive-matrix model).

    Each edge picks its (src, dst) by descending a 2x2 probability
    quadrant ``[[a, b], [c, d]]`` log2(n) times, yielding the skewed,
    community-structured degree distribution of the paper's rmat inputs.
    """
    r = rng(seed)
    scale = int(np.ceil(np.log2(max(num_nodes, 2))))
    d = 1.0 - a - b - c
    probs = np.cumsum([a, b, c, d])
    srcs = np.zeros(num_edges, dtype=np.int64)
    dsts = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        quadrant = np.searchsorted(probs, r.random(num_edges))
        srcs = (srcs << 1) | (quadrant >> 1)
        dsts = (dsts << 1) | (quadrant & 1)
    srcs %= num_nodes
    dsts %= num_nodes
    return srcs.astype(np.int64), dsts.astype(np.int64)


def rmat_graph(num_nodes, avg_degree=8, seed=7, symmetric=True,
               max_weight=100):
    """An R-MAT graph in CSR form.

    ``symmetric=True`` mirrors every edge (the Rodinia graph inputs are
    undirected).  Self-loops and duplicate edges are removed; isolated
    nodes may remain — graph kernels must tolerate them, as the paper's
    applications do.
    """
    num_edges = num_nodes * avg_degree
    srcs, dsts = rmat_edges(num_nodes, num_edges, seed=seed)
    if symmetric:
        srcs, dsts = (np.concatenate([srcs, dsts]),
                      np.concatenate([dsts, srcs]))
    keep = srcs != dsts
    srcs, dsts = srcs[keep], dsts[keep]
    pairs = np.unique(np.stack([srcs, dsts], axis=1), axis=0)
    srcs, dsts = pairs[:, 0], pairs[:, 1]

    order = np.lexsort((dsts, srcs))
    srcs, dsts = srcs[order], dsts[order]
    row_ptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.add.at(row_ptr, srcs + 1, 1)
    row_ptr = np.cumsum(row_ptr)

    r = rng(seed + 1)
    weights = r.integers(1, max_weight + 1, size=len(dsts), dtype=np.int64)
    if symmetric:
        # make mirrored edges carry equal weights: weight from unordered pair
        lo = np.minimum(srcs, dsts)
        hi = np.maximum(srcs, dsts)
        weights = ((lo * 2654435761 + hi * 40503) % max_weight + 1)
    return CSRGraph(
        num_nodes=num_nodes,
        row_ptr=row_ptr.astype(np.int32),
        col_idx=dsts.astype(np.int32),
        weights=weights.astype(np.int32),
    )


# ---------------------------------------------------------------------------
# MRI trajectory (mriq input)
# ---------------------------------------------------------------------------


def mri_trajectory(num_samples, num_voxels, seed=7):
    """Synthetic k-space samples + voxel coordinates for the MRI-Q kernel.

    Returns ``(kx, ky, kz, phi_r, phi_i, x, y, z)`` float32 arrays shaped
    like Parboil's ``64_64_64`` dataset (scaled down)."""
    r = rng(seed)
    kx = (r.random(num_samples, dtype=np.float32) - 0.5) * 2.0
    ky = (r.random(num_samples, dtype=np.float32) - 0.5) * 2.0
    kz = (r.random(num_samples, dtype=np.float32) - 0.5) * 2.0
    phi_r = r.random(num_samples, dtype=np.float32)
    phi_i = r.random(num_samples, dtype=np.float32)
    x = r.random(num_voxels, dtype=np.float32)
    y = r.random(num_voxels, dtype=np.float32)
    z = r.random(num_voxels, dtype=np.float32)
    return kx, ky, kz, phi_r, phi_i, x, y, z
