"""bfs — breadth-first search (Rodinia ``bfs``, the paper's Code 1).

The classic two-kernel level-synchronous formulation: Kernel 1 expands
the current frontier (mask) — its edge-array and visited-array loads are
the paper's canonical *non-deterministic* loads, with addresses derived
from the loaded node structure; Kernel 2 folds the updating mask into the
frontier and raises the host's stop flag.  The host relaunches until the
frontier is empty.
"""

from __future__ import annotations

import numpy as np

from ..ptx.isa import DType
from .base import Workload
from .graph_common import alloc_graph, default_graph, reference_hop_distance

_U32 = DType.U32

_PTX = """
.entry bfs_kernel1 (
    .param .u64 row_ptr,
    .param .u64 col_idx,
    .param .u64 mask,
    .param .u64 updating,
    .param .u64 visited,
    .param .u64 cost,
    .param .u32 num_nodes
)
{
    .reg .u32 %r<16>;
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;     // tid
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [mask];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // mask[tid]       (deterministic)
    setp.eq.u32    %p2, %r6, 0;
    @%p2 bra       EXIT;
    st.global.u32  [%rd4], 0;              // mask[tid] = false
    ld.param.u64   %rd5, [cost];
    add.u64        %rd6, %rd5, %rd3;
    ld.global.u32  %r7, [%rd6];            // cost[tid]       (deterministic)
    add.u32        %r8, %r7, 1;            // neighbour cost
    ld.param.u64   %rd7, [row_ptr];
    add.u64        %rd8, %rd7, %rd3;
    ld.global.u32  %r9, [%rd8];            // start           (deterministic)
    ld.global.u32  %r10, [%rd8+4];         // end             (deterministic)
    ld.param.u64   %rd9, [col_idx];
    ld.param.u64   %rd10, [visited];
    ld.param.u64   %rd11, [updating];
    mov.u32        %r11, %r9;              // i = start (loaded!)
LOOP:
    setp.ge.u32    %p3, %r11, %r10;
    @%p3 bra       EXIT;
    cvt.u64.u32    %rd12, %r11;
    shl.b64        %rd13, %rd12, 2;
    add.u64        %rd14, %rd9, %rd13;
    ld.global.u32  %r12, [%rd14];          // id = edges[i] (NON-deterministic)
    cvt.u64.u32    %rd15, %r12;
    shl.b64        %rd16, %rd15, 2;
    add.u64        %rd17, %rd10, %rd16;
    ld.global.u32  %r13, [%rd17];          // visited[id]   (NON-deterministic)
    setp.ne.u32    %p4, %r13, 0;
    @%p4 bra       NEXT;
    add.u64        %rd18, %rd5, %rd16;
    st.global.u32  [%rd18], %r8;           // cost[id] = cost[tid] + 1
    add.u64        %rd19, %rd11, %rd16;
    st.global.u32  [%rd19], 1;             // updating[id] = true
NEXT:
    add.u32        %r11, %r11, 1;
    bra            LOOP;
EXIT:
    exit;
}

.entry bfs_kernel2 (
    .param .u64 mask,
    .param .u64 updating,
    .param .u64 visited,
    .param .u64 stop,
    .param .u32 num_nodes
)
{
    mov.u32        %r1, %ctaid.x;
    mov.u32        %r2, %ntid.x;
    mov.u32        %r3, %tid.x;
    mad.lo.u32     %r4, %r1, %r2, %r3;
    ld.param.u32   %r5, [num_nodes];
    setp.ge.u32    %p1, %r4, %r5;
    @%p1 bra       EXIT;
    ld.param.u64   %rd1, [updating];
    cvt.u64.u32    %rd2, %r4;
    shl.b64        %rd3, %rd2, 2;
    add.u64        %rd4, %rd1, %rd3;
    ld.global.u32  %r6, [%rd4];            // updating[tid]  (deterministic)
    setp.eq.u32    %p2, %r6, 0;
    @%p2 bra       EXIT;
    ld.param.u64   %rd5, [mask];
    add.u64        %rd6, %rd5, %rd3;
    st.global.u32  [%rd6], 1;              // mask[tid] = true
    ld.param.u64   %rd7, [visited];
    add.u64        %rd8, %rd7, %rd3;
    st.global.u32  [%rd8], 1;              // visited[tid] = true
    st.global.u32  [%rd4], 0;              // updating[tid] = false
    ld.param.u64   %rd9, [stop];
    st.global.u32  [%rd9], 1;              // keep iterating
EXIT:
    exit;
}
"""


class BFS(Workload):
    """Level-synchronous breadth-first search."""

    name = "bfs"
    category = "graph"
    description = "breadth first search"

    BLOCK = 128
    SOURCE = 0

    def __init__(self, scale=1.0, seed=7):
        super().__init__(scale=scale, seed=seed)
        self.graph = None

    def ptx(self):
        return _PTX

    def setup(self, mem):
        self.graph = default_graph(self)
        n = self.graph.num_nodes
        self.data_set = "R-MAT graph, %d nodes / %d edges" % (
            n, self.graph.num_edges)
        self.ptrs = alloc_graph(mem, self.graph)
        mask = np.zeros(n, dtype=np.uint32)
        visited = np.zeros(n, dtype=np.uint32)
        cost = np.full(n, np.uint32(0xFFFFFFFF), dtype=np.uint32)
        mask[self.SOURCE] = 1
        visited[self.SOURCE] = 1
        cost[self.SOURCE] = 0
        self.ptrs["mask"] = mem.alloc_array("mask", mask)
        self.ptrs["updating"] = mem.alloc_array("updating",
                                                np.zeros(n, dtype=np.uint32))
        self.ptrs["visited"] = mem.alloc_array("visited", visited)
        self.ptrs["cost"] = mem.alloc_array("cost", cost)
        self.ptrs["stop"] = mem.alloc("stop", 4)

    def host(self, emu, module):
        k1, k2 = module["bfs_kernel1"], module["bfs_kernel2"]
        n = self.graph.num_nodes
        grid = (max(1, -(-n // self.BLOCK)),)
        while True:
            emu.memory.store(self.ptrs["stop"], _U32, 0)
            yield emu.launch(k1, grid, (self.BLOCK,), params={
                "row_ptr": self.ptrs["row_ptr"],
                "col_idx": self.ptrs["col_idx"],
                "mask": self.ptrs["mask"],
                "updating": self.ptrs["updating"],
                "visited": self.ptrs["visited"],
                "cost": self.ptrs["cost"],
                "num_nodes": n})
            yield emu.launch(k2, grid, (self.BLOCK,), params={
                "mask": self.ptrs["mask"],
                "updating": self.ptrs["updating"],
                "visited": self.ptrs["visited"],
                "stop": self.ptrs["stop"],
                "num_nodes": n})
            if emu.memory.load(self.ptrs["stop"], _U32) == 0:
                break

    def verify(self, mem):
        n = self.graph.num_nodes
        cost = mem.read_array("cost", np.uint32, n).astype(np.int64)
        cost[cost == 0xFFFFFFFF] = -1
        expected = reference_hop_distance(self.graph, self.SOURCE)
        if not np.array_equal(cost, expected):
            bad = int(np.sum(cost != expected))
            raise AssertionError("bfs: %d/%d hop counts wrong" % (bad, n))
