"""Workload registry: name-based lookup for the benchmark applications.

The paper's Table I suite (15 apps) is the default; the *extended*
suite adds applications beyond the paper (hotspot, histo, pagerank)
that broaden the characterization — they are excluded from the
table/figure reproduction benches but share the full pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import Workload
from .bfs import BFS
from .bpr import BackProp
from .ccl import CCL
from .dwt import DWT2D
from .gaus import Gaussian
from .grm import GramSchmidt
from .histo import Histogram
from .hotspot import HotSpot
from .htw import HeartWall
from .lu import LUDecomposition
from .mis import MIS
from .mriq import MRIQ
from .mst import MST
from .pagerank import PageRank
from .spmv import SpMV
from .srad import SRAD
from .sssp import SSSP
from .twomm import TwoMM

#: Table I order: linear algebra, image processing, graph.
WORKLOAD_CLASSES: List[Type[Workload]] = [
    TwoMM, Gaussian, GramSchmidt, LUDecomposition, SpMV,
    HeartWall, MRIQ, DWT2D, BackProp, SRAD,
    BFS, SSSP, CCL, MST, MIS,
]

#: Applications beyond the paper's Table I.
EXTENDED_CLASSES: List[Type[Workload]] = [HotSpot, Histogram, PageRank]

WORKLOADS: Dict[str, Type[Workload]] = {
    cls.name: cls for cls in WORKLOAD_CLASSES + EXTENDED_CLASSES}

CATEGORIES = ("linear", "image", "graph")


def get_workload(name, **kwargs):
    """Instantiate a workload by name (Table I or extended suite)."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise ValueError("unknown workload %r (choices: %s)"
                         % (name, ", ".join(sorted(WORKLOADS)))) from None
    return cls(**kwargs)


def workload_names(category=None, include_extended=False):
    """Workload names in Table I order (optionally one category and/or
    including the extended suite)."""
    classes = list(WORKLOAD_CLASSES)
    if include_extended:
        classes += EXTENDED_CLASSES
    return [cls.name for cls in classes
            if category is None or cls.category == category]
