"""Rule-based diagnosis of memory-critical loads.

Each rule matches the trace-derived :class:`~repro.advise.features.
LoadFeatures` of one static load and, when it fires, produces a
:class:`Diagnosis` that localizes the problem to a PTX source line and
names the candidate transforms from :mod:`repro.optim` whose measured
effect the advisor should verify.  Three problem signatures (the
paper's Sections VI-VIII observations, inverted into prescriptions):

``uncoalesced``
    A load whose warps consistently scatter over many memory lines.
    Non-deterministic ones are the paper's headline pathology; the
    coalescing oracle (:mod:`repro.optim.coalesce_oracle`) bounds the
    achievable gain.  Deterministic scattered loads are a data-layout
    problem — no trace transform models that, so no candidate is named.

``burst-prone``
    A non-deterministic load with a large worst-case line footprint per
    warp: one op floods the MSHRs/interconnect with requests.  Sub-warp
    splitting (:mod:`repro.optim.warp_split`) bounds the burst.

``cache-thrashing``
    A heavy load whose line reuse predominantly happens at intervals
    beyond on-chip cache reach.  Inter-CTA sharing decides the
    candidate: shared lines favor schedules/organizations that bring
    sharers together (clustered CTA scheduling, semi-global L2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: transform identifiers, matching :mod:`repro.advise.advisor` verifiers.
WARP_SPLIT = "warp_split"
COALESCE_ORACLE = "coalesce_oracle"
CTA_CLUSTERED = "cta_clustered"
SEMI_GLOBAL_L2 = "semi_global_l2"


@dataclass(frozen=True)
class Thresholds:
    """Tunable cut-offs of the rule engine (defaults sized for the
    scaled benchmark harness)."""

    #: a warp of a coalesced unit-stride load touches 1-2 lines; above
    #: this mean requests/warp the load counts as uncoalesced.
    uncoalesced_requests_per_warp: float = 2.5
    #: ignore loads below this share of total coalesced traffic.
    min_traffic_share: float = 0.02
    #: worst-case lines per op above which an N load is burst-prone.
    burst_lines_per_op: int = 8
    #: fraction of re-touches beyond the far-reuse bucket for thrashing.
    thrashing_far_reuse: float = 0.5
    #: minimum traffic share for the thrashing rule (it recommends
    #: whole-application scheduling changes, so demand a heavy load).
    thrashing_traffic_share: float = 0.10
    #: accesses to CTA-shared lines above this fraction route the
    #: thrashing diagnosis toward sharing-aware candidates.
    sharing_fraction: float = 0.05


@dataclass(frozen=True)
class Diagnosis:
    """One localized problem and the transforms that might fix it."""

    kind: str                  # "uncoalesced" | "burst-prone" | ...
    kernel: str
    pc: int
    line: int                  # PTX source line (0 when unknown)
    load_class: str
    summary: str
    evidence: Dict[str, float] = field(default_factory=dict)
    candidates: Tuple[str, ...] = ()

    def where(self):
        loc = "%s pc=%#x" % (self.kernel, self.pc)
        if self.line:
            loc += " (PTX line %d)" % self.line
        return loc

    def to_json(self):
        return {
            "kind": self.kind,
            "kernel": self.kernel,
            "pc": self.pc,
            "line": self.line,
            "class": self.load_class,
            "summary": self.summary,
            "evidence": dict(self.evidence),
            "candidates": list(self.candidates),
        }


def _diagnose_load(f, th):
    out = []
    if f.traffic_share < th.min_traffic_share:
        return out
    cls = f.load_class or "?"
    if f.requests_per_warp >= th.uncoalesced_requests_per_warp:
        candidates = (COALESCE_ORACLE,) if cls == "N" else ()
        detail = ("address depends on loaded data (class N); the "
                  "coalescing oracle bounds the achievable gain"
                  if cls == "N" else
                  "address is launch-deterministic (class D): scatter "
                  "is a data-layout property, so restructure the "
                  "layout — no trace transform models this")
        out.append(Diagnosis(
            kind="uncoalesced", kernel=f.kernel, pc=f.pc, line=f.line,
            load_class=cls,
            summary="warps scatter over %.1f lines on average "
                    "(%.1f active lanes); %s"
                    % (f.requests_per_warp, f.mean_active_lanes, detail),
            evidence={"requests_per_warp": f.requests_per_warp,
                      "mean_active_lanes": f.mean_active_lanes,
                      "traffic_share": f.traffic_share},
            candidates=candidates,
        ))
    if cls == "N" and f.max_lines_per_op >= th.burst_lines_per_op:
        out.append(Diagnosis(
            kind="burst-prone", kernel=f.kernel, pc=f.pc, line=f.line,
            load_class=cls,
            summary="a single warp op touches up to %d lines — the "
                    "request burst monopolizes MSHRs/interconnect; "
                    "sub-warp splitting bounds it"
                    % f.max_lines_per_op,
            evidence={"max_lines_per_op": float(f.max_lines_per_op),
                      "requests_per_warp": f.requests_per_warp,
                      "traffic_share": f.traffic_share},
            candidates=(WARP_SPLIT,),
        ))
    if (f.traffic_share >= th.thrashing_traffic_share
            and f.far_reuse_fraction >= th.thrashing_far_reuse):
        shared = f.shared_fraction >= th.sharing_fraction
        candidates = ((CTA_CLUSTERED, SEMI_GLOBAL_L2) if shared
                      else (CTA_CLUSTERED,))
        out.append(Diagnosis(
            kind="cache-thrashing", kernel=f.kernel, pc=f.pc,
            line=f.line, load_class=cls,
            summary="%.0f%% of line reuse happens beyond on-chip cache "
                    "reach%s; reschedule so reuses land closer together"
                    % (100 * f.far_reuse_fraction,
                       " and %.0f%% of accesses hit CTA-shared lines"
                       % (100 * f.shared_fraction) if shared else ""),
            evidence={"far_reuse_fraction": f.far_reuse_fraction,
                      "shared_fraction": f.shared_fraction,
                      "traffic_share": f.traffic_share},
            candidates=candidates,
        ))
    return out


def diagnose(features, thresholds=None):
    """Run every rule over every load; diagnoses keep the feature
    list's traffic-share ordering."""
    th = thresholds or Thresholds()
    diagnoses = []
    for f in features:
        diagnoses.extend(_diagnose_load(f, th))
    return diagnoses
