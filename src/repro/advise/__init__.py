"""Closed-loop optimization advisor: heat-map profiling, rule-based
diagnosis of memory-critical loads, and simulator-verified
recommendations (the ``repro advise`` subsystem)."""

from .advisor import (
    MIN_GAIN,
    AdviceReport,
    TransformDelta,
    advise_app,
)
from .features import FAR_REUSE_BUCKET, LoadFeatures, extract_features
from .rules import (
    COALESCE_ORACLE,
    CTA_CLUSTERED,
    SEMI_GLOBAL_L2,
    WARP_SPLIT,
    Diagnosis,
    Thresholds,
    diagnose,
)

__all__ = [
    "MIN_GAIN",
    "AdviceReport",
    "TransformDelta",
    "advise_app",
    "FAR_REUSE_BUCKET",
    "LoadFeatures",
    "extract_features",
    "COALESCE_ORACLE",
    "CTA_CLUSTERED",
    "SEMI_GLOBAL_L2",
    "WARP_SPLIT",
    "Diagnosis",
    "Thresholds",
    "diagnose",
]
