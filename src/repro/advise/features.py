"""Per-load feature extraction for the optimization advisor.

Turns a finalized :class:`~repro.profiling.heatmap.HeatMapReport` into a
flat list of :class:`LoadFeatures` — one per static global load — that
the rule engine (:mod:`repro.advise.rules`) matches against.  Every
feature is trace-derived (no timing-model state), so extraction is
cheap and works on cache-hit runs that were never simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: reuse-interval bucket at which a line's reuse is considered to have
#: outlived any realistic on-chip cache at benchmark scale: bucket 10
#: covers intervals of 512-1023 intervening coalesced accesses, i.e.
#: 64-128 KB of unique-line traffic at 128 B lines — beyond the scaled
#: L2 of the benchmark harness.
FAR_REUSE_BUCKET = 10


@dataclass(frozen=True)
class LoadFeatures:
    """Everything the diagnosis rules know about one static load."""

    kernel: str
    pc: int
    #: PTX source line (0 when unknown) and canonical instruction text.
    line: int
    text: str
    #: "D", "N", or ``None`` when the load was never classified.
    load_class: Optional[str]
    #: PCs of the data loads tainting this load's address (N loads).
    tainting_pcs: Tuple[int, ...]
    warp_ops: int
    #: mean coalesced requests per executed warp instruction.
    requests_per_warp: float
    mean_active_lanes: float
    #: worst-case distinct lines touched by a single warp op.
    max_lines_per_op: int
    #: fraction of this load's coalesced accesses that were the first
    #: touch of their line (compulsory misses).
    cold_miss_ratio: float
    #: fraction of accesses landing on lines touched by >= 2 CTAs.
    shared_fraction: float
    #: fraction of this load's line *re-touches* whose reuse interval is
    #: in bucket :data:`FAR_REUSE_BUCKET` or beyond.
    far_reuse_fraction: float
    #: this load's share of the application's coalesced global traffic.
    traffic_share: float

    def to_json(self):
        return {
            "kernel": self.kernel,
            "pc": self.pc,
            "line": self.line,
            "text": self.text,
            "class": self.load_class,
            "tainting_pcs": list(self.tainting_pcs),
            "warp_ops": self.warp_ops,
            "requests_per_warp": self.requests_per_warp,
            "mean_active_lanes": self.mean_active_lanes,
            "max_lines_per_op": self.max_lines_per_op,
            "cold_miss_ratio": self.cold_miss_ratio,
            "shared_fraction": self.shared_fraction,
            "far_reuse_fraction": self.far_reuse_fraction,
            "traffic_share": self.traffic_share,
        }


def extract_features(report, classifications=None,
                     far_bucket=FAR_REUSE_BUCKET):
    """Features for every load PC in a heat-map report, sorted by
    descending traffic share.

    ``classifications`` fills in tainting PCs (and class/line/text when
    the report was finalized without them).
    """
    total = report.total_touches or 1
    features = []
    for heat in report.pcs.values():
        load_class, line, text = heat.load_class, heat.line, heat.text
        tainting = ()
        if classifications is not None:
            result = classifications.get(heat.kernel)
            found = result.get(heat.pc) if result is not None else None
            if found is not None:
                load_class = str(found.load_class)
                line = found.instruction.line
                text = str(found.instruction)
                tainting = found.tainting_pcs
        features.append(LoadFeatures(
            kernel=heat.kernel,
            pc=heat.pc,
            line=line,
            text=text,
            load_class=load_class,
            tainting_pcs=tuple(tainting),
            warp_ops=heat.warp_ops,
            requests_per_warp=heat.requests_per_warp(),
            mean_active_lanes=heat.mean_active_lanes(),
            max_lines_per_op=heat.max_lines_per_op,
            cold_miss_ratio=heat.cold_miss_ratio(),
            shared_fraction=heat.shared_fraction(),
            far_reuse_fraction=heat.reuse_fraction_beyond(far_bucket),
            traffic_share=heat.line_touches / total,
        ))
    features.sort(key=lambda f: (-f.traffic_share, f.kernel, f.pc))
    return features
